#!/usr/bin/env bash
# Builds and installs googletest + google-benchmark from source so every CI
# job (including the sanitizer builds) links against the same versions the
# project is developed with, independent of what the runner image ships.
set -euo pipefail

GTEST_VERSION="${GTEST_VERSION:-v1.14.0}"
BENCHMARK_VERSION="${BENCHMARK_VERSION:-v1.8.3}"
SCRATCH="$(mktemp -d)"
trap 'rm -rf "${SCRATCH}"' EXIT

git clone --depth 1 --branch "${GTEST_VERSION}" \
  https://github.com/google/googletest.git "${SCRATCH}/googletest"
cmake -S "${SCRATCH}/googletest" -B "${SCRATCH}/googletest/build" -G Ninja \
  -DCMAKE_BUILD_TYPE=Release -DBUILD_GMOCK=ON
cmake --build "${SCRATCH}/googletest/build"
sudo cmake --install "${SCRATCH}/googletest/build"

git clone --depth 1 --branch "${BENCHMARK_VERSION}" \
  https://github.com/google/benchmark.git "${SCRATCH}/benchmark"
cmake -S "${SCRATCH}/benchmark" -B "${SCRATCH}/benchmark/build" -G Ninja \
  -DCMAKE_BUILD_TYPE=Release -DBENCHMARK_ENABLE_TESTING=OFF \
  -DBENCHMARK_ENABLE_GTEST_TESTS=OFF
cmake --build "${SCRATCH}/benchmark/build"
sudo cmake --install "${SCRATCH}/benchmark/build"
