// Exact-arithmetic hot-loop bench: the rational simplex + branch & bound
// substrate in isolation (Thm 4.7 / Cor 4.11 reduce the decidable cells to
// integer linear programming, so this is where nearly all solver time goes).
//
// Sections:
//  - "lp": cold phase-1 simplex factorizations of the Ψ(D,∅) skeleton —
//    pure pivot arithmetic, no search.
//  - "consistency": full NP-cell checks (case-split + B&B + Gomory cuts)
//    over random unary Σ, single-threaded.
//  - "warm-ablation": the same queries with warm starts disabled; verdicts
//    must be identical (the ablation only counts if both answer the same).
//
// Each row carries the PR 3 (pre-Num, pre-arena) baseline wall time so the
// before/after of the small-word fast path is machine-readable.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "base/arena.h"
#include "base/num.h"
#include "bench/bench_util.h"
#include "core/cardinality_encoding.h"
#include "core/consistency.h"
#include "ilp/simplex.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

/// PR 3 baselines measured on the reference container (best of 3, ms).
/// 0.0 = no recorded baseline for this row.
struct Baseline {
  const char* row;
  double ms;
};
const Baseline kPr3Baselines[] = {
    {"lp:catalog-10", 7.099},        {"lp:catalog-14", 16.261},
    {"lp:auction-6", 3.282},         {"consistency:catalog-8", 72.157},
    {"consistency:catalog-12", 142.591}, {"consistency:auction-5", 41.721},
};

double Pr3Baseline(const std::string& row) {
  for (const Baseline& b : kPr3Baselines) {
    if (row == b.row) return b.ms;
  }
  return 0.0;
}

void RunLpSection(bench::JsonReport& report) {
  bench::Header("cold LP factorization of the Ψ(D,∅) skeleton");
  std::printf("%16s %8s %8s %12s %12s %10s %10s %10s\n", "dtd", "rows",
              "cols", "time(ms)", "pivots", "vs-pr3", "promo", "arena(B)");
  struct Case {
    const char* name;
    Dtd dtd;
  };
  std::vector<Case> cases;
  cases.push_back({"catalog-10", workloads::CatalogDtd(10)});
  cases.push_back({"catalog-14", workloads::CatalogDtd(14)});
  cases.push_back({"auction-6", workloads::AuctionDtd(6)});
  for (Case& c : cases) {
    auto encoding =
        BuildCardinalityEncoding(c.dtd, ConstraintSet(),
                                 c.dtd.AllAttributePairs());
    if (!encoding.ok()) std::abort();
    const LinearSystem& sys = encoding->system;
    size_t pivots = 0;
    bool feasible = false;
    // Tier/arena tallies for one representative solve (thread-local deltas).
    uint64_t small_ops = 0, big_ops = 0, promotions = 0, arena_bytes = 0;
    double ms = bench::BestTimeMs(5, [&] {
      const NumCounters before = ThisThreadNumCounters();
      const uint64_t bytes_before = ThisThreadArena().total_allocated();
      LpResult lp = SolveLpFeasibility(sys);
      const NumCounters& after = ThisThreadNumCounters();
      small_ops = after.small_ops - before.small_ops;
      big_ops = after.big_ops - before.big_ops;
      promotions = after.promotions - before.promotions;
      arena_bytes = ThisThreadArena().total_allocated() - bytes_before;
      pivots = lp.pivots;
      feasible = lp.feasible;
    });
    if (!feasible) std::abort();
    const std::string row = std::string("lp:") + c.name;
    double base = Pr3Baseline(row);
    const double promo_rate =  // xicc-lint: allow(exact-arithmetic)
        small_ops > 0 ? static_cast<double>(promotions) / small_ops : 0.0;
    std::printf("%16s %8zu %8zu %12.3f %12zu %9.2fx %10.2e %10zu\n", c.name,
                sys.NumConstraints(), sys.NumVariables(), ms, pivots,
                base > 0 ? base / ms : 0.0, promo_rate,
                static_cast<size_t>(arena_bytes));
    report.AddRow("lp")
        .Set("dtd", c.name)
        .Set("rows", sys.NumConstraints())
        .Set("cols", sys.NumVariables())
        .Set("time_ms", ms)
        .Set("pivots", pivots)
        .Set("pr3_baseline_ms", base)
        .Set("speedup_vs_pr3_x", base > 0 ? base / ms : 0.0)
        .Set("small_ops", small_ops)
        .Set("big_ops", big_ops)
        .Set("promotion_rate", promo_rate)
        .Set("arena_bytes", arena_bytes);
  }
}

void RunConsistencySection(bench::JsonReport& report) {
  bench::Header("NP-cell consistency checks (case-split + B&B), 1 thread");
  std::printf("%18s %8s %12s %12s %10s %10s %10s\n", "dtd", "queries",
              "time(ms)", "pivots", "vs-pr3", "promo", "arena(B)");
  struct Case {
    const char* name;
    Dtd dtd;
    uint64_t seed;
  };
  std::vector<Case> cases;
  cases.push_back({"catalog-8", workloads::CatalogDtd(8), 7});
  cases.push_back({"catalog-12", workloads::CatalogDtd(12), 11});
  cases.push_back({"auction-5", workloads::AuctionDtd(5), 13});

  ConsistencyOptions check;
  check.build_witness = false;

  for (Case& c : cases) {
    std::vector<ConstraintSet> queries;
    for (uint64_t s = 0; s < 8; ++s) {
      queries.push_back(workloads::RandomUnarySigma(c.dtd, c.seed + s, 4, 4));
    }
    size_t pivots = 0;
    uint64_t small_ops = 0, big_ops = 0, promotions = 0, demotions = 0;
    uint64_t arena_bytes = 0;
    std::vector<char> verdicts(queries.size());
    double ms = bench::BestTimeMs(3, [&] {
      pivots = 0;
      small_ops = big_ops = promotions = demotions = arena_bytes = 0;
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = CheckConsistency(c.dtd, queries[i], check);
        if (!r.ok()) std::abort();
        verdicts[i] = r->consistent ? 1 : 0;
        pivots += r->stats.lp_pivots;
        small_ops += r->stats.num_small_ops;
        big_ops += r->stats.num_big_ops;
        promotions += r->stats.num_promotions;
        demotions += r->stats.num_demotions;
        arena_bytes += r->stats.arena_bytes;
      }
    });

    // Warm-start ablation: identical verdicts with warm starts disabled.
    ConsistencyOptions cold = check;
    cold.ilp.warm_start = false;
    bool verdicts_identical = true;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = CheckConsistency(c.dtd, queries[i], cold);
      if (!r.ok()) std::abort();
      if ((r->consistent ? 1 : 0) != verdicts[i]) verdicts_identical = false;
    }
    if (!verdicts_identical) std::abort();

    const std::string row = std::string("consistency:") + c.name;
    double base = Pr3Baseline(row);
    const double promo_rate =  // xicc-lint: allow(exact-arithmetic)
        small_ops > 0 ? static_cast<double>(promotions) / small_ops : 0.0;
    std::printf("%18s %8zu %12.3f %12zu %9.2fx %10.2e %10zu\n", c.name,
                queries.size(), ms, pivots, base > 0 ? base / ms : 0.0,
                promo_rate, static_cast<size_t>(arena_bytes));
    report.AddRow("consistency")
        .Set("dtd", c.name)
        .Set("queries", queries.size())
        .Set("time_ms", ms)
        .Set("pivots", pivots)
        .Set("pr3_baseline_ms", base)
        .Set("speedup_vs_pr3_x", base > 0 ? base / ms : 0.0)
        .Set("small_ops", small_ops)
        .Set("big_ops", big_ops)
        .Set("promotion_rate", promo_rate)
        .Set("demotions", demotions)
        .Set("arena_bytes", arena_bytes)
        .Set("verdicts_identical", verdicts_identical);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_ilp — the exact-arithmetic hot loop in isolation\n"
      "claim: the decidable cells are ILP (Thm 4.7), so rational-pivot\n"
      "arithmetic dominates; the small-word fast path removes its\n"
      "allocations.\n");
  xicc::bench::JsonReport report("ilp");
  xicc::RunLpSection(report);
  xicc::RunConsistencySection(report);
  report.Write();
  return 0;
}
