// Exact-arithmetic hot-loop bench: the rational simplex + branch & bound
// substrate in isolation (Thm 4.7 / Cor 4.11 reduce the decidable cells to
// integer linear programming, so this is where nearly all solver time goes).
//
// Sections:
//  - "lp": cold phase-1 simplex factorizations of the Ψ(D,∅) skeleton —
//    pure pivot arithmetic, no search.
//  - "consistency": full NP-cell checks (case-split + B&B + Gomory cuts)
//    over random unary Σ, single-threaded.
//  - "warm-ablation": the same queries with warm starts disabled; verdicts
//    must be identical (the ablation only counts if both answer the same).
//
// Each row carries the PR 3 (pre-Num, pre-arena) baseline wall time so the
// before/after of the small-word fast path is machine-readable.

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "base/arena.h"
#include "base/num.h"
#include "bench/bench_util.h"
#include "core/cardinality_encoding.h"
#include "core/consistency.h"
#include "ilp/simplex.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

/// PR 3 baselines measured on the reference container (best of 3, ms).
/// 0.0 = no recorded baseline for this row.
struct Baseline {
  const char* row;
  double ms;
};
const Baseline kPr3Baselines[] = {
    {"lp:catalog-10", 7.099},        {"lp:catalog-14", 16.261},
    {"lp:auction-6", 3.282},         {"consistency:catalog-8", 72.157},
    {"consistency:catalog-12", 142.591}, {"consistency:auction-5", 41.721},
};

double Pr3Baseline(const std::string& row) {
  for (const Baseline& b : kPr3Baselines) {
    if (row == b.row) return b.ms;
  }
  return 0.0;
}

void RunLpSection(bench::JsonReport& report) {
  bench::Header("cold LP factorization of the Ψ(D,∅) skeleton");
  std::printf("%16s %8s %8s %12s %12s %12s %10s %10s %8s\n", "dtd", "rows",
              "cols", "time(ms)", "dense(ms)", "pivots", "vs-pr3", "vs-dense",
              "nnz");
  struct Case {
    const char* name;
    Dtd dtd;
  };
  std::vector<Case> cases;
  cases.push_back({"catalog-10", workloads::CatalogDtd(10)});
  cases.push_back({"catalog-14", workloads::CatalogDtd(14)});
  cases.push_back({"auction-6", workloads::AuctionDtd(6)});
  for (Case& c : cases) {
    auto encoding =
        BuildCardinalityEncoding(c.dtd, ConstraintSet(),
                                 c.dtd.AllAttributePairs());
    if (!encoding.ok()) std::abort();
    const LinearSystem& sys = encoding->system;
    LpResult kept;
    // Tier/arena tallies for one representative solve (thread-local deltas).
    uint64_t small_ops = 0, big_ops = 0, promotions = 0, arena_bytes = 0;
    double ms = bench::BestTimeMs(5, [&] {
      const NumCounters before = ThisThreadNumCounters();
      const uint64_t bytes_before = ThisThreadArena().total_allocated();
      LpResult lp = SolveLpFeasibility(sys);
      const NumCounters& after = ThisThreadNumCounters();
      small_ops = after.small_ops - before.small_ops;
      big_ops = after.big_ops - before.big_ops;
      promotions = after.promotions - before.promotions;
      arena_bytes = ThisThreadArena().total_allocated() - bytes_before;
      kept = std::move(lp);
    });
    if (!kept.feasible) std::abort();

    // Dense-Bland reference solve of the same system: the seed kernel the
    // sparse one replaced, timed under identical conditions. The verdict
    // must agree — the kernel swap is a performance change, not a semantic
    // one.
    bool dense_feasible = false;
    double dense_ms = bench::BestTimeMs(5, [&] {
      LpResult lp = SolveLpFeasibilityDenseBland(sys);
      dense_feasible = lp.feasible;
    });
    if (dense_feasible != kept.feasible) std::abort();
    const double speedup_vs_dense =  // xicc-lint: allow(exact-arithmetic)
        ms > 0 ? dense_ms / ms : 0.0;

    const std::string row = std::string("lp:") + c.name;
    double base = Pr3Baseline(row);
    const double promo_rate =  // xicc-lint: allow(exact-arithmetic)
        small_ops > 0 ? static_cast<double>(promotions) / small_ops : 0.0;
    const double nnz_density =  // xicc-lint: allow(exact-arithmetic)
        kept.total_cells > 0
            ? static_cast<double>(kept.nnz_cells) / kept.total_cells
            : 0.0;
    std::printf("%16s %8zu %8zu %12.3f %12.3f %12zu %9.2fx %9.2fx %8.4f\n",
                c.name, sys.NumConstraints(), sys.NumVariables(), ms, dense_ms,
                kept.pivots, base > 0 ? base / ms : 0.0, speedup_vs_dense,
                nnz_density);
    report.AddRow("lp")
        .Set("dtd", c.name)
        .Set("rows", sys.NumConstraints())
        .Set("cols", sys.NumVariables())
        .Set("time_ms", ms)
        .Set("dense_time_ms", dense_ms)
        .Set("speedup_vs_dense_x", speedup_vs_dense)
        .Set("pivots", kept.pivots)
        .Set("dantzig_pivots", kept.dantzig_pivots)
        .Set("bland_pivots", kept.bland_pivots)
        .Set("bland_fallbacks", kept.bland_fallbacks)
        .Set("nnz_density", nnz_density)
        .Set("fill_in", kept.fill_in)
        .Set("fast_rows", kept.fast_rows)
        .Set("fast_row_promotions", kept.fast_row_promotions)
        .Set("verdicts_identical", dense_feasible == kept.feasible)
        .Set("pr3_baseline_ms", base)
        .Set("speedup_vs_pr3_x", base > 0 ? base / ms : 0.0)
        .Set("small_ops", small_ops)
        .Set("big_ops", big_ops)
        .Set("promotion_rate", promo_rate)
        .Set("arena_bytes", arena_bytes);
  }
}

void RunConsistencySection(bench::JsonReport& report) {
  bench::Header("NP-cell consistency checks (case-split + B&B), 1 thread");
  std::printf("%18s %8s %12s %12s %10s %10s %10s\n", "dtd", "queries",
              "time(ms)", "pivots", "vs-pr3", "promo", "arena(B)");
  struct Case {
    const char* name;
    Dtd dtd;
    uint64_t seed;
  };
  std::vector<Case> cases;
  cases.push_back({"catalog-8", workloads::CatalogDtd(8), 7});
  cases.push_back({"catalog-12", workloads::CatalogDtd(12), 11});
  cases.push_back({"auction-5", workloads::AuctionDtd(5), 13});

  ConsistencyOptions check;
  check.build_witness = false;

  for (Case& c : cases) {
    std::vector<ConstraintSet> queries;
    for (uint64_t s = 0; s < 8; ++s) {
      queries.push_back(workloads::RandomUnarySigma(c.dtd, c.seed + s, 4, 4));
    }
    size_t pivots = 0;
    uint64_t small_ops = 0, big_ops = 0, promotions = 0, demotions = 0;
    uint64_t arena_bytes = 0;
    LpKernelStats kernel;
    std::vector<char> verdicts(queries.size());
    double ms = bench::BestTimeMs(3, [&] {
      pivots = 0;
      small_ops = big_ops = promotions = demotions = arena_bytes = 0;
      kernel = LpKernelStats();
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = CheckConsistency(c.dtd, queries[i], check);
        if (!r.ok()) std::abort();
        verdicts[i] = r->consistent ? 1 : 0;
        pivots += r->stats.lp_pivots;
        kernel.Add(r->stats.lp_kernel);
        small_ops += r->stats.num_small_ops;
        big_ops += r->stats.num_big_ops;
        promotions += r->stats.num_promotions;
        demotions += r->stats.num_demotions;
        arena_bytes += r->stats.arena_bytes;
      }
    });

    // Warm-start ablation: identical verdicts with warm starts disabled.
    ConsistencyOptions cold = check;
    cold.ilp.warm_start = false;
    bool verdicts_identical = true;
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = CheckConsistency(c.dtd, queries[i], cold);
      if (!r.ok()) std::abort();
      if ((r->consistent ? 1 : 0) != verdicts[i]) verdicts_identical = false;
    }
    if (!verdicts_identical) std::abort();

    const std::string row = std::string("consistency:") + c.name;
    double base = Pr3Baseline(row);
    const double promo_rate =  // xicc-lint: allow(exact-arithmetic)
        small_ops > 0 ? static_cast<double>(promotions) / small_ops : 0.0;
    std::printf("%18s %8zu %12.3f %12zu %9.2fx %10.2e %10zu\n", c.name,
                queries.size(), ms, pivots, base > 0 ? base / ms : 0.0,
                promo_rate, static_cast<size_t>(arena_bytes));
    report.AddRow("consistency")
        .Set("dtd", c.name)
        .Set("queries", queries.size())
        .Set("time_ms", ms)
        .Set("pivots", pivots)
        .Set("pr3_baseline_ms", base)
        .Set("speedup_vs_pr3_x", base > 0 ? base / ms : 0.0)
        .Set("small_ops", small_ops)
        .Set("big_ops", big_ops)
        .Set("promotion_rate", promo_rate)
        .Set("demotions", demotions)
        .Set("arena_bytes", arena_bytes)
        .Set("dantzig_pivots", kernel.dantzig_pivots)
        .Set("bland_pivots", kernel.bland_pivots)
        .Set("bland_fallbacks", kernel.bland_fallbacks)
        .Set("fill_in", kernel.fill_in)
        .Set("nnz_density",  // xicc-lint: allow(exact-arithmetic)
             kernel.total_cells > 0
                 ? static_cast<double>(kernel.nnz_cells) / kernel.total_cells
                 : 0.0)
        .Set("fast_rows", kernel.fast_rows)
        .Set("fast_row_promotions", kernel.fast_row_promotions)
        .Set("verdicts_identical", verdicts_identical);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_ilp — the exact-arithmetic hot loop in isolation\n"
      "claim: the decidable cells are ILP (Thm 4.7), so rational-pivot\n"
      "arithmetic dominates; the small-word fast path removes its\n"
      "allocations.\n");
  xicc::bench::JsonReport report("ilp");
  xicc::RunLpSection(report);
  xicc::RunConsistencySection(report);
  report.Write();
  return 0;
}
