// Daemon round-trip throughput and latency: one-shot consistency checks
// over the newline-delimited JSON protocol, swept across worker-pool
// widths and against a cold vs artifact-warm compiled-DTD cache.
//
// What the numbers mean:
//   - rps / p50 / p99 at workers ∈ {1, 4, 8}: how the poll-driven I/O
//     thread + worker pool scales when every request carries the full
//     DTD text (parse + artifact lookup + keys-only solve per call).
//   - cold vs warm: a cold server compiles the DTD on first sight; a warm
//     one mmaps the artifact a previous server instance persisted. The
//     first-call latency column isolates that compile-vs-load delta; the
//     steady-state columns show the in-memory tier hiding it thereafter.
//
// Results land in BENCH_daemon.json for EXPERIMENTS.md.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/worksteal.h"
#include "bench/bench_util.h"
#include "net/client.h"
#include "net/server.h"
#include "tests/daemon_harness.h"

namespace xicc {
namespace {

using net::Client;
using net::ClientOptions;
using net::JsonValue;
using net::OneShotCheckReq;
using net::Server;
using net::ServerOptions;
using net::TextSpec;

constexpr size_t kClients = 8;
constexpr size_t kCallsPerClient = 150;

struct LoadPoint {
  size_t workers = 0;
  bool warm = false;
  double first_call_ms = 0.0;  ///< Compile (cold) or artifact load (warm).
  double rps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  size_t calls = 0;
  size_t errors = 0;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(index, sorted_ms->size() - 1)];
}

/// One measured configuration: start a server, hammer it with kClients
/// synchronous callers, drain, and fold the latencies.
LoadPoint RunPoint(size_t workers, const std::string& artifact_dir,
                   bool warm, const TextSpec& spec) {
  LoadPoint point;
  point.workers = workers;
  point.warm = warm;

  ServerOptions options;
  options.workers = workers;
  options.max_connections = kClients + 4;
  options.max_inflight = kClients * 2;
  options.artifact_dir = artifact_dir;
  auto started = Server::Start(options);
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.status().message().c_str());
    std::abort();
  }
  std::unique_ptr<Server> server = std::move(*started);

  // First call, alone on the connection: the compile-or-load cost.
  {
    ClientOptions copts;
    copts.port = server->port();
    auto client = Client::Connect(copts);
    if (!client.ok()) std::abort();
    point.first_call_ms = bench::TimeMs([&] {
      auto response = client->Call(OneShotCheckReq(/*id=*/0, spec));
      if (!response.ok() || !response->GetBool("ok", false)) std::abort();
    });
  }

  std::vector<std::vector<double>> latencies(kClients);
  std::vector<size_t> errors(kClients, 0);
  const double wall_ms = bench::TimeMs([&] {
    WorkStealingPool pool(kClients);
    for (size_t c = 0; c < kClients; ++c) {
      pool.Submit([c, port = server->port(), &spec, &latencies, &errors] {
        ClientOptions copts;
        copts.port = port;
        auto client = Client::Connect(copts);
        if (!client.ok()) {
          errors[c] = kCallsPerClient;
          return;
        }
        latencies[c].reserve(kCallsPerClient);
        for (size_t i = 0; i < kCallsPerClient; ++i) {
          const double ms = bench::TimeMs([&] {
            auto response = client->Call(
                OneShotCheckReq(static_cast<int64_t>(i + 1), spec));
            if (!response.ok() || !response->GetBool("ok", false)) {
              ++errors[c];
            }
          });
          latencies[c].push_back(ms);
        }
      });
    }
    // Pool destructor joins every caller.
  });

  std::vector<double> all;
  for (size_t c = 0; c < kClients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    point.errors += errors[c];
  }
  std::sort(all.begin(), all.end());
  point.calls = all.size();
  point.rps = wall_ms > 0.0
                  ? static_cast<double>(all.size()) * 1000.0 / wall_ms
                  : 0.0;
  point.p50_ms = Percentile(&all, 0.50);
  point.p99_ms = Percentile(&all, 0.99);

  server->RequestShutdown();
  server->Wait();
  return point;
}

void Run() {
  bench::JsonReport report("daemon");
  const TextSpec spec = net::EasySpec();

  // A throwaway server run populates the artifact directory so the "warm"
  // points start from a persisted compiled-DTD artifact, the way a
  // restarted production daemon would.
  char dir_template[] = "/tmp/xicc_bench_daemon_XXXXXX";
  const char* artifact_dir = mkdtemp(dir_template);
  if (artifact_dir == nullptr) std::abort();
  (void)RunPoint(/*workers=*/1, artifact_dir, /*warm=*/false, spec);

  bench::Header("xiccd one-shot check throughput (8 clients, easy spec)");
  std::printf("%8s %6s %12s %12s %10s %10s %8s\n", "workers", "cache",
              "first(ms)", "rps", "p50(ms)", "p99(ms)", "errors");
  for (bool warm : {false, true}) {
    for (size_t workers : {size_t{1}, size_t{4}, size_t{8}}) {
      const LoadPoint point =
          RunPoint(workers, warm ? artifact_dir : "", warm, spec);
      std::printf("%8zu %6s %12.3f %12.1f %10.3f %10.3f %8zu\n",
                  point.workers, warm ? "warm" : "cold", point.first_call_ms,
                  point.rps, point.p50_ms, point.p99_ms, point.errors);
      report.AddRow("load_point")
          .Set("workers", point.workers)
          .Set("artifact_warm", point.warm)
          .Set("first_call_ms", point.first_call_ms)
          .Set("rps", point.rps)
          .Set("p50_ms", point.p50_ms)
          .Set("p99_ms", point.p99_ms)
          .Set("calls", point.calls)
          .Set("errors", point.errors);
      if (point.errors > 0) {
        std::fprintf(stderr, "bench_daemon: %zu failed calls at workers=%zu\n",
                     point.errors, point.workers);
        std::abort();
      }
    }
  }
  report.Write();
}

}  // namespace
}  // namespace xicc

int main() {
  xicc::Run();
  return 0;
}
