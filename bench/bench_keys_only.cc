// Figure 5, rightmost column (Theorem 3.5): DTD validity, keys-only
// consistency, and keys-only implication are linear time. The sweep doubles
// the DTD size and reports time per size unit — a flat ratio is the linear
// shape the paper claims.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "dtd/analysis.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

void RunValidity(bench::JsonReport& report) {
  bench::Header(
      "X1 / Thm 3.5(1): DTD validity (grammar emptiness), chain DTDs");
  std::printf("%10s %12s %16s\n", "elements", "time(ms)", "us per element");
  for (size_t n : {2000, 4000, 8000, 16000, 32000, 64000}) {
    Dtd dtd = workloads::ChainDtd(n);
    double ms = bench::BestTimeMs(3, [&] {
      bool ok = DtdHasValidTree(dtd);
      if (!ok) std::abort();
    });
    std::printf("%10zu %12.3f %16.4f\n", n, ms, ms * 1000.0 / n);
    report.AddRow("validity").Set("elements", n).Set("time_ms", ms);
  }
}

void RunKeysConsistency(bench::JsonReport& report) {
  bench::Header(
      "F5-C5 / Thm 3.5(2): keys-only consistency (+ witness), wide DTDs");
  std::printf("%10s %12s %16s\n", "elements", "time(ms)", "us per element");
  for (size_t n : {1000, 2000, 4000, 8000, 16000}) {
    Dtd dtd = workloads::WideDtd(n);
    ConstraintSet keys = workloads::AllKeysSigma(dtd);
    ConsistencyOptions options;
    options.verify_witness = false;  // Verification is itself linear; time
                                     // the decision + construction only.
    double ms = bench::BestTimeMs(3, [&] {
      auto result = CheckConsistency(dtd, keys, options);
      if (!result.ok() || !result->consistent) std::abort();
    });
    std::printf("%10zu %12.3f %16.4f\n", n, ms, ms * 1000.0 / n);
    report.AddRow("keys_consistency").Set("elements", n).Set("time_ms", ms);
  }
}

void RunKeysImplication(bench::JsonReport& report) {
  bench::Header(
      "F5-I5 / Thm 3.5(3): keys-only implication (subsumption + Lemma 3.6)");
  std::printf("%10s %12s %16s\n", "elements", "time(ms)", "us per element");
  for (size_t n : {2000, 4000, 8000, 16000, 32000}) {
    Dtd dtd = workloads::ChainDtd(n);
    ConstraintSet sigma;
    sigma.Add(Constraint::Key("e1", {"id"}));
    Constraint phi = Constraint::Key("e2", {"id"});
    ConsistencyOptions options;
    options.build_witness = false;
    double ms = bench::BestTimeMs(3, [&] {
      auto result = CheckImplication(dtd, sigma, phi, options);
      // Chain types occur exactly once, so the key holds vacuously.
      if (!result.ok() || !result->implied) std::abort();
    });
    std::printf("%10zu %12.3f %16.4f\n", n, ms, ms * 1000.0 / n);
    report.AddRow("keys_implication").Set("elements", n).Set("time_ms", ms);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf("bench_keys_only — the linear-time cells of Figure 5\n");
  std::printf("paper claim: decidable in linear time; expected shape: the\n");
  std::printf("per-element column stays flat as sizes double.\n");
  xicc::bench::JsonReport report("keys_only");
  xicc::RunValidity(report);
  xicc::RunKeysConsistency(report);
  xicc::RunKeysImplication(report);
  report.Write();
  return 0;
}
