#!/usr/bin/env python3
"""CI gates on batch parallel scaling and deadline degradation.

Reads BENCH_incremental.json and fails the build if either contract broke:

1. `scaling` section (one row per thread count: threads, batch_ms,
   speedup_vs_1thread_x): adding threads must not LOSE throughput — the
   4-thread batch must be at least as fast as the 1-thread batch, modulo a
   small noise tolerance. This is the regression the cache-line-padded
   deque shards and the per-thread arenas exist to prevent — a refactor
   that reintroduces a shared hot line or a global-allocator stampede
   shows up here as 4-thread speedup < 1.

2. `degraded` section (one row: a batch with a 50 ms per-item deadline
   over feasible queries plus one deliberately exploding item): the whole
   batch must terminate under 2 s wall. A deadline that doesn't actually
   bound the wall clock — a missed stop poll in the pivot loop, a worker
   that sleeps through the cancel wake — shows up here as a multi-second
   (or hung) run.

Usage: check_batch_scaling.py [BENCH_incremental.json]
"""

import json
import sys

# 5% grace for timer noise on busy CI runners; a real contention regression
# (the failure mode this gate exists for) costs far more than 5%.
TOLERANCE = 0.95
GATE_THREADS = 4

# The exploding item alone takes ~500 ms unrestrained; the 50 ms deadline
# plus one escalated retry should finish the whole batch in well under a
# second. 2 s leaves slack for loaded CI runners while still catching a
# deadline that silently stopped bounding anything.
DEGRADED_WALL_LIMIT_MS = 2000.0


def check_degraded(report, path) -> int:
    rows = [r for r in report.get("rows", []) if r.get("section") == "degraded"]
    if not rows:
        print(
            f"error: {path} has no `degraded` row — bench_incremental's "
            "deadline-degradation section didn't run",
            file=sys.stderr,
        )
        return 2
    status = 0
    for row in rows:
        wall = row["wall_ms"]
        print(
            f"  degraded batch: {row['queries']} queries, "
            f"{row['completed_ok']} ok, {row['deadline_exceeded']} deadline, "
            f"{row['retries']} retries, {wall:.1f} ms wall"
        )
        if wall >= DEGRADED_WALL_LIMIT_MS:
            print(
                f"FAIL: {row['item_timeout_ms']} ms-deadline batch took "
                f"{wall:.1f} ms wall (limit {DEGRADED_WALL_LIMIT_MS:.0f}) — "
                "the deadline is not bounding the batch; suspect a missing "
                "stop poll or a worker sleeping through cancellation.",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print(f"OK: degraded batch wall < {DEGRADED_WALL_LIMIT_MS:.0f} ms")
    return status


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_incremental.json"
    with open(path) as fh:
        report = json.load(fh)

    scaling = {
        row["threads"]: row
        for row in report.get("rows", [])
        if row.get("section") == "scaling"
    }
    if 1 not in scaling or GATE_THREADS not in scaling:
        print(
            f"error: {path} has no scaling rows for 1 and {GATE_THREADS} "
            f"threads (found: {sorted(scaling)})",
            file=sys.stderr,
        )
        return 2

    base = scaling[1]["speedup_vs_1thread_x"]  # 1.0 by construction.
    gated = scaling[GATE_THREADS]["speedup_vs_1thread_x"]
    for threads in sorted(scaling):
        row = scaling[threads]
        print(
            f"  {threads} thread(s): {row['batch_ms']:.3f} ms, "
            f"{row['speedup_vs_1thread_x']:.3f}x vs 1-thread"
        )

    if gated < base * TOLERANCE:
        print(
            f"FAIL: {GATE_THREADS}-thread batch speedup {gated:.3f}x is below "
            f"the 1-thread baseline {base:.3f}x (tolerance {TOLERANCE}) — "
            "parallelism is losing throughput; suspect deque-shard or "
            "allocator contention.",
            file=sys.stderr,
        )
        return 1

    print(f"OK: {GATE_THREADS}-thread speedup {gated:.3f}x >= "
          f"{base:.3f}x * {TOLERANCE}")
    return check_degraded(report, path)


if __name__ == "__main__":
    sys.exit(main())
