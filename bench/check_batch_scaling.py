#!/usr/bin/env python3
"""CI gates on batch parallel scaling and deadline degradation.

Reads BENCH_incremental.json and fails the build if either contract broke:

1. `scaling` section (one row per thread count over the large mixed batch,
   carrying threads, workers_effective, hardware_threads, batch_ms,
   speedup_vs_1thread_x, and the stage-timer fields): the gate is
   HARDWARE-AWARE, because the bench clamps its worker pool to the machine
   width and a 1-core runner cannot produce a speedup no matter how clean
   the hot path is.

     - hardware >= 4 cores: the 4-thread batch must reach at least
       SPEEDUP_FLOOR_4T (2.5x) over the 1-thread batch — the real scaling
       contract the chunked scheduler, session pool, and sharded memo
       exist to meet. 8-thread scaling (target 4x) is reported as an
       ADVISORY row only; small CI shapes oversubscribe too easily for it
       to gate.
     - hardware < 4 cores: the floor is unenforceable, so the gate falls
       back to the legacy no-regression check — adding threads must not
       LOSE throughput (>= TOLERANCE x the 1-thread baseline). The clamp
       is printed so the log says WHY the floor was skipped.

   Every row must carry the stage-timer fields (stage_solve_ms etc.);
   their absence means the profiling layer was disconnected, which is
   itself a failure — an unattributable future regression.

2. `degraded` section (one row: a batch with a 50 ms per-item deadline
   over feasible queries plus one deliberately exploding item): the whole
   batch must terminate under 2 s wall. A deadline that doesn't actually
   bound the wall clock — a missed stop poll in the pivot loop, a worker
   that sleeps through the cancel wake — shows up here as a multi-second
   (or hung) run.

Usage: check_batch_scaling.py [BENCH_incremental.json]
"""

import json
import sys

# 5% grace for timer noise on busy CI runners; a real contention regression
# (the failure mode this gate exists for) costs far more than 5%.
TOLERANCE = 0.95
GATE_THREADS = 4
SPEEDUP_FLOOR_4T = 2.5
ADVISORY_THREADS = 8
ADVISORY_TARGET_8T = 4.0

STAGE_FIELDS = (
    "stage_session_setup_ms",
    "stage_memo_key_ms",
    "stage_memo_lookup_ms",
    "stage_memo_store_ms",
    "stage_solve_ms",
    "stage_result_write_ms",
)

# The exploding item alone takes ~500 ms unrestrained; the 50 ms deadline
# plus one escalated retry should finish the whole batch in well under a
# second. 2 s leaves slack for loaded CI runners while still catching a
# deadline that silently stopped bounding anything.
DEGRADED_WALL_LIMIT_MS = 2000.0


def check_degraded(report, path) -> int:
    rows = [r for r in report.get("rows", []) if r.get("section") == "degraded"]
    if not rows:
        print(
            f"error: {path} has no `degraded` row — bench_incremental's "
            "deadline-degradation section didn't run",
            file=sys.stderr,
        )
        return 2
    status = 0
    for row in rows:
        wall = row["wall_ms"]
        print(
            f"  degraded batch: {row['queries']} queries, "
            f"{row['completed_ok']} ok, {row['deadline_exceeded']} deadline, "
            f"{row['retries']} retries, {wall:.1f} ms wall"
        )
        if wall >= DEGRADED_WALL_LIMIT_MS:
            print(
                f"FAIL: {row['item_timeout_ms']} ms-deadline batch took "
                f"{wall:.1f} ms wall (limit {DEGRADED_WALL_LIMIT_MS:.0f}) — "
                "the deadline is not bounding the batch; suspect a missing "
                "stop poll or a worker sleeping through cancellation.",
                file=sys.stderr,
            )
            status = 1
    if status == 0:
        print(f"OK: degraded batch wall < {DEGRADED_WALL_LIMIT_MS:.0f} ms")
    return status


def check_scaling(report, path) -> int:
    scaling = {
        row["threads"]: row
        for row in report.get("rows", [])
        if row.get("section") == "scaling"
    }
    if 1 not in scaling or GATE_THREADS not in scaling:
        print(
            f"error: {path} has no scaling rows for 1 and {GATE_THREADS} "
            f"threads (found: {sorted(scaling)})",
            file=sys.stderr,
        )
        return 2

    for threads in sorted(scaling):
        row = scaling[threads]
        print(
            f"  {threads} thread(s): {row['batch_ms']:.3f} ms best "
            f"(mean {row.get('mean_ms', float('nan')):.3f} ± "
            f"{row.get('stddev_ms', float('nan')):.3f}), "
            f"{row['speedup_vs_1thread_x']:.3f}x vs 1-thread, "
            f"workers={row.get('workers_effective', '?')}"
        )

    # The profiling layer is part of the contract: a scaling regression
    # without stage attribution is undiagnosable from CI logs alone.
    gate_row = scaling[GATE_THREADS]
    missing = [f for f in STAGE_FIELDS if f not in gate_row]
    if missing:
        print(
            f"FAIL: scaling rows are missing stage-timer fields {missing} — "
            "the per-stage profiling layer is disconnected from the bench.",
            file=sys.stderr,
        )
        return 1

    # A row the bench itself marked advisory means the pool clamped the
    # multi-thread request down to ONE worker: no parallelism ever ran, so
    # neither the speedup floor nor the no-regression fallback measures
    # anything real. Skip the speedup gate outright (the stage-field check
    # above still applies — profiling must stay connected even clamped).
    if gate_row.get("advisory", False):
        print(
            f"skip: {GATE_THREADS}-thread row is advisory "
            f"(workers_effective="
            f"{gate_row.get('workers_effective', '?')} — the pool clamped "
            "the request to one worker); no speedup gate applies."
        )
        return 0

    hardware = int(gate_row.get("hardware_threads", 0))
    base = scaling[1]["speedup_vs_1thread_x"]  # 1.0 by construction.
    gated = gate_row["speedup_vs_1thread_x"]

    if hardware >= GATE_THREADS:
        if gated < SPEEDUP_FLOOR_4T:
            print(
                f"FAIL: {GATE_THREADS}-thread batch speedup {gated:.3f}x is "
                f"below the {SPEEDUP_FLOOR_4T}x floor on a {hardware}-thread "
                "machine — the chunked scheduler / sharded memo / session "
                "pool are not delivering; check the stage_*_ms columns for "
                "where the time went.",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {GATE_THREADS}-thread speedup {gated:.3f}x >= "
            f"{SPEEDUP_FLOOR_4T}x floor (hardware: {hardware} threads)"
        )
    else:
        # Narrow runner: the pool is clamped to the hardware width and the
        # floor is unreachable by construction. Fall back to no-regression.
        print(
            f"note: hardware has {hardware} thread(s) < {GATE_THREADS} — "
            f"the {SPEEDUP_FLOOR_4T}x floor is unenforceable here "
            "(workers are clamped to hardware width); applying the "
            "no-regression check instead."
        )
        if gated < base * TOLERANCE:
            print(
                f"FAIL: {GATE_THREADS}-thread batch speedup {gated:.3f}x is "
                f"below the 1-thread baseline {base:.3f}x (tolerance "
                f"{TOLERANCE}) — parallelism is losing throughput even "
                "clamped; suspect scheduler or allocator overhead.",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: {GATE_THREADS}-thread speedup {gated:.3f}x >= "
            f"{base:.3f}x * {TOLERANCE} (no-regression fallback)"
        )

    # 8-thread advisory: reported, never gating.
    adv = scaling.get(ADVISORY_THREADS)
    if adv is not None:
        reached = adv["speedup_vs_1thread_x"]
        verdict = "meets" if reached >= ADVISORY_TARGET_8T else "below"
        print(
            f"advisory: {ADVISORY_THREADS}-thread speedup {reached:.3f}x "
            f"{verdict} the {ADVISORY_TARGET_8T}x target "
            f"(hardware: {hardware} threads; informational only)"
        )
    return 0


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_incremental.json"
    with open(path) as fh:
        report = json.load(fh)

    status = check_scaling(report, path)
    if status:
        return status
    return check_degraded(report, path)


if __name__ == "__main__":
    sys.exit(main())
