#!/usr/bin/env python3
"""CI gate on batch parallel scaling.

Reads the `scaling` section bench_incremental writes into
BENCH_incremental.json (one row per thread count: threads, batch_ms,
speedup_vs_1thread_x) and fails the build if adding threads LOSES
throughput: the 4-thread batch must be at least as fast as the 1-thread
batch, modulo a small noise tolerance. This is the regression the
cache-line-padded deque shards and the per-thread arenas exist to prevent
— a refactor that reintroduces a shared hot line or a global-allocator
stampede shows up here as 4-thread speedup < 1.

Usage: check_batch_scaling.py [BENCH_incremental.json]
"""

import json
import sys

# 5% grace for timer noise on busy CI runners; a real contention regression
# (the failure mode this gate exists for) costs far more than 5%.
TOLERANCE = 0.95
GATE_THREADS = 4


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_incremental.json"
    with open(path) as fh:
        report = json.load(fh)

    scaling = {
        row["threads"]: row
        for row in report.get("rows", [])
        if row.get("section") == "scaling"
    }
    if 1 not in scaling or GATE_THREADS not in scaling:
        print(
            f"error: {path} has no scaling rows for 1 and {GATE_THREADS} "
            f"threads (found: {sorted(scaling)})",
            file=sys.stderr,
        )
        return 2

    base = scaling[1]["speedup_vs_1thread_x"]  # 1.0 by construction.
    gated = scaling[GATE_THREADS]["speedup_vs_1thread_x"]
    for threads in sorted(scaling):
        row = scaling[threads]
        print(
            f"  {threads} thread(s): {row['batch_ms']:.3f} ms, "
            f"{row['speedup_vs_1thread_x']:.3f}x vs 1-thread"
        )

    if gated < base * TOLERANCE:
        print(
            f"FAIL: {GATE_THREADS}-thread batch speedup {gated:.3f}x is below "
            f"the 1-thread baseline {base:.3f}x (tolerance {TOLERANCE}) — "
            "parallelism is losing throughput; suspect deque-shard or "
            "allocator contention.",
            file=sys.stderr,
        )
        return 1

    print(f"OK: {GATE_THREADS}-thread speedup {gated:.3f}x >= "
          f"{base:.3f}x * {TOLERANCE}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
