// Theorem 4.1 construction costs and the design ablations of DESIGN.md:
//  - Ψ(D,Σ) construction time and size vs input size (the paper gives an
//    O(s²·log s) bound; the implementation is near-linear since the big-M
//    constant is only materialized in the big-M strategy);
//  - simplified-DTD blowup factor (Lemma 4.3's rewriting is linear);
//  - case-split vs big-M conditional discharge;
//  - Gomory cuts on vs off (parity-style infeasibilities).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/cardinality_encoding.h"
#include "core/encoding_solver.h"
#include "dtd/simplify.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

void RunConstruction(bench::JsonReport& report) {
  bench::Header("Thm 4.1: encoding construction cost vs |D| + |Σ|");
  std::printf("%10s %10s %10s %10s %12s\n", "sections", "|D|", "sys vars",
              "sys rows", "build(ms)");
  for (size_t n : {4, 8, 16, 32, 64, 128}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n).Normalize();
    size_t vars = 0;
    size_t rows = 0;
    double ms = bench::BestTimeMs(3, [&] {
      auto enc = BuildCardinalityEncoding(dtd, sigma);
      if (!enc.ok()) std::abort();
      vars = enc->system.NumVariables();
      rows = enc->system.NumConstraints();
    });
    std::printf("%10zu %10zu %10zu %10zu %12.3f\n", n, dtd.Size(), vars,
                rows, ms);
    report.AddRow("construction")
        .Set("sections", n)
        .Set("dtd_size", dtd.Size())
        .Set("system_variables", vars)
        .Set("system_rows", rows)
        .Set("build_ms", ms);
  }
}

void RunSimplification(bench::JsonReport& report) {
  bench::Header("Lemma 4.3 ablation: simplified-DTD size blowup");
  std::printf("%10s %10s %12s %10s\n", "elements", "|D|", "|D_N|", "ratio");
  for (uint64_t seed : {1, 2, 3, 4}) {
    Dtd dtd = workloads::RandomDtd(seed, 40, 2);
    auto simplified = SimplifyDtd(dtd);
    if (!simplified.ok()) std::abort();
    double ratio =
        static_cast<double>(simplified->dtd.Size()) / dtd.Size();
    std::printf("%10zu %10zu %12zu %10.2f\n", dtd.elements().size(),
                dtd.Size(), simplified->dtd.Size(), ratio);
    report.AddRow("simplification")
        .Set("seed", static_cast<size_t>(seed))
        .Set("dtd_size", dtd.Size())
        .Set("simplified_size", simplified->dtd.Size())
        .Set("ratio", ratio);
  }
}

void RunStrategies(bench::JsonReport& report) {
  bench::Header(
      "Thm 4.1 ablation: case-split (9_X DFS) vs big-M (c·y ≥ x rows)");
  std::printf("%10s %14s %12s %12s\n", "sections", "split(ms)", "bigM(ms)",
              "agree");
  for (size_t n : {2, 4, 6, 8}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n).Normalize();
    auto enc = BuildCardinalityEncoding(dtd, sigma);
    if (!enc.ok()) std::abort();

    EncodingSolveOptions split;
    bool sat_split = false;
    double split_ms = bench::TimeMs([&] {
      auto r = SolveEncodingSystem(*enc, enc->system, split);
      if (!r.ok()) std::abort();
      sat_split = r->feasible;
    });

    EncodingSolveOptions big_m;
    big_m.strategy = EncodingStrategy::kBigM;
    bool sat_big_m = false;
    double big_m_ms = bench::TimeMs([&] {
      auto r = SolveEncodingSystem(*enc, enc->system, big_m);
      if (!r.ok()) std::abort();
      sat_big_m = r->feasible;
    });
    std::printf("%10zu %14.3f %12.3f %12s\n", n, split_ms, big_m_ms,
                sat_split == sat_big_m ? "yes" : "NO!");
    report.AddRow("strategies")
        .Set("sections", n)
        .Set("split_ms", split_ms)
        .Set("big_m_ms", big_m_ms)
        .Set("agree", sat_split == sat_big_m);
  }
}

void RunCutsAblation(bench::JsonReport& report) {
  bench::Header("ILP ablation: Gomory cuts on vs off (parity system)");
  // 2x = 2y + 1 embedded among padding rows.
  auto build = [] {
    LinearSystem sys;
    VarId x = sys.AddVariable("x");
    VarId y = sys.AddVariable("y");
    LinearExpr expr;
    expr.Add(x, BigInt(2)).Add(y, BigInt(-2));
    sys.AddConstraint(expr, RelOp::kEq, BigInt(1));
    return sys;
  };
  {
    LinearSystem sys = build();
    IlpOptions with_cuts;
    size_t nodes = 0;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = SolveIlp(sys, with_cuts);
      if (!r.ok() || r->feasible) std::abort();
      nodes = r->nodes_explored;
    });
    std::printf("cuts on : %10.3f ms, %zu nodes (infeasibility certified)\n",
                ms, nodes);
    report.AddRow("cuts_ablation").Set("cuts", true).Set("time_ms", ms).Set(
        "nodes", nodes);
  }
  {
    LinearSystem sys = build();
    IlpOptions no_cuts;
    no_cuts.max_cut_rounds = 0;
    no_cuts.max_nodes = 5000;
    double ms = bench::TimeMs([&] {
      auto r = SolveIlp(sys, no_cuts);
      // Without cuts the search climbs the box bound and exhausts the node
      // budget (or eventually the bound).
      if (r.ok() && r->feasible) std::abort();
    });
    std::printf("cuts off: %10.3f ms (exhausts %d-node budget)\n", ms, 5000);
    report.AddRow("cuts_ablation").Set("cuts", false).Set("time_ms", ms);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf("bench_encoding — encoding construction and design ablations\n");
  xicc::bench::JsonReport report("encoding");
  xicc::RunConstruction(report);
  xicc::RunSimplification(report);
  xicc::RunStrategies(report);
  xicc::RunCutsAblation(report);
  report.Write();
  return 0;
}
