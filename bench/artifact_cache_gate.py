#!/usr/bin/env python3
"""CI gate on artifact warm-start: parity is absolute, speedup is floored.

Reads the `artifact_warm` rows of BENCH_incremental.json (one row per bench
DTD family, carrying artifact_bytes, cold_compile_ms, warm_load_ms,
speedup_x, source, format_version, verdicts_identical) and fails the build
if the persistence layer's contract broke:

1. PARITY (hard, every row): `verdicts_identical` must be true — a decoded
   artifact that checks a Σ differently from a fresh compile is silent
   corruption of the checker itself, and no speedup excuses it.

2. LOAD PATH (hard, every row): `source` must be "mmap" or "disk-cache".
   A "cold" source means the store/load cycle silently fell back to
   recompilation, which would make every timing below meaningless.

3. SPEEDUP FLOOR (hard): every row must load at least MIN_SPEEDUP_ALL (3x)
   faster than cold compile, and every LARGE family — artifact above
   LARGE_BYTES (16 MiB), where fixed per-load costs (open, mmap, header
   validation) are fully amortized — must reach LARGE_SPEEDUP_FLOOR (10x).
   Small DTDs legitimately sit lower: cold compile grows superlinearly in
   DTD size while artifact load grows ~linearly, so the ratio the cache
   exists for shows up at scale (catalog-64 measures 14-15x; mid-size
   families hover near 10x, too close to the line to gate without making
   CI flaky on timer noise). A large family under 10x means a per-byte
   cost crept into the warm path (checksum slowdown, a decode loop gone
   quadratic, an accidental deep verify).

Usage: artifact_cache_gate.py [BENCH_incremental.json]
"""

import json
import sys

MIN_SPEEDUP_ALL = 3.0
LARGE_SPEEDUP_FLOOR = 10.0
LARGE_BYTES = 16 * 1024 * 1024

REQUIRED_FIELDS = (
    "dtd",
    "artifact_bytes",
    "cold_compile_ms",
    "warm_load_ms",
    "speedup_x",
    "source",
    "verdicts_identical",
)


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_incremental.json"
    with open(path) as fh:
        report = json.load(fh)

    rows = [
        r for r in report.get("rows", []) if r.get("section") == "artifact_warm"
    ]
    if not rows:
        print(
            f"error: {path} has no `artifact_warm` rows — bench_incremental's "
            "warm-start section didn't run",
            file=sys.stderr,
        )
        return 2

    status = 0
    large_rows = 0
    for row in rows:
        missing = [f for f in REQUIRED_FIELDS if f not in row]
        if missing:
            print(
                f"FAIL: artifact_warm row {row.get('dtd', '?')} is missing "
                f"fields {missing} — the bench and the gate have drifted.",
                file=sys.stderr,
            )
            status = 1
            continue

        large = row["artifact_bytes"] >= LARGE_BYTES
        large_rows += large
        print(
            f"  {row['dtd']}: {row['artifact_bytes'] / 1e6:.2f} MB, "
            f"cold {row['cold_compile_ms']:.2f} ms -> warm "
            f"{row['warm_load_ms']:.2f} ms ({row['speedup_x']:.2f}x, "
            f"source={row['source']}{', large' if large else ''})"
        )

        if not row["verdicts_identical"]:
            print(
                f"FAIL: {row['dtd']} loaded artifact produced different "
                "verdicts than a fresh compile — the persistence layer is "
                "corrupting the checker; nothing else in this gate matters "
                "until parity is restored.",
                file=sys.stderr,
            )
            status = 1
        if row["source"] not in ("mmap", "disk-cache"):
            print(
                f"FAIL: {row['dtd']} warm load reported source "
                f"'{row['source']}' — the store/load cycle fell back to "
                "recompilation instead of reading the artifact.",
                file=sys.stderr,
            )
            status = 1
        if row["speedup_x"] < MIN_SPEEDUP_ALL:
            print(
                f"FAIL: {row['dtd']} warm load is only {row['speedup_x']:.2f}x "
                f"faster than cold compile (floor {MIN_SPEEDUP_ALL}x for every "
                "family) — a fixed cost bloated the load path.",
                file=sys.stderr,
            )
            status = 1
        if large and row["speedup_x"] < LARGE_SPEEDUP_FLOOR:
            print(
                f"FAIL: {row['dtd']} ({row['artifact_bytes'] / 1e6:.2f} MB) "
                f"warm load is {row['speedup_x']:.2f}x, below the "
                f"{LARGE_SPEEDUP_FLOOR}x floor for large artifacts — a "
                "per-byte cost crept into the warm path (checksum, decode "
                "loop, or an accidental deep verify).",
                file=sys.stderr,
            )
            status = 1

    if large_rows == 0:
        print(
            "FAIL: no artifact_warm row is large enough "
            f"(>= {LARGE_BYTES / 1e6:.0f} MB) to exercise the "
            f"{LARGE_SPEEDUP_FLOOR}x floor — the bench families shrank.",
            file=sys.stderr,
        )
        status = 1

    if status == 0:
        print(
            f"OK: {len(rows)} families at parity, all >= {MIN_SPEEDUP_ALL}x, "
            f"{large_rows} large families >= {LARGE_SPEEDUP_FLOOR}x"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
