// The reproduction artifact: Figure 5 of the paper, regenerated.
//
// For every cell of the results matrix this harness runs a representative
// instance through the library and reports the paper's claim next to the
// observed behaviour (method used, verdict, time). Undecidable cells are
// "run" in the only possible sense: the checker refuses with the reduction
// citation, and the executable Theorem 3.1 / Lemma 3.3 constructions are
// exercised by bench_undecidable_frontier.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

struct Row {
  std::string problem;
  std::string klass;
  std::string paper_claim;
  std::string observed;
  double ms = 0;
};

bench::JsonReport* g_report = nullptr;

void Print(const Row& row) {
  std::printf("| %-11s | %-28s | %-14s | %-36s | %8.2f |\n",
              row.problem.c_str(), row.klass.c_str(),
              row.paper_claim.c_str(), row.observed.c_str(), row.ms);
  if (g_report != nullptr) {
    g_report->AddRow(row.problem)
        .Set("constraint_class", row.klass)
        .Set("paper_claim", row.paper_claim)
        .Set("observed", row.observed)
        .Set("time_ms", row.ms);
  }
}

std::string Verdict(bool consistent) { return consistent ? "SAT" : "UNSAT"; }

}  // namespace

int Run() {
  bench::JsonReport report("figure5");
  g_report = &report;
  std::printf(
      "bench_figure5 — Figure 5 of Fan & Libkin (JACM 49(3), 2002), "
      "reproduced\n\n");
  std::printf("| %-11s | %-28s | %-14s | %-36s | %8s |\n", "problem",
              "constraint class", "paper", "observed", "ms");
  std::printf(
      "|-------------|------------------------------|----------------|"
      "--------------------------------------|----------|\n");

  // --- consistency, multi-attribute keys + foreign keys: undecidable.
  {
    Row row{"consistency", "multi-attr keys+FKs", "undecidable", "", 0};
    row.ms = bench::TimeMs([&] {
      auto r = CheckConsistency(workloads::SchoolDtd(),
                                workloads::SchoolSigma());
      if (r.ok() || r.status().code() != StatusCode::kUndecidableClass) {
        std::abort();
      }
    });
    row.observed = "refused: kUndecidableClass (Thm 3.1)";
    Print(row);
  }

  // --- consistency, unary keys + foreign keys: NP-complete.
  {
    Row row{"consistency", "unary keys+FKs", "NP-complete", "", 0};
    bool verdict = true;
    std::string method;
    row.ms = bench::TimeMs([&] {
      auto r = CheckConsistency(workloads::TeacherDtd(),
                                workloads::TeacherSigma());
      if (!r.ok()) std::abort();
      verdict = r->consistent;
      method = r->method;
    });
    row.observed = Verdict(verdict) + " via " + method + " (D1+Sigma1)";
    Print(row);
  }

  // --- consistency, primary unary keys + FKs: still NP-complete.
  {
    Row row{"consistency", "primary unary keys+FKs", "NP-complete", "", 0};
    workloads::BinaryLipInstance lip = workloads::RandomLip(7, 4, 6, 3);
    auto enc = workloads::EncodeLipAsConsistency(lip);
    if (!enc.sigma.SatisfiesPrimaryKeyRestriction()) std::abort();
    bool verdict = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckConsistency(enc.dtd, enc.sigma);
      if (!r.ok()) std::abort();
      verdict = r->consistent;
    });
    bool oracle = workloads::LipHasBinarySolution(lip);
    row.observed = Verdict(verdict) + " (LIP gadget; oracle " +
                   Verdict(oracle) + ")";
    if (verdict != oracle) row.observed += " MISMATCH";
    Print(row);
  }

  // --- consistency, fixed DTD: PTIME.
  {
    Row row{"consistency", "DTD fixed, unary", "PTIME", "", 0};
    Dtd dtd = workloads::CatalogDtd(6);
    ConstraintSet sigma = workloads::RandomUnarySigma(dtd, 3, 20, 20);
    ConsistencyOptions options;
    options.build_witness = false;
    bool verdict = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      verdict = r->consistent;
    });
    row.observed = Verdict(verdict) + " with 40 constraints";
    Print(row);
  }

  // --- consistency, keys only: linear.
  {
    Row row{"consistency", "multi-attr keys only", "linear time", "", 0};
    Dtd dtd = workloads::WideDtd(20000);
    ConstraintSet keys = workloads::AllKeysSigma(dtd);
    ConsistencyOptions options;
    options.build_witness = false;
    bool verdict = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, keys, options);
      if (!r.ok()) std::abort();
      verdict = r->consistent;
    });
    row.observed = Verdict(verdict) + " over 20k element types";
    Print(row);
  }

  // --- implication, multi-attribute: undecidable.
  {
    Row row{"implication", "multi-attr keys+FKs", "undecidable", "", 0};
    ConstraintSet sigma;
    sigma.Add(Constraint::Inclusion("enroll", {"student_id"}, "student",
                                    {"student_id"}));
    row.ms = bench::TimeMs([&] {
      auto r = CheckImplication(
          workloads::SchoolDtd(), sigma,
          Constraint::Inclusion("enroll", {"dept", "course_no"}, "course",
                                {"dept", "course_no"}));
      if (r.ok() || r.status().code() != StatusCode::kUndecidableClass) {
        std::abort();
      }
    });
    row.observed = "refused: kUndecidableClass (Cor 3.4)";
    Print(row);
  }

  // --- implication, unary: coNP-complete.
  {
    Row row{"implication", "unary keys+FKs", "coNP-complete", "", 0};
    Dtd dtd = workloads::TeacherDtd();
    ConstraintSet sigma;
    sigma.Add(Constraint::ForeignKey("subject", {"taught_by"}, "teacher",
                                     {"name"}));
    bool implied = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckImplication(dtd, sigma,
                                Constraint::Key("teacher", {"name"}));
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    row.observed = std::string(implied ? "implied" : "not implied") +
                   " via refutation (Cor 4.9 system)";
    Print(row);
  }

  // --- implication, primary unary: coNP-complete.
  {
    Row row{"implication", "primary unary keys+FKs", "coNP-complete", "", 0};
    Dtd dtd = workloads::TeacherDtd();
    ConstraintSet sigma = workloads::TeacherSigma();
    if (!sigma.SatisfiesPrimaryKeyRestriction()) std::abort();
    bool implied = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckImplication(dtd, sigma,
                                Constraint::Key("subject", {"taught_by"}));
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    row.observed = std::string(implied ? "implied" : "not implied") +
                   " (vacuous: Sigma1 inconsistent)";
    Print(row);
  }

  // --- implication, fixed DTD: PTIME.
  {
    Row row{"implication", "DTD fixed, unary", "PTIME", "", 0};
    Dtd dtd = workloads::CatalogDtd(4);
    ConstraintSet sigma;
    sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
    sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
    bool implied = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckImplication(
          dtd, sigma, Constraint::Inclusion("item1", {"id"}, "item3",
                                            {"id"}));
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    row.observed = std::string(implied ? "implied" : "not implied") +
                   " (IC transitivity, Section 5)";
    Print(row);
  }

  // --- implication, keys only: linear.
  {
    Row row{"implication", "multi-attr keys only", "linear time", "", 0};
    Dtd dtd = workloads::ChainDtd(20000);
    ConstraintSet sigma;
    sigma.Add(Constraint::Key("e1", {"id"}));
    ConsistencyOptions options;
    options.build_witness = false;
    bool implied = false;
    row.ms = bench::TimeMs([&] {
      auto r = CheckImplication(dtd, sigma,
                                Constraint::Key("e2", {"id"}), options);
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    row.observed = std::string(implied ? "implied" : "not implied") +
                   " over 20k-deep chain (Lemma 3.7)";
    Print(row);
  }

  std::printf(
      "\nAll verdicts above are produced by the decision procedures the\n"
      "paper's upper-bound proofs describe; undecidable cells are refused\n"
      "with the matching lower-bound citation.\n");
  report.Write();
  g_report = nullptr;
  return 0;
}

}  // namespace xicc

int main() { return xicc::Run(); }
