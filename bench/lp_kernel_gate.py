#!/usr/bin/env python3
"""CI gate on the sparse LP kernel (DESIGN.md §12).

Reads BENCH_ilp.json and fails the build if the kernel's contract broke:

1. Every `lp` row must carry the kernel instrumentation — `pivots`,
   `nnz_density`, `time_ms`, `dense_time_ms`, `speedup_vs_dense_x`,
   `fill_in`, and the pricing split (`dantzig_pivots`, `bland_pivots`,
   `bland_fallbacks`). Missing fields mean the instrumentation layer was
   disconnected from the bench, which makes any future kernel regression
   unattributable from CI logs alone.

2. Every row that carries `verdicts_identical` must have it true — the
   sparse kernel and the dense-Bland reference (and the warm-ablation runs
   in the `consistency` section) must agree on every verdict. A kernel
   that got faster by answering differently is a correctness bug, not a
   win.

3. The GATE_ROW (`lp:catalog-14`, the largest cold-LP case) must show the
   sparse kernel no slower than the dense reference:
   time_ms <= dense_time_ms * (1 + GRACE). The sparse kernel exists to be
   faster; this floor only catches it becoming *slower*, with 5% grace for
   timer noise on busy runners. The full ≥2x speedup claim lives in the
   committed BENCH_ilp.json and the README table, not in a hard CI gate —
   shared runners are too noisy to enforce a multiple.

Usage: lp_kernel_gate.py [BENCH_ilp.json]
"""

import json
import sys

GATE_ROW = "catalog-14"
GRACE = 0.05

LP_FIELDS = (
    "pivots",
    "dantzig_pivots",
    "bland_pivots",
    "bland_fallbacks",
    "nnz_density",
    "fill_in",
    "time_ms",
    "dense_time_ms",
    "speedup_vs_dense_x",
)


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_ilp.json"
    with open(path) as fh:
        report = json.load(fh)
    rows = report.get("rows", [])
    lp_rows = {r["dtd"]: r for r in rows if r.get("section") == "lp"}
    if not lp_rows:
        print(
            f"error: {path} has no `lp` rows — bench_ilp's cold-LP section "
            "didn't run",
            file=sys.stderr,
        )
        return 2

    status = 0
    for name in sorted(lp_rows):
        row = lp_rows[name]
        missing = [f for f in LP_FIELDS if f not in row]
        if missing:
            print(
                f"FAIL: lp:{name} is missing kernel fields {missing} — the "
                "sparse-kernel instrumentation is disconnected from the "
                "bench.",
                file=sys.stderr,
            )
            status = 1
            continue
        print(
            f"  lp:{name}: sparse {row['time_ms']:.3f} ms vs dense "
            f"{row['dense_time_ms']:.3f} ms "
            f"({row['speedup_vs_dense_x']:.2f}x), {row['pivots']} pivots "
            f"({row['dantzig_pivots']} dantzig / {row['bland_pivots']} "
            f"bland, {row['bland_fallbacks']} fallbacks), density "
            f"{row['nnz_density']:.4f}, fill-in {row['fill_in']}"
        )

    for row in rows:
        if row.get("verdicts_identical") is False:
            section = row.get("section", "?")
            name = row.get("dtd", "?")
            print(
                f"FAIL: {section}:{name} has verdicts_identical=false — the "
                "sparse kernel answered differently from its reference; "
                "that is a correctness bug, not a performance result.",
                file=sys.stderr,
            )
            status = 1

    gate = lp_rows.get(GATE_ROW)
    if gate is None:
        print(
            f"error: {path} has no lp:{GATE_ROW} row (found: "
            f"{sorted(lp_rows)})",
            file=sys.stderr,
        )
        return 2
    if status:
        return status

    sparse = gate["time_ms"]
    dense = gate["dense_time_ms"]
    limit = dense * (1.0 + GRACE)
    if sparse > limit:
        print(
            f"FAIL: lp:{GATE_ROW} sparse kernel took {sparse:.3f} ms vs "
            f"{dense:.3f} ms dense (limit {limit:.3f} with {GRACE:.0%} "
            "grace) — the sparse kernel is SLOWER than the dense reference "
            "it replaced; check nnz_density (a dense system defeats support "
            "tracking) and fill_in (pivoting may have densified the "
            "tableau).",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: lp:{GATE_ROW} sparse {sparse:.3f} ms <= dense {dense:.3f} ms "
        f"* {1.0 + GRACE} ({gate['speedup_vs_dense_x']:.2f}x speedup); all "
        "verdicts identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
