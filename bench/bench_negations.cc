// Figure 5 / Section 5 (Theorem 5.1): unary keys, inclusions, and their
// negations. The region system is exponential in the size of each
// negated-inclusion component (the z_θ variables of Lemma 5.3), which this
// bench makes visible, while negated keys alone stay in the Corollary 4.9
// system.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

void RunNegKeys(bench::JsonReport& report) {
  bench::Header("Cor 4.9: negated keys (duplicate-forcing specs)");
  std::printf("%10s %12s %12s %10s\n", "sections", "neg keys", "time(ms)",
              "verdict");
  for (size_t n : {2, 4, 8, 16}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma;
    for (size_t i = 1; i <= n; ++i) {
      sigma.Add(Constraint::NegKey("item" + std::to_string(i), {"id"}));
    }
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12zu %12.3f %10s\n", n, sigma.size(), ms,
                result.consistent ? "SAT" : "UNSAT");
    report.AddRow("neg_keys")
        .Set("sections", n)
        .Set("neg_keys", sigma.size())
        .Set("lp_pivots", result.stats.lp_pivots)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

void RunRegionComponents(bench::JsonReport& report) {
  bench::Header(
      "Thm 5.1: negated inclusions — region component size k drives 2^k");
  std::printf("%4s %10s %12s %12s %10s\n", "k", "z vars", "sys vars",
              "time(ms)", "verdict");
  for (size_t k : {2, 3, 4, 5, 6, 8, 10}) {
    Dtd dtd = workloads::CatalogDtd(k);
    // One connected component over k pairs: a chain of inclusions with a
    // closing negated inclusion (consistent: the chain may grow strictly).
    ConstraintSet sigma;
    for (size_t i = 1; i < k; ++i) {
      sigma.Add(Constraint::Inclusion("item" + std::to_string(i), {"id"},
                                      "item" + std::to_string(i + 1),
                                      {"id"}));
    }
    sigma.Add(Constraint::NegInclusion("item" + std::to_string(k), {"id"},
                                       "item1", {"id"}));
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    size_t z_vars = (size_t{1} << k) - 1;
    std::printf("%4zu %10zu %12zu %12.3f %10s\n", k, z_vars,
                result.stats.system_variables, ms,
                result.consistent ? "SAT" : "UNSAT");
    report.AddRow("region_components")
        .Set("k", k)
        .Set("z_vars", z_vars)
        .Set("system_variables", result.stats.system_variables)
        .Set("lp_pivots", result.stats.lp_pivots)
        .Set("warm_starts", result.stats.warm_starts)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

void RunContradictions(bench::JsonReport& report) {
  bench::Header("contradiction detection across the negation ladder");
  struct Case {
    const char* label;
    bool expect;
  };
  Dtd dtd = workloads::CatalogDtd(3);
  auto check = [&](const char* label, const ConstraintSet& sigma,
                   bool expect) {
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok() || r->consistent != expect) std::abort();
      result = std::move(*r);
    });
    std::printf("%-44s %10.3f %8s\n", label, ms,
                result.consistent ? "SAT" : "UNSAT");
    report.AddRow("contradictions")
        .Set("case", label)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  };

  std::printf("%-44s %10s %8s\n", "case", "time(ms)", "verdict");
  {
    ConstraintSet sigma;
    sigma.Add(Constraint::Key("item1", {"id"}));
    sigma.Add(Constraint::NegKey("item1", {"id"}));
    check("key + its negation", sigma, false);
  }
  {
    ConstraintSet sigma;
    sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
    sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
    check("inclusion + its negation", sigma, false);
  }
  {
    ConstraintSet sigma;
    sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
    sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
    sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item3", {"id"}));
    check("transitivity vs negated closure", sigma, false);
  }
  {
    ConstraintSet sigma;
    sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
    sigma.Add(Constraint::NegInclusion("item2", {"id"}, "item1", {"id"}));
    check("strict containment (consistent)", sigma, true);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_negations — Section 5: C^unary_{K-,IC-}\n"
      "paper claim: consistency stays NP-complete with negated keys and\n"
      "negated inclusions; the z-variable system is exponential in the\n"
      "component size (Lemma 5.3), visible below as k grows.\n");
  xicc::bench::JsonReport report("negations");
  xicc::RunNegKeys(report);
  xicc::RunRegionComponents(report);
  xicc::RunContradictions(report);
  report.Write();
  return 0;
}
