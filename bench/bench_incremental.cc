// Compiled-DTD session ablation (Corollary 4.11's fixed-DTD regime): the
// same authoring/batch workloads answered (a) by a SpecSession that compiles
// the DTD once and re-checks each Σ as a trail delta over the shared
// skeleton, and (b) by the fresh pipeline that rebuilds Ψ(D,Σ) from scratch
// per query. Verdict sequences are asserted identical — the ablation only
// counts if both sides answer the same thing — and the speedup column is the
// headline number for EXPERIMENTS.md.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/artifact.h"
#include "core/artifact_cache.h"
#include "core/batch.h"
#include "core/consistency.h"
#include "core/incremental.h"
#include "core/spec_session.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

using Outcome = IncrementalChecker::Outcome;

/// 50-constraint authoring stream over `dtd`: TryAdd each constraint through
/// one checker in the given mode; returns the outcome sequence.
std::vector<Outcome> RunAuthoring(const Dtd& dtd,
                                  const std::vector<Constraint>& stream,
                                  IncrementalChecker::Mode mode) {
  ConsistencyOptions options;
  options.build_witness = false;
  IncrementalChecker checker(&dtd, options, /*check_redundancy=*/false, mode);
  std::vector<Outcome> outcomes;
  outcomes.reserve(stream.size());
  for (const Constraint& c : stream) {
    auto result = checker.TryAdd(c);
    if (!result.ok()) std::abort();
    outcomes.push_back(result->outcome);
  }
  return outcomes;
}

void RunAuthoringAblation(bench::JsonReport& report) {
  bench::Header("authoring session: compile-once Σ-delta vs fresh rebuilds");
  std::printf("%16s %12s %12s %12s %10s\n", "dtd", "additions",
              "session(ms)", "fresh(ms)", "speedup");
  struct Family {
    const char* name;
    Dtd dtd;
    uint64_t seed;
  };
  std::vector<Family> families;
  families.push_back({"catalog-6", workloads::CatalogDtd(6), 17});
  families.push_back({"catalog-10", workloads::CatalogDtd(10), 29});
  families.push_back({"auction-4", workloads::AuctionDtd(4), 41});
  for (Family& family : families) {
    // 50 additions: 25 keys + 25 foreign keys over random attribute pairs.
    std::vector<Constraint> stream =
        workloads::RandomUnarySigma(family.dtd, family.seed, 25, 25)
            .constraints();

    std::vector<Outcome> session_outcomes;
    std::vector<Outcome> fresh_outcomes;
    // Session timing includes CompileDtd (it happens inside the first
    // TryAdd) — the compile is the cost being amortized, not excluded.
    double session_ms = bench::BestTimeMs(3, [&] {
      session_outcomes =
          RunAuthoring(family.dtd, stream, IncrementalChecker::Mode::kSession);
    });
    double fresh_ms = bench::BestTimeMs(3, [&] {
      fresh_outcomes =
          RunAuthoring(family.dtd, stream, IncrementalChecker::Mode::kFresh);
    });
    if (session_outcomes != fresh_outcomes) std::abort();
    double speedup = session_ms > 0 ? fresh_ms / session_ms : 0.0;
    std::printf("%16s %12zu %12.3f %12.3f %9.2fx\n", family.name,
                stream.size(), session_ms, fresh_ms, speedup);
    report.AddRow("authoring")
        .Set("dtd", family.name)
        .Set("additions", stream.size())
        .Set("session_ms", session_ms)
        .Set("fresh_ms", fresh_ms)
        .Set("speedup_x", speedup)
        .Set("verdicts_identical", true);
  }
}

void RunBatchAblation(bench::JsonReport& report) {
  bench::Header("batch front-end: shared CompiledDtd, 1..8 threads");
  Dtd dtd = workloads::CatalogDtd(8);
  std::vector<ConstraintSet> queries;
  for (uint64_t seed = 1; seed <= 64; ++seed) {
    queries.push_back(workloads::RandomUnarySigma(dtd, seed, 4, 4));
  }

  ConsistencyOptions check;
  check.build_witness = false;

  // Sequential fresh loop: the no-artifact baseline.
  std::vector<char> fresh_verdicts(queries.size());
  double fresh_ms = bench::BestTimeMs(3, [&] {
    for (size_t i = 0; i < queries.size(); ++i) {
      auto r = CheckConsistency(dtd, queries[i], check);
      if (!r.ok()) std::abort();
      fresh_verdicts[i] = r->consistent ? 1 : 0;
    }
  });

  auto compiled = CompileDtd(dtd);
  if (!compiled.ok()) std::abort();

  std::printf("%10s %12s %12s %12s %10s %10s %10s\n", "threads", "queries",
              "time(ms)", "fresh(ms)", "speedup", "promo", "arena(B)");
  for (size_t threads : {1, 2, 4, 8}) {
    BatchOptions options;
    options.num_threads = threads;
    options.check = check;
    std::vector<BatchItemResult> results;
    double batch_ms = bench::BestTimeMs(3, [&] {
      results = CheckBatch(*compiled, queries, options);
    });
    uint64_t small_ops = 0, promotions = 0, arena_bytes = 0;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (!results[i].status.ok()) std::abort();
      // Bit-identical verdicts at every thread count, per the contract.
      if ((results[i].result.consistent ? 1 : 0) != fresh_verdicts[i]) {
        std::abort();
      }
      small_ops += results[i].result.stats.num_small_ops;
      promotions += results[i].result.stats.num_promotions;
      arena_bytes += results[i].result.stats.arena_bytes;
    }
    double speedup = batch_ms > 0 ? fresh_ms / batch_ms : 0.0;
    const double promo_rate =  // xicc-lint: allow(exact-arithmetic)
        small_ops > 0 ? static_cast<double>(promotions) / small_ops : 0.0;
    std::printf("%10zu %12zu %12.3f %12.3f %9.2fx %10.2e %10zu\n", threads,
                queries.size(), batch_ms, fresh_ms, speedup, promo_rate,
                static_cast<size_t>(arena_bytes));
    report.AddRow("batch")
        .Set("threads", threads)
        .Set("queries", queries.size())
        .Set("batch_ms", batch_ms)
        .Set("fresh_ms", fresh_ms)
        .Set("speedup_x", speedup)
        .Set("promotion_rate", promo_rate)
        .Set("arena_bytes", arena_bytes)
        .Set("verdicts_identical", true);
  }
}

/// The scaling section CI gates on: a LARGE batch (hundreds of mixed-size
/// Σ-deltas, a realistic memo hit mix) so per-batch fixed costs cannot
/// dominate, timed min-of-N with the spread reported. Every row carries
/// workers_effective and hardware_threads — on a narrow runner the pool is
/// clamped to the hardware width and the flat curve is attributable to the
/// clamp, so the JSON cannot claim a speedup the machine cannot produce (and
/// the gate script can refuse to demand one).
void RunLargeBatchScaling(bench::JsonReport& report) {
  bench::Header("scaling: 384-query mixed batch, min-of-5, 1..8 threads");
  Dtd dtd = workloads::CatalogDtd(8);
  std::vector<ConstraintSet> queries = workloads::SigmaDeltaBatch(
      dtd, /*seed=*/7, /*count=*/384, /*min_constraints=*/1,
      /*max_constraints=*/6, /*dup_percent=*/30);
  auto compiled = CompileDtd(dtd);
  if (!compiled.ok()) std::abort();

  constexpr int kReps = 5;
  std::printf("%8s %8s %8s %10s %10s %10s %9s %8s %8s\n", "threads",
              "workers", "queries", "best(ms)", "mean(ms)", "stddev", "speedup",
              "chunks", "hits");
  double one_thread_best = 0.0;
  std::vector<char> baseline_verdicts;
  for (size_t threads : {1, 2, 4, 8}) {
    BatchOptions options;
    options.num_threads = threads;
    options.check.build_witness = false;

    BatchRunStats run;
    std::vector<BatchItemResult> results;
    std::vector<double> rep_ms;
    rep_ms.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      rep_ms.push_back(bench::TimeMs([&] {
        results = CheckBatch(*compiled, queries, options, nullptr, &run);
      }));
    }
    double best = rep_ms[0], sum = 0.0;
    for (double t : rep_ms) {
      if (t < best) best = t;
      sum += t;
    }
    const double mean = sum / kReps;
    double var = 0.0;
    for (double t : rep_ms) var += (t - mean) * (t - mean);
    var /= kReps;
    const double stddev = var > 0 ? std::sqrt(var) : 0.0;

    std::vector<char> verdicts(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].status.ok()) std::abort();
      verdicts[i] = results[i].result.consistent ? 1 : 0;
    }
    if (threads == 1) {
      one_thread_best = best;
      baseline_verdicts = verdicts;
    } else if (verdicts != baseline_verdicts) {
      std::abort();  // Verdicts are thread-count-independent by contract.
    }
    const double speedup = best > 0 ? one_thread_best / best : 0.0;
    std::printf("%8zu %8zu %8zu %10.3f %10.3f %10.3f %8.2fx %8zu %8zu\n",
                threads, run.workers, queries.size(), best, mean, stddev,
                speedup, run.chunks, run.memo_hits);
    report.AddRow("scaling")
        .Set("threads", threads)
        .Set("workers_effective", run.workers)
        .Set("hardware_threads", run.hardware_threads)
        // A multi-thread request that the pool clamped to one worker cannot
        // scale by construction; the row says so explicitly instead of
        // leaving the gate script to infer it from hardware_threads.
        .Set("advisory", threads > 1 && run.workers <= 1)
        .Set("queries", queries.size())
        .Set("reps", static_cast<size_t>(kReps))
        .Set("batch_ms", best)
        .Set("mean_ms", mean)
        .Set("stddev_ms", stddev)
        .Set("speedup_vs_1thread_x", speedup)
        .Set("chunks", run.chunks)
        .Set("chunk_size", run.chunk_size)
        .Set("sessions_created", run.sessions_created)
        .Set("session_reuses", run.session_reuses)
        .Set("memo_hits", run.memo_hits)
        .Set("memo_misses", run.memo_misses)
        .Set("memo_evictions", run.memo_evictions)
        .Set("stage_session_setup_ms", run.stages.MsFor(Stage::kSessionSetup))
        .Set("stage_memo_key_ms", run.stages.MsFor(Stage::kMemoKey))
        .Set("stage_memo_lookup_ms", run.stages.MsFor(Stage::kMemoLookup))
        .Set("stage_memo_store_ms", run.stages.MsFor(Stage::kMemoStore))
        .Set("stage_solve_ms", run.stages.MsFor(Stage::kSolve))
        .Set("stage_result_write_ms", run.stages.MsFor(Stage::kResultWrite))
        .Set("verdicts_identical", true);
  }
}

/// Multiple CompiledDtds in flight within one CheckBatchMulti call: three
/// DTD families round-robin-interleaved, chunks regrouped per DTD, one
/// shared memo per DTD. Verdict parity across thread counts is asserted the
/// same way as the homogeneous section.
void RunMultiDtdBatch(bench::JsonReport& report) {
  bench::Header("multi-dtd batch: 3 compiled DTDs in one CheckBatchMulti");
  workloads::MultiDtdBatchWorkload workload =
      workloads::MultiDtdBatch(/*seed=*/11, /*dtd_count=*/3,
                               /*queries_per_dtd=*/48);
  std::vector<std::shared_ptr<const CompiledDtd>> compiled;
  for (const Dtd& dtd : workload.dtds) {
    auto artifact = CompileDtd(dtd);
    if (!artifact.ok()) std::abort();
    compiled.push_back(std::move(*artifact));
  }
  std::vector<BatchQuery> queries;
  queries.reserve(workload.queries.size());
  for (const auto& [dtd_index, sigma] : workload.queries) {
    queries.push_back(BatchQuery{dtd_index, sigma});
  }

  std::printf("%8s %8s %8s %10s %9s %8s %8s\n", "threads", "dtds", "queries",
              "best(ms)", "speedup", "chunks", "hits");
  double one_thread_best = 0.0;
  std::vector<char> baseline_verdicts;
  for (size_t threads : {1, 2, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    options.check.build_witness = false;
    BatchRunStats run;
    std::vector<BatchItemResult> results;
    double best = bench::BestTimeMs(3, [&] {
      results = CheckBatchMulti(compiled, queries, options, nullptr, &run);
    });
    std::vector<char> verdicts(results.size());
    for (size_t i = 0; i < results.size(); ++i) {
      if (!results[i].status.ok()) std::abort();
      verdicts[i] = results[i].result.consistent ? 1 : 0;
    }
    if (threads == 1) {
      one_thread_best = best;
      baseline_verdicts = verdicts;
    } else if (verdicts != baseline_verdicts) {
      std::abort();
    }
    const double speedup = best > 0 ? one_thread_best / best : 0.0;
    std::printf("%8zu %8zu %8zu %10.3f %8.2fx %8zu %8zu\n", threads,
                compiled.size(), queries.size(), best, speedup, run.chunks,
                run.memo_hits);
    report.AddRow("multi_dtd")
        .Set("threads", threads)
        .Set("workers_effective", run.workers)
        .Set("hardware_threads", run.hardware_threads)
        .Set("dtds", compiled.size())
        .Set("queries", queries.size())
        .Set("batch_ms", best)
        .Set("speedup_vs_1thread_x", speedup)
        .Set("chunks", run.chunks)
        .Set("memo_hits", run.memo_hits)
        .Set("memo_misses", run.memo_misses)
        .Set("verdicts_identical", true);
  }
}

void RunDeadlineDegradation(bench::JsonReport& report) {
  bench::Header("degraded batch: 50 ms per-item deadline over a spiked mix");
  // The mix: feasible Σ's plus one deliberately exploding multi-split LIP
  // encoding (hundreds of ms unrestrained). Under a 50 ms per-item deadline
  // the batch must quarantine the spike and finish everything else — CI's
  // bench-smoke gates on the wall clock staying under 2 s.
  workloads::LipEncoding spike = workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/3, /*rows=*/12, /*cols=*/24,
                           /*ones_per_row=*/3));
  auto compiled = CompileDtd(spike.dtd);
  if (!compiled.ok()) std::abort();

  std::vector<ConstraintSet> queries;
  for (int i = 0; i < 7; ++i) {
    queries.push_back(i % 2 == 0 ? ConstraintSet{}
                                 : workloads::AllKeysSigma(spike.dtd));
  }
  queries.push_back(spike.sigma);  // The spike rides last.

  BatchOptions options;
  options.num_threads = 2;
  options.check.build_witness = false;
  options.item_timeout_ms = 50;
  options.deadline_retry_factor = 4;

  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results;
  // One timed run, not best-of-N: the deadline makes the wall clock the
  // contract, and re-running would just re-pay the spike's full budget.
  double wall_ms = bench::TimeMs(
      [&] { results = CheckBatch(*compiled, queries, options, &degraded); });

  size_t ok = 0;
  for (const BatchItemResult& item : results) {
    if (item.status.ok()) ++ok;
  }
  // The spike must actually have been quarantined on deadline; a silent
  // pass means the workload stopped exploding and the bench is vacuous.
  if (degraded.deadline_exceeded == 0) std::abort();
  if (ok != queries.size() - 1) std::abort();

  std::printf("%10s %12s %12s %12s %10s\n", "queries", "ok", "deadline",
              "retries", "wall(ms)");
  std::printf("%10zu %12zu %12zu %12zu %10.3f\n", queries.size(), ok,
              static_cast<size_t>(degraded.deadline_exceeded),
              static_cast<size_t>(degraded.retries), wall_ms);
  report.AddRow("degraded")
      .Set("queries", queries.size())
      .Set("completed_ok", ok)
      .Set("item_timeout_ms", static_cast<size_t>(options.item_timeout_ms))
      .Set("deadline_exceeded", static_cast<size_t>(degraded.deadline_exceeded))
      .Set("cancelled", static_cast<size_t>(degraded.cancelled))
      .Set("resource_exhausted",
           static_cast<size_t>(degraded.resource_exhausted))
      .Set("retries", static_cast<size_t>(degraded.retries))
      .Set("retry_rescues", static_cast<size_t>(degraded.retry_rescues))
      .Set("quarantined", static_cast<size_t>(degraded.quarantined))
      .Set("wall_ms", wall_ms);
}

/// Cold-vs-artifact-warm startup: CompileDtd from scratch vs loading the
/// persisted artifact (core/artifact.h) for the same DTD. The loaded bundle
/// must answer a representative Σ with the same verdict as a fresh check
/// (parity is asserted, not sampled), and the speedup column is what the CI
/// artifact-cache gate (bench/artifact_cache_gate.py) enforces a floor on.
void RunArtifactWarmStart(bench::JsonReport& report) {
  bench::Header("artifact warm start: cold CompileDtd vs persisted artifact");
  char dir_template[] = "/tmp/xicc-bench-artifacts.XXXXXX";
  const char* dir = ::mkdtemp(dir_template);
  if (dir == nullptr) std::abort();

  std::printf("%12s %10s %12s %12s %10s %8s\n", "dtd", "bytes", "cold(ms)",
              "warm(ms)", "speedup", "source");
  struct Family {
    const char* name;
    Dtd dtd;
    uint64_t seed;
  };
  std::vector<Family> families;
  families.push_back({"catalog-8", workloads::CatalogDtd(8), 23});
  families.push_back({"catalog-16", workloads::CatalogDtd(16), 31});
  families.push_back({"catalog-32", workloads::CatalogDtd(32), 37});
  families.push_back({"catalog-64", workloads::CatalogDtd(64), 43});
  families.push_back({"auction-4", workloads::AuctionDtd(4), 47});
  families.push_back({"auction-32", workloads::AuctionDtd(32), 53});
  for (Family& family : families) {
    double cold_ms = bench::BestTimeMs(3, [&] {
      auto compiled = CompileDtd(family.dtd);
      if (!compiled.ok()) std::abort();
    });

    const std::string path =
        std::string(dir) + "/" + ArtifactFileName(family.dtd);
    {
      auto compiled = CompileDtd(family.dtd);
      if (!compiled.ok()) std::abort();
      if (!StoreCompiledDtd(**compiled, path).ok()) std::abort();
    }

    ArtifactLoadInfo info;
    std::shared_ptr<const CompiledDtd> loaded;
    double warm_ms = bench::BestTimeMs(5, [&] {
      auto r = LoadCompiledDtd(path, &info);
      if (!r.ok()) std::abort();
      loaded = std::move(*r);
    });

    // Parity: the loaded bundle must answer like a fresh pipeline.
    ConstraintSet sigma =
        workloads::RandomUnarySigma(family.dtd, family.seed, 4, 4);
    ConsistencyOptions check;
    check.build_witness = false;
    auto fresh = CheckConsistency(family.dtd, sigma, check);
    if (!fresh.ok()) std::abort();
    SpecSession session(loaded, check);
    auto warm = session.Check(sigma);
    if (!warm.ok()) std::abort();
    if (warm->consistent != fresh->consistent) std::abort();

    double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
    const char* source = info.mmap ? "mmap" : "disk-cache";
    std::printf("%12s %10zu %12.3f %12.3f %9.2fx %8s\n", family.name,
                info.bytes, cold_ms, warm_ms, speedup, source);
    report.AddRow("artifact_warm")
        .Set("dtd", family.name)
        .Set("artifact_bytes", info.bytes)
        .Set("cold_compile_ms", cold_ms)
        .Set("warm_load_ms", warm_ms)
        .Set("speedup_x", speedup)
        .Set("source", source)
        .Set("format_version", static_cast<size_t>(kArtifactFormatVersion))
        .Set("verdicts_identical", true);
    std::remove(path.c_str());
  }
  ::rmdir(dir);
}

void RunMemoAblation(bench::JsonReport& report) {
  bench::Header("memo: repeated Σ within a session, capacity 0 vs 128");
  Dtd dtd = workloads::CatalogDtd(6);
  auto compiled = CompileDtd(dtd);
  if (!compiled.ok()) std::abort();
  // 8 distinct queries, each asked 8 times.
  std::vector<ConstraintSet> distinct;
  for (uint64_t seed = 51; seed <= 58; ++seed) {
    distinct.push_back(workloads::RandomUnarySigma(dtd, seed, 3, 3));
  }
  ConsistencyOptions check;
  check.build_witness = false;
  std::printf("%10s %12s %12s %12s\n", "memo", "checks", "time(ms)", "hits");
  for (size_t capacity : {0, 128}) {
    size_t hits = 0;
    double ms = bench::BestTimeMs(3, [&] {
      SpecSession session(*compiled, check, capacity);
      for (int round = 0; round < 8; ++round) {
        for (const ConstraintSet& sigma : distinct) {
          auto r = session.Check(sigma);
          if (!r.ok()) std::abort();
        }
      }
      hits = session.stats().memo_hits;
    });
    std::printf("%10zu %12zu %12.3f %12zu\n", capacity, distinct.size() * 8,
                ms, hits);
    report.AddRow("memo")
        .Set("capacity", capacity)
        .Set("checks", distinct.size() * 8)
        .Set("time_ms", ms)
        .Set("memo_hits", hits);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_incremental — compiled-DTD sessions vs per-query rebuilds\n"
      "claim: compiling the DTD artifacts once and answering each Σ as a\n"
      "trail delta turns the Cor 4.11 authoring loop from n rebuilds into\n"
      "one build plus n deltas.\n");
  xicc::bench::JsonReport report("incremental");
  xicc::RunAuthoringAblation(report);
  xicc::RunArtifactWarmStart(report);
  xicc::RunBatchAblation(report);
  xicc::RunLargeBatchScaling(report);
  xicc::RunMultiDtdBatch(report);
  xicc::RunDeadlineDegradation(report);
  xicc::RunMemoAblation(report);
  report.Write();
  return 0;
}
