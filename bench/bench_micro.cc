// google-benchmark microbenchmarks for the substrates: exact arithmetic,
// content-model matching, grammar analyses, parsing, simplex pivoting.

#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/rational.h"
#include "constraints/evaluator.h"
#include "core/streaming_validator.h"
#include "dtd/analysis.h"
#include "dtd/glushkov.h"
#include "dtd/simplify.h"
#include "dtd/validator.h"
#include "ilp/simplex.h"
#include "workloads/generators.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xicc {
namespace {

void BM_BigIntMultiply(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  std::mt19937_64 rng(42);
  BigInt a(1), b(1);
  for (int i = 0; i < limbs; ++i) {
    a = a * BigInt::Pow(BigInt(2), 64) + BigInt(static_cast<int64_t>(rng() >> 1));
    b = b * BigInt::Pow(BigInt(2), 64) + BigInt(static_cast<int64_t>(rng() >> 1));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMultiply)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

void BM_BigIntDivMod(benchmark::State& state) {
  const int limbs = static_cast<int>(state.range(0));
  std::mt19937_64 rng(7);
  BigInt a(1), b(1);
  for (int i = 0; i < 2 * limbs; ++i) {
    a = a * BigInt::Pow(BigInt(2), 64) + BigInt(static_cast<int64_t>(rng() >> 1));
  }
  for (int i = 0; i < limbs; ++i) {
    b = b * BigInt::Pow(BigInt(2), 64) + BigInt(static_cast<int64_t>(rng() >> 1));
  }
  for (auto _ : state) {
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod)->Arg(2)->Arg(8)->Arg(32);

void BM_RationalPivotKernel(benchmark::State& state) {
  // The simplex inner loop: t -= f * p over rationals.
  Rational t(BigInt(355), BigInt(113));
  Rational f(BigInt(22), BigInt(7));
  Rational p(BigInt(-3), BigInt(8));
  for (auto _ : state) {
    Rational result = t - f * p;
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_RationalPivotKernel);

void BM_GlushkovMatch(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  // (a | b)* (a, b) — needs NFA simulation.
  RegexPtr regex = Regex::Concat(
      Regex::Star(Regex::Union(Regex::Elem("a"), Regex::Elem("b"))),
      Regex::Concat(Regex::Elem("a"), Regex::Elem("b")));
  ContentModelMatcher matcher(regex);
  std::vector<std::string> word;
  for (size_t i = 0; i < len; ++i) word.push_back(i % 2 ? "b" : "a");
  word.push_back("a");
  word.push_back("b");
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Matches(word));
  }
}
BENCHMARK(BM_GlushkovMatch)->Arg(8)->Arg(64)->Arg(512);

void BM_GrammarEmptiness(benchmark::State& state) {
  Dtd dtd = workloads::ChainDtd(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DtdHasValidTree(dtd));
  }
}
BENCHMARK(BM_GrammarEmptiness)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SimplifyDtd(benchmark::State& state) {
  Dtd dtd = workloads::RandomDtd(11, static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto simplified = SimplifyDtd(dtd);
    benchmark::DoNotOptimize(simplified);
  }
}
BENCHMARK(BM_SimplifyDtd)->Arg(10)->Arg(100)->Arg(1000);

void BM_XmlParseSerialize(benchmark::State& state) {
  // Round-trip a catalog-ish document.
  std::string doc = "<catalog>";
  for (int i = 0; i < state.range(0); ++i) {
    doc += "<item id=\"i" + std::to_string(i) + "\" ref=\"i" +
           std::to_string(i + 1) + "\">text &amp; more</item>";
  }
  doc += "</catalog>";
  for (auto _ : state) {
    auto tree = ParseXml(doc);
    if (!tree.ok()) std::abort();
    benchmark::DoNotOptimize(SerializeXml(*tree));
  }
}
BENCHMARK(BM_XmlParseSerialize)->Arg(10)->Arg(100)->Arg(1000);

std::string LargeCatalogDoc(int items) {
  std::string doc = "<catalog><section1>";
  for (int i = 0; i < items; ++i) {
    doc += "<item1 id=\"i" + std::to_string(i) + "\" ref=\"j" +
           std::to_string(i % (items / 2 + 1)) + "\"/>";
  }
  doc += "</section1><section2>";
  for (int i = 0; i < items; ++i) {
    doc += "<item2 id=\"j" + std::to_string(i) + "\" ref=\"j0\"/>";
  }
  doc += "</section2></catalog>";
  return doc;
}

void BM_ValidateTreePipeline(benchmark::State& state) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(2);
  std::string doc = LargeCatalogDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto tree = ParseXml(doc);
    if (!tree.ok()) std::abort();
    bool ok = ValidateXml(*tree, dtd).valid &&
              Evaluate(*tree, sigma).satisfied;
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_ValidateTreePipeline)->Arg(100)->Arg(1000)->Arg(10000);

void BM_ValidateStreaming(benchmark::State& state) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(2);
  std::string doc = LargeCatalogDoc(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto summary = ValidateStream(doc, dtd, sigma);
    if (!summary.ok()) std::abort();
    benchmark::DoNotOptimize(summary->conforms);
  }
}
BENCHMARK(BM_ValidateStreaming)->Arg(100)->Arg(1000)->Arg(10000);

void BM_SimplexFeasibility(benchmark::State& state) {
  // A transportation-like feasibility system.
  const int n = static_cast<int>(state.range(0));
  LinearSystem sys;
  for (int i = 0; i < n; ++i) sys.AddVariable("x" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) {
    LinearExpr expr;
    expr.Add(i, BigInt(1)).Add(i + 1, BigInt(-1));
    sys.AddConstraint(expr, RelOp::kLe, BigInt(1));
  }
  LinearExpr total;
  for (int i = 0; i < n; ++i) total.Add(i, BigInt(1));
  sys.AddConstraint(total, RelOp::kGe, BigInt(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveLpFeasibility(sys));
  }
}
BENCHMARK(BM_SimplexFeasibility)->Arg(4)->Arg(16)->Arg(64);

void BM_SimplexSparseVsDense(benchmark::State& state) {
  // The same transportation-like system as BM_SimplexFeasibility, solved by
  // the sparse pricing-driven kernel (arg bit 0 clear) or by the dense
  // Bland reference it replaced (arg bit 0 set) — side-by-side rows expose
  // the kernel swap's gain at each size.
  const int n = static_cast<int>(state.range(0));
  const bool dense = state.range(1) != 0;
  LinearSystem sys;
  for (int i = 0; i < n; ++i) sys.AddVariable("x" + std::to_string(i));
  for (int i = 0; i + 1 < n; ++i) {
    LinearExpr expr;
    expr.Add(i, BigInt(1)).Add(i + 1, BigInt(-1));
    sys.AddConstraint(expr, RelOp::kLe, BigInt(1));
  }
  LinearExpr total;
  for (int i = 0; i < n; ++i) total.Add(i, BigInt(1));
  sys.AddConstraint(total, RelOp::kGe, BigInt(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense ? SolveLpFeasibilityDenseBland(sys)
                                   : SolveLpFeasibility(sys));
  }
}
BENCHMARK(BM_SimplexSparseVsDense)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

}  // namespace
}  // namespace xicc

// BENCHMARK_MAIN, except the JSON sidecar defaults on (BENCH_micro.json,
// same convention as the JsonReport benches); command-line flags still
// override since they come later in argv.
int main(int argc, char** argv) {
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args;
  args.push_back(argv[0]);
  args.push_back(out_flag.data());
  args.push_back(fmt_flag.data());
  for (int i = 1; i < argc; ++i) args.push_back(argv[i]);
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
