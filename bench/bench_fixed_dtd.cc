// Figure 5, "DTD fixed" column (Corollaries 4.11 / 5.5): with the DTD held
// constant the number of system variables is bounded, so consistency and
// implication are PTIME in |Σ|. The sweep grows Σ over a fixed catalog DTD
// and reports time per constraint — a flat-ish ratio (no exponential blowup)
// is the claimed shape.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "core/incremental.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

constexpr size_t kSections = 6;  // The fixed DTD.

void RunConsistency() {
  bench::Header("F5-C4 / Cor 4.11: fixed DTD, growing unary Σ");
  Dtd dtd = workloads::CatalogDtd(kSections);
  std::printf("%12s %12s %12s %16s\n", "constraints", "sys vars", "time(ms)",
              "ms per constraint");
  for (size_t n : {4, 8, 16, 32, 64, 128}) {
    ConstraintSet sigma =
        workloads::RandomUnarySigma(dtd, /*seed=*/n * 7 + 1, n / 2, n / 2);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%12zu %12zu %12.3f %16.4f\n", sigma.size(),
                result.stats.system_variables, ms, ms / sigma.size());
  }
}

void RunImplication() {
  bench::Header("F5-I4 / Cor 5.5: fixed DTD, implication vs growing Σ");
  Dtd dtd = workloads::CatalogDtd(kSections);
  Constraint phi = Constraint::Key("item1", {"id"});
  std::printf("%12s %12s %10s\n", "constraints", "time(ms)", "implied");
  for (size_t n : {4, 8, 16, 32, 64}) {
    ConstraintSet sigma =
        workloads::RandomUnarySigma(dtd, /*seed=*/n * 13 + 5, n / 2, n / 2);
    ConsistencyOptions options;
    options.build_witness = false;
    bool implied = false;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckImplication(dtd, sigma, phi, options);
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    std::printf("%12zu %12.3f %10s\n", sigma.size(), ms,
                implied ? "yes" : "no");
  }
}

void RunIncremental() {
  bench::Header(
      "incremental authoring (the Cor 4.11 workflow): per-addition cost");
  Dtd dtd = workloads::CatalogDtd(4);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, 99, 10, 10);
  // Redundancy labeling routes implied-inclusion checks through the
  // exponential Section 5 system; the authoring loop here only needs the
  // accept/reject verdicts.
  IncrementalChecker checker(&dtd, ConsistencyOptions(),
                             /*check_redundancy=*/false);
  size_t accepted = 0;
  size_t redundant = 0;
  size_t rejected = 0;
  double total_ms = bench::TimeMs([&] {
    for (const Constraint& c : sigma.constraints()) {
      auto result = checker.TryAdd(c);
      if (!result.ok()) std::abort();
      switch (result->outcome) {
        case IncrementalChecker::Outcome::kAccepted:
          ++accepted;
          break;
        case IncrementalChecker::Outcome::kAcceptedRedundant:
          ++redundant;
          break;
        case IncrementalChecker::Outcome::kRejected:
          ++rejected;
          break;
      }
    }
  });
  std::printf(
      "%zu additions in %.3f ms (%.3f ms each): %zu accepted, %zu "
      "redundant, %zu rejected\n",
      sigma.size(), total_ms, total_ms / sigma.size(), accepted, redundant,
      rejected);
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_fixed_dtd — the PTIME cells of Figure 5 (fixed DTD)\n"
      "paper claim: for a fixed DTD the linear systems have a bounded\n"
      "number of variables (Lenstra), so both analyses are PTIME in |Σ|.\n");
  xicc::RunConsistency();
  xicc::RunImplication();
  xicc::RunIncremental();
  return 0;
}
