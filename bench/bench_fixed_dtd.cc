// Figure 5, "DTD fixed" column (Corollaries 4.11 / 5.5): with the DTD held
// constant the number of system variables is bounded, so consistency and
// implication are PTIME in |Σ|. The sweep grows Σ over a fixed catalog DTD
// and reports time per constraint — a flat-ish ratio (no exponential blowup)
// is the claimed shape.
//
// Each consistency point is also re-run with the dual-simplex warm start
// disabled, feeding the warm-start ablation table in EXPERIMENTS.md.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "core/incremental.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

constexpr size_t kSections = 6;  // The fixed DTD.

void RunConsistency(bench::JsonReport& report) {
  bench::Header("F5-C4 / Cor 4.11: fixed DTD, growing unary Σ");
  Dtd dtd = workloads::CatalogDtd(kSections);
  std::printf("%12s %12s %12s %16s %12s %12s\n", "constraints", "sys vars",
              "time(ms)", "ms per constraint", "pivots warm", "pivots cold");
  size_t total_pivots[2] = {0, 0};  // [0]=cold, [1]=warm
  for (size_t n : {4, 8, 16, 32, 64, 128}) {
    ConstraintSet sigma =
        workloads::RandomUnarySigma(dtd, /*seed=*/n * 7 + 1, n / 2, n / 2);
    ConsistencyResult results[2];
    double ms[2] = {0.0, 0.0};
    for (int warm_on : {1, 0}) {
      ConsistencyOptions options;
      options.build_witness = false;
      options.ilp.warm_start = warm_on != 0;
      ms[warm_on] = bench::BestTimeMs(3, [&] {
        auto r = CheckConsistency(dtd, sigma, options);
        if (!r.ok()) std::abort();
        results[warm_on] = std::move(*r);
      });
      total_pivots[warm_on] += results[warm_on].stats.lp_pivots;
      report.AddRow("consistency")
          .Set("constraints", sigma.size())
          .Set("warm_start", warm_on != 0)
          .Set("system_variables", results[warm_on].stats.system_variables)
          .Set("lp_pivots", results[warm_on].stats.lp_pivots)
          .Set("warm_starts", results[warm_on].stats.warm_starts)
          .Set("cold_restarts", results[warm_on].stats.cold_restarts)
          .Set("time_ms", ms[warm_on])
          .Set("consistent", results[warm_on].consistent);
    }
    if (results[0].consistent != results[1].consistent) std::abort();
    std::printf("%12zu %12zu %12.3f %16.4f %12zu %12zu\n", sigma.size(),
                results[1].stats.system_variables, ms[1], ms[1] / sigma.size(),
                results[1].stats.lp_pivots, results[0].stats.lp_pivots);
  }
  double ratio = total_pivots[1] > 0
                     ? static_cast<double>(total_pivots[0]) /
                           static_cast<double>(total_pivots[1])
                     : 0.0;
  std::printf("total pivots: cold=%zu warm=%zu  →  %.2fx reduction\n",
              total_pivots[0], total_pivots[1], ratio);
  report.AddRow("warm_ablation_summary")
      .Set("total_pivots_cold", total_pivots[0])
      .Set("total_pivots_warm", total_pivots[1])
      .Set("pivot_reduction_x", ratio);
}

void RunImplication(bench::JsonReport& report) {
  bench::Header("F5-I4 / Cor 5.5: fixed DTD, implication vs growing Σ");
  Dtd dtd = workloads::CatalogDtd(kSections);
  Constraint phi = Constraint::Key("item1", {"id"});
  std::printf("%12s %12s %10s\n", "constraints", "time(ms)", "implied");
  for (size_t n : {4, 8, 16, 32, 64}) {
    ConstraintSet sigma =
        workloads::RandomUnarySigma(dtd, /*seed=*/n * 13 + 5, n / 2, n / 2);
    ConsistencyOptions options;
    options.build_witness = false;
    bool implied = false;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckImplication(dtd, sigma, phi, options);
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    std::printf("%12zu %12.3f %10s\n", sigma.size(), ms,
                implied ? "yes" : "no");
    report.AddRow("implication")
        .Set("constraints", sigma.size())
        .Set("time_ms", ms)
        .Set("implied", implied);
  }
}

void RunIncremental(bench::JsonReport& report) {
  bench::Header(
      "incremental authoring (the Cor 4.11 workflow): per-addition cost");
  Dtd dtd = workloads::CatalogDtd(4);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, 99, 10, 10);
  // Redundancy labeling routes implied-inclusion checks through the
  // exponential Section 5 system; the authoring loop here only needs the
  // accept/reject verdicts.
  IncrementalChecker checker(&dtd, ConsistencyOptions(),
                             /*check_redundancy=*/false);
  size_t accepted = 0;
  size_t redundant = 0;
  size_t rejected = 0;
  double total_ms = bench::TimeMs([&] {
    for (const Constraint& c : sigma.constraints()) {
      auto result = checker.TryAdd(c);
      if (!result.ok()) std::abort();
      switch (result->outcome) {
        case IncrementalChecker::Outcome::kAccepted:
          ++accepted;
          break;
        case IncrementalChecker::Outcome::kAcceptedRedundant:
          ++redundant;
          break;
        case IncrementalChecker::Outcome::kRejected:
          ++rejected;
          break;
      }
    }
  });
  std::printf(
      "%zu additions in %.3f ms (%.3f ms each): %zu accepted, %zu "
      "redundant, %zu rejected\n",
      sigma.size(), total_ms, total_ms / sigma.size(), accepted, redundant,
      rejected);
  report.AddRow("incremental")
      .Set("additions", sigma.size())
      .Set("time_ms", total_ms)
      .Set("accepted", accepted)
      .Set("redundant", redundant)
      .Set("rejected", rejected);
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_fixed_dtd — the PTIME cells of Figure 5 (fixed DTD)\n"
      "paper claim: for a fixed DTD the linear systems have a bounded\n"
      "number of variables (Lenstra), so both analyses are PTIME in |Σ|.\n");
  xicc::bench::JsonReport report("fixed_dtd");
  xicc::RunConsistency(report);
  xicc::RunImplication(report);
  xicc::RunIncremental(report);
  report.Write();
  return 0;
}
