// Figure 5, implication row: coNP-complete for unary keys/FKs (Thm 4.10,
// Thm 5.4), decided by refuting Σ ∪ {¬φ}. Negated keys route through the
// Corollary 4.9 system, negated inclusions through the Section 5 region
// system.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/implication.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

void RunKeyImplication(bench::JsonReport& report) {
  bench::Header("F5-I2 / Thm 4.10: key implication via ¬key refutation");
  std::printf("%10s %12s %12s %10s\n", "sections", "constraints", "time(ms)",
              "implied");
  for (size_t n : {2, 4, 8, 16, 24}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    // item1.id is keyed in Σ itself → implied (fast refutation).
    Constraint phi = Constraint::Key("item1", {"id"});
    ConsistencyOptions options;
    options.build_witness = false;
    bool implied = false;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckImplication(dtd, sigma, phi, options);
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    std::printf("%10zu %12zu %12.3f %10s\n", n, sigma.size(), ms,
                implied ? "yes" : "no");
    report.AddRow("key_implication")
        .Set("sections", n)
        .Set("constraints", sigma.size())
        .Set("time_ms", ms)
        .Set("implied", implied);
  }
}

void RunInclusionImplication(bench::JsonReport& report) {
  bench::Header(
      "F5-I2 / Thm 5.4: inclusion implication via the Section 5 system");
  std::printf("%10s %12s %12s %10s\n", "chain len", "constraints",
              "time(ms)", "implied");
  for (size_t n : {2, 3, 4, 5, 6, 8}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma;
    for (size_t i = 1; i < n; ++i) {
      sigma.Add(Constraint::Inclusion("item" + std::to_string(i), {"id"},
                                      "item" + std::to_string(i + 1),
                                      {"id"}));
    }
    // Transitive closure end-to-end: implied.
    Constraint phi = Constraint::Inclusion("item1", {"id"},
                                           "item" + std::to_string(n),
                                           {"id"});
    ConsistencyOptions options;
    options.build_witness = false;
    bool implied = false;
    double ms = bench::TimeMs([&] {
      auto r = CheckImplication(dtd, sigma, phi, options);
      if (!r.ok()) std::abort();
      implied = r->implied;
    });
    if (!implied) std::abort();
    std::printf("%10zu %12zu %12.3f %10s\n", n, sigma.size(), ms, "yes");
    report.AddRow("inclusion_implication")
        .Set("chain_len", n)
        .Set("constraints", sigma.size())
        .Set("time_ms", ms)
        .Set("implied", true);
  }
}

void RunNotImpliedWithCounterexample(bench::JsonReport& report) {
  bench::Header("counterexample construction (checked witnesses)");
  std::printf("%10s %12s %14s\n", "sections", "time(ms)", "witness nodes");
  for (size_t n : {2, 4, 8, 16}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    // ref of the last section is unconstrained → not a key.
    Constraint phi =
        Constraint::Key("item" + std::to_string(n), {"ref"});
    size_t nodes = 0;
    double ms = bench::TimeMs([&] {
      auto r = CheckImplication(dtd, sigma, phi);
      if (!r.ok() || r->implied || !r->counterexample.has_value()) {
        std::abort();
      }
      nodes = r->counterexample->size();
    });
    std::printf("%10zu %12.3f %14zu\n", n, ms, nodes);
    report.AddRow("counterexample")
        .Set("sections", n)
        .Set("time_ms", ms)
        .Set("witness_nodes", nodes);
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_implication — the coNP-complete implication cells\n"
      "paper claim: coNP-complete for unary keys and foreign keys (also\n"
      "under primary keys); decided as inconsistency of Σ ∪ {¬φ}.\n");
  xicc::bench::JsonReport report("implication");
  xicc::RunKeyImplication(report);
  xicc::RunInclusionImplication(report);
  xicc::RunNotImpliedWithCounterexample(report);
  report.Write();
  return 0;
}
