#ifndef XICC_BENCH_BENCH_UTIL_H_
#define XICC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

namespace xicc {
namespace bench {

/// Wall-clock milliseconds of one invocation of `fn`.
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Best-of-`repeats` timing, for small fast operations.
inline double BestTimeMs(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    double t = TimeMs(fn);
    if (t < best) best = t;
  }
  return best;
}

inline void Header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

}  // namespace bench
}  // namespace xicc

#endif  // XICC_BENCH_BENCH_UTIL_H_
