#ifndef XICC_BENCH_BENCH_UTIL_H_
#define XICC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace xicc {
namespace bench {

/// Wall-clock milliseconds of one invocation of `fn`.
inline double TimeMs(const std::function<void()>& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Best-of-`repeats` timing, for small fast operations.
inline double BestTimeMs(int repeats, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < repeats; ++i) {
    double t = TimeMs(fn);
    if (t < best) best = t;
  }
  return best;
}

inline void Header(const std::string& title) {
  std::printf("\n== %s ==\n", title.c_str());
}

/// Machine-readable sidecar for a bench run: collects flat key/value rows
/// and writes them to BENCH_<name>.json in the working directory, so the
/// ablation tables in EXPERIMENTS.md can be regenerated without scraping
/// the human-oriented stdout tables.
///
///   JsonReport report("unary_consistency");
///   report.AddRow("catalog").Set("sections", n).Set("time_ms", ms);
///   ...
///   report.Write();  // or rely on the destructor
class JsonReport {
 public:
  class Row {
   public:
    Row& Set(const std::string& key, const std::string& value) {
      fields_.emplace_back(key, Quote(value));
      return *this;
    }
    Row& Set(const std::string& key, const char* value) {
      return Set(key, std::string(value));
    }
    Row& Set(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Set(const std::string& key, size_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& Set(const std::string& key, int value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& Set(const std::string& key, bool value) {
      fields_.emplace_back(key, value ? "true" : "false");
      return *this;
    }

   private:
    friend class JsonReport;
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;
  ~JsonReport() {
    if (!written_) Write();
  }

  /// Starts a new row tagged with `section`; the returned reference stays
  /// valid for the lifetime of the report.
  Row& AddRow(const std::string& section) {
    rows_.emplace_back();
    rows_.back().fields_.emplace_back("section", Row::Quote(section));
    return rows_.back();
  }

  void Write() {
    written_ = true;
    std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n", name_.c_str());
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(f, "    {");
      const auto& fields = rows_[i].fields_;
      for (size_t j = 0; j < fields.size(); ++j) {
        std::fprintf(f, "%s\"%s\": %s", j == 0 ? "" : ", ",
                     fields[j].first.c_str(), fields[j].second.c_str());
      }
      std::fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\n[json] wrote %s (%zu rows)\n", path.c_str(), rows_.size());
  }

 private:
  std::string name_;
  std::deque<Row> rows_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace xicc

#endif  // XICC_BENCH_BENCH_UTIL_H_
