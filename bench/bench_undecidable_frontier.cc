// The undecidable cells of Figure 5 cannot be decided — what *can* be run
// are the PTIME reductions whose correctness proves them (Theorem 3.1,
// Lemmas 3.2/3.3), and that is what this bench exercises:
//  - encoding cost scaling (the reductions are near-linear);
//  - the machine-checked equivalence of Theorem 3.1 on concrete instances
//    (instance ⊨ Θ∧¬φ  ⇄  tree ⊨ D∧Σ, both directions through the
//    validator/evaluator);
//  - the Lemma 3.3 round trip, closed end-to-end through the decidable
//    unary checker.

#include <cstdio>

#include "bench/bench_util.h"
#include "constraints/evaluator.h"
#include "core/implication.h"
#include "dtd/validator.h"
#include "relational/reduction.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

using relational::Dependency;
using relational::Instance;
using relational::Schema;

void RunThm31(bench::JsonReport& report) {
  bench::Header(
      "Thm 3.1 reduction: relational ¬implication → XML consistency");
  std::printf("%10s %12s %12s %14s %14s\n", "relations", "attrs each",
              "encode(ms)", "tree nodes", "equivalence");
  for (size_t relations : {2, 4, 8, 16, 32}) {
    Schema schema;
    for (size_t r = 0; r < relations; ++r) {
      std::vector<std::string> attrs;
      for (size_t a = 0; a < 4; ++a) {
        attrs.push_back("a" + std::to_string(a));
      }
      if (!schema.AddRelation("R" + std::to_string(r), attrs).ok()) {
        std::abort();
      }
    }
    std::vector<Dependency> theta;
    for (size_t r = 1; r < relations; ++r) {
      theta.push_back(Dependency::Key("R" + std::to_string(r), {"a0"}));
    }
    Dependency phi = Dependency::Key("R0", {"a0", "a1"});

    relational::XmlConsistencyEncoding encoding;
    double encode_ms = bench::TimeMs([&] {
      auto enc = relational::EncodeImplicationComplementAsConsistency(
          schema, theta, phi);
      if (!enc.ok()) std::abort();
      encoding = std::move(*enc);
    });

    // A witness instance of Θ ∧ ¬φ, pushed through both directions.
    Instance instance(&schema);
    if (!instance
             .Insert("R0", {{"a0", "k"}, {"a1", "k"}, {"a2", "1"},
                            {"a3", "x"}})
             .ok() ||
        !instance
             .Insert("R0", {{"a0", "k"}, {"a1", "k"}, {"a2", "2"},
                            {"a3", "y"}})
             .ok()) {
      std::abort();
    }
    auto tree =
        relational::BuildTreeFromInstance(encoding, schema, instance, phi);
    if (!tree.ok()) std::abort();
    bool forward = ValidateXml(*tree, encoding.dtd).valid &&
                   Evaluate(*tree, encoding.sigma).satisfied;
    auto decoded =
        relational::ExtractInstanceFromTree(encoding, schema, *tree);
    bool backward = decoded.ok() &&
                    relational::SatisfiesAll(*decoded, theta) &&
                    !relational::Satisfies(*decoded, phi);
    std::printf("%10zu %12d %12.3f %14zu %14s\n", relations, 4, encode_ms,
                tree->size(),
                forward && backward ? "checked" : "BROKEN");
    report.AddRow("thm31")
        .Set("relations", relations)
        .Set("encode_ms", encode_ms)
        .Set("tree_nodes", tree->size())
        .Set("equivalence_checked", forward && backward);
  }
}

void RunLemma33(bench::JsonReport& report) {
  bench::Header(
      "Lemma 3.3 reduction: consistency ⇄ ¬implication (closed via the "
      "unary checker)");
  struct Case {
    const char* label;
    ConstraintSet sigma;
    bool consistent;
  };
  std::vector<Case> cases;
  {
    ConstraintSet sigma;
    sigma.Add(Constraint::Key("teacher", {"name"}));
    cases.push_back({"consistent spec", sigma, true});
  }
  cases.push_back({"inconsistent spec (Sigma1)", workloads::TeacherSigma(),
                   false});

  std::printf("%-28s %14s %14s %12s\n", "case", "variant", "implied?",
              "time(ms)");
  for (const Case& c : cases) {
    Dtd d1 = workloads::TeacherDtd();
    for (int variant = 1; variant <= 2; ++variant) {
      relational::ImplicationEncoding enc;
      {
        auto built =
            variant == 1
                ? relational::EncodeConsistencyAsKeyImplication(d1, c.sigma)
                : relational::EncodeConsistencyAsInclusionImplication(
                      d1, c.sigma);
        if (!built.ok()) std::abort();
        enc = std::move(*built);
      }
      bool implied = false;
      double ms = bench::TimeMs([&] {
        auto r = CheckImplication(enc.dtd, enc.sigma, enc.implied);
        if (!r.ok()) std::abort();
        implied = r->implied;
      });
      // Σ consistent ⇔ the gadget constraint is NOT implied.
      if (implied == c.consistent) std::abort();
      std::printf("%-28s %14s %14s %12.3f\n", c.label,
                  variant == 1 ? "key (φ1)" : "inclusion (φ2)",
                  implied ? "implied" : "not implied", ms);
      report.AddRow("lemma33")
          .Set("case", c.label)
          .Set("variant", variant == 1 ? "key" : "inclusion")
          .Set("implied", implied)
          .Set("time_ms", ms);
    }
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_undecidable_frontier — the undecidable cells' executable "
      "reductions\n"
      "paper claim: consistency and implication for C_{K,FK} are\n"
      "undecidable (Thm 3.1 / Cor 3.4); the reductions below are the\n"
      "constructions behind those proofs, machine-checked.\n");
  xicc::bench::JsonReport report("undecidable_frontier");
  xicc::RunThm31(report);
  xicc::RunLemma33(report);
  report.Write();
  return 0;
}
