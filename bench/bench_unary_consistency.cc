// Figure 5, NP-complete consistency cells (Theorems 4.1/4.7, Corollary 4.8):
// unary keys + foreign keys through the Ψ(D,Σ) integer encoding.
//
// Two regimes:
//  - naturalistic specifications (catalog foreign-key chains) stay easy —
//    the LP relaxation is integral and no search happens;
//  - the crafted Theorem 4.7 gadget embeds 0/1-LIP, and the checker's
//    verdicts must track the brute-force oracle exactly.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/consistency.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

void RunCatalog() {
  bench::Header("F5-C2: naturalistic unary specs (catalog FK chains)");
  std::printf("%10s %12s %12s %12s %10s\n", "sections", "constraints",
              "sys vars", "time(ms)", "verdict");
  for (size_t n : {2, 4, 8, 12, 16, 24, 32}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12zu %12zu %12.3f %10s\n", n, sigma.size(),
                result.stats.system_variables, ms,
                result.consistent ? "SAT" : "UNSAT");
  }
}

void RunAuction() {
  bench::Header("F5-C2: auction-site specs (XMark-flavored, with witness)");
  std::printf("%10s %12s %12s %14s %10s\n", "regions", "constraints",
              "time(ms)", "witness nodes", "verdict");
  for (size_t n : {1, 2, 4, 8, 16}) {
    Dtd dtd = workloads::AuctionDtd(n);
    ConstraintSet sigma = workloads::AuctionSigma(n);
    ConsistencyOptions options;
    options.min_witness_nodes = 10 * n;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok() || !r->consistent) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12zu %12.3f %14zu %10s\n", n, sigma.size(), ms,
                result.witness.has_value() ? result.witness->size() : 0,
                "SAT");
  }
}

void RunPrimary() {
  bench::Header(
      "F5-C3 / Cor 4.8: primary-key restriction (one key per type)");
  std::printf("%10s %12s %12s %10s %10s\n", "sections", "primary?",
              "time(ms)", "verdict", "class");
  for (size_t n : {4, 8, 16, 32}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12s %12.3f %10s %10s\n", n,
                sigma.SatisfiesPrimaryKeyRestriction() ? "yes" : "no", ms,
                result.consistent ? "SAT" : "UNSAT",
                ConstraintClassName(result.constraint_class));
  }
}

void RunFlagship() {
  bench::Header("the flagship inconsistency (D1, Σ1) and its relaxation");
  struct Case {
    const char* label;
    ConstraintSet sigma;
    bool expect;
  };
  ConstraintSet relaxed;
  relaxed.Add(Constraint::Key("teacher", {"name"}));
  relaxed.Add(
      Constraint::Inclusion("subject", {"taught_by"}, "teacher", {"name"}));
  Case cases[] = {
      {"D1 + Sigma1 (inconsistent)", workloads::TeacherSigma(), false},
      {"D1 + relaxed (consistent)", relaxed, true},
  };
  std::printf("%-30s %12s %10s\n", "case", "time(ms)", "verdict");
  for (const Case& c : cases) {
    Dtd dtd = workloads::TeacherDtd();
    ConsistencyResult result;
    double ms = bench::BestTimeMs(5, [&] {
      auto r = CheckConsistency(dtd, c.sigma);
      if (!r.ok() || r->consistent != c.expect) std::abort();
      result = std::move(*r);
    });
    std::printf("%-30s %12.3f %10s\n", c.label, ms,
                result.consistent ? "SAT" : "UNSAT");
  }
}

void RunLipGadget() {
  bench::Header(
      "F5-C2 hard side / Thm 4.7: the 0/1-LIP gadget (crafted instances)");
  std::printf("%6s %6s %10s %12s %12s %10s %8s\n", "rows", "cols",
              "constraints", "ilp nodes", "time(ms)", "verdict", "oracle");
  for (size_t rows : {2, 3, 4, 5, 6}) {
    size_t cols = rows + 2;
    workloads::BinaryLipInstance instance =
        workloads::RandomLip(/*seed=*/rows * 977 + 13, rows, cols,
                             /*ones_per_row=*/3);
    workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
    bool oracle = workloads::LipHasBinarySolution(instance);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(enc.dtd, enc.sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    if (result.consistent != oracle) std::abort();
    std::printf("%6zu %6zu %10zu %12zu %12.3f %10s %8s\n", rows, cols,
                enc.sigma.size(), result.stats.ilp_nodes, ms,
                result.consistent ? "SAT" : "UNSAT",
                oracle ? "SAT" : "UNSAT");
  }
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_unary_consistency — the NP-complete consistency cells\n"
      "paper claim: NP-complete (Thm 4.7), NP-hard already under primary\n"
      "keys (Cor 4.8); naturalistic instances stay fast, the LIP gadget\n"
      "forces search, verdicts match a brute-force oracle.\n");
  xicc::RunFlagship();
  xicc::RunCatalog();
  xicc::RunAuction();
  xicc::RunPrimary();
  xicc::RunLipGadget();
  return 0;
}
