// Figure 5, NP-complete consistency cells (Theorems 4.1/4.7, Corollary 4.8):
// unary keys + foreign keys through the Ψ(D,Σ) integer encoding.
//
// Two regimes:
//  - naturalistic specifications (catalog foreign-key chains) stay easy —
//    the LP relaxation is integral and no search happens;
//  - the crafted Theorem 4.7 gadget embeds 0/1-LIP, and the checker's
//    verdicts must track the brute-force oracle exactly.
//
// The warm-start ablation section re-solves both families with the
// dual-simplex warm start disabled; the pivot-count ratio is the headline
// number of the incremental-search work (EXPERIMENTS.md §warm-start).

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_util.h"
#include "core/artifact_cache.h"
#include "core/consistency.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

void RunCatalog(bench::JsonReport& report) {
  bench::Header("F5-C2: naturalistic unary specs (catalog FK chains)");
  std::printf("%10s %12s %12s %12s %10s\n", "sections", "constraints",
              "sys vars", "time(ms)", "verdict");
  for (size_t n : {2, 4, 8, 12, 16, 24, 32}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12zu %12zu %12.3f %10s\n", n, sigma.size(),
                result.stats.system_variables, ms,
                result.consistent ? "SAT" : "UNSAT");
    report.AddRow("catalog")
        .Set("sections", n)
        .Set("constraints", sigma.size())
        .Set("system_variables", result.stats.system_variables)
        .Set("lp_pivots", result.stats.lp_pivots)
        .Set("warm_starts", result.stats.warm_starts)
        .Set("cold_restarts", result.stats.cold_restarts)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

void RunAuction(bench::JsonReport& report) {
  bench::Header("F5-C2: auction-site specs (XMark-flavored, with witness)");
  std::printf("%10s %12s %12s %14s %10s\n", "regions", "constraints",
              "time(ms)", "witness nodes", "verdict");
  for (size_t n : {1, 2, 4, 8, 16}) {
    Dtd dtd = workloads::AuctionDtd(n);
    ConstraintSet sigma = workloads::AuctionSigma(n);
    ConsistencyOptions options;
    options.min_witness_nodes = 10 * n;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok() || !r->consistent) std::abort();
      result = std::move(*r);
    });
    size_t witness_nodes =
        result.witness.has_value() ? result.witness->size() : 0;
    std::printf("%10zu %12zu %12.3f %14zu %10s\n", n, sigma.size(), ms,
                witness_nodes, "SAT");
    report.AddRow("auction")
        .Set("regions", n)
        .Set("constraints", sigma.size())
        .Set("witness_nodes", witness_nodes)
        .Set("lp_pivots", result.stats.lp_pivots)
        .Set("time_ms", ms)
        .Set("consistent", true);
  }
}

void RunPrimary(bench::JsonReport& report) {
  bench::Header(
      "F5-C3 / Cor 4.8: primary-key restriction (one key per type)");
  std::printf("%10s %12s %12s %10s %10s\n", "sections", "primary?",
              "time(ms)", "verdict", "class");
  for (size_t n : {4, 8, 16, 32}) {
    Dtd dtd = workloads::CatalogDtd(n);
    ConstraintSet sigma = workloads::CatalogFkChainSigma(n);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::BestTimeMs(3, [&] {
      auto r = CheckConsistency(dtd, sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    std::printf("%10zu %12s %12.3f %10s %10s\n", n,
                sigma.SatisfiesPrimaryKeyRestriction() ? "yes" : "no", ms,
                result.consistent ? "SAT" : "UNSAT",
                ConstraintClassName(result.constraint_class));
    report.AddRow("primary")
        .Set("sections", n)
        .Set("primary", sigma.SatisfiesPrimaryKeyRestriction())
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

void RunFlagship(bench::JsonReport& report) {
  bench::Header("the flagship inconsistency (D1, Σ1) and its relaxation");
  struct Case {
    const char* label;
    ConstraintSet sigma;
    bool expect;
  };
  ConstraintSet relaxed;
  relaxed.Add(Constraint::Key("teacher", {"name"}));
  relaxed.Add(
      Constraint::Inclusion("subject", {"taught_by"}, "teacher", {"name"}));
  Case cases[] = {
      {"D1 + Sigma1 (inconsistent)", workloads::TeacherSigma(), false},
      {"D1 + relaxed (consistent)", relaxed, true},
  };
  std::printf("%-30s %12s %10s\n", "case", "time(ms)", "verdict");
  for (const Case& c : cases) {
    Dtd dtd = workloads::TeacherDtd();
    ConsistencyResult result;
    double ms = bench::BestTimeMs(5, [&] {
      auto r = CheckConsistency(dtd, c.sigma);
      if (!r.ok() || r->consistent != c.expect) std::abort();
      result = std::move(*r);
    });
    std::printf("%-30s %12.3f %10s\n", c.label, ms,
                result.consistent ? "SAT" : "UNSAT");
    report.AddRow("flagship")
        .Set("case", c.label)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

void RunLipGadget(bench::JsonReport& report) {
  bench::Header(
      "F5-C2 hard side / Thm 4.7: the 0/1-LIP gadget (crafted instances)");
  std::printf("%6s %6s %10s %12s %12s %10s %8s\n", "rows", "cols",
              "constraints", "ilp nodes", "time(ms)", "verdict", "oracle");
  for (size_t rows : {2, 3, 4, 5, 6}) {
    size_t cols = rows + 2;
    workloads::BinaryLipInstance instance =
        workloads::RandomLip(/*seed=*/rows * 977 + 13, rows, cols,
                             /*ones_per_row=*/3);
    workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
    bool oracle = workloads::LipHasBinarySolution(instance);
    ConsistencyOptions options;
    options.build_witness = false;
    ConsistencyResult result;
    double ms = bench::TimeMs([&] {
      auto r = CheckConsistency(enc.dtd, enc.sigma, options);
      if (!r.ok()) std::abort();
      result = std::move(*r);
    });
    if (result.consistent != oracle) std::abort();
    std::printf("%6zu %6zu %10zu %12zu %12.3f %10s %8s\n", rows, cols,
                enc.sigma.size(), result.stats.ilp_nodes, ms,
                result.consistent ? "SAT" : "UNSAT",
                oracle ? "SAT" : "UNSAT");
    report.AddRow("lip_gadget")
        .Set("rows", rows)
        .Set("cols", cols)
        .Set("ilp_nodes", result.stats.ilp_nodes)
        .Set("lp_pivots", result.stats.lp_pivots)
        .Set("warm_starts", result.stats.warm_starts)
        .Set("cold_restarts", result.stats.cold_restarts)
        .Set("time_ms", ms)
        .Set("consistent", result.consistent);
  }
}

/// Solver thread count for the ablation runs: 1 by default (pivot counts
/// are only comparable on a deterministic single-threaded search), override
/// with XICC_BENCH_THREADS=N to re-run the ablation on a parallel solve.
/// The choice is recorded in the JSON so a parallel run can never be
/// mistaken for the canonical single-threaded numbers.
size_t BenchThreads() {
  const char* env = std::getenv("XICC_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  char* end = nullptr;
  const long n = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || n < 1) return 1;
  return static_cast<size_t>(n);
}

// Warm-start ablation: identical workload with the dual-simplex warm start
// on vs. off, at XICC_BENCH_THREADS solver threads (default 1 — pivot
// counts are only comparable on a deterministic single-threaded search).
// Verdicts must agree exactly; the aggregate pivot ratio is the acceptance
// number for the incremental search (target: ≥ 2× fewer pivots warm).
void RunWarmStartAblation(bench::JsonReport& report) {
  bench::Header("warm-start ablation: dual-simplex re-solve vs cold phase-1");
  const size_t bench_threads = BenchThreads();
  // Artifact provenance: with XICC_BENCH_ARTIFACT_DIR set, the flagship
  // catalog DTD is resolved through an ArtifactCache rooted there and the
  // serving tier ("cold" on the priming run, "mmap" once the artifact
  // persists) is recorded alongside the thread count, so a run that warm-
  // started from disk artifacts can never be mistaken for a cold one.
  const char* cache_env = std::getenv("XICC_BENCH_ARTIFACT_DIR");
  const std::string cache_dir = cache_env == nullptr ? "" : cache_env;
  const char* artifact_source = "cold";
  if (!cache_dir.empty()) {
    ArtifactCache cache(ArtifactCache::Options{cache_dir, 4});
    auto lookup = cache.GetOrCompile(workloads::CatalogDtd(8));
    if (lookup.ok()) artifact_source = ArtifactSourceName(lookup->source);
  }
  report.AddRow("config")
      .Set("ilp_num_threads", bench_threads)
      .Set("artifact_source", artifact_source)
      .Set("artifact_cache_dir", cache_dir);
  std::printf("%-28s %6s %12s %12s %12s %12s\n", "instance", "warm",
              "lp pivots", "warm solves", "cold solves", "time(ms)");

  struct Totals {
    size_t pivots = 0;
    size_t warm = 0;
    size_t cold = 0;
    double ms = 0.0;
  };
  Totals totals[2];

  auto run_case = [&](const std::string& label, const Dtd& dtd,
                      const ConstraintSet& sigma) {
    bool verdicts[2] = {false, false};
    for (int warm_on = 1; warm_on >= 0; --warm_on) {
      ConsistencyOptions options;
      options.build_witness = false;
      options.ilp.warm_start = warm_on != 0;
      options.ilp.num_threads = bench_threads;
      ConsistencyResult result;
      double ms = bench::TimeMs([&] {
        auto r = CheckConsistency(dtd, sigma, options);
        if (!r.ok()) std::abort();
        result = std::move(*r);
      });
      verdicts[warm_on] = result.consistent;
      Totals& t = totals[warm_on];
      t.pivots += result.stats.lp_pivots;
      t.warm += result.stats.warm_starts;
      t.cold += result.stats.cold_restarts;
      t.ms += ms;
      std::printf("%-28s %6s %12zu %12zu %12zu %12.3f\n", label.c_str(),
                  warm_on ? "on" : "off", result.stats.lp_pivots,
                  result.stats.warm_starts, result.stats.cold_restarts, ms);
      report.AddRow("warm_ablation")
          .Set("instance", label)
          .Set("warm_start", warm_on != 0)
          .Set("lp_pivots", result.stats.lp_pivots)
          .Set("warm_starts", result.stats.warm_starts)
          .Set("cold_restarts", result.stats.cold_restarts)
          .Set("ilp_nodes", result.stats.ilp_nodes)
          .Set("time_ms", ms)
          .Set("consistent", result.consistent);
    }
    // Warm start may not change the verdict, ever.
    if (verdicts[0] != verdicts[1]) std::abort();
  };

  for (size_t n : {8, 16, 32}) {
    run_case("catalog-" + std::to_string(n), workloads::CatalogDtd(n),
             workloads::CatalogFkChainSigma(n));
  }
  for (size_t rows : {3, 4, 5, 6}) {
    size_t cols = rows + 2;
    workloads::BinaryLipInstance instance =
        workloads::RandomLip(/*seed=*/rows * 977 + 13, rows, cols,
                             /*ones_per_row=*/3);
    workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
    run_case("lip-" + std::to_string(rows) + "x" + std::to_string(cols),
             enc.dtd, enc.sigma);
  }

  double ratio = totals[1].pivots > 0
                     ? static_cast<double>(totals[0].pivots) /
                           static_cast<double>(totals[1].pivots)
                     : 0.0;
  std::printf(
      "\ntotal pivots: cold=%zu warm=%zu  →  %.2fx reduction "
      "(warm solves=%zu, cold fallbacks=%zu)\n",
      totals[0].pivots, totals[1].pivots, ratio, totals[1].warm,
      totals[1].cold);
  report.AddRow("warm_ablation_summary")
      .Set("total_pivots_cold", totals[0].pivots)
      .Set("total_pivots_warm", totals[1].pivots)
      .Set("pivot_reduction_x", ratio)
      .Set("warm_starts", totals[1].warm)
      .Set("cold_fallbacks", totals[1].cold)
      .Set("time_ms_cold", totals[0].ms)
      .Set("time_ms_warm", totals[1].ms);
}

}  // namespace
}  // namespace xicc

int main() {
  std::printf(
      "bench_unary_consistency — the NP-complete consistency cells\n"
      "paper claim: NP-complete (Thm 4.7), NP-hard already under primary\n"
      "keys (Cor 4.8); naturalistic instances stay fast, the LIP gadget\n"
      "forces search, verdicts match a brute-force oracle.\n");
  xicc::bench::JsonReport report("unary_consistency");
  xicc::RunFlagship(report);
  xicc::RunCatalog(report);
  xicc::RunAuction(report);
  xicc::RunPrimary(report);
  xicc::RunLipGadget(report);
  xicc::RunWarmStartAblation(report);
  report.Write();
  return 0;
}
