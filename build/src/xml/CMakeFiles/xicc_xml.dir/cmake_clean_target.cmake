file(REMOVE_RECURSE
  "libxicc_xml.a"
)
