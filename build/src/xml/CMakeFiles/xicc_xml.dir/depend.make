# Empty dependencies file for xicc_xml.
# This may be replaced when dependencies are built.
