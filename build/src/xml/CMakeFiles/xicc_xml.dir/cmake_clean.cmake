file(REMOVE_RECURSE
  "CMakeFiles/xicc_xml.dir/event_parser.cc.o"
  "CMakeFiles/xicc_xml.dir/event_parser.cc.o.d"
  "CMakeFiles/xicc_xml.dir/parser.cc.o"
  "CMakeFiles/xicc_xml.dir/parser.cc.o.d"
  "CMakeFiles/xicc_xml.dir/serializer.cc.o"
  "CMakeFiles/xicc_xml.dir/serializer.cc.o.d"
  "CMakeFiles/xicc_xml.dir/tree.cc.o"
  "CMakeFiles/xicc_xml.dir/tree.cc.o.d"
  "libxicc_xml.a"
  "libxicc_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
