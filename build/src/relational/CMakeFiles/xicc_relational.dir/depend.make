# Empty dependencies file for xicc_relational.
# This may be replaced when dependencies are built.
