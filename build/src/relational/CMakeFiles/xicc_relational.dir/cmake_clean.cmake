file(REMOVE_RECURSE
  "CMakeFiles/xicc_relational.dir/dependencies.cc.o"
  "CMakeFiles/xicc_relational.dir/dependencies.cc.o.d"
  "CMakeFiles/xicc_relational.dir/reduction.cc.o"
  "CMakeFiles/xicc_relational.dir/reduction.cc.o.d"
  "CMakeFiles/xicc_relational.dir/schema.cc.o"
  "CMakeFiles/xicc_relational.dir/schema.cc.o.d"
  "libxicc_relational.a"
  "libxicc_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
