file(REMOVE_RECURSE
  "libxicc_relational.a"
)
