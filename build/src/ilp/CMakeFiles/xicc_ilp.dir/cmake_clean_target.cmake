file(REMOVE_RECURSE
  "libxicc_ilp.a"
)
