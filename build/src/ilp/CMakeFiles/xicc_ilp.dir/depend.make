# Empty dependencies file for xicc_ilp.
# This may be replaced when dependencies are built.
