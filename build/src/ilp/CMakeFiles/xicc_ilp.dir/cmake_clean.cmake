file(REMOVE_RECURSE
  "CMakeFiles/xicc_ilp.dir/linear_system.cc.o"
  "CMakeFiles/xicc_ilp.dir/linear_system.cc.o.d"
  "CMakeFiles/xicc_ilp.dir/simplex.cc.o"
  "CMakeFiles/xicc_ilp.dir/simplex.cc.o.d"
  "CMakeFiles/xicc_ilp.dir/solver.cc.o"
  "CMakeFiles/xicc_ilp.dir/solver.cc.o.d"
  "libxicc_ilp.a"
  "libxicc_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
