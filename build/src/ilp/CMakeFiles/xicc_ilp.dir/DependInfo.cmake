
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ilp/linear_system.cc" "src/ilp/CMakeFiles/xicc_ilp.dir/linear_system.cc.o" "gcc" "src/ilp/CMakeFiles/xicc_ilp.dir/linear_system.cc.o.d"
  "/root/repo/src/ilp/simplex.cc" "src/ilp/CMakeFiles/xicc_ilp.dir/simplex.cc.o" "gcc" "src/ilp/CMakeFiles/xicc_ilp.dir/simplex.cc.o.d"
  "/root/repo/src/ilp/solver.cc" "src/ilp/CMakeFiles/xicc_ilp.dir/solver.cc.o" "gcc" "src/ilp/CMakeFiles/xicc_ilp.dir/solver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xicc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
