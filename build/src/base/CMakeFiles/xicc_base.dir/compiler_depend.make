# Empty compiler generated dependencies file for xicc_base.
# This may be replaced when dependencies are built.
