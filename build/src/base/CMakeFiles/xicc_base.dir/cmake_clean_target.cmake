file(REMOVE_RECURSE
  "libxicc_base.a"
)
