file(REMOVE_RECURSE
  "CMakeFiles/xicc_base.dir/bigint.cc.o"
  "CMakeFiles/xicc_base.dir/bigint.cc.o.d"
  "CMakeFiles/xicc_base.dir/rational.cc.o"
  "CMakeFiles/xicc_base.dir/rational.cc.o.d"
  "CMakeFiles/xicc_base.dir/status.cc.o"
  "CMakeFiles/xicc_base.dir/status.cc.o.d"
  "CMakeFiles/xicc_base.dir/strings.cc.o"
  "CMakeFiles/xicc_base.dir/strings.cc.o.d"
  "libxicc_base.a"
  "libxicc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
