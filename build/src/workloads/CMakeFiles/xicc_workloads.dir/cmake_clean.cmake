file(REMOVE_RECURSE
  "CMakeFiles/xicc_workloads.dir/generators.cc.o"
  "CMakeFiles/xicc_workloads.dir/generators.cc.o.d"
  "CMakeFiles/xicc_workloads.dir/paper_examples.cc.o"
  "CMakeFiles/xicc_workloads.dir/paper_examples.cc.o.d"
  "libxicc_workloads.a"
  "libxicc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
