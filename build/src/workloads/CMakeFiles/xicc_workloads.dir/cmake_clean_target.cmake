file(REMOVE_RECURSE
  "libxicc_workloads.a"
)
