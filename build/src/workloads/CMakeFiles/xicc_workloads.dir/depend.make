# Empty dependencies file for xicc_workloads.
# This may be replaced when dependencies are built.
