# Empty dependencies file for xicc_constraints.
# This may be replaced when dependencies are built.
