file(REMOVE_RECURSE
  "libxicc_constraints.a"
)
