file(REMOVE_RECURSE
  "CMakeFiles/xicc_constraints.dir/constraint.cc.o"
  "CMakeFiles/xicc_constraints.dir/constraint.cc.o.d"
  "CMakeFiles/xicc_constraints.dir/constraint_parser.cc.o"
  "CMakeFiles/xicc_constraints.dir/constraint_parser.cc.o.d"
  "CMakeFiles/xicc_constraints.dir/evaluator.cc.o"
  "CMakeFiles/xicc_constraints.dir/evaluator.cc.o.d"
  "CMakeFiles/xicc_constraints.dir/id_idref.cc.o"
  "CMakeFiles/xicc_constraints.dir/id_idref.cc.o.d"
  "libxicc_constraints.a"
  "libxicc_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
