
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraints/constraint.cc" "src/constraints/CMakeFiles/xicc_constraints.dir/constraint.cc.o" "gcc" "src/constraints/CMakeFiles/xicc_constraints.dir/constraint.cc.o.d"
  "/root/repo/src/constraints/constraint_parser.cc" "src/constraints/CMakeFiles/xicc_constraints.dir/constraint_parser.cc.o" "gcc" "src/constraints/CMakeFiles/xicc_constraints.dir/constraint_parser.cc.o.d"
  "/root/repo/src/constraints/evaluator.cc" "src/constraints/CMakeFiles/xicc_constraints.dir/evaluator.cc.o" "gcc" "src/constraints/CMakeFiles/xicc_constraints.dir/evaluator.cc.o.d"
  "/root/repo/src/constraints/id_idref.cc" "src/constraints/CMakeFiles/xicc_constraints.dir/id_idref.cc.o" "gcc" "src/constraints/CMakeFiles/xicc_constraints.dir/id_idref.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xicc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xicc_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xicc_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
