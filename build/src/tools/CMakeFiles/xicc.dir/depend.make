# Empty dependencies file for xicc.
# This may be replaced when dependencies are built.
