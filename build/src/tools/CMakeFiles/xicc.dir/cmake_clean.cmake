file(REMOVE_RECURSE
  "CMakeFiles/xicc.dir/xicc_main.cc.o"
  "CMakeFiles/xicc.dir/xicc_main.cc.o.d"
  "xicc"
  "xicc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
