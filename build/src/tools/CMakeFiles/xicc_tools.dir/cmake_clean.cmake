file(REMOVE_RECURSE
  "CMakeFiles/xicc_tools.dir/cli.cc.o"
  "CMakeFiles/xicc_tools.dir/cli.cc.o.d"
  "libxicc_tools.a"
  "libxicc_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
