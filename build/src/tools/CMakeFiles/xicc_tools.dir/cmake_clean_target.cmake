file(REMOVE_RECURSE
  "libxicc_tools.a"
)
