# Empty dependencies file for xicc_tools.
# This may be replaced when dependencies are built.
