# Empty compiler generated dependencies file for xicc_dtd.
# This may be replaced when dependencies are built.
