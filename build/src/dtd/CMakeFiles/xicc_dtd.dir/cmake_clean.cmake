file(REMOVE_RECURSE
  "CMakeFiles/xicc_dtd.dir/analysis.cc.o"
  "CMakeFiles/xicc_dtd.dir/analysis.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/dtd.cc.o"
  "CMakeFiles/xicc_dtd.dir/dtd.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/dtd_parser.cc.o"
  "CMakeFiles/xicc_dtd.dir/dtd_parser.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/glushkov.cc.o"
  "CMakeFiles/xicc_dtd.dir/glushkov.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/regex.cc.o"
  "CMakeFiles/xicc_dtd.dir/regex.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/simplify.cc.o"
  "CMakeFiles/xicc_dtd.dir/simplify.cc.o.d"
  "CMakeFiles/xicc_dtd.dir/validator.cc.o"
  "CMakeFiles/xicc_dtd.dir/validator.cc.o.d"
  "libxicc_dtd.a"
  "libxicc_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
