
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/analysis.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/analysis.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/analysis.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/dtd.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/dtd.cc.o.d"
  "/root/repo/src/dtd/dtd_parser.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/dtd_parser.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/dtd_parser.cc.o.d"
  "/root/repo/src/dtd/glushkov.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/glushkov.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/glushkov.cc.o.d"
  "/root/repo/src/dtd/regex.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/regex.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/regex.cc.o.d"
  "/root/repo/src/dtd/simplify.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/simplify.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/simplify.cc.o.d"
  "/root/repo/src/dtd/validator.cc" "src/dtd/CMakeFiles/xicc_dtd.dir/validator.cc.o" "gcc" "src/dtd/CMakeFiles/xicc_dtd.dir/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xicc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xicc_xml.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
