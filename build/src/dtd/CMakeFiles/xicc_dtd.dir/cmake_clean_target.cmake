file(REMOVE_RECURSE
  "libxicc_dtd.a"
)
