# Empty dependencies file for xicc_core.
# This may be replaced when dependencies are built.
