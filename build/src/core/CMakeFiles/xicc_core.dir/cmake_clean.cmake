file(REMOVE_RECURSE
  "CMakeFiles/xicc_core.dir/cardinality_encoding.cc.o"
  "CMakeFiles/xicc_core.dir/cardinality_encoding.cc.o.d"
  "CMakeFiles/xicc_core.dir/closure.cc.o"
  "CMakeFiles/xicc_core.dir/closure.cc.o.d"
  "CMakeFiles/xicc_core.dir/conditional_solver.cc.o"
  "CMakeFiles/xicc_core.dir/conditional_solver.cc.o.d"
  "CMakeFiles/xicc_core.dir/consistency.cc.o"
  "CMakeFiles/xicc_core.dir/consistency.cc.o.d"
  "CMakeFiles/xicc_core.dir/encoding_solver.cc.o"
  "CMakeFiles/xicc_core.dir/encoding_solver.cc.o.d"
  "CMakeFiles/xicc_core.dir/implication.cc.o"
  "CMakeFiles/xicc_core.dir/implication.cc.o.d"
  "CMakeFiles/xicc_core.dir/incremental.cc.o"
  "CMakeFiles/xicc_core.dir/incremental.cc.o.d"
  "CMakeFiles/xicc_core.dir/set_representation.cc.o"
  "CMakeFiles/xicc_core.dir/set_representation.cc.o.d"
  "CMakeFiles/xicc_core.dir/spec.cc.o"
  "CMakeFiles/xicc_core.dir/spec.cc.o.d"
  "CMakeFiles/xicc_core.dir/streaming_validator.cc.o"
  "CMakeFiles/xicc_core.dir/streaming_validator.cc.o.d"
  "CMakeFiles/xicc_core.dir/witness.cc.o"
  "CMakeFiles/xicc_core.dir/witness.cc.o.d"
  "libxicc_core.a"
  "libxicc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xicc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
