
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cardinality_encoding.cc" "src/core/CMakeFiles/xicc_core.dir/cardinality_encoding.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/cardinality_encoding.cc.o.d"
  "/root/repo/src/core/closure.cc" "src/core/CMakeFiles/xicc_core.dir/closure.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/closure.cc.o.d"
  "/root/repo/src/core/conditional_solver.cc" "src/core/CMakeFiles/xicc_core.dir/conditional_solver.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/conditional_solver.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/xicc_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/encoding_solver.cc" "src/core/CMakeFiles/xicc_core.dir/encoding_solver.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/encoding_solver.cc.o.d"
  "/root/repo/src/core/implication.cc" "src/core/CMakeFiles/xicc_core.dir/implication.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/implication.cc.o.d"
  "/root/repo/src/core/incremental.cc" "src/core/CMakeFiles/xicc_core.dir/incremental.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/incremental.cc.o.d"
  "/root/repo/src/core/set_representation.cc" "src/core/CMakeFiles/xicc_core.dir/set_representation.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/set_representation.cc.o.d"
  "/root/repo/src/core/spec.cc" "src/core/CMakeFiles/xicc_core.dir/spec.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/spec.cc.o.d"
  "/root/repo/src/core/streaming_validator.cc" "src/core/CMakeFiles/xicc_core.dir/streaming_validator.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/streaming_validator.cc.o.d"
  "/root/repo/src/core/witness.cc" "src/core/CMakeFiles/xicc_core.dir/witness.cc.o" "gcc" "src/core/CMakeFiles/xicc_core.dir/witness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/xicc_base.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xicc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xicc_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/xicc_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/xicc_ilp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
