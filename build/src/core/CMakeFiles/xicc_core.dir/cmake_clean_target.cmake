file(REMOVE_RECURSE
  "libxicc_core.a"
)
