# Empty compiler generated dependencies file for bench_keys_only.
# This may be replaced when dependencies are built.
