file(REMOVE_RECURSE
  "CMakeFiles/bench_keys_only.dir/bench_keys_only.cc.o"
  "CMakeFiles/bench_keys_only.dir/bench_keys_only.cc.o.d"
  "bench_keys_only"
  "bench_keys_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keys_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
