file(REMOVE_RECURSE
  "CMakeFiles/bench_negations.dir/bench_negations.cc.o"
  "CMakeFiles/bench_negations.dir/bench_negations.cc.o.d"
  "bench_negations"
  "bench_negations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_negations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
