# Empty compiler generated dependencies file for bench_negations.
# This may be replaced when dependencies are built.
