file(REMOVE_RECURSE
  "CMakeFiles/bench_undecidable_frontier.dir/bench_undecidable_frontier.cc.o"
  "CMakeFiles/bench_undecidable_frontier.dir/bench_undecidable_frontier.cc.o.d"
  "bench_undecidable_frontier"
  "bench_undecidable_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_undecidable_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
