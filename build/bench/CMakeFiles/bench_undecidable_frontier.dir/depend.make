# Empty dependencies file for bench_undecidable_frontier.
# This may be replaced when dependencies are built.
