# Empty compiler generated dependencies file for bench_unary_consistency.
# This may be replaced when dependencies are built.
