file(REMOVE_RECURSE
  "CMakeFiles/bench_unary_consistency.dir/bench_unary_consistency.cc.o"
  "CMakeFiles/bench_unary_consistency.dir/bench_unary_consistency.cc.o.d"
  "bench_unary_consistency"
  "bench_unary_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unary_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
