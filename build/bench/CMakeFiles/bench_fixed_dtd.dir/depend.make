# Empty dependencies file for bench_fixed_dtd.
# This may be replaced when dependencies are built.
