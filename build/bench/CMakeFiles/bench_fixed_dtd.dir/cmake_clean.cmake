file(REMOVE_RECURSE
  "CMakeFiles/bench_fixed_dtd.dir/bench_fixed_dtd.cc.o"
  "CMakeFiles/bench_fixed_dtd.dir/bench_fixed_dtd.cc.o.d"
  "bench_fixed_dtd"
  "bench_fixed_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fixed_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
