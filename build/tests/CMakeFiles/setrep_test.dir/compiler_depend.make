# Empty compiler generated dependencies file for setrep_test.
# This may be replaced when dependencies are built.
