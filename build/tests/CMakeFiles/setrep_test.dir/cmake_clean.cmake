file(REMOVE_RECURSE
  "CMakeFiles/setrep_test.dir/setrep_test.cc.o"
  "CMakeFiles/setrep_test.dir/setrep_test.cc.o.d"
  "setrep_test"
  "setrep_test.pdb"
  "setrep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setrep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
