# Empty dependencies file for bigint_property_test.
# This may be replaced when dependencies are built.
