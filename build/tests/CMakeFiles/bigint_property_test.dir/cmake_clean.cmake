file(REMOVE_RECURSE
  "CMakeFiles/bigint_property_test.dir/bigint_property_test.cc.o"
  "CMakeFiles/bigint_property_test.dir/bigint_property_test.cc.o.d"
  "bigint_property_test"
  "bigint_property_test.pdb"
  "bigint_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bigint_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
