# Empty dependencies file for id_idref_test.
# This may be replaced when dependencies are built.
