file(REMOVE_RECURSE
  "CMakeFiles/id_idref_test.dir/id_idref_test.cc.o"
  "CMakeFiles/id_idref_test.dir/id_idref_test.cc.o.d"
  "id_idref_test"
  "id_idref_test.pdb"
  "id_idref_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/id_idref_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
