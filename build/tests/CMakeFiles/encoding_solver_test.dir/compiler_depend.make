# Empty compiler generated dependencies file for encoding_solver_test.
# This may be replaced when dependencies are built.
