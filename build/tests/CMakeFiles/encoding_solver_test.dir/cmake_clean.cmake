file(REMOVE_RECURSE
  "CMakeFiles/encoding_solver_test.dir/encoding_solver_test.cc.o"
  "CMakeFiles/encoding_solver_test.dir/encoding_solver_test.cc.o.d"
  "encoding_solver_test"
  "encoding_solver_test.pdb"
  "encoding_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
