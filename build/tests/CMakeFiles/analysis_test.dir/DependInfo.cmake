
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/xicc_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/xicc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/xicc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/xicc_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/ilp/CMakeFiles/xicc_ilp.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/xicc_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/dtd/CMakeFiles/xicc_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/xicc_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/xicc_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
