file(REMOVE_RECURSE
  "CMakeFiles/glushkov_test.dir/glushkov_test.cc.o"
  "CMakeFiles/glushkov_test.dir/glushkov_test.cc.o.d"
  "glushkov_test"
  "glushkov_test.pdb"
  "glushkov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/glushkov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
