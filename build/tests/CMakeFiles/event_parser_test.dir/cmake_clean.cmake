file(REMOVE_RECURSE
  "CMakeFiles/event_parser_test.dir/event_parser_test.cc.o"
  "CMakeFiles/event_parser_test.dir/event_parser_test.cc.o.d"
  "event_parser_test"
  "event_parser_test.pdb"
  "event_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
