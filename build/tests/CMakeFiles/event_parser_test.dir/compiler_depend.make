# Empty compiler generated dependencies file for event_parser_test.
# This may be replaced when dependencies are built.
