# Empty compiler generated dependencies file for witness_generation.
# This may be replaced when dependencies are built.
