file(REMOVE_RECURSE
  "CMakeFiles/witness_generation.dir/witness_generation.cpp.o"
  "CMakeFiles/witness_generation.dir/witness_generation.cpp.o.d"
  "witness_generation"
  "witness_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/witness_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
