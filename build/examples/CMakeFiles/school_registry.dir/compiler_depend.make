# Empty compiler generated dependencies file for school_registry.
# This may be replaced when dependencies are built.
