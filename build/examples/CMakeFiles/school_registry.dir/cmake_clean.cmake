file(REMOVE_RECURSE
  "CMakeFiles/school_registry.dir/school_registry.cpp.o"
  "CMakeFiles/school_registry.dir/school_registry.cpp.o.d"
  "school_registry"
  "school_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/school_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
