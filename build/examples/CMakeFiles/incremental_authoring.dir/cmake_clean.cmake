file(REMOVE_RECURSE
  "CMakeFiles/incremental_authoring.dir/incremental_authoring.cpp.o"
  "CMakeFiles/incremental_authoring.dir/incremental_authoring.cpp.o.d"
  "incremental_authoring"
  "incremental_authoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incremental_authoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
