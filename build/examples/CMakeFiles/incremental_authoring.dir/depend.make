# Empty dependencies file for incremental_authoring.
# This may be replaced when dependencies are built.
