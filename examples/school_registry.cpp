// School registry (the paper's D3, Section 2.2): multi-attribute keys and
// foreign keys. Consistency for this class is undecidable (Theorem 3.1), so
// the static checker refuses — but concrete documents can still be validated
// dynamically, which is exactly what a registry ingest pipeline needs.
//
// Build & run:  ./build/examples/school_registry

#include <cstdio>

#include "core/spec.h"
#include "xml/parser.h"

namespace {

constexpr const char* kDtd = R"(
  <!ELEMENT school (course*, student*, enroll*)>
  <!ELEMENT course (subject)>
  <!ELEMENT student (name)>
  <!ELEMENT enroll EMPTY>
  <!ELEMENT name (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ATTLIST course dept CDATA #REQUIRED course_no CDATA #REQUIRED>
  <!ATTLIST student student_id CDATA #REQUIRED>
  <!ATTLIST enroll student_id CDATA #REQUIRED
                   dept CDATA #REQUIRED course_no CDATA #REQUIRED>
)";

constexpr const char* kConstraints = R"(
  key student(student_id)
  key course(dept, course_no)
  key enroll(student_id, dept, course_no)
  fk enroll(student_id) => student(student_id)
  fk enroll(dept, course_no) => course(dept, course_no)
)";

void Check(const xicc::XmlSpec& spec, const char* label, const char* doc) {
  auto tree = xicc::ParseXml(doc);
  if (!tree.ok()) {
    std::printf("%-22s parse error: %s\n", label,
                tree.status().ToString().c_str());
    return;
  }
  auto report = spec.CheckDocument(*tree);
  std::printf("%-22s %s\n", label, report.conforms ? "OK" : "REJECTED");
  if (!report.conforms) {
    std::printf("  %s\n", report.details.c_str());
  }
}

}  // namespace

int main() {
  auto spec = xicc::XmlSpec::Parse(kDtd, kConstraints);
  if (!spec.ok()) {
    std::fprintf(stderr, "spec error: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  // Static analysis: refused, with the reason.
  auto consistency = spec->CheckConsistent();
  if (!consistency.ok()) {
    std::printf("static analysis: %s\n\n",
                consistency.status().ToString().c_str());
  }

  Check(*spec, "clean registry:", R"(
    <school>
      <course dept="CS" course_no="101"><subject>Databases</subject></course>
      <course dept="CS" course_no="202"><subject>XML</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <student student_id="s2"><name>Lee</name></student>
      <enroll student_id="s1" dept="CS" course_no="101"/>
      <enroll student_id="s2" dept="CS" course_no="202"/>
    </school>)");

  Check(*spec, "duplicate student:", R"(
    <school>
      <student student_id="s1"><name>Kim</name></student>
      <student student_id="s1"><name>Imposter</name></student>
    </school>)");

  Check(*spec, "dangling enrollment:", R"(
    <school>
      <course dept="CS" course_no="101"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="EE" course_no="999"/>
    </school>)");

  Check(*spec, "double enrollment:", R"(
    <school>
      <course dept="CS" course_no="101"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="CS" course_no="101"/>
      <enroll student_id="s1" dept="CS" course_no="101"/>
    </school>)");

  Check(*spec, "schema violation:", R"(
    <school>
      <student student_id="s1"><name>Kim</name></student>
      <course dept="CS" course_no="101"><subject>DB</subject></course>
    </school>)");
  return 0;
}
