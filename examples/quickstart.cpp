// Quickstart: the paper's flagship example (Section 1).
//
// A DTD says every teacher teaches exactly two subjects; the constraints say
// taught_by keys subjects and references teachers. Individually innocuous —
// together unsatisfiable, because the DTD forces |ext(subject)| =
// 2·|ext(teacher)| while the key + foreign key force |ext(subject)| ≤
// |ext(teacher)|. xicc detects this *statically*, before any document
// exists.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/spec.h"
#include "xml/serializer.h"

int main() {
  const char* dtd = R"(
    <!ELEMENT teachers (teacher+)>
    <!ELEMENT teacher (teach, research)>
    <!ELEMENT teach (subject, subject)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT research (#PCDATA)>
    <!ATTLIST teacher name CDATA #REQUIRED>
    <!ATTLIST subject taught_by CDATA #REQUIRED>
  )";
  const char* constraints = R"(
    key teacher(name)
    key subject(taught_by)
    fk subject(taught_by) => teacher(name)
  )";

  auto spec = xicc::XmlSpec::Parse(dtd, constraints);
  if (!spec.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 spec.status().ToString().c_str());
    return 1;
  }
  std::printf("specification parsed: %zu element types, %zu constraints\n",
              spec->dtd.elements().size(), spec->constraints.size());

  auto verdict = spec->CheckConsistent();
  if (!verdict.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 verdict.status().ToString().c_str());
    return 1;
  }
  std::printf("consistent: %s  (class: %s, method: %s)\n",
              verdict->consistent ? "YES" : "NO",
              xicc::ConstraintClassName(verdict->constraint_class),
              verdict->method.c_str());
  if (!verdict->consistent) {
    std::printf("why: %s\n", verdict->explanation.c_str());
  }

  // Drop the subject key — the specification becomes meaningful, and xicc
  // produces an example document proving it.
  auto relaxed = xicc::XmlSpec::Parse(dtd, R"(
    key teacher(name)
    inclusion subject(taught_by) <= teacher(name)
  )");
  auto verdict2 = relaxed->CheckConsistent();
  if (verdict2.ok() && verdict2->consistent && verdict2->witness.has_value()) {
    std::printf("\nrelaxed specification is consistent; witness document:\n%s",
                xicc::SerializeXml(*verdict2->witness).c_str());
  }
  return 0;
}
