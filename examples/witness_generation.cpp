// Witness generation: the constructive side of Theorem 4.1 — when a
// specification is consistent, xicc does not just say "yes": it solves the
// cardinality system Ψ(D,Σ), reads the solution back through the proofs of
// Lemmas 4.4/4.5, and emits an actual XML document that conforms to the DTD
// and satisfies every constraint (including negations, via the Section 5
// region realization). Useful as test-data generation for a schema.
//
// Build & run:  ./build/examples/witness_generation

#include <cstdio>

#include "core/spec.h"
#include "xml/serializer.h"

namespace {

void Demo(const char* title, const char* dtd, const char* constraints) {
  std::printf("=== %s ===\n", title);
  auto spec = xicc::XmlSpec::Parse(dtd, constraints);
  if (!spec.ok()) {
    std::printf("spec error: %s\n\n", spec.status().ToString().c_str());
    return;
  }
  auto result = spec->CheckConsistent();
  if (!result.ok()) {
    std::printf("analysis: %s\n\n", result.status().ToString().c_str());
    return;
  }
  if (!result->consistent) {
    std::printf("inconsistent: %s\n\n", result->explanation.c_str());
    return;
  }
  std::printf("consistent (method %s; system %zu vars / %zu rows)\n",
              result->method.c_str(), result->stats.system_variables,
              result->stats.system_constraints);
  if (result->witness.has_value()) {
    auto check = spec->CheckDocument(*result->witness);
    std::printf("witness (%zu nodes, re-checked: %s):\n%s\n",
                result->witness->size(), check.conforms ? "ok" : "BUG",
                xicc::SerializeXml(*result->witness).c_str());
  }
}

}  // namespace

int main() {
  Demo("ticketing: every booking names a seat, seats are keyed",
       R"(
    <!ELEMENT event (seats, bookings)>
    <!ELEMENT seats (seat, seat, seat)>
    <!ELEMENT bookings (booking*)>
    <!ELEMENT seat EMPTY>
    <!ELEMENT booking EMPTY>
    <!ATTLIST seat no CDATA #REQUIRED>
    <!ATTLIST booking seat_no CDATA #REQUIRED holder CDATA #REQUIRED>
  )",
       R"(
    key seat(no)
    key booking(seat_no)
    fk booking(seat_no) => seat(no)
  )");

  Demo("audit demands a duplicate: negated key forces two copies",
       R"(
    <!ELEMENT log (entry+)>
    <!ELEMENT entry EMPTY>
    <!ATTLIST entry actor CDATA #REQUIRED>
  )",
       R"(
    !key entry(actor)
  )");

  Demo("negated inclusion: staging ids must not all be live ids",
       R"(
    <!ELEMENT sync (live*, staging*)>
    <!ELEMENT live EMPTY>
    <!ELEMENT staging EMPTY>
    <!ATTLIST live id CDATA #REQUIRED>
    <!ATTLIST staging id CDATA #REQUIRED>
  )",
       R"(
    key live(id)
    !inclusion staging(id) <= live(id)
  )");

  Demo("and an impossible one: two subjects per teacher, keyed taught_by",
       R"(
    <!ELEMENT teachers (teacher+)>
    <!ELEMENT teacher (teach, research)>
    <!ELEMENT teach (subject, subject)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT research (#PCDATA)>
    <!ATTLIST teacher name CDATA #REQUIRED>
    <!ATTLIST subject taught_by CDATA #REQUIRED>
  )",
       R"(
    key teacher(name)
    key subject(taught_by)
    fk subject(taught_by) => teacher(name)
  )");
  return 0;
}
