// Data integration via constraint implication (the Section 1 motivation):
// a mediator exports an XML interface described by a DTD + constraints but
// holds no data, so a property needed for query rewriting — e.g. "ref is a
// key of item records" — can only be established by *implication* from the
// published constraints (Theorems 3.5(3), 4.10, 5.4).
//
// Build & run:  ./build/examples/data_integration

#include <cstdio>

#include "core/spec.h"
#include "xml/serializer.h"

int main() {
  // A mediator merging two source feeds into one catalog interface.
  auto spec = xicc::XmlSpec::Parse(R"(
    <!ELEMENT feed (vendors, parts, supplies)>
    <!ELEMENT vendors (vendor*)>
    <!ELEMENT parts (part*)>
    <!ELEMENT supplies (supply*)>
    <!ELEMENT vendor EMPTY>
    <!ELEMENT part EMPTY>
    <!ELEMENT supply EMPTY>
    <!ATTLIST vendor vid CDATA #REQUIRED>
    <!ATTLIST part pid CDATA #REQUIRED maker CDATA #REQUIRED>
    <!ATTLIST supply sid CDATA #REQUIRED item CDATA #REQUIRED>
  )", R"(
    key vendor(vid)
    key part(pid)
    fk part(maker)  => vendor(vid)
    fk supply(item) => part(pid)
    inclusion supply(sid) <= vendor(vid)
  )");
  if (!spec.ok()) {
    std::fprintf(stderr, "spec error: %s\n", spec.status().ToString().c_str());
    return 1;
  }

  // First: is the published interface meaningful at all?
  auto consistency = spec->CheckConsistent();
  if (!consistency.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 consistency.status().ToString().c_str());
    return 1;
  }
  std::printf("interface consistent: %s (method %s)\n\n",
              consistency->consistent ? "yes" : "no",
              consistency->method.c_str());

  // Questions an optimizer would ask:
  const char* queries[] = {
      // Transitivity through the FK chain: supply items resolve to vendors?
      "inclusion supply(item) <= part(pid)",
      // Key propagation: is sid a key of supply? (No — nothing says so.)
      "key supply(sid)",
      // Does every supply sid name a known vendor? (Published directly.)
      "inclusion supply(sid) <= vendor(vid)",
      // Is maker a key of part? (No — two parts may share a maker.)
      "key part(maker)",
      // Composition: part makers are vendor ids.
      "inclusion part(maker) <= vendor(vid)",
  };

  for (const char* query : queries) {
    auto result = spec->Implies(query);
    if (!result.ok()) {
      std::printf("%-45s ERROR %s\n", query,
                  result.status().ToString().c_str());
      continue;
    }
    std::printf("%-45s %s   [%s]\n", query,
                result->implied ? "IMPLIED    " : "NOT implied",
                result->method.c_str());
    if (!result->implied && result->counterexample.has_value()) {
      std::printf("  counterexample (%zu nodes) available\n",
                  result->counterexample->size());
    }
  }
  return 0;
}
