// Incremental specification authoring — the workflow that motivates the
// paper's fixed-DTD PTIME results (Corollary 4.11): the DTD is written
// once, constraints arrive in stages as requirements are discovered, and
// each addition is vetted immediately. Rejections point at the exact
// constraint that would break the specification, *before* any document is
// ever produced against it.
//
// Build & run:  ./build/examples/incremental_authoring

#include <cstdio>

#include "core/incremental.h"
#include "dtd/dtd_parser.h"
#include "constraints/constraint_parser.h"

int main() {
  auto dtd = xicc::ParseDtd(R"(
    <!ELEMENT orders (customer*, order+, invoice*)>
    <!ELEMENT customer EMPTY>
    <!ELEMENT order (line, line)>
    <!ELEMENT line EMPTY>
    <!ELEMENT invoice EMPTY>
    <!ATTLIST customer cid CDATA #REQUIRED>
    <!ATTLIST order oid CDATA #REQUIRED placed_by CDATA #REQUIRED>
    <!ATTLIST line sku CDATA #REQUIRED>
    <!ATTLIST invoice for_order CDATA #REQUIRED>
  )");
  if (!dtd.ok()) {
    std::fprintf(stderr, "dtd: %s\n", dtd.status().ToString().c_str());
    return 1;
  }

  // Requirements arrive one at a time, as they would over the life of a
  // schema. Note the trap: the DTD requires at least one order, and every
  // order has exactly TWO line children — so keying line.sku while also
  // making sku reference orders replays the D1/Σ1 cardinality clash
  // (|lines| = 2·|orders| vs |lines| ≤ |orders| with |orders| ≥ 1).
  const char* additions[] = {
      "key customer(cid)",
      "key order(oid)",
      "fk order(placed_by) => customer(cid)",
      "fk invoice(for_order) => order(oid)",
      "key order(oid)",                     // Duplicate: redundant.
      "key line(sku)",                      // Fine on its own...
      "fk line(sku) => order(oid)",         // ...but |lines| = 2|orders|!
      "inclusion order(oid) <= invoice(for_order)",  // Every order invoiced.
  };

  xicc::IncrementalChecker checker(&*dtd);
  for (const char* text : additions) {
    auto constraint = xicc::ParseConstraint(text);
    if (!constraint.ok()) {
      std::printf("%-46s PARSE ERROR\n", text);
      continue;
    }
    auto result = checker.TryAdd(*constraint);
    if (!result.ok()) {
      std::printf("%-46s ERROR: %s\n", text,
                  result.status().ToString().c_str());
      continue;
    }
    switch (result->outcome) {
      case xicc::IncrementalChecker::Outcome::kAccepted:
        std::printf("%-46s accepted\n", text);
        break;
      case xicc::IncrementalChecker::Outcome::kAcceptedRedundant:
        std::printf("%-46s accepted (redundant: %s)\n", text,
                    result->explanation.c_str());
        break;
      case xicc::IncrementalChecker::Outcome::kRejected:
        std::printf("%-46s REJECTED\n    %s\n", text,
                    result->explanation.c_str());
        break;
    }
  }

  std::printf("\nfinal specification (%zu constraints):\n%s\n",
              checker.accepted().size(),
              checker.accepted().ToString().c_str());
  return 0;
}
