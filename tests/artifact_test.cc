// Differential testing of the CompiledDtd artifact layer: a bundle that
// went through Store → Load must behave EXACTLY like the compile it came
// from — identical verdicts over the spec_session Σ-suite, identical
// semantic digest (so session warm starts see bit-identical inputs), and
// every corrupted/mismatched container must come back kInvalidArgument and
// fall back to a recompile, never UB (the ASan job runs this suite too).

#include "core/artifact.h"

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/serde.h"
#include "constraints/evaluator.h"
#include "core/artifact_cache.h"
#include "core/audit.h"
#include "core/consistency.h"
#include "core/spec_session.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

std::string FreshDir(const std::string& name) {
  // mkdtemp: unique per invocation, so artifacts from a previous test run
  // can never satisfy this run's cold-path expectations.
  std::string pattern = testing::TempDir() + name + ".XXXXXX";
  const char* dir = ::mkdtemp(pattern.data());
  EXPECT_NE(dir, nullptr);
  return pattern;
}

/// Serialize → deserialize (copying decode; no backing) and demand the
/// loaded bundle is semantically identical to the compiled one. Decodes in
/// kDeep mode, so the layer-3 semantic-digest recompute runs on every
/// artifact shape the suite produces — the guarantee that lets the default
/// load path skip it.
std::shared_ptr<const CompiledDtd> RoundTrip(
    const std::shared_ptr<const CompiledDtd>& compiled) {
  auto bytes = SerializeCompiledDtd(*compiled);
  EXPECT_TRUE(bytes.ok()) << bytes.status();
  if (!bytes.ok()) return nullptr;
  auto loaded = DeserializeCompiledDtd(*bytes, /*backing=*/nullptr,
                                       ArtifactVerify::kDeep);
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  if (!loaded.ok()) return nullptr;
  EXPECT_EQ(CompiledDtdDigest(**loaded), CompiledDtdDigest(*compiled));
  EXPECT_EQ((*loaded)->audit_digest, compiled->audit_digest);
  EXPECT_EQ((*loaded)->skeleton_tableau_valid,
            compiled->skeleton_tableau_valid);
  EXPECT_EQ((*loaded)->facts.has_valid_tree, compiled->facts.has_valid_tree);
  EXPECT_EQ((*loaded)->dtd.ToString(), compiled->dtd.ToString());
  return *loaded;
}

/// Fresh pipeline vs. a session over the LOADED artifact: same verdict,
/// class, and method; witnesses re-verified independently.
void ExpectSameVerdict(const Dtd& dtd, SpecSession& session,
                       const ConstraintSet& sigma, const std::string& label) {
  ConsistencyOptions options;
  auto fresh = CheckConsistency(dtd, sigma, options);
  auto via_loaded = session.Check(sigma);
  ASSERT_EQ(fresh.ok(), via_loaded.ok())
      << label << ": fresh=" << fresh.status()
      << " loaded=" << via_loaded.status();
  if (!fresh.ok()) return;
  EXPECT_EQ(fresh->consistent, via_loaded->consistent)
      << label << ": fresh says '" << fresh->explanation
      << "', loaded-artifact session says '" << via_loaded->explanation
      << "'";
  EXPECT_EQ(fresh->constraint_class, via_loaded->constraint_class) << label;
  EXPECT_EQ(fresh->method, via_loaded->method) << label;
  if (via_loaded->witness.has_value()) {
    EXPECT_TRUE(ValidateXml(*via_loaded->witness, dtd).valid) << label;
    EXPECT_TRUE(Evaluate(*via_loaded->witness, sigma).satisfied) << label;
  }
}

void RunSuiteOverLoaded(const Dtd& dtd,
                        const std::vector<ConstraintSet>& suite,
                        const std::string& label) {
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::shared_ptr<const CompiledDtd> loaded = RoundTrip(*compiled);
  ASSERT_NE(loaded, nullptr);
  SpecSession session(loaded, ConsistencyOptions{});
  for (size_t i = 0; i < suite.size(); ++i) {
    ExpectSameVerdict(dtd, session, suite[i],
                      label + "[" + std::to_string(i) + "]");
  }
}

TEST(ArtifactRoundTripTest, CatalogSigmaSuiteVerdictParity) {
  Dtd dtd = workloads::CatalogDtd(3);
  std::vector<ConstraintSet> suite;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    suite.push_back(workloads::RandomUnarySigma(dtd, seed, 3, 2));
  }
  suite.push_back(workloads::CatalogFkChainSigma(3));
  suite.push_back(workloads::AllKeysSigma(dtd));
  suite.push_back(ConstraintSet());
  RunSuiteOverLoaded(dtd, suite, "catalog");
}

TEST(ArtifactRoundTripTest, AuctionSigmaSuiteVerdictParity) {
  Dtd dtd = workloads::AuctionDtd(2);
  std::vector<ConstraintSet> suite;
  suite.push_back(workloads::AuctionSigma(2));
  for (uint64_t seed = 11; seed <= 16; ++seed) {
    suite.push_back(workloads::RandomUnarySigma(dtd, seed, 4, 3));
  }
  RunSuiteOverLoaded(dtd, suite, "auction");
}

TEST(ArtifactRoundTripTest, TeacherAndChainVerdictParity) {
  Dtd teacher = workloads::TeacherDtd();
  RunSuiteOverLoaded(teacher, {workloads::TeacherSigma()}, "teacher");
  Dtd chain = workloads::ChainDtd(5);
  RunSuiteOverLoaded(chain, {workloads::AllKeysSigma(chain)}, "chain");
}

TEST(ArtifactRoundTripTest, MmapLoadPathVerdictParity) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  const std::string dir = FreshDir("artifact_mmap_parity");
  const std::string path = dir + "/" + ArtifactFileName(dtd);
  ASSERT_TRUE(StoreCompiledDtd(**compiled, path).ok());

  ArtifactLoadInfo info;
  auto loaded = LoadCompiledDtd(path, &info, ArtifactVerify::kDeep);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(info.mmap);
  EXPECT_GT(info.bytes, 0u);
  EXPECT_EQ(CompiledDtdDigest(**loaded), CompiledDtdDigest(**compiled));

  SpecSession session(*loaded, ConsistencyOptions{});
  ExpectSameVerdict(dtd, session, workloads::AllKeysSigma(dtd), "mmap keys");
  ExpectSameVerdict(dtd, session, workloads::CatalogFkChainSigma(2),
                    "mmap fk chain");
}

TEST(ArtifactRoundTripTest, ContentHashIsStableAndFileNameVersioned) {
  Dtd dtd = workloads::CatalogDtd(2);
  EXPECT_EQ(DtdContentHash(dtd), DtdContentHash(workloads::CatalogDtd(2)));
  EXPECT_NE(DtdContentHash(dtd), DtdContentHash(workloads::CatalogDtd(3)));
  const std::string name = ArtifactFileName(dtd);
  EXPECT_NE(name.find("-v" + std::to_string(kArtifactFormatVersion) + ".xac"),
            std::string::npos)
      << name;
}

// ---------------------------------------------------------------------------
// Rejection: corrupt and mismatched containers

std::string SerializedCatalog() {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  EXPECT_TRUE(compiled.ok());
  auto bytes = SerializeCompiledDtd(**compiled);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(ArtifactRejectionTest, TruncationAlwaysInvalidArgument) {
  const std::string bytes = SerializedCatalog();
  // Every prefix, stepping fast through the bulk and fine through the
  // header/table region where field boundaries live.
  for (size_t len = 0; len < bytes.size();
       len += (len < 512 ? 1 : 769)) {
    auto loaded =
        DeserializeCompiledDtd(std::string_view(bytes.data(), len));
    ASSERT_FALSE(loaded.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ArtifactRejectionTest, BitFlipsAlwaysInvalidArgument) {
  const std::string bytes = SerializedCatalog();
  // Every header/table byte, then a co-prime stride through the payload —
  // each section digest covers every payload byte, so any stride must trip.
  for (size_t i = 0; i < bytes.size(); i += (i < 512 ? 1 : 131)) {
    std::string mutated = bytes;
    mutated[i] = static_cast<char>(mutated[i] ^ 0x20);
    auto loaded = DeserializeCompiledDtd(mutated);
    ASSERT_FALSE(loaded.ok()) << "undetected flip at byte " << i;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(ArtifactRejectionTest, FormatVersionMismatchIsSpecific) {
  std::string bytes = SerializedCatalog();
  // Header layout: magic(8) endian(4) version(4) — bump the version field.
  bytes[12] = static_cast<char>(bytes[12] + 1);
  auto loaded = DeserializeCompiledDtd(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos)
      << loaded.status();
}

TEST(ArtifactRejectionTest, ForeignEndianHeaderIsSpecific) {
  std::string bytes = SerializedCatalog();
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  auto loaded = DeserializeCompiledDtd(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("foreign-endian"),
            std::string::npos)
      << loaded.status();
}

TEST(ArtifactRejectionTest, EmptyAndGarbageInputs) {
  EXPECT_EQ(DeserializeCompiledDtd("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(DeserializeCompiledDtd("not an artifact at all").status().code(),
            StatusCode::kInvalidArgument);
  const std::string zeros(4096, '\0');
  EXPECT_EQ(DeserializeCompiledDtd(zeros).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ArtifactCache

TEST(ArtifactCacheTest, ColdThenMmapThenMemory) {
  Dtd dtd = workloads::CatalogDtd(2);
  const std::string dir = FreshDir("artifact_cache_tiers");

  ArtifactCache first(ArtifactCache::Options{dir, 4});
  auto cold = first.GetOrCompile(dtd);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->source, ArtifactSource::kCold);
  struct stat st;
  EXPECT_EQ(::stat(first.DiskPathFor(dtd).c_str(), &st), 0)
      << "cold compile must persist the artifact";

  // Same cache instance: memory tier, same shared bundle.
  auto memory = first.GetOrCompile(dtd);
  ASSERT_TRUE(memory.ok());
  EXPECT_EQ(memory->source, ArtifactSource::kMemory);
  EXPECT_EQ(memory->compiled.get(), cold->compiled.get());

  // Fresh cache instance (fresh process, in effect): disk tier via mmap.
  ArtifactCache second(ArtifactCache::Options{dir, 4});
  StageTally tally;
  auto warm = second.GetOrCompile(dtd, &tally);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->source, ArtifactSource::kMmap);
  EXPECT_EQ(CompiledDtdDigest(*warm->compiled),
            CompiledDtdDigest(*cold->compiled));
  EXPECT_EQ(tally.CountFor(Stage::kArtifactLoad), 1u);
  EXPECT_EQ(tally.CountFor(Stage::kArtifactStore), 0u);

  const ArtifactCacheStats stats = second.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.cold_compiles, 0u);
}

TEST(ArtifactCacheTest, CorruptFileRecompilesAndHeals) {
  Dtd dtd = workloads::CatalogDtd(2);
  const std::string dir = FreshDir("artifact_cache_corrupt");
  const std::string path = dir + "/" + ArtifactFileName(dtd);
  {
    ArtifactCache warmup(ArtifactCache::Options{dir, 4});
    ASSERT_TRUE(warmup.GetOrCompile(dtd).ok());
  }
  // Flip one payload byte on disk.
  {
    auto bytes = serde::ReadFileToString(path);
    ASSERT_TRUE(bytes.ok());
    (*bytes)[bytes->size() / 2] ^= 0x01;
    ASSERT_TRUE(serde::WriteFileAtomic(path, *bytes).ok());
  }
  ArtifactCache cache(ArtifactCache::Options{dir, 4});
  auto lookup = cache.GetOrCompile(dtd);
  ASSERT_TRUE(lookup.ok()) << lookup.status();
  EXPECT_EQ(lookup->source, ArtifactSource::kCold);
  EXPECT_EQ(cache.stats().corrupt_rejected, 1u);
  EXPECT_EQ(cache.stats().cold_compiles, 1u);

  // The overwrite healed the file: a third cache loads it warm again.
  ArtifactCache healed(ArtifactCache::Options{dir, 4});
  auto reloaded = healed.GetOrCompile(dtd);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->source, ArtifactSource::kMmap);
}

TEST(ArtifactCacheTest, WrongSlotArtifactCannotServeForeignDtd) {
  Dtd catalog = workloads::CatalogDtd(2);
  Dtd chain = workloads::ChainDtd(3);
  const std::string dir = FreshDir("artifact_cache_wrong_slot");
  {
    ArtifactCache warmup(ArtifactCache::Options{dir, 4});
    ASSERT_TRUE(warmup.GetOrCompile(catalog).ok());
  }
  // Plant the catalog artifact in the chain DTD's slot.
  const std::string catalog_path = dir + "/" + ArtifactFileName(catalog);
  const std::string chain_path = dir + "/" + ArtifactFileName(chain);
  ASSERT_EQ(::rename(catalog_path.c_str(), chain_path.c_str()), 0);

  ArtifactCache cache(ArtifactCache::Options{dir, 4});
  auto lookup = cache.GetOrCompile(chain);
  ASSERT_TRUE(lookup.ok());
  EXPECT_EQ(lookup->source, ArtifactSource::kCold)
      << "a renamed artifact must never serve a foreign DTD";
  EXPECT_EQ(lookup->compiled->dtd.ToString(), chain.ToString());
  EXPECT_EQ(cache.stats().corrupt_rejected, 1u);
}

TEST(ArtifactCacheTest, MemoryOnlyModeNeverTouchesDisk) {
  Dtd dtd = workloads::CatalogDtd(2);
  ArtifactCache cache(ArtifactCache::Options{"", 2});
  EXPECT_EQ(cache.DiskPathFor(dtd), "");
  auto first = cache.GetOrCompile(dtd);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->source, ArtifactSource::kCold);
  auto second = cache.GetOrCompile(dtd);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->source, ArtifactSource::kMemory);
}

TEST(ArtifactCacheTest, LruEvictsLeastRecentlyUsed) {
  ArtifactCache cache(ArtifactCache::Options{"", 2});
  Dtd a = workloads::CatalogDtd(1);
  Dtd b = workloads::CatalogDtd(2);
  Dtd c = workloads::CatalogDtd(3);
  ASSERT_TRUE(cache.GetOrCompile(a).ok());
  ASSERT_TRUE(cache.GetOrCompile(b).ok());
  ASSERT_TRUE(cache.GetOrCompile(a).ok());  // Touch a; b is now LRU.
  ASSERT_TRUE(cache.GetOrCompile(c).ok());  // Evicts b.
  EXPECT_EQ(cache.GetOrCompile(a)->source, ArtifactSource::kMemory);
  EXPECT_EQ(cache.GetOrCompile(b)->source, ArtifactSource::kCold);
}

TEST(ArtifactCacheTest, SourceNamesAreStable) {
  EXPECT_STREQ(ArtifactSourceName(ArtifactSource::kCold), "cold");
  EXPECT_STREQ(ArtifactSourceName(ArtifactSource::kMemory), "memory");
  EXPECT_STREQ(ArtifactSourceName(ArtifactSource::kDiskCache), "disk-cache");
  EXPECT_STREQ(ArtifactSourceName(ArtifactSource::kMmap), "mmap");
}

}  // namespace
}  // namespace xicc
