// Tests for the tree-realizability layer: support connectivity, phantom
// cuts, and the minimum-size feature built on the same machinery.

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/encoding_solver.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

/// The phantom-prone DTD: r → (a | end), a → (a | end).
Result<Dtd> PhantomDtd() {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Union(Regex::Elem("a"), Regex::Elem("end")));
  builder.AddElement("a", Regex::Union(Regex::Elem("a"), Regex::Elem("end")));
  builder.AddElement("end", Regex::Epsilon());
  builder.AddAttribute("a", "id");
  return builder.Build();
}

TEST(EncodingSolverTest, ConnectedSolutionPassesCheck) {
  auto dtd = PhantomDtd();
  ASSERT_TRUE(dtd.ok());
  auto enc = BuildCardinalityEncoding(*dtd, ConstraintSet());
  ASSERT_TRUE(enc.ok());
  EncodingSolveOptions options;
  auto solved = SolveEncodingSystem(*enc, enc->system, options);
  ASSERT_TRUE(solved.ok()) << solved.status();
  ASSERT_TRUE(solved->feasible);
  EXPECT_TRUE(SupportIsConnected(*enc, *solved));
}

TEST(EncodingSolverTest, ForcedCountGetsConnectedSolution) {
  // ext(a) ≥ 3 has phantom solutions (a 3-ring); the cuts must deliver a
  // connected one.
  auto dtd = PhantomDtd();
  ASSERT_TRUE(dtd.ok());
  auto enc = BuildCardinalityEncoding(*dtd, ConstraintSet());
  ASSERT_TRUE(enc.ok());
  enc->system.AddConstraint(LinearExpr::Var(enc->ext_var.at("a")), RelOp::kGe,
                            BigInt(3));
  EncodingSolveOptions options;
  auto solved = SolveEncodingSystem(*enc, enc->system, options);
  ASSERT_TRUE(solved.ok()) << solved.status();
  ASSERT_TRUE(solved->feasible);
  EXPECT_TRUE(SupportIsConnected(*enc, *solved));
  EXPECT_GE(solved->values[enc->ext_var.at("a")], BigInt(3));
}

TEST(EncodingSolverTest, ImpossibleCountStaysInfeasible) {
  // D1: |ext(subject)| is always even; forcing subject = 2·teacher + parity
  // trap via ext(subject) == 3 must come back infeasible, not phantom-SAT.
  Dtd d1 = workloads::TeacherDtd();
  auto enc = BuildCardinalityEncoding(d1, ConstraintSet());
  ASSERT_TRUE(enc.ok());
  enc->system.AddConstraint(LinearExpr::Var(enc->ext_var.at("subject")),
                            RelOp::kEq, BigInt(3));
  EncodingSolveOptions options;
  auto solved = SolveEncodingSystem(*enc, enc->system, options);
  ASSERT_TRUE(solved.ok()) << solved.status();
  EXPECT_FALSE(solved->feasible);
}

// --------------------------------------------------- min_witness_nodes.

TEST(MinWitnessTest, KeysOnlyPathGrowsOnDemand) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet keys;
  keys.Add(Constraint::Key("student", {"student_id"}));
  ConsistencyOptions options;
  options.min_witness_nodes = 25;
  auto result = CheckConsistency(school, keys, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  size_t elements = 0;
  for (NodeId node = 0; node < result->witness->size(); ++node) {
    if (result->witness->IsElement(node)) ++elements;
  }
  EXPECT_GE(elements, 25u);
  EXPECT_TRUE(ValidateXml(*result->witness, school).valid);
  EXPECT_TRUE(Evaluate(*result->witness, keys).satisfied);
}

TEST(MinWitnessTest, UnaryPathRespectsConstraintsAtSize) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(2);
  ConsistencyOptions options;
  options.min_witness_nodes = 30;
  auto result = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  size_t elements = 0;
  for (NodeId node = 0; node < result->witness->size(); ++node) {
    if (result->witness->IsElement(node)) ++elements;
  }
  EXPECT_GE(elements, 30u);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied);
}

TEST(MinWitnessTest, RigidDtdCannotGrow) {
  // A chain DTD has exactly one document; asking for more nodes than it has
  // is honestly infeasible.
  Dtd chain = workloads::ChainDtd(3);  // r + e1..e3 = 4 elements.
  ConsistencyOptions options;
  options.min_witness_nodes = 10;
  auto result = CheckConsistency(chain, ConstraintSet(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);
  EXPECT_NE(result->explanation.find("minimum size"), std::string::npos);
}

TEST(MinWitnessTest, ZeroMeansUnconstrained) {
  Dtd chain = workloads::ChainDtd(3);
  auto result = CheckConsistency(chain, ConstraintSet());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->consistent);
}

}  // namespace
}  // namespace xicc
