// Section 5: unary keys, inclusion constraints, and their negations —
// the region (z_θ) system and its realization (Theorem 5.1, Lemmas 5.2/5.3).

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "core/set_representation.h"
#include "core/conditional_solver.h"
#include "core/encoding_solver.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(SetRepTest, ComponentDecomposition) {
  Dtd dtd = workloads::CatalogDtd(4);
  ConstraintSet sigma;
  // Component A: items 1–2 linked by a negated inclusion.
  sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
  // Component B: items 3–4 linked by a positive inclusion only.
  sigma.Add(Constraint::Inclusion("item3", {"id"}, "item4", {"id"}));
  auto enc = BuildSetRepresentation(dtd, sigma);
  ASSERT_TRUE(enc.ok()) << enc.status();
  ASSERT_EQ(enc->pairs.size(), 4u);
  ASSERT_EQ(enc->components.size(), 2u);
  int regions = 0;
  for (const auto& comp : enc->components) {
    if (comp.needs_regions) {
      ++regions;
      EXPECT_EQ(comp.pair_idx.size(), 2u);
      EXPECT_EQ(comp.z.size(), 3u);  // 2^2 - 1 masks.
    }
  }
  EXPECT_EQ(regions, 1);
}

TEST(SetRepTest, NegInclusionSatisfiableWithWitness) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->constraint_class, ConstraintClass::kUnaryWithNegIc);
  EXPECT_EQ(result->method, "set-representation");
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, dtd).valid);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied)
      << Evaluate(*result->witness, sigma).ToString();
}

TEST(SetRepTest, InclusionAndItsNegationContradict) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);
}

TEST(SetRepTest, TransitiveChainContradiction) {
  // a ⊆ b, b ⊆ c, a ⊄ c is unsatisfiable; drop any link and it flips.
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet chain;
  chain.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  chain.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
  chain.Add(Constraint::NegInclusion("item1", {"id"}, "item3", {"id"}));
  auto result = CheckConsistency(dtd, chain);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);

  ConstraintSet weaker;
  weaker.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  weaker.Add(Constraint::NegInclusion("item1", {"id"}, "item3", {"id"}));
  auto relaxed = CheckConsistency(dtd, weaker);
  ASSERT_TRUE(relaxed.ok());
  EXPECT_TRUE(relaxed->consistent);
  ASSERT_TRUE(relaxed->witness.has_value());
  EXPECT_TRUE(Evaluate(*relaxed->witness, weaker).satisfied);
}

TEST(SetRepTest, MutualNegInclusionsNeedTwoValuesEach) {
  // a ⊄ b and b ⊄ a: both sets need a private value.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::NegInclusion("item2", {"id"}, "item1", {"id"}));
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied);
  EXPECT_GE(result->witness->ExtOfType("item1").size(), 1u);
  EXPECT_GE(result->witness->ExtOfType("item2").size(), 1u);
}

TEST(SetRepTest, NegInclusionImpossibleWhenSourceEmptyForced) {
  // In ChainDtd every element occurs exactly once; e1.id ⊄ e2.id is
  // satisfiable (distinct singletons), but e1.id ⊄ e1.id never is.
  Dtd chain = workloads::ChainDtd(3);
  ConstraintSet self;
  self.Add(Constraint::NegInclusion("e1", {"id"}, "e1", {"id"}));
  auto result = CheckConsistency(chain, self);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);

  ConstraintSet cross;
  cross.Add(Constraint::NegInclusion("e1", {"id"}, "e2", {"id"}));
  auto ok = CheckConsistency(chain, cross);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->consistent);
  ASSERT_TRUE(ok->witness.has_value());
  EXPECT_TRUE(Evaluate(*ok->witness, cross).satisfied);
}

TEST(SetRepTest, KeysInteractWithNegInclusions) {
  // key(item1.id), item1.id ⊆ item2.id, item2.id ⊄ item1.id: item2 must
  // carry strictly more values than item1 — satisfiable.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("item1", {"id"}));
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::NegInclusion("item2", {"id"}, "item1", {"id"}));
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied)
      << Evaluate(*result->witness, sigma).ToString();
  // item2 has strictly more distinct id values than item1.
  EXPECT_GT(result->witness->ExtOfAttribute("item2", "id").size(),
            result->witness->ExtOfAttribute("item1", "id").size());
}

TEST(SetRepTest, ComponentSizeLimitEnforced) {
  Dtd dtd = workloads::CatalogDtd(6);
  ConstraintSet sigma;
  for (int i = 1; i < 6; ++i) {
    sigma.Add(Constraint::NegInclusion("item" + std::to_string(i), {"id"},
                                       "item" + std::to_string(i + 1),
                                       {"id"}));
  }
  ConsistencyOptions options;
  options.set_representation.max_component_pairs = 3;
  auto result = CheckConsistency(dtd, sigma, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(SetRepTest, RealizedSetsMatchTheUVMatrices) {
  // Lemma 5.2's set representation, verified concretely: solve the region
  // system, realize the value sets, and check that u_ij = |A_i ∩ A_j| and
  // v_ij = |A_i \ A_j| reconstructed from the z_θ solution match the
  // realized sets exactly.
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::NegInclusion("item3", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::NegInclusion("item2", {"id"}, "item1", {"id"}));
  auto enc = BuildSetRepresentation(dtd, sigma.Normalize());
  ASSERT_TRUE(enc.ok()) << enc.status();

  EncodingSolveOptions options;
  auto solved =
      SolveEncodingSystem(enc->base, enc->base.system, options);
  ASSERT_TRUE(solved.ok()) << solved.status();
  ASSERT_TRUE(solved->feasible);
  auto sets = RealizeValueSets(*enc, *solved);
  ASSERT_TRUE(sets.ok()) << sets.status();

  for (const auto& comp : enc->components) {
    if (!comp.needs_regions) continue;
    const size_t k = comp.pair_idx.size();
    const size_t num_masks = (size_t{1} << k) - 1;
    // Realized sets per member pair, as std::set for intersection math.
    std::vector<std::set<std::string>> a(k);
    for (size_t i = 0; i < k; ++i) {
      const auto& values = sets->at(enc->pairs[comp.pair_idx[i]]);
      a[i] = std::set<std::string>(values.begin(), values.end());
    }
    for (size_t i = 0; i < k; ++i) {
      for (size_t j = 0; j < k; ++j) {
        // Reconstruct u_ij and v_ij from the z_θ solution.
        BigInt u(0), v(0);
        for (size_t mask = 1; mask <= num_masks; ++mask) {
          bool has_i = mask & (size_t{1} << i);
          bool has_j = mask & (size_t{1} << j);
          const BigInt& z = solved->values[comp.z[mask - 1]];
          if (has_i && has_j) u += z;
          if (has_i && !has_j) v += z;
        }
        size_t inter = 0, diff = 0;
        for (const std::string& value : a[i]) {
          if (a[j].count(value) > 0) {
            ++inter;
          } else {
            ++diff;
          }
        }
        EXPECT_EQ(u, BigInt(static_cast<int64_t>(inter)))
            << "u[" << i << "][" << j << "]";
        EXPECT_EQ(v, BigInt(static_cast<int64_t>(diff)))
            << "v[" << i << "][" << j << "]";
        // v_ii = 0 (Lemma 5.2's system demands it).
        if (i == j) EXPECT_EQ(v, BigInt(0));
      }
    }
  }
}

TEST(SetRepTest, ImplicationOfUnaryKeysViaSection5) {
  // Theorem 5.4 exercise: Σ = {a.id ⊆ b.id, b.id → b} over the catalog.
  // Does Σ imply a.id → a? Only if the DTD caps duplicates — it does not
  // (items repeat under a star), and two a-items may share an id. Not
  // implied; counterexample checked.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::ForeignKey("item1", {"id"}, "item2", {"id"}));
  auto result = CheckImplication(dtd, sigma,
                                 Constraint::Key("item1", {"id"}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->implied);
  ASSERT_TRUE(result->counterexample.has_value());
  EXPECT_FALSE(
      Evaluate(*result->counterexample, Constraint::Key("item1", {"id"}))
          .satisfied);
}

}  // namespace
}  // namespace xicc
