#include <gtest/gtest.h>

#include <random>

#include "dtd/glushkov.h"

namespace xicc {
namespace {

using Word = std::vector<std::string>;

TEST(GlushkovTest, EpsilonAcceptsOnlyEmpty) {
  ContentModelMatcher m(Regex::Epsilon());
  EXPECT_TRUE(m.Matches({}));
  EXPECT_FALSE(m.Matches({"a"}));
}

TEST(GlushkovTest, SingleSymbol) {
  ContentModelMatcher m(Regex::Elem("a"));
  EXPECT_TRUE(m.Matches({"a"}));
  EXPECT_FALSE(m.Matches({}));
  EXPECT_FALSE(m.Matches({"b"}));
  EXPECT_FALSE(m.Matches({"a", "a"}));
}

TEST(GlushkovTest, StringType) {
  ContentModelMatcher m(Regex::Str());
  EXPECT_TRUE(m.Matches({"S"}));
  EXPECT_FALSE(m.Matches({}));
}

TEST(GlushkovTest, Concat) {
  ContentModelMatcher m(
      Regex::Concat(Regex::Elem("a"), Regex::Elem("b")));
  EXPECT_TRUE(m.Matches({"a", "b"}));
  EXPECT_FALSE(m.Matches({"b", "a"}));
  EXPECT_FALSE(m.Matches({"a"}));
  EXPECT_FALSE(m.Matches({"a", "b", "b"}));
}

TEST(GlushkovTest, Union) {
  ContentModelMatcher m(Regex::Union(Regex::Elem("a"), Regex::Elem("b")));
  EXPECT_TRUE(m.Matches({"a"}));
  EXPECT_TRUE(m.Matches({"b"}));
  EXPECT_FALSE(m.Matches({}));
  EXPECT_FALSE(m.Matches({"a", "b"}));
}

TEST(GlushkovTest, Star) {
  ContentModelMatcher m(Regex::Star(Regex::Elem("a")));
  EXPECT_TRUE(m.Matches({}));
  EXPECT_TRUE(m.Matches({"a"}));
  EXPECT_TRUE(m.Matches({"a", "a", "a", "a"}));
  EXPECT_FALSE(m.Matches({"a", "b"}));
}

TEST(GlushkovTest, TeacherPlus) {
  // teacher, teacher* — i.e. teacher+.
  ContentModelMatcher m(Regex::Concat(Regex::Elem("teacher"),
                                      Regex::Star(Regex::Elem("teacher"))));
  EXPECT_FALSE(m.Matches({}));
  EXPECT_TRUE(m.Matches({"teacher"}));
  EXPECT_TRUE(m.Matches({"teacher", "teacher", "teacher"}));
}

TEST(GlushkovTest, NestedAmbiguity) {
  // (a | a,b), b  — matching "a b" can take either branch; "a b b" only one.
  RegexPtr r = Regex::Concat(
      Regex::Union(Regex::Elem("a"),
                   Regex::Concat(Regex::Elem("a"), Regex::Elem("b"))),
      Regex::Elem("b"));
  ContentModelMatcher m(r);
  EXPECT_TRUE(m.Matches({"a", "b"}));
  EXPECT_TRUE(m.Matches({"a", "b", "b"}));
  EXPECT_FALSE(m.Matches({"a"}));
  EXPECT_FALSE(m.Matches({"a", "b", "b", "b"}));
}

TEST(GlushkovTest, StarOfUnionMixed) {
  // (#PCDATA | a)* — classic mixed content.
  ContentModelMatcher m(
      Regex::Star(Regex::Union(Regex::Str(), Regex::Elem("a"))));
  EXPECT_TRUE(m.Matches({}));
  EXPECT_TRUE(m.Matches({"S", "a", "S", "S", "a"}));
  EXPECT_FALSE(m.Matches({"b"}));
}

TEST(GlushkovTest, NullableConcatOfStars) {
  ContentModelMatcher m(Regex::Concat(Regex::Star(Regex::Elem("a")),
                                      Regex::Star(Regex::Elem("b"))));
  EXPECT_TRUE(m.Matches({}));
  EXPECT_TRUE(m.Matches({"a", "a"}));
  EXPECT_TRUE(m.Matches({"b", "b"}));
  EXPECT_TRUE(m.Matches({"a", "b"}));
  EXPECT_FALSE(m.Matches({"b", "a"}));
}

// Reference matcher: naive recursive language membership via derivative-free
// splitting (exponential; used only on tiny inputs for cross-checking).
bool SlowMatch(const Regex& r, const Word& w, size_t lo, size_t hi) {
  switch (r.kind()) {
    case Regex::Kind::kEpsilon:
      return lo == hi;
    case Regex::Kind::kString:
      return hi - lo == 1 && w[lo] == "S";
    case Regex::Kind::kElement:
      return hi - lo == 1 && w[lo] == r.name();
    case Regex::Kind::kUnion:
      return SlowMatch(*r.left(), w, lo, hi) ||
             SlowMatch(*r.right(), w, lo, hi);
    case Regex::Kind::kConcat:
      for (size_t mid = lo; mid <= hi; ++mid) {
        if (SlowMatch(*r.left(), w, lo, mid) &&
            SlowMatch(*r.right(), w, mid, hi)) {
          return true;
        }
      }
      return false;
    case Regex::Kind::kStar:
      if (lo == hi) return true;
      for (size_t mid = lo + 1; mid <= hi; ++mid) {
        if (SlowMatch(*r.child(), w, lo, mid) &&
            SlowMatch(r, w, mid, hi)) {
          return true;
        }
      }
      return false;
  }
  return false;
}

/// Random regex over alphabet {a, b, S}.
RegexPtr RandomRegex(std::mt19937_64* rng, int depth) {
  std::uniform_int_distribution<int> dist(0, depth <= 0 ? 2 : 5);
  switch (dist(*rng)) {
    case 0:
      return Regex::Elem("a");
    case 1:
      return Regex::Elem("b");
    case 2:
      return (*rng)() % 2 ? Regex::Str() : Regex::Epsilon();
    case 3:
      return Regex::Union(RandomRegex(rng, depth - 1),
                          RandomRegex(rng, depth - 1));
    case 4:
      return Regex::Concat(RandomRegex(rng, depth - 1),
                           RandomRegex(rng, depth - 1));
    default:
      return Regex::Star(RandomRegex(rng, depth - 1));
  }
}

class GlushkovPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GlushkovPropertyTest, AgreesWithReferenceMatcher) {
  std::mt19937_64 rng(GetParam());
  const std::vector<std::string> alphabet = {"a", "b", "S"};
  for (int trial = 0; trial < 40; ++trial) {
    RegexPtr r = RandomRegex(&rng, 3);
    ContentModelMatcher fast(r);
    // All words up to length 4 over the alphabet.
    std::vector<Word> words = {{}};
    for (int len = 0; len < 4; ++len) {
      size_t start = words.size();
      for (size_t i = 0; i < start; ++i) {
        if (words[i].size() != static_cast<size_t>(len)) continue;
        for (const auto& sym : alphabet) {
          Word next = words[i];
          next.push_back(sym);
          words.push_back(std::move(next));
        }
      }
    }
    for (const Word& w : words) {
      EXPECT_EQ(fast.Matches(w), SlowMatch(*r, w, 0, w.size()))
          << r->ToString() << " on word of length " << w.size();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GlushkovPropertyTest,
                         ::testing::Values(3u, 17u, 2024u));

}  // namespace
}  // namespace xicc
