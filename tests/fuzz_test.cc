// Robustness sweeps: the parsers must return error statuses — never crash,
// hang, or accept garbage silently — on mutated and random inputs.

#include <gtest/gtest.h>

#include <random>
#include <string>

#include "constraints/constraint_parser.h"
#include "dtd/dtd_parser.h"
#include "xml/parser.h"

namespace xicc {
namespace {

const char* kSeedXml =
    "<teachers><teacher name=\"Joe\"><teach><subject taught_by=\"Joe\">XML"
    "</subject><subject taught_by=\"Joe\">DB</subject></teach>"
    "<research>R&amp;D</research></teacher></teachers>";

const char* kSeedDtd =
    "<!ELEMENT teachers (teacher+)>\n"
    "<!ELEMENT teacher (teach, research)>\n"
    "<!ELEMENT teach (subject, subject)>\n"
    "<!ELEMENT subject (#PCDATA)>\n"
    "<!ELEMENT research (#PCDATA)>\n"
    "<!ATTLIST teacher name CDATA #REQUIRED>\n"
    "<!ATTLIST subject taught_by IDREF #REQUIRED>\n";

const char* kSeedSigma =
    "key teacher(name)\n"
    "fk subject(taught_by) => teacher(name)\n"
    "!inclusion subject(taught_by) <= teacher(name)\n";

std::string Mutate(const std::string& input, std::mt19937_64* rng) {
  std::string out = input;
  std::uniform_int_distribution<int> op_dist(0, 3);
  std::uniform_int_distribution<size_t> pos_dist(0, out.size());
  // ASCII printable plus a few hostile bytes.
  const std::string alphabet = "<>&\"'()|,*#!x0 \t\n\x01\x7f";
  std::uniform_int_distribution<size_t> chr_dist(0, alphabet.size() - 1);
  int mutations = 1 + static_cast<int>((*rng)() % 4);
  for (int i = 0; i < mutations; ++i) {
    if (out.empty()) break;
    size_t pos = pos_dist(*rng) % out.size();
    switch (op_dist(*rng)) {
      case 0:  // Flip a character.
        out[pos] = alphabet[chr_dist(*rng)];
        break;
      case 1:  // Delete a span.
        out.erase(pos, 1 + (*rng)() % 5);
        break;
      case 2:  // Duplicate a span.
        out.insert(pos, out.substr(pos, 1 + (*rng)() % 8));
        break;
      default:  // Insert noise.
        out.insert(pos, 1, alphabet[chr_dist(*rng)]);
        break;
    }
  }
  return out;
}

class FuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzTest, XmlParserNeverCrashes) {
  std::mt19937_64 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = Mutate(kSeedXml, &rng);
    auto tree = ParseXml(input);  // Must return, ok or not.
    if (tree.ok()) {
      // Accepted documents must be internally consistent.
      EXPECT_GE(tree->size(), 1u);
      EXPECT_TRUE(tree->IsElement(tree->root()));
    }
  }
}

TEST_P(FuzzTest, DtdParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 31 + 1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = Mutate(kSeedDtd, &rng);
    auto dtd = ParseDtd(input);
    if (dtd.ok()) {
      EXPECT_FALSE(dtd->elements().empty());
      EXPECT_TRUE(dtd->HasElement(dtd->root()));
    }
  }
}

TEST_P(FuzzTest, ConstraintParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 17 + 5);
  for (int trial = 0; trial < 200; ++trial) {
    std::string input = Mutate(kSeedSigma, &rng);
    auto sigma = ParseConstraints(input);
    if (sigma.ok()) {
      for (const Constraint& c : sigma->constraints()) {
        EXPECT_FALSE(c.type1.empty());
        EXPECT_FALSE(c.attrs1.empty());
      }
    }
  }
}

TEST_P(FuzzTest, RandomBytesRejectedGracefully) {
  std::mt19937_64 rng(GetParam() * 101 + 7);
  std::uniform_int_distribution<int> byte_dist(1, 126);
  for (int trial = 0; trial < 100; ++trial) {
    std::string input;
    size_t len = (rng() % 300);
    input.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(byte_dist(rng)));
    }
    (void)ParseXml(input);
    (void)ParseDtd(input);
    (void)ParseConstraints(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace xicc
