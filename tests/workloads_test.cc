#include <gtest/gtest.h>

#include "dtd/analysis.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace workloads {
namespace {

TEST(WorkloadsTest, PaperExamplesWellFormed) {
  EXPECT_EQ(TeacherDtd().root(), "teachers");
  EXPECT_EQ(InfiniteDtd().root(), "db");
  EXPECT_EQ(SchoolDtd().root(), "school");
  EXPECT_EQ(TeacherSigma().size(), 3u);
  EXPECT_EQ(SchoolSigma().size(), 5u);
  EXPECT_TRUE(TeacherSigma().CheckAgainst(TeacherDtd()).ok());
  EXPECT_TRUE(SchoolSigma().CheckAgainst(SchoolDtd()).ok());
}

TEST(WorkloadsTest, ChainAndWideScaleLinearly) {
  Dtd chain10 = ChainDtd(10);
  Dtd chain20 = ChainDtd(20);
  EXPECT_TRUE(DtdHasValidTree(chain10));
  EXPECT_GT(chain20.Size(), chain10.Size());
  EXPECT_EQ(chain10.elements().size(), 11u);  // r + e1..e10.

  Dtd wide = WideDtd(7);
  EXPECT_TRUE(DtdHasValidTree(wide));
  EXPECT_EQ(wide.elements().size(), 8u);
}

TEST(WorkloadsTest, CatalogShape) {
  Dtd catalog = CatalogDtd(3);
  EXPECT_TRUE(DtdHasValidTree(catalog));
  EXPECT_TRUE(catalog.HasAttribute("item2", "id"));
  EXPECT_TRUE(catalog.HasAttribute("item2", "ref"));
  EXPECT_TRUE(CanHaveTwo(catalog, "item1"));
  ConstraintSet sigma = CatalogFkChainSigma(3);
  EXPECT_TRUE(sigma.CheckAgainst(catalog).ok());
  EXPECT_EQ(sigma.size(), 5u);  // 3 keys + 2 FKs.
}

TEST(WorkloadsTest, AllKeysSigmaCoversAttributedTypes) {
  Dtd school = SchoolDtd();
  ConstraintSet keys = AllKeysSigma(school);
  EXPECT_EQ(keys.size(), 3u);  // course, student, enroll.
  EXPECT_EQ(keys.Classify(), ConstraintClass::kKeysOnly);
}

TEST(WorkloadsTest, RandomDtdAlwaysProductive) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Dtd dtd = RandomDtd(seed, 15, 2);
    EXPECT_TRUE(DtdHasValidTree(dtd)) << "seed " << seed;
  }
}

TEST(WorkloadsTest, RandomDtdDeterministic) {
  Dtd a = RandomDtd(7, 10, 1);
  Dtd b = RandomDtd(7, 10, 1);
  EXPECT_EQ(a.ToString(), b.ToString());
  Dtd c = RandomDtd(8, 10, 1);
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(WorkloadsTest, RandomSigmaChecksOut) {
  Dtd dtd = RandomDtd(3, 12, 2);
  ConstraintSet sigma = RandomUnarySigma(dtd, 11, 4, 3);
  EXPECT_EQ(sigma.size(), 7u);
  EXPECT_TRUE(sigma.CheckAgainst(dtd).ok());
  for (const Constraint& c : sigma.constraints()) {
    EXPECT_TRUE(c.IsUnary());
  }
}

TEST(WorkloadsTest, LipInstanceInvariants) {
  BinaryLipInstance instance = RandomLip(5, 6, 8, 3);
  EXPECT_EQ(instance.rows, 6u);
  EXPECT_EQ(instance.cols, 8u);
  for (size_t i = 0; i < instance.rows; ++i) {
    size_t ones = 0;
    for (size_t j = 0; j < instance.cols; ++j) {
      if (instance.At(i, j)) ++ones;
    }
    EXPECT_EQ(ones, 3u);
  }
}

TEST(WorkloadsTest, LipBruteForce) {
  BinaryLipInstance sat;
  sat.rows = 2;
  sat.cols = 3;
  // Rows {x1,x2}, {x2,x3}: x2=1 alone solves both.
  sat.a = {1, 1, 0, 0, 1, 1};
  EXPECT_TRUE(LipHasBinarySolution(sat));

  BinaryLipInstance unsat;
  unsat.rows = 3;
  unsat.cols = 2;
  unsat.a = {1, 0, 0, 1, 1, 1};
  EXPECT_FALSE(LipHasBinarySolution(unsat));
}

TEST(WorkloadsTest, LipEncodingStructure) {
  BinaryLipInstance instance = RandomLip(1, 3, 4, 2);
  LipEncoding enc = EncodeLipAsConsistency(instance);
  EXPECT_TRUE(DtdHasValidTree(enc.dtd));
  EXPECT_TRUE(enc.sigma.CheckAgainst(enc.dtd).ok());
  // Unary constraints only: the Theorem 4.7 gadget lives in C^unary_{K,FK}.
  EXPECT_EQ(enc.sigma.Classify(), ConstraintClass::kUnaryKeyFk);
}

}  // namespace
}  // namespace workloads
}  // namespace xicc
