// The streaming validator must agree with the tree-based pipeline
// (ParseXml + ValidateXml + Evaluate) on every document: hand-picked cases
// covering each problem type, witnesses from the checker, and random
// mutations.

#include <gtest/gtest.h>

#include <random>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/streaming_validator.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xicc {
namespace {

/// Tree-based verdict for comparison.
bool TreeVerdict(const std::string& xml, const Dtd& dtd,
                 const ConstraintSet& sigma, bool* parse_ok) {
  auto tree = ParseXml(xml);
  *parse_ok = tree.ok();
  if (!tree.ok()) return false;
  return ValidateXml(*tree, dtd).valid && Evaluate(*tree, sigma).satisfied;
}

void ExpectAgreement(const std::string& xml, const Dtd& dtd,
                     const ConstraintSet& sigma, const char* label) {
  bool parse_ok = false;
  bool tree_verdict = TreeVerdict(xml, dtd, sigma, &parse_ok);
  auto stream = ValidateStream(xml, dtd, sigma);
  if (!parse_ok) {
    EXPECT_FALSE(stream.ok()) << label;
    return;
  }
  ASSERT_TRUE(stream.ok()) << label << ": " << stream.status();
  EXPECT_EQ(stream->conforms, tree_verdict)
      << label << "\nstreaming said:\n"
      << stream->ToString() << "\ndocument:\n"
      << xml;
}

TEST(StreamingTest, Figure1Document) {
  const char* xml = R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>Web DB</research>
      </teacher>
    </teachers>)";
  Dtd d1 = workloads::TeacherDtd();
  // DTD-valid…
  ConstraintSet empty;
  auto stream = ValidateStream(xml, d1, empty);
  ASSERT_TRUE(stream.ok());
  EXPECT_TRUE(stream->conforms) << stream->ToString();
  EXPECT_EQ(stream->elements_seen, 6u);
  // …but Σ1-violating (the subject key), and the streaming pass says why.
  auto with_sigma = ValidateStream(xml, d1, workloads::TeacherSigma());
  ASSERT_TRUE(with_sigma.ok());
  EXPECT_FALSE(with_sigma->conforms);
  EXPECT_NE(with_sigma->ToString().find("share key value"),
            std::string::npos);
}

TEST(StreamingTest, ProblemTaxonomy) {
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma();
  struct Case {
    const char* label;
    const char* xml;
  };
  Case cases[] = {
      {"wrong root", "<nope/>"},
      {"undeclared element", "<teachers><intruder/></teachers>"},
      {"content model dead end",
       "<teachers><teacher name='x'><research>r</research>"
       "<teach><subject taught_by='x'>s</subject>"
       "<subject taught_by='y'>s</subject></teach></teacher></teachers>"},
      {"content model stops short",
       "<teachers><teacher name='x'><teach>"
       "<subject taught_by='x'>s</subject></teach>"
       "<research>r</research></teacher></teachers>"},
      {"missing attribute",
       "<teachers><teacher><teach><subject taught_by='x'>s</subject>"
       "<subject taught_by='y'>s</subject></teach>"
       "<research>r</research></teacher></teachers>"},
      {"undeclared attribute",
       "<teachers><teacher name='x' age='9'><teach>"
       "<subject taught_by='x'>s</subject>"
       "<subject taught_by='y'>s</subject></teach>"
       "<research>r</research></teacher></teachers>"},
      {"dangling foreign key",
       "<teachers><teacher name='x'><teach>"
       "<subject taught_by='ghost'>s</subject>"
       "<subject taught_by='x'>s</subject></teach>"
       "<research>r</research></teacher></teachers>"},
  };
  for (const Case& c : cases) {
    ExpectAgreement(c.xml, d1, sigma, c.label);
    auto stream = ValidateStream(c.xml, d1, sigma);
    ASSERT_TRUE(stream.ok()) << c.label;
    EXPECT_FALSE(stream->conforms) << c.label;
  }
}

TEST(StreamingTest, NegationsNeedWholeDocument) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::NegKey("item1", {"id"}));
  sigma.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));

  // Duplicates present + a dangling value: both negations satisfied.
  ExpectAgreement(
      "<catalog><section1><item1 id='a' ref='r'/><item1 id='a' ref='r'/>"
      "</section1><section2><item2 id='b' ref='r'/></section2></catalog>",
      dtd, sigma, "negations satisfied");
  // All unique and covered: both negations violated.
  ExpectAgreement(
      "<catalog><section1><item1 id='a' ref='r'/></section1>"
      "<section2><item2 id='a' ref='r'/></section2></catalog>",
      dtd, sigma, "negations violated");
}

TEST(StreamingTest, MultiAttributeConstraints) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet sigma = workloads::SchoolSigma();
  ExpectAgreement(R"(
    <school>
      <course dept="CS" course_no="1"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="CS" course_no="1"/>
    </school>)", school, sigma, "clean school");
  ExpectAgreement(R"(
    <school>
      <course dept="CS" course_no="1"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="EE" course_no="9"/>
    </school>)", school, sigma, "dangling enrollment");
  ExpectAgreement(R"(
    <school>
      <student student_id="s1"><name>A</name></student>
      <student student_id="s1"><name>B</name></student>
    </school>)", school, sigma, "duplicate student");
}

TEST(StreamingTest, CheckerWitnessesAlwaysConform) {
  for (size_t n : {1, 2, 4}) {
    Dtd dtd = workloads::AuctionDtd(n);
    ConstraintSet sigma = workloads::AuctionSigma(n);
    ConsistencyOptions options;
    options.min_witness_nodes = 12 * n;
    auto result = CheckConsistency(dtd, sigma, options);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_TRUE(result->witness.has_value());
    std::string xml = SerializeXml(*result->witness);
    auto stream = ValidateStream(xml, dtd, sigma);
    ASSERT_TRUE(stream.ok()) << stream.status();
    EXPECT_TRUE(stream->conforms) << stream->ToString();
  }
}

class StreamingDifferentialTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(StreamingDifferentialTest, AgreesWithTreePipelineUnderMutation) {
  std::mt19937_64 rng(GetParam());
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma();
  const std::string seed_doc =
      "<teachers><teacher name=\"a\"><teach>"
      "<subject taught_by=\"a\">x</subject>"
      "<subject taught_by=\"b\">y</subject></teach>"
      "<research>r</research></teacher>"
      "<teacher name=\"b\"><teach>"
      "<subject taught_by=\"c\">x</subject>"
      "<subject taught_by=\"d\">y</subject></teach>"
      "<research>r</research></teacher></teachers>";
  // Structured mutations that usually keep the document well-formed:
  // attribute value swaps, element duplication, subtree deletion.
  for (int trial = 0; trial < 40; ++trial) {
    std::string doc = seed_doc;
    // Swap two quoted values.
    std::vector<size_t> quotes;
    for (size_t i = 0; i < doc.size(); ++i) {
      if (doc[i] == '"') quotes.push_back(i);
    }
    if (quotes.size() >= 4) {
      size_t a = (rng() % (quotes.size() / 2)) * 2;
      size_t b = (rng() % (quotes.size() / 2)) * 2;
      std::string va = doc.substr(quotes[a] + 1, quotes[a + 1] - quotes[a] - 1);
      std::string vb = doc.substr(quotes[b] + 1, quotes[b + 1] - quotes[b] - 1);
      if (va.size() == vb.size()) {
        for (size_t i = 0; i < va.size(); ++i) {
          std::swap(doc[quotes[a] + 1 + i], doc[quotes[b] + 1 + i]);
        }
      }
    }
    ExpectAgreement(doc, d1, sigma, "mutated");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingDifferentialTest,
                         ::testing::Values(1u, 7u, 23u, 99u));

}  // namespace
}  // namespace xicc
