// base/serde is the tree's only byte-reinterpretation layer, so this suite
// is adversarial by design: every header field, every checksum, every
// truncation point must turn into Status::kInvalidArgument — never UB, never
// a silently wrong decode. The ASan/UBSan CI job runs these same tests over
// hostile inputs.

#include "base/serde.h"

#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "base/faults.h"

namespace xicc {
namespace {

constexpr char kMagic[serde::kMagicSize] = {'T', 'E', 'S', 'T',
                                            'F', 'M', 'T', '1'};
constexpr uint32_t kVersion = 3;
constexpr uint64_t kKey = 0xfeedfacecafebeefULL;

struct Record {
  int32_t a;
  int32_t b;
};

std::string BuildContainer() {
  serde::Writer w(kMagic, kVersion, kKey);
  w.BeginSection(1);
  w.U8(7);
  w.U32(0xdeadbeef);
  w.U64(1ULL << 40);
  w.I64(-5);
  w.F64(2.5);
  w.Bool(true);
  w.Str("hello, artifact");
  w.EndSection();
  w.BeginSection(2);
  const std::vector<Record> records = {{1, -2}, {3, -4}, {5, -6}};
  w.FlatArray(records.data(), records.size());
  w.EndSection();
  return std::move(w).Finish();
}

TEST(SerdeTest, RoundTripScalarsAndFlatArrays) {
  const std::string bytes = BuildContainer();
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->content_key(), kKey);
  EXPECT_TRUE(reader->HasSection(1));
  EXPECT_TRUE(reader->HasSection(2));
  EXPECT_FALSE(reader->HasSection(3));

  auto c1 = reader->Section(1, "scalars");
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(c1->U8(), 7);
  EXPECT_EQ(c1->U32(), 0xdeadbeefu);
  EXPECT_EQ(c1->U64(), 1ULL << 40);
  EXPECT_EQ(c1->I64(), -5);
  EXPECT_EQ(c1->F64(), 2.5);
  EXPECT_TRUE(c1->Bool());
  EXPECT_EQ(c1->Str(), "hello, artifact");
  EXPECT_TRUE(c1->Finish().ok()) << c1->Finish();

  auto c2 = reader->Section(2, "records");
  ASSERT_TRUE(c2.ok());
  size_t count = 0;
  const Record* records = c2->FlatArray<Record>(&count, 3);
  ASSERT_NE(records, nullptr) << c2->status();
  ASSERT_EQ(count, 3u);
  EXPECT_EQ(records[1].a, 3);
  EXPECT_EQ(records[2].b, -6);
  EXPECT_TRUE(c2->Finish().ok());
}

TEST(SerdeTest, FlatArrayCountMismatchFails) {
  const std::string bytes = BuildContainer();
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(reader.ok());
  auto cursor = reader->Section(2, "records");
  ASSERT_TRUE(cursor.ok());
  size_t count = 0;
  EXPECT_EQ(cursor->FlatArray<Record>(&count, 4), nullptr);
  EXPECT_EQ(cursor->status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, CursorIsStickyAndNeverReadsOutOfBounds) {
  serde::Cursor cursor(std::string_view("\x01\x02", 2), "tiny");
  EXPECT_EQ(cursor.U8(), 1);
  // This read overruns; it and everything after must return defaults.
  EXPECT_EQ(cursor.U32(), 0u);
  EXPECT_EQ(cursor.U64(), 0u);
  EXPECT_EQ(cursor.Str(), "");
  size_t count = 77;
  EXPECT_EQ(cursor.FlatArray<Record>(&count), nullptr);
  EXPECT_EQ(count, 0u);
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(cursor.Finish().ok());
}

TEST(SerdeTest, FinishRejectsUnconsumedBytes) {
  const std::string bytes = BuildContainer();
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(reader.ok());
  auto cursor = reader->Section(1, "scalars");
  ASSERT_TRUE(cursor.ok());
  cursor->U8();  // Leave the rest of the section unread.
  EXPECT_FALSE(cursor->Finish().ok());
}

TEST(SerdeTest, EveryTruncationIsRejected) {
  const std::string bytes = BuildContainer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto reader =
        serde::Reader::Open(std::string_view(bytes.data(), len), kMagic,
                            kVersion);
    ASSERT_FALSE(reader.ok()) << "prefix of " << len << " bytes accepted";
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(SerdeTest, EveryBitFlipIsRejected) {
  const std::string bytes = BuildContainer();
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; bit += 3) {
      std::string mutated = bytes;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      auto reader = serde::Reader::Open(mutated, kMagic, kVersion);
      // Every byte of the container — header, table, payload, padding — is
      // covered by a checksum, so every flip must be caught at Open.
      ASSERT_FALSE(reader.ok())
          << "undetected flip at byte " << i << " bit " << bit;
      EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(SerdeTest, VersionMismatchIsSpecific) {
  const std::string bytes = BuildContainer();
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion + 1);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("version"), std::string::npos)
      << reader.status();
}

TEST(SerdeTest, ForeignEndianHeaderIsSpecific) {
  std::string bytes = BuildContainer();
  // A foreign-endian writer would have laid the sentinel down byte-reversed.
  std::swap(bytes[8], bytes[11]);
  std::swap(bytes[9], bytes[10]);
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("foreign-endian"),
            std::string::npos)
      << reader.status();
}

TEST(SerdeTest, MagicMismatchIsRejected) {
  const std::string bytes = BuildContainer();
  constexpr char kOther[serde::kMagicSize] = {'O', 'T', 'H', 'E',
                                              'R', 'F', 'M', 'T'};
  auto reader = serde::Reader::Open(bytes, kOther, kVersion);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, MissingSectionIsRejected) {
  const std::string bytes = BuildContainer();
  auto reader = serde::Reader::Open(bytes, kMagic, kVersion);
  ASSERT_TRUE(reader.ok());
  auto cursor = reader->Section(42, "ghost");
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerdeTest, FileRoundTripAtomicAndMapped) {
  const std::string bytes = BuildContainer();
  const std::string path = testing::TempDir() + "serde_test_container.bin";
  ASSERT_TRUE(serde::WriteFileAtomic(path, bytes).ok());

  auto read_back = serde::ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, bytes);

  auto mapped = serde::MappedFile::Map(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  EXPECT_EQ(mapped->view(), std::string_view(bytes));
  auto reader = serde::Reader::Open(mapped->view(), kMagic, kVersion);
  EXPECT_TRUE(reader.ok()) << reader.status();

  // Overwrite through the atomic path while the old mapping is live; the
  // mapping must keep showing the old bytes (rename never tears).
  serde::Writer w(kMagic, kVersion, 1);
  w.BeginSection(9);
  w.U8(1);
  w.EndSection();
  ASSERT_TRUE(serde::WriteFileAtomic(path, std::move(w).Finish()).ok());
  EXPECT_EQ(mapped->view(), std::string_view(bytes));
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  return names;
}

TEST(SerdeTest, WriteFileAtomicUnwritableDestinationIsUnavailable) {
  // An unwritable destination is an environmental condition, not a bad
  // input: kUnavailable, so callers (the artifact cache) degrade to the
  // memory tier instead of treating the write as a caller bug.
  const Status status = serde::WriteFileAtomic(
      testing::TempDir() + "serde_no_such_dir/nested/artifact.bin", "abc");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

#if XICC_FAULTS_ENABLED

TEST(SerdeTest, WriteFileAtomicFaultCleansUpTempAndPreservesOldFile) {
  std::string pattern = testing::TempDir() + "serde_fault.XXXXXX";
  const char* made = ::mkdtemp(pattern.data());
  ASSERT_NE(made, nullptr);
  const std::string dir = pattern;
  const std::string path = dir + "/artifact.bin";

  // A good artifact lands first.
  ASSERT_TRUE(serde::WriteFileAtomic(path, "generation-1").ok());

  // Every probe fires: the next write hits the simulated ENOSPC.
  faults::FaultConfig config;
  config.file_write_error_every = 1;
  faults::SetConfig(config);
  const Status faulted = serde::WriteFileAtomic(path, "generation-2");
  faults::SetConfig(faults::FaultConfig{});

  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.code(), StatusCode::kUnavailable);
  // The failed write left no temp file behind and never touched the old
  // artifact — the whole point of the atomic protocol.
  const std::vector<std::string> names = ListDir(dir);
  ASSERT_EQ(names.size(), 1u) << "leftover temp file after faulted write";
  EXPECT_EQ(names[0], "artifact.bin");
  auto read_back = serde::ReadFileToString(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, "generation-1");

  // With the fault gone the same write goes through.
  ASSERT_TRUE(serde::WriteFileAtomic(path, "generation-2").ok());
  EXPECT_EQ(*serde::ReadFileToString(path), "generation-2");
}

#endif  // XICC_FAULTS_ENABLED

TEST(SerdeTest, MapMissingFileFails) {
  auto mapped = serde::MappedFile::Map(testing::TempDir() +
                                       "serde_test_does_not_exist.bin");
  EXPECT_FALSE(mapped.ok());
}

TEST(SerdeTest, Fnv1a64MatchesReferenceVectors) {
  // Reference values for the canonical FNV-1a 64 test strings.
  EXPECT_EQ(serde::Fnv1a64("", 0), serde::kFnvOffsetBasis);
  EXPECT_EQ(serde::Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(serde::Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(SerdeTest, SectionDigestDetectsEveryBitFlip) {
  // Sizes straddling the 64-byte block boundary and the tail path.
  for (size_t size : {0u, 1u, 63u, 64u, 65u, 200u}) {
    std::string bytes(size, '\0');
    for (size_t i = 0; i < size; ++i) bytes[i] = static_cast<char>(i * 37 + 5);
    const uint64_t base = serde::SectionDigest(bytes);
    EXPECT_EQ(serde::SectionDigest(bytes), base) << "nondeterministic";
    for (size_t i = 0; i < size; ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::string mutated = bytes;
        mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
        EXPECT_NE(serde::SectionDigest(mutated), base)
            << "undetected flip at byte " << i << " bit " << bit
            << " size " << size;
      }
    }
  }
}

TEST(SerdeTest, SectionDigestSeparatesLengthExtensions) {
  // Payloads differing only in trailing zeros must not collide: the length
  // is folded into the digest.
  const std::string a(64, '\0');
  const std::string b(65, '\0');
  const std::string c(128, '\0');
  EXPECT_NE(serde::SectionDigest(a), serde::SectionDigest(b));
  EXPECT_NE(serde::SectionDigest(a), serde::SectionDigest(c));
  EXPECT_NE(serde::SectionDigest(b), serde::SectionDigest(c));
  // Distinct domain from byte-wise FNV-1a.
  EXPECT_NE(serde::SectionDigest("foobar"), serde::Fnv1a64("foobar", 6));
}

}  // namespace
}  // namespace xicc
