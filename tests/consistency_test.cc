// End-to-end tests of the consistency checker across all Figure-5 classes,
// with checked witnesses.

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

// ------------------------------------------- Empty Σ (Theorem 3.5(1) cell).

TEST(ConsistencyTest, EmptySigmaValidDtd) {
  auto result = CheckConsistency(workloads::TeacherDtd(), ConstraintSet());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  EXPECT_EQ(result->method, "grammar-emptiness");
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, workloads::TeacherDtd()).valid);
}

TEST(ConsistencyTest, EmptySigmaInfiniteDtd) {
  auto result = CheckConsistency(workloads::InfiniteDtd(), ConstraintSet());
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->consistent);
  EXPECT_FALSE(result->witness.has_value());
}

// ----------------------------------------------- Keys only (Theorem 3.5(2)).

TEST(ConsistencyTest, KeysAlwaysConsistentOnValidDtd) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet keys;
  keys.Add(Constraint::Key("student", {"student_id"}));
  keys.Add(Constraint::Key("course", {"dept", "course_no"}));
  auto result = CheckConsistency(school, keys);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  EXPECT_EQ(result->method, "keys-only");
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, school).valid);
  EXPECT_TRUE(Evaluate(*result->witness, keys).satisfied);
}

TEST(ConsistencyTest, KeysOverInfiniteDtdInconsistent) {
  ConstraintSet keys;
  // InfiniteDtd has no attributes, so build keys over a DTD that has them
  // yet no valid tree.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("a"));
  builder.AddElement("a", Regex::Elem("a"));
  builder.AddAttribute("a", "id");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  keys.Add(Constraint::Key("a", {"id"}));
  auto result = CheckConsistency(*dtd, keys);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->consistent);
}

// ------------------------------------- Unary keys + FKs (Theorem 4.1/4.7).

TEST(ConsistencyTest, Flagship_D1Sigma1_Inconsistent) {
  auto result =
      CheckConsistency(workloads::TeacherDtd(), workloads::TeacherSigma());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);
  EXPECT_EQ(result->constraint_class, ConstraintClass::kUnaryKeyFk);
  EXPECT_EQ(result->method, "ilp-case-split");
  EXPECT_NE(result->explanation.find("Ψ(D,Σ)"), std::string::npos);
}

TEST(ConsistencyTest, Flagship_D1Sigma1_BigMStrategyAgrees) {
  ConsistencyOptions options;
  options.strategy = SolveStrategy::kBigM;
  auto result = CheckConsistency(workloads::TeacherDtd(),
                                 workloads::TeacherSigma(), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);
  EXPECT_EQ(result->method, "ilp-big-m");
}

TEST(ConsistencyTest, ConsistentUnarySpecWithWitness) {
  // Reverse the inclusion: teacher.name ⊆ subject.taught_by (every teacher
  // teaches at least one of their own subjects) — consistent over D1.
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));
  sigma.Add(Constraint::ForeignKey("teacher", {"name"}, "subject",
                                   {"taught_by"}));
  auto result = CheckConsistency(d1, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, d1).valid);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied);
}

TEST(ConsistencyTest, CatalogFkChainConsistent) {
  Dtd dtd = workloads::CatalogDtd(4);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(4);
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, dtd).valid);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied)
      << Evaluate(*result->witness, sigma).ToString();
}

TEST(ConsistencyTest, MutualInclusionForcesEqualCounts) {
  // Dy-style gadget: two types forced to exactly one value each.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("item1", {"id"}));
  sigma.Add(Constraint::Key("item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item2", {"id"}, "item1", {"id"}));
  auto result = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  // Equal numbers of item1/item2 elements.
  EXPECT_EQ(result->witness->ExtOfType("item1").size(),
            result->witness->ExtOfType("item2").size());
}

// --------------------------------------- Negated keys (Corollary 4.9 cell).

TEST(ConsistencyTest, NegKeyNeedsTwoElements) {
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::NegKey("teacher", {"name"}));
  auto result = CheckConsistency(d1, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->constraint_class, ConstraintClass::kUnaryWithNegKey);
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  // The witness must contain two teachers sharing a name.
  EXPECT_GE(result->witness->ExtOfType("teacher").size(), 2u);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied);
  EXPECT_TRUE(ValidateXml(*result->witness, d1).valid);
}

TEST(ConsistencyTest, NegKeyImpossibleWhenSingleton) {
  // The root is unique, so ¬(key) over a once-occurring type is
  // inconsistent.
  Dtd chain = workloads::ChainDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::NegKey("e1", {"id"}));
  auto result = CheckConsistency(chain, sigma);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->consistent);
}

TEST(ConsistencyTest, KeyAndItsNegationContradict) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("student", {"student_id"}));
  sigma.Add(Constraint::NegKey("student", {"student_id"}));
  auto result = CheckConsistency(school, sigma);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->consistent);
}

TEST(ConsistencyTest, PhantomCycleRepairedByConnectivityCuts) {
  // P(a) = (a | end) lets the raw Ψ_D equations place a's in a parentless
  // cycle (ext(a) = k, x(a,a) = k, nothing from the root). The negated key
  // needs ext(a) ≥ 2, which such phantom solutions "satisfy"; the
  // support-connectivity cuts must steer the solver to a real chain, and
  // the checked witness proves it.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Union(Regex::Elem("a"), Regex::Elem("end")));
  builder.AddElement("a", Regex::Union(Regex::Elem("a"), Regex::Elem("end")));
  builder.AddElement("end", Regex::Epsilon());
  builder.AddAttribute("a", "id");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  ConstraintSet sigma;
  sigma.Add(Constraint::NegKey("a", {"id"}));
  auto result = CheckConsistency(*dtd, sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  // ≥ 2 a's, all on a root-connected chain (witness verification would have
  // failed otherwise).
  EXPECT_GE(result->witness->ExtOfType("a").size(), 2u);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied);
  EXPECT_TRUE(ValidateXml(*result->witness, *dtd).valid);
}

TEST(ConsistencyTest, UnproductiveTypesPinnedToZero) {
  // P(loop) = loop is reachable but unproductive; the ext(loop) = 0 row
  // makes any constraint requiring loops inconsistent, while leaving the
  // rest of the document satisfiable.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement(
      "r", Regex::Concat(Regex::Elem("a"),
                         Regex::Star(Regex::Elem("loop"))));
  builder.AddElement("a", Regex::Epsilon());
  builder.AddElement("loop", Regex::Elem("loop"));
  builder.AddAttribute("a", "id");
  builder.AddAttribute("loop", "id");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());

  ConstraintSet fine;
  fine.Add(Constraint::Key("a", {"id"}));
  fine.Add(Constraint::Inclusion("a", {"id"}, "a", {"id"}));
  auto ok = CheckConsistency(*dtd, fine);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(ok->consistent);
  EXPECT_TRUE(ok->witness->ExtOfType("loop").empty());

  ConstraintSet needs_loop;
  needs_loop.Add(Constraint::Inclusion("a", {"id"}, "loop", {"id"}));
  auto bad = CheckConsistency(*dtd, needs_loop);
  ASSERT_TRUE(bad.ok()) << bad.status();
  // a occurs in every document, so its id needs a home among loop ids —
  // but loops cannot exist.
  EXPECT_FALSE(bad->consistent);
}

// ----------------------------- Multi-attribute (undecidable; Theorem 3.1).

TEST(ConsistencyTest, MultiAttributeRefused) {
  auto result =
      CheckConsistency(workloads::SchoolDtd(), workloads::SchoolSigma());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndecidableClass);
  EXPECT_NE(result.status().message().find("Theorem 3.1"), std::string::npos);
}

// -------------------------------------------------- Theorem 4.7 instances.

TEST(ConsistencyTest, LipGadgetMatchesBruteForce) {
  // Hand-crafted satisfiable system: rows {x1}, {x1,x2} — x = (1,0).
  workloads::BinaryLipInstance sat;
  sat.rows = 2;
  sat.cols = 2;
  sat.a = {1, 0, 1, 1};
  ASSERT_TRUE(workloads::LipHasBinarySolution(sat));
  auto enc = workloads::EncodeLipAsConsistency(sat);
  auto result = CheckConsistency(enc.dtd, enc.sigma);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);

  // Unsatisfiable: rows {x1}, {x2}, {x1,x2} — x1=x2=1 breaks row 3.
  workloads::BinaryLipInstance unsat;
  unsat.rows = 3;
  unsat.cols = 2;
  unsat.a = {1, 0, 0, 1, 1, 1};
  ASSERT_FALSE(workloads::LipHasBinarySolution(unsat));
  auto enc2 = workloads::EncodeLipAsConsistency(unsat);
  auto result2 = CheckConsistency(enc2.dtd, enc2.sigma);
  ASSERT_TRUE(result2.ok()) << result2.status();
  EXPECT_FALSE(result2->consistent);
}

// -------------------------------------------------------------- Options.

TEST(ConsistencyTest, WitnessCanBeDisabled) {
  ConsistencyOptions options;
  options.build_witness = false;
  auto result = CheckConsistency(workloads::TeacherDtd(), ConstraintSet(),
                                 options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->consistent);
  EXPECT_FALSE(result->witness.has_value());
}

TEST(ConsistencyTest, BadConstraintsRejectedUpfront) {
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("ghost", {"x"}));
  auto result = CheckConsistency(workloads::TeacherDtd(), sigma);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ConsistencyTest, StatsPopulatedOnIlpPath) {
  auto result =
      CheckConsistency(workloads::TeacherDtd(), workloads::TeacherSigma());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.system_variables, 0u);
  EXPECT_GT(result->stats.system_constraints, 0u);
  // The flagship inconsistency is settled by the base LP relaxation alone
  // (no branch-and-bound node is ever needed), so pivots — not nodes — are
  // the guaranteed-positive counter.
  EXPECT_GT(result->stats.lp_pivots, 0u);
  EXPECT_GT(result->stats.cold_restarts + result->stats.warm_starts, 0u);
}

}  // namespace
}  // namespace xicc
