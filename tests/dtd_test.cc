#include <gtest/gtest.h>

#include "dtd/dtd.h"
#include "dtd/dtd_parser.h"
#include "dtd/regex.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

// ------------------------------------------------------------------ Regex.

TEST(RegexTest, KindsAndAccessors) {
  RegexPtr r = Regex::Concat(Regex::Elem("a"),
                             Regex::Star(Regex::Union(Regex::Elem("b"),
                                                      Regex::Epsilon())));
  EXPECT_EQ(r->kind(), Regex::Kind::kConcat);
  EXPECT_EQ(r->left()->name(), "a");
  EXPECT_EQ(r->right()->kind(), Regex::Kind::kStar);
  EXPECT_EQ(r->right()->child()->kind(), Regex::Kind::kUnion);
}

TEST(RegexTest, Nullable) {
  EXPECT_TRUE(Regex::Epsilon()->Nullable());
  EXPECT_FALSE(Regex::Str()->Nullable());
  EXPECT_FALSE(Regex::Elem("a")->Nullable());
  EXPECT_TRUE(Regex::Star(Regex::Elem("a"))->Nullable());
  EXPECT_TRUE(
      Regex::Union(Regex::Elem("a"), Regex::Epsilon())->Nullable());
  EXPECT_FALSE(
      Regex::Concat(Regex::Elem("a"), Regex::Epsilon())->Nullable());
  EXPECT_TRUE(Regex::Concat(Regex::Epsilon(), Regex::Star(Regex::Elem("a")))
                  ->Nullable());
}

TEST(RegexTest, DesugarOptionalPlus) {
  RegexPtr opt = Regex::Optional(Regex::Elem("a"));
  EXPECT_EQ(opt->kind(), Regex::Kind::kUnion);
  EXPECT_EQ(opt->right()->kind(), Regex::Kind::kEpsilon);

  RegexPtr plus = Regex::Plus(Regex::Elem("a"));
  EXPECT_EQ(plus->kind(), Regex::Kind::kConcat);
  EXPECT_EQ(plus->right()->kind(), Regex::Kind::kStar);
}

TEST(RegexTest, FoldsAreRightNested) {
  RegexPtr seq = Regex::ConcatAll(
      {Regex::Elem("a"), Regex::Elem("b"), Regex::Elem("c")});
  EXPECT_EQ(seq->kind(), Regex::Kind::kConcat);
  EXPECT_EQ(seq->left()->name(), "a");
  EXPECT_EQ(seq->right()->kind(), Regex::Kind::kConcat);
  EXPECT_EQ(Regex::ConcatAll({})->kind(), Regex::Kind::kEpsilon);
  EXPECT_EQ(Regex::ConcatAll({Regex::Elem("x")})->name(), "x");
}

TEST(RegexTest, SizeAndToString) {
  RegexPtr r = Regex::Concat(Regex::Elem("a"), Regex::Star(Regex::Elem("b")));
  EXPECT_EQ(r->Size(), 4u);
  EXPECT_EQ(r->ToString(), "(a, (b)*)");
  EXPECT_EQ(Regex::Epsilon()->ToString(), "EMPTY");
  EXPECT_EQ(Regex::Str()->ToString(), "#PCDATA");
}

TEST(RegexTest, StructuralEquality) {
  RegexPtr a = Regex::Union(Regex::Elem("x"), Regex::Str());
  RegexPtr b = Regex::Union(Regex::Elem("x"), Regex::Str());
  RegexPtr c = Regex::Union(Regex::Str(), Regex::Elem("x"));
  EXPECT_TRUE(Regex::Equal(*a, *b));
  EXPECT_FALSE(Regex::Equal(*a, *c));
}

// -------------------------------------------------------------- DtdBuilder.

TEST(DtdBuilderTest, BuildsTeacherDtd) {
  Dtd dtd = workloads::TeacherDtd();
  EXPECT_EQ(dtd.root(), "teachers");
  EXPECT_EQ(dtd.elements().size(), 5u);
  EXPECT_TRUE(dtd.HasAttribute("teacher", "name"));
  EXPECT_TRUE(dtd.HasAttribute("subject", "taught_by"));
  EXPECT_FALSE(dtd.HasAttribute("teach", "name"));
  EXPECT_EQ(dtd.AttributesOf("research").size(), 0u);
  auto pairs = dtd.AllAttributePairs();
  EXPECT_EQ(pairs.size(), 2u);
}

TEST(DtdBuilderTest, RejectsUndeclaredReference) {
  DtdBuilder builder;
  builder.AddElement("r", Regex::Elem("ghost"));
  auto dtd = builder.Build();
  ASSERT_FALSE(dtd.ok());
  EXPECT_NE(dtd.status().message().find("ghost"), std::string::npos);
}

TEST(DtdBuilderTest, RejectsRootInContentModel) {
  DtdBuilder builder;
  builder.AddElement("r", Regex::Elem("a"));
  builder.AddElement("a", Regex::Elem("r"));
  auto dtd = builder.Build();
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kInvalidArgument);
}

TEST(DtdBuilderTest, RejectsMissingRootAndEmptyDtd) {
  EXPECT_FALSE(DtdBuilder().Build().ok());
  DtdBuilder builder;
  builder.AddElement("a", Regex::Epsilon());
  builder.SetRoot("missing");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DtdBuilderTest, RejectsAttributesOnUndeclaredElement) {
  DtdBuilder builder;
  builder.AddElement("r", Regex::Epsilon());
  builder.AddAttribute("ghost", "id");
  EXPECT_FALSE(builder.Build().ok());
}

TEST(DtdBuilderTest, DefaultRootIsFirstElement) {
  DtdBuilder builder;
  builder.AddElement("first", Regex::Elem("second"));
  builder.AddElement("second", Regex::Epsilon());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  EXPECT_EQ(dtd->root(), "first");
}

TEST(DtdTest, SizeAccountsForContentAndAttributes) {
  Dtd dtd = workloads::TeacherDtd();
  // 5 elements + content sizes + 2 attributes.
  EXPECT_GT(dtd.Size(), 7u);
}

// -------------------------------------------------------------- DtdParser.

TEST(DtdParserTest, ParsesTeacherSyntax) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT teachers (teacher+)>
    <!ELEMENT teacher (teach, research)>
    <!ELEMENT teach (subject, subject)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT research (#PCDATA)>
    <!ATTLIST teacher name CDATA #REQUIRED>
    <!ATTLIST subject taught_by CDATA #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root(), "teachers");
  EXPECT_EQ(dtd->ContentOf("teacher")->ToString(), "(teach, research)");
  // a+ desugars to (a, a*).
  EXPECT_EQ(dtd->ContentOf("teachers")->kind(), Regex::Kind::kConcat);
  EXPECT_TRUE(dtd->HasAttribute("subject", "taught_by"));
}

TEST(DtdParserTest, DoctypeWrapperSetsRoot) {
  auto dtd = ParseDtd(R"(<!DOCTYPE b [
    <!ELEMENT a EMPTY>
    <!ELEMENT b (a?)>
  ]>)");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->root(), "b");
}

TEST(DtdParserTest, OccurrenceOperators) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (a?, b*, c+)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  // a? renders back as "(a)?" — the round-trippable form (nested "EMPTY"
  // is not valid content syntax).
  EXPECT_EQ(dtd->ContentOf("r")->ToString(),
            "((a)?, ((b)*, (c, (c)*)))");
}

TEST(DtdParserTest, MixedContentAndNestedGroups) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r ((#PCDATA | a)*, (a | b))>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->ContentOf("r")->kind(), Regex::Kind::kConcat);
}

TEST(DtdParserTest, AttlistVariants) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r EMPTY>
    <!ATTLIST r
      id    ID           #REQUIRED
      kind  (alpha|beta) "alpha"
      note  CDATA        #IMPLIED
      fixed CDATA        #FIXED "x">
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->AttributesOf("r").size(), 4u);
}

TEST(DtdParserTest, RejectsAnyAndMixedSeparators) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT r ANY>").ok());
  auto mixed = ParseDtd(R"(
    <!ELEMENT r (a, b | c)>
    <!ELEMENT a EMPTY> <!ELEMENT b EMPTY> <!ELEMENT c EMPTY>
  )");
  EXPECT_FALSE(mixed.ok());
}

TEST(DtdParserTest, ErrorPositionsAndGarbage) {
  auto bad = ParseDtd("<!ELEMENT r (a>");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("dtd:1:"), std::string::npos);
  EXPECT_FALSE(ParseDtd("hello").ok());
}

TEST(DtdParserTest, RoundTripThroughToString) {
  Dtd original = workloads::SchoolDtd();
  auto reparsed = ParseDtd(original.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n"
                             << original.ToString();
  EXPECT_EQ(reparsed->root(), original.root());
  EXPECT_EQ(reparsed->elements().size(), original.elements().size());
  for (const std::string& element : original.elements()) {
    EXPECT_TRUE(
        Regex::Equal(*reparsed->ContentOf(element),
                     *original.ContentOf(element)))
        << element;
    EXPECT_EQ(reparsed->AttributesOf(element), original.AttributesOf(element));
  }
}


TEST(DtdParserLimitsTest, GroupNestingBombIsRejectedNotOverflowed) {
  // (((((...a...))))) 100k deep: each level is a ParseGroupOrAtom frame.
  constexpr size_t kDepth = 100'000;
  std::string bomb = "<!ELEMENT r ";
  bomb += std::string(kDepth, '(');
  bomb += "a";
  bomb += std::string(kDepth, ')');
  bomb += ">";
  auto dtd = ParseDtd(bomb);
  ASSERT_FALSE(dtd.ok());
  EXPECT_EQ(dtd.status().code(), StatusCode::kInvalidArgument);
}

TEST(DtdParserLimitsTest, ReasonableNestingStillParses) {
  auto dtd = ParseDtd("<!ELEMENT r ((((a, b) | c)*, d)?)>"
                      "<!ELEMENT a EMPTY><!ELEMENT b EMPTY>"
                      "<!ELEMENT c EMPTY><!ELEMENT d EMPTY>");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
}

}  // namespace
}  // namespace xicc
