// CheckBatch and CompiledDtd sharing under real concurrency. The batch
// front-end stripes queries over worker sessions that share one compiled
// artifact bundle; these tests pin (a) thread-count independence of every
// per-query verdict and (b) the immutability contract of CompiledDtd — N
// threads solving and validating against the same instance. The TSan CI job
// runs this binary specifically.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "constraints/evaluator.h"
#include "core/batch.h"
#include "core/consistency.h"
#include "core/spec_session.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

std::vector<ConstraintSet> MixedCatalogQueries(const Dtd& dtd) {
  std::vector<ConstraintSet> queries;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    queries.push_back(workloads::RandomUnarySigma(dtd, seed, 3, 2));
  }
  queries.push_back(workloads::AllKeysSigma(dtd));
  queries.push_back(workloads::CatalogFkChainSigma(3));
  queries.push_back(ConstraintSet());  // trivially consistent
  {
    ConstraintSet neg;  // negated key cell
    neg.Add(Constraint::Key("item1", {"id"}));
    neg.Add(Constraint::NegKey("item2", {"id"}));
    queries.push_back(neg);
  }
  {
    ConstraintSet multi;  // undecidable class → per-query error status
    multi.Add(Constraint::ForeignKey("item1", {"id", "ref"}, "item2",
                                     {"id", "ref"}));
    queries.push_back(multi);
  }
  // Duplicates exercise the per-worker memo.
  queries.push_back(workloads::AllKeysSigma(dtd));
  queries.push_back(workloads::CatalogFkChainSigma(3));
  return queries;
}

TEST(BatchTest, VerdictsIndependentOfThreadCount) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<ConstraintSet> queries = MixedCatalogQueries(dtd);

  BatchOptions sequential;
  sequential.num_threads = 1;
  std::vector<BatchItemResult> baseline =
      CheckBatch(*compiled, queries, sequential);
  ASSERT_EQ(baseline.size(), queries.size());

  for (size_t threads : {2, 4, 8}) {
    BatchOptions parallel = sequential;
    parallel.num_threads = threads;
    std::vector<BatchItemResult> results =
        CheckBatch(*compiled, queries, parallel);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(baseline[i].status.ok(), results[i].status.ok())
          << "query " << i << " at " << threads << " threads";
      if (!baseline[i].status.ok()) continue;
      EXPECT_EQ(baseline[i].result.consistent, results[i].result.consistent)
          << "query " << i << " at " << threads << " threads";
      EXPECT_EQ(baseline[i].result.constraint_class,
                results[i].result.constraint_class)
          << "query " << i;
      EXPECT_EQ(baseline[i].result.method, results[i].result.method)
          << "query " << i;
      if (results[i].result.witness.has_value()) {
        EXPECT_TRUE(ValidateXml(*results[i].result.witness, dtd).valid);
        EXPECT_TRUE(
            Evaluate(*results[i].result.witness, queries[i]).satisfied);
      }
    }
  }
}

TEST(BatchTest, PerQueryErrorsDoNotAbortTheBatch) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries = MixedCatalogQueries(dtd);
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, {});

  size_t errors = 0;
  size_t answered = 0;
  for (const BatchItemResult& item : results) {
    if (item.status.ok()) {
      ++answered;
    } else {
      ++errors;
    }
  }
  EXPECT_EQ(errors, 1u);  // exactly the multi-attribute FK query
  EXPECT_EQ(answered, queries.size() - 1);
}

TEST(BatchTest, MatchesFreshCheckConsistency) {
  Dtd dtd = workloads::AuctionDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries;
  queries.push_back(workloads::AuctionSigma(2));
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    queries.push_back(workloads::RandomUnarySigma(dtd, seed, 4, 3));
  }
  BatchOptions options;
  options.num_threads = 4;
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto fresh = CheckConsistency(dtd, queries[i]);
    ASSERT_EQ(fresh.ok(), results[i].status.ok()) << "query " << i;
    if (!fresh.ok()) continue;
    EXPECT_EQ(fresh->consistent, results[i].result.consistent) << "query " << i;
    EXPECT_EQ(fresh->method, results[i].result.method) << "query " << i;
  }
}

TEST(BatchTest, SharedCompiledDtdHammeredFromManyThreads) {
  // No CheckBatch plumbing at all: N raw threads, each with its own
  // SpecSession over the SAME CompiledDtd, solving, building witnesses, and
  // validating them through the shared frozen DFAs. Any mutation of the
  // compiled artifacts is a data race TSan will flag here.
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled_or = CompileDtd(dtd);
  ASSERT_TRUE(compiled_or.ok());
  std::shared_ptr<const CompiledDtd> compiled = *compiled_or;

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 5;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SpecSession session(compiled);
      for (size_t round = 0; round < kRounds; ++round) {
        uint64_t seed = t * kRounds + round + 1;
        ConstraintSet sigma = workloads::RandomUnarySigma(
            compiled->dtd, seed, 3, 2);
        auto result = session.Check(sigma);
        if (!result.ok()) {
          failures[t] = result.status().message();
          return;
        }
        if (result->consistent && result->witness.has_value() &&
            !ValidateXml(*result->witness, compiled->dtd).valid) {
          failures[t] = "witness failed validation";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
}

TEST(BatchTest, EmptyBatchAndThreadClamping) {
  Dtd dtd = workloads::CatalogDtd(1);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(CheckBatch(*compiled, {}, {}).empty());

  // More threads than queries: clamped, still one result per query.
  std::vector<ConstraintSet> queries = {workloads::AllKeysSigma(dtd)};
  BatchOptions options;
  options.num_threads = 16;
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, options);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[0].result.consistent);
}

}  // namespace
}  // namespace xicc
