// CheckBatch and CompiledDtd sharing under real concurrency. The batch
// front-end stripes queries over worker sessions that share one compiled
// artifact bundle; these tests pin (a) thread-count independence of every
// per-query verdict and (b) the immutability contract of CompiledDtd — N
// threads solving and validating against the same instance. The TSan CI job
// runs this binary specifically.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/deadline.h"
#include "constraints/evaluator.h"
#include "core/batch.h"
#include "core/consistency.h"
#include "core/spec_session.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

std::vector<ConstraintSet> MixedCatalogQueries(const Dtd& dtd) {
  std::vector<ConstraintSet> queries;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    queries.push_back(workloads::RandomUnarySigma(dtd, seed, 3, 2));
  }
  queries.push_back(workloads::AllKeysSigma(dtd));
  queries.push_back(workloads::CatalogFkChainSigma(3));
  queries.push_back(ConstraintSet());  // trivially consistent
  {
    ConstraintSet neg;  // negated key cell
    neg.Add(Constraint::Key("item1", {"id"}));
    neg.Add(Constraint::NegKey("item2", {"id"}));
    queries.push_back(neg);
  }
  {
    ConstraintSet multi;  // undecidable class → per-query error status
    multi.Add(Constraint::ForeignKey("item1", {"id", "ref"}, "item2",
                                     {"id", "ref"}));
    queries.push_back(multi);
  }
  // Duplicates exercise the per-worker memo.
  queries.push_back(workloads::AllKeysSigma(dtd));
  queries.push_back(workloads::CatalogFkChainSigma(3));
  return queries;
}

TEST(BatchTest, VerdictsIndependentOfThreadCount) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<ConstraintSet> queries = MixedCatalogQueries(dtd);

  BatchOptions sequential;
  sequential.num_threads = 1;
  std::vector<BatchItemResult> baseline =
      CheckBatch(*compiled, queries, sequential);
  ASSERT_EQ(baseline.size(), queries.size());

  for (size_t threads : {2, 4, 8}) {
    BatchOptions parallel = sequential;
    parallel.num_threads = threads;
    std::vector<BatchItemResult> results =
        CheckBatch(*compiled, queries, parallel);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(baseline[i].status.ok(), results[i].status.ok())
          << "query " << i << " at " << threads << " threads";
      if (!baseline[i].status.ok()) continue;
      EXPECT_EQ(baseline[i].result.consistent, results[i].result.consistent)
          << "query " << i << " at " << threads << " threads";
      EXPECT_EQ(baseline[i].result.constraint_class,
                results[i].result.constraint_class)
          << "query " << i;
      EXPECT_EQ(baseline[i].result.method, results[i].result.method)
          << "query " << i;
      if (results[i].result.witness.has_value()) {
        EXPECT_TRUE(ValidateXml(*results[i].result.witness, dtd).valid);
        EXPECT_TRUE(
            Evaluate(*results[i].result.witness, queries[i]).satisfied);
      }
    }
  }
}

TEST(BatchTest, PerQueryErrorsDoNotAbortTheBatch) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries = MixedCatalogQueries(dtd);
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, {});

  size_t errors = 0;
  size_t answered = 0;
  for (const BatchItemResult& item : results) {
    if (item.status.ok()) {
      ++answered;
    } else {
      ++errors;
    }
  }
  EXPECT_EQ(errors, 1u);  // exactly the multi-attribute FK query
  EXPECT_EQ(answered, queries.size() - 1);
}

TEST(BatchTest, MatchesFreshCheckConsistency) {
  Dtd dtd = workloads::AuctionDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries;
  queries.push_back(workloads::AuctionSigma(2));
  for (uint64_t seed = 21; seed <= 24; ++seed) {
    queries.push_back(workloads::RandomUnarySigma(dtd, seed, 4, 3));
  }
  BatchOptions options;
  options.num_threads = 4;
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto fresh = CheckConsistency(dtd, queries[i]);
    ASSERT_EQ(fresh.ok(), results[i].status.ok()) << "query " << i;
    if (!fresh.ok()) continue;
    EXPECT_EQ(fresh->consistent, results[i].result.consistent) << "query " << i;
    EXPECT_EQ(fresh->method, results[i].result.method) << "query " << i;
  }
}

TEST(BatchTest, SharedCompiledDtdHammeredFromManyThreads) {
  // No CheckBatch plumbing at all: N raw threads, each with its own
  // SpecSession over the SAME CompiledDtd, solving, building witnesses, and
  // validating them through the shared frozen DFAs. Any mutation of the
  // compiled artifacts is a data race TSan will flag here.
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled_or = CompileDtd(dtd);
  ASSERT_TRUE(compiled_or.ok());
  std::shared_ptr<const CompiledDtd> compiled = *compiled_or;

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 5;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      SpecSession session(compiled);
      for (size_t round = 0; round < kRounds; ++round) {
        uint64_t seed = t * kRounds + round + 1;
        ConstraintSet sigma = workloads::RandomUnarySigma(
            compiled->dtd, seed, 3, 2);
        auto result = session.Check(sigma);
        if (!result.ok()) {
          failures[t] = result.status().message();
          return;
        }
        if (result->consistent && result->witness.has_value() &&
            !ValidateXml(*result->witness, compiled->dtd).valid) {
          failures[t] = "witness failed validation";
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(failures[t].empty()) << "thread " << t << ": " << failures[t];
  }
}

/// A consistent LIP spec whose solve takes hundreds of milliseconds — the
/// deliberately exploding item for the degradation tests (a 50 ms budget
/// plus one escalated retry still cannot finish it).
workloads::LipEncoding ExplodingSpec() {
  return workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/3, /*rows=*/12, /*cols=*/24,
                           /*ones_per_row=*/3));
}

TEST(BatchTest, DeadlineQuarantinesOnlyTheExplodingItem) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();

  std::vector<ConstraintSet> queries;
  queries.push_back(ConstraintSet());               // trivial
  queries.push_back(workloads::AllKeysSigma(spec.dtd));  // keys-only cell
  queries.push_back(spec.sigma);                    // the exploding one
  queries.push_back(ConstraintSet());               // must still be answered

  // Baseline: no budgets, every item gets a verdict.
  std::vector<BatchItemResult> baseline =
      CheckBatch(*compiled, queries, BatchOptions{});
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(baseline[i].status.ok()) << "item " << i;
  }

  BatchOptions options;
  options.num_threads = 2;
  options.item_timeout_ms = 50;
  options.deadline_retry_factor = 2;  // One retry at 100 ms — still dies.
  BatchDegradedStats degraded;
  const auto start = std::chrono::steady_clock::now();
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);
  const int64_t wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // One exploding query degrades to one degraded row, never a wedged (or
  // even slow) batch: everything must finish well under the 2 s bar even
  // with the escalated retry included.
  EXPECT_LT(wall_ms, 2'000);

  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i == 2) continue;
    ASSERT_TRUE(results[i].status.ok())
        << "item " << i << " lost its verdict to a sibling's deadline: "
        << results[i].status;
    EXPECT_EQ(results[i].result.consistent, baseline[i].result.consistent)
        << "item " << i;
  }
  EXPECT_EQ(results[2].status.code(), StatusCode::kDeadlineExceeded);
  // The quarantined row reports how far its search got.
  EXPECT_GT(results[2].partial.lp_pivots, 0u);

  EXPECT_EQ(degraded.deadline_exceeded, 1u);
  EXPECT_EQ(degraded.quarantined, 1u);
  EXPECT_EQ(degraded.retries, 1u);
  EXPECT_EQ(degraded.retry_rescues, 0u);
  EXPECT_EQ(degraded.cancelled, 0u);
}

TEST(BatchTest, RetryFactorZeroDisablesTheEscalatedRetry) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<ConstraintSet> queries{spec.sigma};

  BatchOptions options;
  options.item_timeout_ms = 30;
  options.deadline_retry_factor = 0;
  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(degraded.retries, 0u);
  EXPECT_EQ(degraded.retry_rescues, 0u);
  EXPECT_EQ(degraded.deadline_exceeded, 1u);
  EXPECT_EQ(degraded.quarantined, 1u);
}

TEST(BatchTest, RetryFactorOneRetriesOnceAndNeverDoubleCounts) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<ConstraintSet> queries{spec.sigma};

  // factor=1 re-runs at the SAME hopeless budget: the retry fires, times
  // out again, and the item must be quarantined exactly once — two deadline
  // misses on one item are one degraded row, not two.
  BatchOptions options;
  options.item_timeout_ms = 30;
  options.deadline_retry_factor = 1;
  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);

  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(degraded.retries, 1u);  // exactly one, never a retry-of-a-retry
  EXPECT_EQ(degraded.retry_rescues, 0u);
  EXPECT_EQ(degraded.deadline_exceeded, 1u);
  EXPECT_EQ(degraded.quarantined, 1u);
}

TEST(BatchTest, HugeRetryFactorRescuesTheUnluckyItem) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  std::vector<ConstraintSet> queries{spec.sigma};

  // 25 ms first budget is hopeless; 25 ms × 1000 = 25 s is plenty (the
  // unbudgeted solve takes well under a second). The rescue must both
  // produce the verdict and keep the quarantine tallies at zero.
  BatchOptions options;
  options.item_timeout_ms = 25;
  options.deadline_retry_factor = 1000;
  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);

  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok()) << results[0].status;
  EXPECT_TRUE(results[0].result.consistent);
  EXPECT_EQ(degraded.retries, 1u);
  EXPECT_EQ(degraded.retry_rescues, 1u);
  EXPECT_EQ(degraded.deadline_exceeded, 0u);
  EXPECT_EQ(degraded.quarantined, 0u);
}

TEST(BatchTest, ResourceExhaustedItemRecordedAndStripeContinues) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok());

  std::vector<ConstraintSet> queries;
  queries.push_back(spec.sigma);       // exhausts the node budget
  queries.push_back(ConstraintSet());  // linear cell, no ILP: must survive

  BatchOptions options;
  options.check.ilp.max_nodes = 1;
  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(results[0].partial.lp_pivots, 0u);
  ASSERT_TRUE(results[1].status.ok()) << results[1].status;
  EXPECT_TRUE(results[1].result.consistent);
  EXPECT_EQ(degraded.resource_exhausted, 1u);
  EXPECT_EQ(degraded.quarantined, 1u);
  EXPECT_EQ(degraded.deadline_exceeded, 0u);
}

TEST(BatchTest, CancelStopsTheBatchPromptlyKeepingNothingWedged) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries(6, spec.sigma);

  CancelToken token;
  CancelTimer timer(&token, 30);
  BatchOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  BatchDegradedStats degraded;
  const auto start = std::chrono::steady_clock::now();
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);
  const int64_t wall_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();
  // Six ~500 ms solves would take seconds; the 30 ms cancel must stop the
  // in-flight checks at their next poll and drop the queued stripes.
  EXPECT_LT(wall_ms, 2'000);
  ASSERT_EQ(results.size(), queries.size());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].status.code(), StatusCode::kCancelled)
        << "item " << i << ": " << results[i].status;
  }
  EXPECT_EQ(degraded.cancelled, queries.size());
  EXPECT_EQ(degraded.quarantined, queries.size());
}

TEST(BatchTest, PreCancelledBatchReturnsAllCancelledSentinels) {
  Dtd dtd = workloads::CatalogDtd(1);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries(3, workloads::AllKeysSigma(dtd));

  CancelToken token;
  token.Cancel();
  BatchOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded);
  ASSERT_EQ(results.size(), 3u);
  for (const BatchItemResult& item : results) {
    EXPECT_EQ(item.status.code(), StatusCode::kCancelled);
  }
  EXPECT_EQ(degraded.cancelled, 3u);
}

TEST(BatchTest, EmptyBatchAndThreadClamping) {
  Dtd dtd = workloads::CatalogDtd(1);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  EXPECT_TRUE(CheckBatch(*compiled, {}, {}).empty());

  // More threads than queries: clamped, still one result per query.
  std::vector<ConstraintSet> queries = {workloads::AllKeysSigma(dtd)};
  BatchOptions options;
  options.num_threads = 16;
  std::vector<BatchItemResult> results = CheckBatch(*compiled, queries, options);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[0].result.consistent);
}

TEST(BatchTest, ChunkSizeSweepNeverChangesVerdicts) {
  // The chunked scheduler's contract: chunk size is a performance knob,
  // never a semantic one. Sweep it from one-item chunks through
  // everything-in-one-chunk at several thread counts; every configuration
  // must reproduce the fresh-pipeline verdict per query.
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries = workloads::SigmaDeltaBatch(
      dtd, /*seed=*/19, /*count=*/24, /*min_constraints=*/1,
      /*max_constraints=*/4, /*dup_percent=*/25);

  std::vector<char> fresh(queries.size());
  ConsistencyOptions check;
  check.build_witness = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = CheckConsistency(dtd, queries[i], check);
    ASSERT_TRUE(r.ok()) << r.status();
    fresh[i] = r->consistent ? 1 : 0;
  }

  for (size_t threads : {1, 4}) {
    for (size_t chunk : {0, 1, 3, 7, 100}) {
      BatchOptions options;
      options.num_threads = threads;
      options.chunk_size = chunk;
      options.check = check;
      std::vector<BatchItemResult> results =
          CheckBatch(*compiled, queries, options);
      ASSERT_EQ(results.size(), queries.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].status.ok())
            << "threads=" << threads << " chunk=" << chunk << " item " << i;
        EXPECT_EQ(results[i].result.consistent ? 1 : 0, fresh[i])
            << "threads=" << threads << " chunk=" << chunk << " item " << i;
      }
    }
  }
}

/// The per-DTD memo-isolation pair: the SAME Σ (one negated key on e.id),
/// whose canonical memo key is Σ-only, answered over two DTDs where the
/// verdicts differ. `r → e e` can give both e-nodes the same id, so "id is
/// not a key" is satisfiable; `r → e` has exactly one e-node in every valid
/// tree, so it is not. A memo shared across DTDs would cross-serve one
/// DTD's verdict to the other.
TEST(BatchTest, MultiDtdBatchKeepsMemosIsolatedPerDtd) {
  DtdBuilder two_builder;
  two_builder.SetRoot("r");
  {
    std::vector<RegexPtr> children;
    children.push_back(Regex::Elem("e"));
    children.push_back(Regex::Elem("e"));
    two_builder.AddElement("r", Regex::ConcatAll(std::move(children)));
  }
  two_builder.AddElement("e", Regex::Epsilon());
  two_builder.AddAttribute("e", "id");
  auto two_e = two_builder.Build();
  ASSERT_TRUE(two_e.ok()) << two_e.status();

  DtdBuilder one_builder;
  one_builder.SetRoot("r");
  one_builder.AddElement("r", Regex::Elem("e"));
  one_builder.AddElement("e", Regex::Epsilon());
  one_builder.AddAttribute("e", "id");
  auto one_e = one_builder.Build();
  ASSERT_TRUE(one_e.ok()) << one_e.status();

  auto compiled_two = CompileDtd(*two_e);
  auto compiled_one = CompileDtd(*one_e);
  ASSERT_TRUE(compiled_two.ok());
  ASSERT_TRUE(compiled_one.ok());
  std::vector<std::shared_ptr<const CompiledDtd>> compiled = {*compiled_two,
                                                              *compiled_one};

  ConstraintSet neg;
  neg.Add(Constraint::NegKey("e", {"id"}));
  // Interleave the two DTDs repeatedly: with per-DTD memos the repeats hit
  // within their own DTD; with one cross-DTD memo the second DTD's first
  // query would be served the first DTD's cached (opposite) verdict.
  std::vector<BatchQuery> queries;
  for (int round = 0; round < 6; ++round) {
    queries.push_back(BatchQuery{0, neg});
    queries.push_back(BatchQuery{1, neg});
  }

  for (size_t threads : {1, 4}) {
    BatchOptions options;
    options.num_threads = threads;
    options.check.build_witness = false;
    BatchRunStats run;
    std::vector<BatchItemResult> results =
        CheckBatchMulti(compiled, queries, options, nullptr, &run);
    ASSERT_EQ(results.size(), queries.size());
    for (size_t i = 0; i < results.size(); ++i) {
      ASSERT_TRUE(results[i].status.ok()) << "item " << i;
      const bool expect_consistent = queries[i].dtd_index == 0;
      EXPECT_EQ(results[i].result.consistent, expect_consistent)
          << "threads=" << threads << " item " << i << " (dtd "
          << queries[i].dtd_index << ")";
    }
    // The repeats must actually have exercised the memos for the isolation
    // claim to mean anything.
    EXPECT_GT(run.memo_hits, 0u);
  }
}

TEST(BatchTest, MultiDtdOutOfRangeIndexQuarantinesOnlyThatItem) {
  Dtd dtd = workloads::CatalogDtd(1);
  auto compiled_or = CompileDtd(dtd);
  ASSERT_TRUE(compiled_or.ok());
  std::vector<std::shared_ptr<const CompiledDtd>> compiled = {*compiled_or};

  std::vector<BatchQuery> queries;
  queries.push_back(BatchQuery{0, workloads::AllKeysSigma(dtd)});
  queries.push_back(BatchQuery{7, workloads::AllKeysSigma(dtd)});  // bad
  queries.push_back(BatchQuery{0, ConstraintSet()});

  BatchDegradedStats degraded;
  std::vector<BatchItemResult> results =
      CheckBatchMulti(compiled, queries, {}, &degraded);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_EQ(degraded.quarantined, 1u);
}

TEST(BatchTest, RunStatsAccountForScheduleStagesAndSessions) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  std::vector<ConstraintSet> queries = workloads::SigmaDeltaBatch(
      dtd, /*seed=*/23, /*count=*/32, /*min_constraints=*/1,
      /*max_constraints=*/3, /*dup_percent=*/50);

  BatchOptions options;
  options.num_threads = 4;
  options.chunk_size = 4;
  options.check.build_witness = false;
  BatchRunStats run;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, nullptr, &run);
  ASSERT_EQ(results.size(), queries.size());
  for (const BatchItemResult& item : results) ASSERT_TRUE(item.status.ok());

  // Schedule shape: the worker count is the requested count clamped to the
  // hardware width (whatever that is on this machine), every chunk was
  // served by exactly one acquired session, and sessions are only ever
  // created when the free list is empty — so creations never exceed the
  // worker count (per DTD) and creations + reuses cover every chunk.
  EXPECT_GE(run.workers, 1u);
  EXPECT_LE(run.workers, 4u);
  EXPECT_GE(run.hardware_threads, 1u);
  EXPECT_EQ(run.chunk_size, 4u);
  EXPECT_EQ(run.chunks, queries.size() / 4);
  EXPECT_EQ(run.sessions_created + run.session_reuses, run.chunks);
  EXPECT_GE(run.sessions_created, 1u);
  EXPECT_LE(run.sessions_created, run.workers);

  // Memo accounting: every query either hit or missed; the 50% dup rate
  // guarantees traffic on both sides.
  EXPECT_EQ(run.memo_hits + run.memo_misses, queries.size());
  EXPECT_GT(run.memo_hits, 0u);
  EXPECT_GT(run.memo_misses, 0u);

  // Stage attribution: one setup per created session, solves for at least
  // every miss, and some nonzero wall time attributed to solving.
  EXPECT_EQ(run.stages.CountFor(Stage::kSessionSetup), run.sessions_created);
  EXPECT_GE(run.stages.CountFor(Stage::kSolve), run.memo_misses);
  EXPECT_GT(run.stages.MsFor(Stage::kSolve), 0.0);
  EXPECT_EQ(run.stages.CountFor(Stage::kResultWrite), queries.size());
}

}  // namespace
}  // namespace xicc
