// Property-based sweeps over the exact-arithmetic substrate: algebraic laws
// of BigInt/Rational checked against seeded random operands, including
// multi-limb magnitudes. The ILP solver's correctness rests on these.

#include <gtest/gtest.h>

#include <random>

#include "base/bigint.h"
#include "base/rational.h"

namespace xicc {
namespace {

/// Produces a random BigInt with up to `max_limbs` limbs, either sign.
BigInt RandomBigInt(std::mt19937_64* rng, int max_limbs) {
  std::uniform_int_distribution<int> limb_count(0, max_limbs);
  int limbs = limb_count(*rng);
  BigInt out(0);
  for (int i = 0; i < limbs; ++i) {
    out = out * BigInt::Pow(BigInt(2), 64) +
          BigInt(static_cast<int64_t>((*rng)() >> 1));
  }
  if ((*rng)() % 2 == 0) out = -out;
  return out;
}

class BigIntPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BigIntPropertyTest, AdditionCommutesAndAssociates) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = RandomBigInt(&rng, 4);
    BigInt b = RandomBigInt(&rng, 4);
    BigInt c = RandomBigInt(&rng, 4);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a + BigInt(0), a);
    EXPECT_EQ(a - a, BigInt(0));
  }
}

TEST_P(BigIntPropertyTest, MultiplicationDistributes) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = RandomBigInt(&rng, 3);
    BigInt b = RandomBigInt(&rng, 3);
    BigInt c = RandomBigInt(&rng, 3);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a * BigInt(1), a);
    EXPECT_EQ(a * BigInt(0), BigInt(0));
  }
}

TEST_P(BigIntPropertyTest, DivModInvariant) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = RandomBigInt(&rng, 5);
    BigInt b = RandomBigInt(&rng, 3);
    if (b.is_zero()) b = BigInt(1);
    BigInt q, r;
    BigInt::DivMod(a, b, &q, &r);
    // a == q*b + r, |r| < |b|, sign(r) in {0, sign(a)}.
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r.Abs(), b.Abs());
    if (!r.is_zero()) {
      EXPECT_EQ(r.sign(), a.sign());
    }
  }
}

TEST_P(BigIntPropertyTest, StringRoundTrip) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    BigInt a = RandomBigInt(&rng, 6);
    auto parsed = BigInt::FromString(a.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, a);
  }
}

TEST_P(BigIntPropertyTest, GcdDividesBoth) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    BigInt a = RandomBigInt(&rng, 3);
    BigInt b = RandomBigInt(&rng, 3);
    BigInt g = BigInt::Gcd(a, b);
    if (g.is_zero()) {
      EXPECT_TRUE(a.is_zero() && b.is_zero());
      continue;
    }
    EXPECT_EQ(a % g, BigInt(0));
    EXPECT_EQ(b % g, BigInt(0));
  }
}

TEST_P(BigIntPropertyTest, CompareConsistentWithSubtraction) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    BigInt a = RandomBigInt(&rng, 4);
    BigInt b = RandomBigInt(&rng, 4);
    EXPECT_EQ(BigInt::Compare(a, b), (a - b).sign());
  }
}

TEST_P(BigIntPropertyTest, RationalFieldLaws) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    BigInt an = RandomBigInt(&rng, 2);
    BigInt bn = RandomBigInt(&rng, 2);
    BigInt ad = RandomBigInt(&rng, 2);
    BigInt bd = RandomBigInt(&rng, 2);
    if (ad.is_zero()) ad = BigInt(1);
    if (bd.is_zero()) bd = BigInt(1);
    Rational a(an, ad);
    Rational b(bn, bd);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a + (-a), Rational());
    EXPECT_EQ(a * b, b * a);
    if (!b.is_zero()) {
      EXPECT_EQ((a / b) * b, a);
    }
  }
}

TEST_P(BigIntPropertyTest, RationalFloorCeilBracket) {
  std::mt19937_64 rng(GetParam());
  for (int i = 0; i < 30; ++i) {
    BigInt n = RandomBigInt(&rng, 2);
    BigInt d = RandomBigInt(&rng, 1);
    if (d.is_zero()) d = BigInt(3);
    Rational r(n, d);
    BigInt floor = r.Floor();
    BigInt ceil = r.Ceil();
    EXPECT_LE(Rational(floor), r);
    EXPECT_GE(Rational(ceil), r);
    EXPECT_LE((ceil - floor), BigInt(1));
    if (r.is_integer()) {
      EXPECT_EQ(floor, ceil);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace xicc
