// Deadline & cancellation plumbing: the Deadline/CancelToken/StopSignal
// primitives, the worksteal pool's abandon protocol (including the
// lost-wakeup regression — cancelling while every worker is parked), and
// the end-to-end contract that a stopped consistency check returns
// kDeadlineExceeded/kCancelled with partial statistics, never a verdict.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "base/deadline.h"
#include "base/worksteal.h"
#include "core/consistency.h"
#include "core/spec_session.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

int64_t MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// A consistent LIP instance whose unrestrained solve takes hundreds of
/// milliseconds — far past the 50 ms budgets below, including one 4×
/// escalated retry. The multi-conditional case split is what makes it
/// explode: every conditional doubles the prefix fan-out.
workloads::LipEncoding ExplodingSpec() {
  return workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/3, /*rows=*/12, /*cols=*/24,
                           /*ones_per_row=*/3));
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), INT64_MAX);
}

TEST(DeadlineTest, AfterExpires) {
  Deadline past = Deadline::After(0);
  EXPECT_FALSE(past.IsInfinite());
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.RemainingMs(), 0);

  Deadline future = Deadline::After(60'000);
  EXPECT_FALSE(future.Expired());
  EXPECT_GT(future.RemainingMs(), 0);

  // Negative budgets clamp to "already expired", not to the far past.
  EXPECT_TRUE(Deadline::After(-5).Expired());
}

TEST(CancelTokenTest, StickyAndCallbackLifecycle) {
  CancelToken token;
  EXPECT_FALSE(token.Cancelled());

  std::atomic<int> wakes{0};
  uint64_t id = token.AddWakeCallback([&] { ++wakes; });
  token.Cancel();
  EXPECT_TRUE(token.Cancelled());
  EXPECT_EQ(wakes.load(), 1);
  token.Cancel();  // Idempotent, but callbacks run again (wakes are cheap).
  EXPECT_TRUE(token.Cancelled());
  token.RemoveWakeCallback(id);
  int seen = wakes.load();
  token.Cancel();
  EXPECT_EQ(wakes.load(), seen);  // Removed callback never runs again.

  // Registering on an already-cancelled token fires the callback once
  // immediately — the observer must not park waiting for a wake that
  // already happened.
  std::atomic<int> late{0};
  uint64_t late_id = token.AddWakeCallback([&] { ++late; });
  EXPECT_EQ(late.load(), 1);
  token.RemoveWakeCallback(late_id);
}

TEST(StopSignalTest, UnarmedNeverStops) {
  StopSignal stop;
  EXPECT_FALSE(stop.Armed());
  EXPECT_FALSE(stop.ShouldStop());
}

TEST(StopSignalTest, CancelWinsOverDeadline) {
  CancelToken token;
  StopSignal stop;
  stop.deadline = Deadline::After(0);
  stop.cancel = &token;
  ASSERT_TRUE(stop.Armed());
  ASSERT_TRUE(stop.ShouldStop());
  // Deadline alone: kDeadlineExceeded.
  EXPECT_EQ(stop.ToStatus().code(), StatusCode::kDeadlineExceeded);
  // Once the token fires, cancellation is the stronger, caller-driven fact.
  token.Cancel();
  EXPECT_EQ(stop.ToStatus().code(), StatusCode::kCancelled);
}

TEST(SleepForTest, CancelCutsTheSleepShort) {
  CancelToken token;
  const auto start = std::chrono::steady_clock::now();
  std::thread canceller([&] {
    SleepFor(20);
    token.Cancel();
  });
  // Without the cancel this would block for 30 s; the test finishing at all
  // is the point.
  EXPECT_TRUE(SleepFor(30'000, &token));
  EXPECT_LT(MsSince(start), 25'000);
  canceller.join();

  // An already-cancelled token returns immediately.
  EXPECT_TRUE(SleepFor(30'000, &token));
  // A full, uncancelled sleep reports false.
  EXPECT_FALSE(SleepFor(1, nullptr));
}

TEST(CancelTimerTest, FiresAndDisarms) {
  CancelToken fired;
  {
    CancelTimer timer(&fired, 10);
    const auto start = std::chrono::steady_clock::now();
    while (!fired.Cancelled() && MsSince(start) < 10'000) SleepFor(1);
  }
  EXPECT_TRUE(fired.Cancelled());

  CancelToken disarmed;
  {
    CancelTimer timer(&disarmed, 60'000);
  }  // Destroyed long before the delay: must disarm, not fire.
  EXPECT_FALSE(disarmed.Cancelled());
}

// The lost-wakeup regression: every worker is parked on the sleep CondVar
// (no tasks were ever submitted), then the token fires. Without the wake
// callback mirroring Submit's generation protocol, the workers would sleep
// until the destructor's own broadcast — and a Wait()er would wedge
// forever. The pool must drain: every worker exits, Wait returns.
TEST(WorkStealPoolTest, CancelWakesParkedWorkers) {
  CancelToken token;
  WorkStealingPool pool(4, &token);
  // Give the workers time to find every shard empty and park.
  SleepFor(50);
  ASSERT_EQ(pool.WorkersAlive(), 4u);

  token.Cancel();
  const auto start = std::chrono::steady_clock::now();
  while (pool.WorkersAlive() != 0 && MsSince(start) < 10'000) SleepFor(1);
  EXPECT_EQ(pool.WorkersAlive(), 0u)
      << "Cancel() failed to wake parked workers";
  pool.Wait();  // Must return, not wedge, on a fully drained pool.
}

TEST(WorkStealPoolTest, CancelledPoolDrainsWithoutRunning) {
  CancelToken token;
  token.Cancel();
  std::atomic<int> ran{0};
  {
    WorkStealingPool pool(2, &token);
    // Submits on a cancelled pool are dropped on arrival.
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&] { ++ran; });
    }
    pool.Wait();
  }
  EXPECT_EQ(ran.load(), 0);
}

TEST(WorkStealPoolTest, CancelMidFlightStopsQueuedTasks) {
  CancelToken token;
  std::atomic<int> ran{0};
  std::atomic<bool> release{false};
  {
    WorkStealingPool pool(2, &token);
    // Two blockers occupy both workers; the rest queue up behind them.
    for (int i = 0; i < 2; ++i) {
      pool.Submit([&] {
        while (!release.load()) SleepFor(1);
      });
    }
    for (int i = 0; i < 32; ++i) {
      pool.Submit([&] { ++ran; });
    }
    token.Cancel();
    release.store(true);
    pool.Wait();
    // The queued tasks were drained without running (in-flight blockers
    // finished; they are expected to poll the token themselves).
    EXPECT_EQ(ran.load(), 0);
  }
}

TEST(ConsistencyDeadlineTest, ExpiredDeadlineIsNotAVerdict) {
  workloads::LipEncoding spec = ExplodingSpec();
  ConsistencyOptions options;
  options.stop.deadline = Deadline::After(0);
  ConsistencyStats partial;
  partial.ilp_nodes = 999;  // Must be zeroed: nothing ran.
  options.partial_stats = &partial;
  auto result = CheckConsistency(spec.dtd, spec.sigma, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(partial.ilp_nodes, 0u);
}

TEST(ConsistencyDeadlineTest, MidSearchDeadlineReturnsPartialStats) {
  workloads::LipEncoding spec = ExplodingSpec();
  ConsistencyOptions options;
  ConsistencyStats partial;
  options.partial_stats = &partial;
  // 50 ms lands mid-search in a release build; sanitizer/debug builds can
  // burn the whole budget in the pre-search phases (compile + encoding) and
  // die with zero pivots. Escalate until the deadline demonstrably falls
  // inside the pivot loop — the cap stays far below the unrestrained solve
  // time, which scales up by the same build-slowdown factor.
  int64_t budget_ms = 50;
  int64_t elapsed = 0;
  Result<ConsistencyResult> result = Status::Internal("never ran");
  for (; budget_ms <= 1'600; budget_ms *= 2) {
    options.stop.deadline = Deadline::After(budget_ms);
    const auto start = std::chrono::steady_clock::now();
    result = CheckConsistency(spec.dtd, spec.sigma, options);
    elapsed = MsSince(start);
    if (!result.ok() && partial.lp_pivots > 0) break;
  }
  ASSERT_FALSE(result.ok()) << "the exploding spec finished under "
                            << budget_ms << " ms; grow the instance";
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Stop polls are bounded-cost but frequent: the check must die close to
  // its deadline, not after seconds of overshoot.
  EXPECT_LT(elapsed, budget_ms + 2'000);
  // The search got somewhere before the axe fell, and said so.
  EXPECT_GT(partial.lp_pivots, 0u);
}

TEST(ConsistencyDeadlineTest, CancelMidSearchReturnsCancelled) {
  workloads::LipEncoding spec = ExplodingSpec();
  CancelToken token;
  CancelTimer timer(&token, 30);
  ConsistencyOptions options;
  options.stop.cancel = &token;
  ConsistencyStats partial;
  options.partial_stats = &partial;
  const auto start = std::chrono::steady_clock::now();
  auto result = CheckConsistency(spec.dtd, spec.sigma, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_LT(MsSince(start), 2'000);
}

TEST(ConsistencyDeadlineTest, GenerousDeadlineChangesNothing) {
  // The plumbing must be pay-as-you-go: an armed but never-fired stop
  // yields the identical verdict as no stop at all.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(2);
  auto plain = CheckConsistency(dtd, sigma);
  ASSERT_TRUE(plain.ok());

  ConsistencyOptions options;
  options.stop.deadline = Deadline::After(600'000);
  CancelToken token;
  options.stop.cancel = &token;
  auto stopped = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(stopped.ok());
  EXPECT_EQ(plain->consistent, stopped->consistent);
  EXPECT_EQ(plain->method, stopped->method);
}

TEST(SpecSessionDeadlineTest, SessionStopAndPartialStats) {
  workloads::LipEncoding spec = ExplodingSpec();
  auto compiled = CompileDtd(spec.dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  SpecSession session(*compiled);

  // Same budget escalation as MidSearchDeadlineReturnsPartialStats: slow
  // (sanitizer) builds can spend 50 ms before the first pivot.
  Result<ConsistencyResult> stopped = Status::Internal("never ran");
  for (int64_t budget_ms = 50; budget_ms <= 1'600; budget_ms *= 2) {
    StopSignal stop;
    stop.deadline = Deadline::After(budget_ms);
    session.SetStop(stop);
    stopped = session.Check(spec.sigma);
    if (!stopped.ok() && session.LastPartialStats().lp_pivots > 0) break;
  }
  ASSERT_FALSE(stopped.ok());
  EXPECT_EQ(stopped.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(session.LastPartialStats().lp_pivots, 0u);

  // Disarm: the same session must answer later queries normally — a
  // deadline poisons one query, not the session.
  session.SetStop(StopSignal());
  ConstraintSet trivial;
  auto fine = session.Check(trivial);
  ASSERT_TRUE(fine.ok()) << fine.status();
  EXPECT_TRUE(fine->consistent);
}

}  // namespace
}  // namespace xicc
