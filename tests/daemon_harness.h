#pragma once

// Shared helpers for the daemon suites (daemon_test.cc, daemon_soak_test.cc):
// textual workloads the wire protocol can carry, and small request builders.
//
// The engine-side workload generators produce Dtd / ConstraintSet objects;
// the daemon speaks text. Dtd::ToString() round-trips through ParseDtd, and
// SigmaText renders a ConstraintSet in the grammar constraint_parser.h
// accepts (`key t(a)`, `inclusion a(x) <= b(y)`, `fk a(x) => b(y)`).

#include <string>
#include <vector>

#include "constraints/constraint.h"
#include "net/json.h"
#include "workloads/generators.h"

namespace xicc {
namespace net {

inline std::string AttrList(const std::vector<std::string>& attrs) {
  std::string out = "(";
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs[i];
  }
  return out + ")";
}

inline std::string SigmaText(const ConstraintSet& sigma) {
  std::string out;
  for (const Constraint& c : sigma.constraints()) {
    switch (c.kind) {
      case ConstraintKind::kKey:
        out += "key " + c.type1 + AttrList(c.attrs1);
        break;
      case ConstraintKind::kNegKey:
        out += "!key " + c.type1 + AttrList(c.attrs1);
        break;
      case ConstraintKind::kInclusion:
        out += "inclusion " + c.type1 + AttrList(c.attrs1) + " <= " +
               c.type2 + AttrList(c.attrs2);
        break;
      case ConstraintKind::kNegInclusion:
        out += "!inclusion " + c.type1 + AttrList(c.attrs1) + " <= " +
               c.type2 + AttrList(c.attrs2);
        break;
      case ConstraintKind::kForeignKey:
        out += "fk " + c.type1 + AttrList(c.attrs1) + " => " + c.type2 +
               AttrList(c.attrs2);
        break;
    }
    out += "\n";
  }
  return out;
}

/// A consistent-but-search-heavy spec (the Theorem 4.7 NP-hardness gadget):
/// large enough that a millisecond-scale deadline reliably expires inside
/// the search, small enough that an unbounded solve still terminates.
struct TextSpec {
  std::string dtd;
  std::string sigma;
};

inline TextSpec HardSpec() {
  const workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/3, /*rows=*/12, /*cols=*/24,
                           /*ones_per_row=*/3));
  return {enc.dtd.ToString(), SigmaText(enc.sigma)};
}

/// A trivial spec that checks in microseconds.
inline TextSpec EasySpec() {
  const workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/1, /*rows=*/3, /*cols=*/4,
                           /*ones_per_row=*/2));
  return {enc.dtd.ToString(), SigmaText(enc.sigma)};
}

// -- Request builders -------------------------------------------------------

inline JsonValue Req(const std::string& verb, int64_t id) {
  JsonValue v = JsonValue::Object();
  v.Set("verb", JsonValue::Str(verb)).Set("id", JsonValue::Int(id));
  return v;
}

inline JsonValue OpenReq(int64_t id, const TextSpec& spec) {
  return Req("open", id).Set("dtd", JsonValue::Str(spec.dtd));
}

inline JsonValue CheckReq(int64_t id, uint64_t session,
                          const std::string& sigma, int64_t timeout_ms = 0) {
  JsonValue v = Req("check", id);
  v.Set("session", JsonValue::Int(static_cast<int64_t>(session)))
      .Set("sigma", JsonValue::Str(sigma));
  if (timeout_ms > 0) v.Set("timeout_ms", JsonValue::Int(timeout_ms));
  return v;
}

inline JsonValue OneShotCheckReq(int64_t id, const TextSpec& spec,
                                 int64_t timeout_ms = 0) {
  JsonValue v = Req("check", id);
  v.Set("dtd", JsonValue::Str(spec.dtd))
      .Set("sigma", JsonValue::Str(spec.sigma));
  if (timeout_ms > 0) v.Set("timeout_ms", JsonValue::Int(timeout_ms));
  return v;
}

/// The closed wire-outcome set of DESIGN.md §13: every response is a result
/// or one of these. INTERNAL is deliberately NOT here — the soak asserts it
/// never appears.
inline bool IsClosedOutcome(const JsonValue& response) {
  if (response.GetBool("ok", false)) return true;
  const std::string err = response.GetString("error", "");
  return err == "INVALID_ARGUMENT" || err == "DEADLINE_EXCEEDED" ||
         err == "CANCELLED" || err == "UNAVAILABLE";
}

}  // namespace net
}  // namespace xicc
