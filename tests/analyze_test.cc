// Tests for the xicc_analyze source model and semantic rule engines:
// synthetic positive/negative fixtures per engine (the five seeded defects
// from the issue: deadlock cycle, missing poll, dropped status, escaping
// arena pointer, include cycle) plus the repo-clean integration gate.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/lint_rules.h"
#include "analysis/source_model.h"
#include "gtest/gtest.h"

namespace xicc {
namespace {

std::vector<Finding> FindingsFor(const SourceModel& model,
                                 const std::string& rule) {
  AnalysisReport report = AnalyzeModel(model);
  std::vector<Finding> out;
  for (const Finding& f : report.findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Source model.

TEST(SourceModelTest, DigestsTokenizesAndSkipsDirectives) {
  const std::string content =
      "#pragma once\n"
      "#define MACRO(x) \\\n"
      "  do { broken(); } while (0)\n"
      "int Add(int a, int b) { return a + b; }  // comment with { brace\n"
      "const char* s = \"string with } brace\";\n";
  SourceFile file = BuildSourceFile("src/base/x.h", content);
  // Directive lines (and the continuation) contribute no tokens, so the
  // macro body's unbalanced-looking text never reaches the parser.
  for (const Token& token : file.tokens) {
    EXPECT_NE(token.text, "MACRO");
    EXPECT_NE(token.text, "broken");
  }
  ASSERT_EQ(file.functions.size(), 1u);
  EXPECT_EQ(file.functions[0].name, "Add");
  EXPECT_TRUE(file.functions[0].is_definition);
  EXPECT_EQ(file.functions[0].return_type, "int");
  EXPECT_EQ(file.functions[0].line, 4u);
}

TEST(SourceModelTest, TracksScopesMembersAndCalls) {
  const std::string content =
      "namespace xicc {\n"
      "class Pool {\n"
      " public:\n"
      "  Status Drain();\n"
      "  int Count() const { return Helper(n_); }\n"
      " private:\n"
      "  std::vector<int> items_;\n"
      "  size_t n_ = 0;\n"
      "};\n"
      "Status Pool::Drain() { Flush(); return Status::Ok(); }\n"
      "}  // namespace xicc\n";
  SourceFile file = BuildSourceFile("src/core/pool.cc", content);
  ASSERT_EQ(file.functions.size(), 3u);
  EXPECT_EQ(file.functions[0].name, "Drain");
  EXPECT_EQ(file.functions[0].class_name, "Pool");
  EXPECT_FALSE(file.functions[0].is_definition);
  EXPECT_EQ(file.functions[1].name, "Count");
  EXPECT_TRUE(file.functions[1].is_definition);
  EXPECT_EQ(file.functions[2].name, "Drain");
  EXPECT_EQ(file.functions[2].class_name, "Pool");
  EXPECT_TRUE(file.functions[2].is_definition);
  EXPECT_EQ(file.functions[2].return_type, "Status");

  std::vector<std::string> member_names;
  for (const MemberDecl& member : file.members) {
    member_names.push_back(member.class_name + "::" + member.name);
  }
  EXPECT_TRUE(std::count(member_names.begin(), member_names.end(),
                         "Pool::items_") == 1);
  EXPECT_TRUE(std::count(member_names.begin(), member_names.end(),
                         "Pool::n_") == 1);

  ASSERT_EQ(file.functions[2].calls.size(), 2u);
  EXPECT_EQ(file.functions[2].calls[0].callee, "Flush");
  EXPECT_EQ(file.functions[2].calls[1].callee, "Ok");
}

TEST(SourceModelTest, ExtractsMutexDeclsWithAnnotations) {
  const std::string content =
      "class XICC_CAPABILITY(\"mutex\") Guarded {\n"
      "  Mutex a_;  // xicc-analyze: lock-leaf\n"
      "  // xicc-analyze: acquired-after(Other::first_)\n"
      "  Mutex b_;\n"
      "  Mutex* handle_;\n"
      "};\n";
  SourceFile file = BuildSourceFile("src/base/g.h", content);
  ASSERT_EQ(file.mutexes.size(), 2u);  // The pointer is a handle, not a lock.
  EXPECT_EQ(file.mutexes[0].class_name, "Guarded");
  EXPECT_EQ(file.mutexes[0].name, "a_");
  EXPECT_TRUE(file.mutexes[0].leaf);
  EXPECT_EQ(file.mutexes[1].name, "b_");
  ASSERT_EQ(file.mutexes[1].acquired_after.size(), 1u);
  EXPECT_EQ(file.mutexes[1].acquired_after[0], "Other::first_");
}

TEST(SourceModelTest, SuppressionCoversOwnAndNextLine) {
  const std::string content =
      "int a;  // xicc-lint: allow(some-rule)\n"
      "int b;\n"
      "int c;\n";
  SourceFile file = BuildSourceFile("src/base/s.h", content);
  EXPECT_TRUE(file.Suppressed(1, "some-rule"));
  EXPECT_TRUE(file.Suppressed(2, "some-rule"));
  EXPECT_FALSE(file.Suppressed(3, "some-rule"));
  EXPECT_FALSE(file.Suppressed(1, "other-rule"));
}

// ---------------------------------------------------------------------------
// Lock order.

TEST(LockOrderTest, DetectsDeadlockCycleFromNesting) {
  // Seeded defect #1: two functions taking the same pair in opposite order.
  const std::string content =
      "struct Two {\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  void First() {\n"
      "    MutexLock la(&a_);\n"
      "    MutexLock lb(&b_);\n"
      "  }\n"
      "  void Second() {\n"
      "    MutexLock lb(&b_);\n"
      "    MutexLock la(&a_);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/two.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(graph.edges.size(), 2u);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Two::a_"), std::string::npos);
  EXPECT_NE(findings[0].message.find("Two::b_"), std::string::npos);
}

TEST(LockOrderTest, ConsistentNestingIsCleanAndOrdered) {
  const std::string content =
      "struct Two {\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  void First() {\n"
      "    MutexLock la(&a_);\n"
      "    MutexLock lb(&b_);\n"
      "  }\n"
      "  void Again() {\n"
      "    MutexLock la(&a_);\n"
      "    { MutexLock lb(&b_); }\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/two.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  EXPECT_TRUE(findings.empty());
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Two::a_");
  EXPECT_EQ(graph.edges[0].to, "Two::b_");
}

TEST(LockOrderTest, ScopeEndsReleaseLocks) {
  // The braces around the first guard end before the second acquisition:
  // no nesting, no edge.
  const std::string content =
      "struct Two {\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  void Sequential() {\n"
      "    { MutexLock la(&a_); }\n"
      "    { MutexLock lb(&b_); }\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/two.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  EXPECT_TRUE(graph.edges.empty());
  EXPECT_TRUE(findings.empty());
}

TEST(LockOrderTest, AnnotationEdgesJoinTheGraph) {
  const std::string content =
      "struct Wakeable {\n"
      "  // xicc-analyze: acquired-after(Token::mu_)\n"
      "  Mutex sleep_mu_;\n"
      "};\n"
      "struct Token {\n"
      "  Mutex mu_;\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/base/w.h", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Token::mu_");
  EXPECT_EQ(graph.edges[0].to, "Wakeable::sleep_mu_");
  EXPECT_EQ(graph.edges[0].kind, "annotation");
  EXPECT_TRUE(findings.empty());
}

TEST(LockOrderTest, AnnotationConflictingWithNestingIsACycle) {
  // The annotation says token first; the code takes sleep first while
  // holding it acquires the token's lock — a cycle.
  const std::string content =
      "struct Wakeable {\n"
      "  // xicc-analyze: acquired-after(Token::mu_)\n"
      "  Mutex sleep_mu_;\n"
      "};\n"
      "struct Token {\n"
      "  Mutex mu_;\n"
      "  Wakeable* w_;\n"
      "  void Backwards() {\n"
      "    MutexLock ls(&w_->sleep_mu_);\n"
      "    MutexLock lt(&mu_);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/base/w.h", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
}

TEST(LockOrderTest, LeafLockMustStayTerminal) {
  const std::string content =
      "struct Shardy {\n"
      "  Mutex mu_;  // xicc-analyze: lock-leaf\n"
      "  Mutex other_;\n"
      "  void Nested() {\n"
      "    MutexLock l(&mu_);\n"
      "    MutexLock m(&other_);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/s.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("lock-leaf"), std::string::npos);
}

TEST(LockOrderTest, SelfNestingIsSelfDeadlock) {
  const std::string content =
      "struct One {\n"
      "  Mutex mu_;\n"
      "  void Twice() {\n"
      "    MutexLock a(&mu_);\n"
      "    MutexLock b(&mu_);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/one.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("self-deadlock"), std::string::npos);
}

TEST(LockOrderTest, ResolvesLocksThroughMembersAndLocals) {
  // shards_[i].mu must resolve via the member's element type, and a local
  // reference must resolve via its declared type.
  const std::string content =
      "struct Shard {\n"
      "  Mutex mu;\n"
      "};\n"
      "struct Pool {\n"
      "  std::unique_ptr<Shard[]> shards_;\n"
      "  Mutex big_;\n"
      "  void Cross(size_t i) {\n"
      "    MutexLock l(&big_);\n"
      "    Shard& shard = shards_[i];\n"
      "    MutexLock m(&shard.mu);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/base/p.h", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.edges[0].from, "Pool::big_");
  EXPECT_EQ(graph.edges[0].to, "Shard::mu");
}

TEST(LockOrderTest, RenderedMarkdownIsDeterministic) {
  const std::string content =
      "struct Two {\n"
      "  Mutex a_;\n"
      "  Mutex b_;\n"
      "  void First() {\n"
      "    MutexLock la(&a_);\n"
      "    MutexLock lb(&b_);\n"
      "  }\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/two.cc", content}});
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(model, &graph, &findings);
  const std::string md = RenderLockOrderMd(graph);
  EXPECT_NE(md.find("`Two::a_`"), std::string::npos);
  EXPECT_NE(md.find("| `Two::a_` | `Two::b_` |"), std::string::npos);
  EXPECT_NE(md.find("## Hierarchy"), std::string::npos);

  LockGraph graph2;
  std::vector<Finding> findings2;
  AnalyzeLockOrder(model, &graph2, &findings2);
  EXPECT_EQ(md, RenderLockOrderMd(graph2));
}

// ---------------------------------------------------------------------------
// Stop-poll coverage.

TEST(StopPollTest, FlagsWorkLoopWithoutPoll) {
  // Seeded defect #2: a loop that pivots forever with no poll.
  const std::string content =
      "Status SolveIlp(int x);\n"
      "Status Grind(int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    SolveIlp(i);\n"
      "  }\n"
      "  return Status::Ok();\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "stop-poll");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("never polls"), std::string::npos);
}

TEST(StopPollTest, DirectPollIsClean) {
  const std::string content =
      "Status SolveIlp(int x);\n"
      "Status Grind(const StopSignal& stop, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (stop.ShouldStop()) return stop.ToStatus();\n"
      "    SolveIlp(i);\n"
      "  }\n"
      "  return Status::Ok();\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "stop-poll").empty());
}

TEST(StopPollTest, PollThroughCalleeIsClean) {
  // The loop calls a function that itself polls: covered transitively.
  const std::string content =
      "Status SolveIlp(int x);\n"
      "bool Guard(const StopSignal& stop) { return stop.ShouldStop(); }\n"
      "Status Grind(const StopSignal& stop, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (Guard(stop)) break;\n"
      "    SolveIlp(i);\n"
      "  }\n"
      "  return Status::Ok();\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "stop-poll").empty());
}

TEST(StopPollTest, LoopWithoutWorkIsOutOfScope) {
  const std::string content =
      "int Sum(const std::vector<int>& v) {\n"
      "  int total = 0;\n"
      "  for (int x : v) {\n"
      "    total += x;\n"
      "  }\n"
      "  return total;\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/sum.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "stop-poll").empty());
}

TEST(StopPollTest, FaultProbeMarksInlineWorkLoop) {
  // The simplex pivot loops do their work inline — no solver entry point is
  // called — but they carry a fault probe, which doubles as the work marker.
  const std::string content =
      "int Pivot2(int a, int b) {\n"
      "  for (;;) {\n"
      "    XICC_FAULT_PROBE(kSimplexPivot);\n"
      "    a = a * b + 1;\n"
      "    if (a > b) break;\n"
      "  }\n"
      "  return a;\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/ilp/pivot.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "stop-poll");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("never polls"), std::string::npos);
}

TEST(StopPollTest, WorkLoopAnnotationForcesTheCheck) {
  const std::string flagged =
      "int Grind(int n) {\n"
      "  // xicc-analyze: work-loop\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    n = n * 31 + i;\n"
      "  }\n"
      "  return n;\n"
      "}\n";
  SourceModel bad =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", flagged}});
  EXPECT_EQ(FindingsFor(bad, "stop-poll").size(), 1u);

  const std::string polled =
      "int Grind(const StopSignal& stop, int n) {\n"
      "  // xicc-analyze: work-loop\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (stop.ShouldStop()) break;\n"
      "    n = n * 31 + i;\n"
      "  }\n"
      "  return n;\n"
      "}\n";
  SourceModel good =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", polled}});
  EXPECT_TRUE(FindingsFor(good, "stop-poll").empty());
}

TEST(StopPollTest, NetDispatchLoopsMustObserveCancellation) {
  // src/net is in scope: Dispatch/HandleRequest are the daemon's fan-out
  // anchors, so an I/O loop that admits frames without ever checking the
  // connection's token would keep feeding the pool through a cancel/drain.
  const std::string unpolled =
      "void Dispatch(int frame);\n"
      "void PumpConnection(int* frames, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    Dispatch(frames[i]);\n"
      "  }\n"
      "}\n";
  SourceModel bad =
      BuildSourceModelFromContents({{"src/net/pump.cc", unpolled}});
  ASSERT_EQ(FindingsFor(bad, "stop-poll").size(), 1u);

  const std::string polled =
      "void Dispatch(int frame);\n"
      "void PumpConnection(const CancelToken& cancel, int* frames, int n) {\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    if (cancel.Cancelled()) break;\n"
      "    Dispatch(frames[i]);\n"
      "  }\n"
      "}\n";
  SourceModel good =
      BuildSourceModelFromContents({{"src/net/pump.cc", polled}});
  EXPECT_TRUE(FindingsFor(good, "stop-poll").empty());

  // The same loop shape outside the scoped directories is not the
  // daemon's admission path and stays quiet.
  SourceModel elsewhere =
      BuildSourceModelFromContents({{"src/tools/pump.cc", unpolled}});
  EXPECT_TRUE(FindingsFor(elsewhere, "stop-poll").empty());
}

TEST(StopPollTest, SuppressionSilencesTheLoop) {
  const std::string content =
      "Status SolveIlp(int x);\n"
      "Status Grind(int n) {\n"
      "  // xicc-lint: allow(stop-poll)\n"
      "  for (int i = 0; i < n; ++i) {\n"
      "    SolveIlp(i);\n"
      "  }\n"
      "  return Status::Ok();\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/ilp/grind.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "stop-poll").empty());
}

// ---------------------------------------------------------------------------
// Status-drop dataflow.

TEST(StatusFlowTest, FlagsDroppedStatusCall) {
  // Seeded defect #3: the Commit result is dropped on the floor.
  const std::string content =
      "Status Commit(int n);\n"
      "void Run(int n) {\n"
      "  Commit(n);\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/run.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "status-drop");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'Commit'"), std::string::npos);
}

TEST(StatusFlowTest, ConsumedBranchedAndReturnedAreClean) {
  const std::string content =
      "Status Commit(int n);\n"
      "Status RunAll(int n) {\n"
      "  Status st = Commit(n);\n"
      "  if (!st.ok()) return st;\n"
      "  if (Commit(n + 1).ok()) return Status::Ok();\n"
      "  XICC_RETURN_IF_ERROR(Commit(n + 2));\n"
      "  return Commit(n + 3);\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/run.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "status-drop").empty());
}

TEST(StatusFlowTest, DropInsideIfBodyIsFlagged) {
  const std::string content =
      "Status Commit(int n);\n"
      "void Run(bool go, int n) {\n"
      "  if (go) Commit(n);\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/run.cc", content}});
  EXPECT_EQ(FindingsFor(model, "status-drop").size(), 1u);
}

TEST(StatusFlowTest, MethodChainDropIsFlagged) {
  const std::string content =
      "struct Session {\n"
      "  Result<int> Check(int n);\n"
      "};\n"
      "void Run(Session* session, int n) {\n"
      "  session->Check(n);\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/run.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "status-drop");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'Check'"), std::string::npos);
}

TEST(StatusFlowTest, NonStatusCalleesAreClean) {
  const std::string content =
      "void Log(int n);\n"
      "void Run(int n) {\n"
      "  Log(n);\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/run.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "status-drop").empty());
}

// ---------------------------------------------------------------------------
// Arena escape.

TEST(ArenaEscapeTest, FlagsReturnOfArenaLocal) {
  // Seeded defect #4: arena-backed rows returned past the scope's rewind.
  const std::string content =
      "ArenaVector<int> Rows() {\n"
      "  ArenaScope scope(ThisThreadArena());\n"
      "  ArenaVector<int> rows(ArenaAllocator<int>(ThisThreadArena()));\n"
      "  rows.push_back(1);\n"
      "  return rows;\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/rows.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "arena-escape");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("returned"), std::string::npos);
}

TEST(ArenaEscapeTest, FlagsStoreIntoOutParam) {
  const std::string content =
      "void Fill(std::vector<int>* out) {\n"
      "  ArenaScope scope(ThisThreadArena());\n"
      "  ArenaVector<int> rows(ArenaAllocator<int>(ThisThreadArena()));\n"
      "  out->data_view = rows.data();\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/fill.cc", content}});
  std::vector<Finding> findings = FindingsFor(model, "arena-escape");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("outlives"), std::string::npos);
}

TEST(ArenaEscapeTest, LocalUseWithinScopeIsClean) {
  const std::string content =
      "int Total() {\n"
      "  ArenaScope scope(ThisThreadArena());\n"
      "  ArenaVector<int> rows(ArenaAllocator<int>(ThisThreadArena()));\n"
      "  rows.push_back(2);\n"
      "  int total = 0;\n"
      "  for (int x : rows) total += x;\n"
      "  return total;\n"
      "}\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/total.cc", content}});
  EXPECT_TRUE(FindingsFor(model, "arena-escape").empty());
}

TEST(ArenaEscapeTest, ArenaMemberIsFlagged) {
  const std::string content =
      "struct Holder {\n"
      "  ArenaVector<int> kept_;\n"
      "};\n";
  SourceModel model =
      BuildSourceModelFromContents({{"src/core/holder.h", content}});
  std::vector<Finding> findings = FindingsFor(model, "arena-escape");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("Holder::kept_"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Include graph.

TEST(IncludeGraphTest, DetectsIncludeCycle) {
  // Seeded defect #5: two headers including each other.
  SourceModel model = BuildSourceModelFromContents({
      {"src/base/a.h", "#pragma once\n#include \"base/b.h\"\n"},
      {"src/base/b.h", "#pragma once\n#include \"base/a.h\"\n"},
  });
  std::map<std::string, std::map<std::string, size_t>> matrix;
  std::vector<Finding> findings;
  AnalyzeIncludeGraph(model, &matrix, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_NE(findings[0].message.find("src/base/a.h"), std::string::npos);
  EXPECT_NE(findings[0].message.find("src/base/b.h"), std::string::npos);
}

TEST(IncludeGraphTest, AcyclicGraphBuildsMatrix) {
  SourceModel model = BuildSourceModelFromContents({
      {"src/base/a.h", "#pragma once\n"},
      {"src/ilp/b.h", "#pragma once\n#include \"base/a.h\"\n"},
      {"src/ilp/c.cc", "#include \"ilp/b.h\"\n#include \"base/a.h\"\n"},
  });
  std::map<std::string, std::map<std::string, size_t>> matrix;
  std::vector<Finding> findings;
  AnalyzeIncludeGraph(model, &matrix, &findings);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(matrix["ilp"]["base"], 2u);
  EXPECT_EQ(matrix["ilp"]["ilp"], 1u);
}

// ---------------------------------------------------------------------------
// Report plumbing.

TEST(ReportTest, BaselineRoundTripsAndGatesFindings) {
  SourceModel model = BuildSourceModelFromContents({
      {"src/core/run.cc",
       "Status Commit(int n);\n"
       "void Run(int n) {\n"
       "  Commit(n);\n"
       "}\n"},
  });
  AnalysisReport report = AnalyzeModel(model);
  ASSERT_FALSE(report.findings.empty());

  const std::string baseline_text = RenderBaseline(report.findings);
  const std::set<std::string> baseline = ParseBaseline(baseline_text);
  EXPECT_TRUE(NewFindings(report.findings, baseline).empty());
  EXPECT_EQ(NewFindings(report.findings, {}).size(), report.findings.size());
}

TEST(ReportTest, JsonReportIsWellFormedEnoughToGrep) {
  SourceModel model = BuildSourceModelFromContents({
      {"src/core/run.cc",
       "Status Commit(int n);\n"
       "void Run(int n) {\n"
       "  Commit(n);\n"
       "}\n"},
  });
  AnalysisReport report = AnalyzeModel(model);
  const std::string json = RenderFindingsJson(report, {});
  EXPECT_NE(json.find("\"rule\": \"status-drop\""), std::string::npos);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"new\": true"), std::string::npos);
  EXPECT_NE(json.find("\"include_matrix\""), std::string::npos);
  // Quotes and backslashes in messages must be escaped.
  EXPECT_EQ(json.find("\"message\": \"'"), json.find("\"message\": \"'"));
}

// ---------------------------------------------------------------------------
// Repo integration: the tree itself is clean vs. the committed baseline and
// the committed LOCK_ORDER.md is fresh.

#ifdef XICC_SOURCE_DIR
TEST(RepoAnalyzeTest, RepositoryIsAnalyzeClean) {
  Result<AnalyzeRunReport> run = AnalyzeRepo(XICC_SOURCE_DIR, /*fix=*/false);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->lock_order_fresh)
      << "LOCK_ORDER.md is stale; run xicc_analyze --fix and commit it";

  std::set<std::string> baseline;
  {
    std::ifstream in(std::string(XICC_SOURCE_DIR) + "/ANALYZE_BASELINE.txt",
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing ANALYZE_BASELINE.txt";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    baseline = ParseBaseline(buffer.str());
  }
  std::string new_findings;
  for (const Finding& f : NewFindings(run->analysis.findings, baseline)) {
    new_findings += "  " + f.ToString() + "\n";
  }
  EXPECT_EQ(new_findings, "")
      << "new analyzer findings (fix them or baseline them):\n"
      << new_findings;
}

TEST(RepoAnalyzeTest, RepoLockGraphCoversTheConcurrencyStack) {
  Result<SourceModel> model = BuildSourceModelFromDisk(XICC_SOURCE_DIR);
  ASSERT_TRUE(model.ok()) << model.status();
  LockGraph graph;
  std::vector<Finding> findings;
  AnalyzeLockOrder(*model, &graph, &findings);
  std::set<std::string> names;
  for (const LockGraph::Node& node : graph.nodes) names.insert(node.name);
  // The locks the issue names: worksteal shards + sleep protocol, the memo
  // shards, the session pool, and the artifact cache.
  EXPECT_EQ(names.count("Shard::mu"), 1u);
  EXPECT_EQ(names.count("WorkStealingPool::sleep_mu_"), 1u);
  EXPECT_EQ(names.count("MemoShard::mu"), 1u);
  EXPECT_EQ(names.count("SessionPool::mu_"), 1u);
  EXPECT_EQ(names.count("ArtifactCache::mu_"), 1u);
  // The one cross-class ordering in the tree: CancelToken::mu_ is held
  // while the pool's wake callback takes sleep_mu_.
  bool found_edge = false;
  for (const LockGraph::Edge& edge : graph.edges) {
    if (edge.from == "CancelToken::mu_" &&
        edge.to == "WorkStealingPool::sleep_mu_") {
      found_edge = true;
    }
  }
  EXPECT_TRUE(found_edge);
}
#endif  // XICC_SOURCE_DIR

}  // namespace
}  // namespace xicc
