#include <gtest/gtest.h>

#include "dtd/analysis.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

Dtd MustParseBuilder(DtdBuilder& builder) {
  auto dtd = builder.Build();
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return std::move(dtd).value();
}

TEST(AnalysisTest, TeacherDtdHasValidTree) {
  EXPECT_TRUE(DtdHasValidTree(workloads::TeacherDtd()));
}

TEST(AnalysisTest, InfiniteDtdHasNone) {
  // D2: db → foo, foo → foo (the Section 1 example).
  Dtd d2 = workloads::InfiniteDtd();
  EXPECT_FALSE(DtdHasValidTree(d2));
  auto productive = ProductiveElements(d2);
  EXPECT_TRUE(productive.empty());
}

TEST(AnalysisTest, RecursionEscapedByUnion) {
  // list → (item, list) | ε : productive despite recursion.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("list"));
  builder.AddElement("list",
                     Regex::Union(Regex::Concat(Regex::Elem("item"),
                                                Regex::Elem("list")),
                                  Regex::Epsilon()));
  builder.AddElement("item", Regex::Epsilon());
  Dtd dtd = MustParseBuilder(builder);
  EXPECT_TRUE(DtdHasValidTree(dtd));
  EXPECT_EQ(ProductiveElements(dtd).size(), 3u);
}

TEST(AnalysisTest, StarOfUnproductiveIsProductive) {
  // r → bad*, bad → bad: r valid via zero repetitions.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Star(Regex::Elem("bad")));
  builder.AddElement("bad", Regex::Elem("bad"));
  Dtd dtd = MustParseBuilder(builder);
  EXPECT_TRUE(DtdHasValidTree(dtd));
  EXPECT_EQ(ProductiveElements(dtd).count("bad"), 0u);
}

TEST(AnalysisTest, ConcatWithUnproductiveArmIsUnproductive) {
  // r → (a, bad): unproductive even though a is fine.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Concat(Regex::Elem("a"), Regex::Elem("bad")));
  builder.AddElement("a", Regex::Epsilon());
  builder.AddElement("bad", Regex::Elem("bad"));
  EXPECT_FALSE(DtdHasValidTree(MustParseBuilder(builder)));
}

TEST(AnalysisTest, ReachableElements) {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("a"));
  builder.AddElement("a", Regex::Star(Regex::Elem("b")));
  builder.AddElement("b", Regex::Epsilon());
  builder.AddElement("island", Regex::Epsilon());  // Unreachable.
  Dtd dtd = MustParseBuilder(builder);
  auto reachable = ReachableElements(dtd);
  EXPECT_EQ(reachable.size(), 3u);
  EXPECT_EQ(reachable.count("island"), 0u);
}

// ------------------------------------------------- Multiplicity (Lemma 3.6).

TEST(MultiplicityTest, TeacherCanHaveTwoTeachers) {
  Dtd d1 = workloads::TeacherDtd();
  // teachers → teacher, teacher*: two teachers possible.
  EXPECT_TRUE(CanHaveTwo(d1, "teacher"));
  EXPECT_TRUE(CanHaveTwo(d1, "subject"));  // Two per teacher already.
  // Exactly one teachers (root).
  EXPECT_EQ(MaxMultiplicity(d1, "teachers"), Multiplicity::kExactlyOne);
}

TEST(MultiplicityTest, SingleOccurrenceChain) {
  Dtd chain = workloads::ChainDtd(5);
  EXPECT_EQ(MaxMultiplicity(chain, "e3"), Multiplicity::kExactlyOne);
  EXPECT_FALSE(CanHaveTwo(chain, "e5"));
}

TEST(MultiplicityTest, UnreachableTypeIsNone) {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Epsilon());
  builder.AddElement("island", Regex::Epsilon());
  Dtd dtd = MustParseBuilder(builder);
  EXPECT_EQ(MaxMultiplicity(dtd, "island"), Multiplicity::kNone);
}

TEST(MultiplicityTest, UnionForcesChoice) {
  // r → a | b: at most one of each.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Union(Regex::Elem("a"), Regex::Elem("b")));
  builder.AddElement("a", Regex::Epsilon());
  builder.AddElement("b", Regex::Epsilon());
  Dtd dtd = MustParseBuilder(builder);
  EXPECT_EQ(MaxMultiplicity(dtd, "a"), Multiplicity::kExactlyOne);
  EXPECT_EQ(MaxMultiplicity(dtd, "b"), Multiplicity::kExactlyOne);
}

TEST(MultiplicityTest, StarGivesUnbounded) {
  Dtd school = workloads::SchoolDtd();
  EXPECT_TRUE(CanHaveTwo(school, "course"));
  EXPECT_TRUE(CanHaveTwo(school, "enroll"));
  EXPECT_FALSE(CanHaveTwo(school, "school"));
}

TEST(MultiplicityTest, TwoViaDistinctPaths) {
  // r → (a, a) with a → x: two x's via the two a's.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Concat(Regex::Elem("a"), Regex::Elem("a")));
  builder.AddElement("a", Regex::Elem("x"));
  builder.AddElement("x", Regex::Epsilon());
  Dtd dtd = MustParseBuilder(builder);
  EXPECT_TRUE(CanHaveTwo(dtd, "x"));
}

TEST(MultiplicityTest, NoValidTreeGivesNone) {
  EXPECT_EQ(MaxMultiplicity(workloads::InfiniteDtd(), "foo"),
            Multiplicity::kNone);
}

// ---------------------------------------------------------- Unavoidability.

TEST(UnavoidabilityTest, MandatoryChild) {
  Dtd d1 = workloads::TeacherDtd();
  EXPECT_TRUE(TypeIsUnavoidable(d1, "teacher"));
  EXPECT_TRUE(TypeIsUnavoidable(d1, "subject"));
  EXPECT_TRUE(TypeIsUnavoidable(d1, "teachers"));
}

TEST(UnavoidabilityTest, StarredChildIsAvoidable) {
  Dtd school = workloads::SchoolDtd();
  EXPECT_FALSE(TypeIsUnavoidable(school, "course"));
  EXPECT_FALSE(TypeIsUnavoidable(school, "enroll"));
  EXPECT_TRUE(TypeIsUnavoidable(school, "school"));
}

TEST(UnavoidabilityTest, OptionalChildIsAvoidable) {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Union(Regex::Elem("a"), Regex::Epsilon()));
  builder.AddElement("a", Regex::Epsilon());
  EXPECT_FALSE(TypeIsUnavoidable(MustParseBuilder(builder), "a"));
}

TEST(UnavoidabilityTest, FalseWhenNoValidTree) {
  EXPECT_FALSE(TypeIsUnavoidable(workloads::InfiniteDtd(), "foo"));
}

}  // namespace
}  // namespace xicc
