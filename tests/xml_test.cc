#include <gtest/gtest.h>

#include "xml/parser.h"
#include "xml/serializer.h"
#include "xml/tree.h"

namespace xicc {
namespace {

TEST(XmlTreeTest, RootOnly) {
  XmlTree tree("db");
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.root(), 0u);
  EXPECT_EQ(tree.label(tree.root()), "db");
  EXPECT_TRUE(tree.children(tree.root()).empty());
  EXPECT_EQ(tree.parent(tree.root()), kInvalidNode);
}

TEST(XmlTreeTest, BuildHierarchy) {
  XmlTree tree("teachers");
  NodeId teacher = tree.AddElement(tree.root(), "teacher");
  NodeId teach = tree.AddElement(teacher, "teach");
  NodeId s1 = tree.AddElement(teach, "subject");
  NodeId s2 = tree.AddElement(teach, "subject");
  tree.AddText(s1, "XML");
  tree.AddText(s2, "DB");

  EXPECT_EQ(tree.children(teach).size(), 2u);
  EXPECT_EQ(tree.parent(s1), teach);
  EXPECT_EQ(tree.ChildLabelWord(teach),
            (std::vector<std::string>{"subject", "subject"}));
  EXPECT_EQ(tree.ChildLabelWord(s1), (std::vector<std::string>{"S"}));
}

TEST(XmlTreeTest, AttributesAreSingleValuedAndSorted) {
  XmlTree tree("r");
  tree.SetAttribute(tree.root(), "zeta", "1");
  tree.SetAttribute(tree.root(), "alpha", "2");
  tree.SetAttribute(tree.root(), "zeta", "3");  // Overwrite.
  ASSERT_EQ(tree.attributes(tree.root()).size(), 2u);
  EXPECT_EQ(tree.attributes(tree.root())[0].first, "alpha");
  EXPECT_EQ(*tree.AttributeValue(tree.root(), "zeta"), "3");
  EXPECT_FALSE(tree.AttributeValue(tree.root(), "missing").has_value());
}

TEST(XmlTreeTest, ExtOfTypeDocumentOrder) {
  XmlTree tree("r");
  NodeId a1 = tree.AddElement(tree.root(), "a");
  tree.AddElement(tree.root(), "b");
  NodeId a2 = tree.AddElement(tree.root(), "a");
  EXPECT_EQ(tree.ExtOfType("a"), (std::vector<NodeId>{a1, a2}));
  EXPECT_TRUE(tree.ExtOfType("zzz").empty());
}

TEST(XmlTreeTest, ExtOfAttributeDeduplicates) {
  XmlTree tree("r");
  NodeId a1 = tree.AddElement(tree.root(), "a");
  NodeId a2 = tree.AddElement(tree.root(), "a");
  NodeId a3 = tree.AddElement(tree.root(), "a");
  tree.SetAttribute(a1, "id", "x");
  tree.SetAttribute(a2, "id", "y");
  tree.SetAttribute(a3, "id", "x");
  EXPECT_EQ(tree.ExtOfAttribute("a", "id"),
            (std::vector<std::string>{"x", "y"}));
}

// ----------------------------------------------------------------- Parser.

TEST(XmlParserTest, MinimalDocument) {
  auto tree = ParseXml("<db/>");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->label(tree->root()), "db");
  EXPECT_EQ(tree->size(), 1u);
}

TEST(XmlParserTest, NestedWithAttributes) {
  auto tree = ParseXml(R"(<?xml version="1.0"?>
    <teachers>
      <teacher name="Joe">
        <teach><subject taught_by="Joe">XML</subject></teach>
      </teacher>
    </teachers>)");
  ASSERT_TRUE(tree.ok()) << tree.status();
  auto teachers = tree->ExtOfType("teacher");
  ASSERT_EQ(teachers.size(), 1u);
  EXPECT_EQ(*tree->AttributeValue(teachers[0], "name"), "Joe");
  auto subjects = tree->ExtOfType("subject");
  ASSERT_EQ(subjects.size(), 1u);
  ASSERT_EQ(tree->children(subjects[0]).size(), 1u);
  EXPECT_EQ(tree->text(tree->children(subjects[0])[0]), "XML");
}

TEST(XmlParserTest, EntitiesAndCharRefs) {
  auto tree = ParseXml("<a v=\"x&amp;y\">&lt;tag&gt; &#65;&#x42;</a>");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(*tree->AttributeValue(tree->root(), "v"), "x&y");
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->text(tree->children(tree->root())[0]), "<tag> AB");
}

TEST(XmlParserTest, CommentsAndPiSkipped) {
  auto tree = ParseXml(
      "<!-- head --><?pi data?><a><!-- inner --><b/><?x?></a><!-- tail -->");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->ExtOfType("b").size(), 1u);
}

TEST(XmlParserTest, CdataPreserved) {
  auto tree = ParseXml("<a><![CDATA[<not-a-tag>&amp;]]></a>");
  ASSERT_TRUE(tree.ok()) << tree.status();
  ASSERT_EQ(tree->children(tree->root()).size(), 1u);
  EXPECT_EQ(tree->text(tree->children(tree->root())[0]), "<not-a-tag>&amp;");
}

TEST(XmlParserTest, DoctypeSkipped) {
  auto tree = ParseXml(
      "<!DOCTYPE db [<!ELEMENT db EMPTY>]>\n<db/>");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->label(tree->root()), "db");
}

TEST(XmlParserTest, WhitespaceTextDroppedByDefault) {
  auto tree = ParseXml("<a>\n  <b/>\n</a>");
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->children(tree->root()).size(), 1u);

  XmlParseOptions keep;
  keep.skip_whitespace_text = false;
  auto kept = ParseXml("<a>\n  <b/>\n</a>", keep);
  ASSERT_TRUE(kept.ok());
  EXPECT_EQ(kept->children(kept->root()).size(), 3u);
}

TEST(XmlParserTest, ErrorsCarryPositions) {
  auto mismatched = ParseXml("<a><b></a>");
  ASSERT_FALSE(mismatched.ok());
  EXPECT_NE(mismatched.status().message().find("mismatched end tag"),
            std::string::npos);

  auto duplicate = ParseXml("<a x=\"1\" x=\"2\"/>");
  ASSERT_FALSE(duplicate.ok());
  EXPECT_NE(duplicate.status().message().find("duplicate attribute"),
            std::string::npos);

  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("<a v=unquoted/>").ok());
}

// -------------------------------------------------------------- Serializer.

TEST(XmlSerializerTest, RoundTrip) {
  XmlTree tree("school");
  NodeId course = tree.AddElement(tree.root(), "course");
  tree.SetAttribute(course, "dept", "CS");
  tree.SetAttribute(course, "course_no", "101");
  NodeId subject = tree.AddElement(course, "subject");
  tree.AddText(subject, "Databases & XML <fun>");

  std::string text = SerializeXml(tree);
  auto parsed = ParseXml(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
  EXPECT_EQ(parsed->size(), tree.size());
  auto courses = parsed->ExtOfType("course");
  ASSERT_EQ(courses.size(), 1u);
  EXPECT_EQ(*parsed->AttributeValue(courses[0], "dept"), "CS");
  auto subjects = parsed->ExtOfType("subject");
  ASSERT_EQ(subjects.size(), 1u);
  EXPECT_EQ(parsed->text(parsed->children(subjects[0])[0]),
            "Databases & XML <fun>");
}

TEST(XmlSerializerTest, CompactMode) {
  XmlTree tree("a");
  tree.AddElement(tree.root(), "b");
  XmlSerializeOptions options;
  options.indent = 0;
  options.declaration = false;
  EXPECT_EQ(SerializeXml(tree, options), "<a><b/></a>");
}

}  // namespace
}  // namespace xicc
