// Tests for the case-split conditional solver: sequential vs parallel vs
// brute-force-oracle agreement on the LIP-hard family, warm-context reuse,
// and the big-M cross-check.

#include <gtest/gtest.h>

#include "core/cardinality_encoding.h"
#include "core/conditional_solver.h"
#include "core/consistency.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

// The Theorem 4.7 gadget: consistency of the encoded spec ⇔ the 0/1-LIP
// instance has a binary solution. Runs the whole pipeline once sequentially
// and once with a multi-threaded case split; both verdicts must match the
// brute-force oracle.
class ParallelCaseSplitTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelCaseSplitTest, ParallelMatchesSequentialAndOracle) {
  const uint64_t seed = GetParam();
  for (size_t rows : {2, 3, 4}) {
    const size_t cols = rows + 2;
    workloads::BinaryLipInstance instance =
        workloads::RandomLip(seed + rows, rows, cols, /*ones_per_row=*/3);
    workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
    const bool oracle = workloads::LipHasBinarySolution(instance);

    bool verdicts[2];
    for (size_t threads : {1, 4}) {
      ConsistencyOptions options;
      options.build_witness = false;
      options.ilp.num_threads = threads;
      auto result = CheckConsistency(enc.dtd, enc.sigma, options);
      ASSERT_TRUE(result.ok()) << result.status();
      verdicts[threads > 1] = result->consistent;
    }
    EXPECT_EQ(verdicts[0], oracle) << "seed " << seed << " rows " << rows;
    EXPECT_EQ(verdicts[1], oracle) << "seed " << seed << " rows " << rows;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelCaseSplitTest,
                         ::testing::Values(101u, 211u, 307u, 401u));

// Direct SolveWithConditionals exercise at several thread counts, including
// more threads than conditionals (the fan-out must cap at the active set).
TEST(ConditionalSolverTest, ThreadCountsAgreeOnDirectSystems) {
  Dtd dtd = workloads::CatalogDtd(4);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(4).Normalize();
  auto enc = BuildCardinalityEncoding(dtd, sigma);
  ASSERT_TRUE(enc.ok());

  bool base_verdict = false;
  for (size_t threads : {1, 2, 3, 8, 32}) {
    IlpOptions options;
    options.num_threads = threads;
    auto solved =
        SolveWithConditionals(enc->system, enc->conditionals, options);
    ASSERT_TRUE(solved.ok()) << "threads " << threads;
    if (threads == 1) {
      base_verdict = solved->feasible;
    } else {
      EXPECT_EQ(solved->feasible, base_verdict) << "threads " << threads;
    }
    if (solved->feasible) {
      // Any returned assignment satisfies the base system and every
      // conditional (premise > 0 → conclusion > 0).
      for (const LinearConstraint& c : enc->system.constraints()) {
        BigInt lhs(0);
        for (const auto& [var, coef] : c.coeffs) {
          lhs += coef.num() * solved->values[var];
        }
        switch (c.op) {
          case RelOp::kLe:
            EXPECT_LE(lhs, c.rhs);
            break;
          case RelOp::kGe:
            EXPECT_GE(lhs, c.rhs);
            break;
          case RelOp::kEq:
            EXPECT_EQ(lhs, c.rhs);
            break;
        }
      }
      for (const Conditional& cond : enc->conditionals) {
        BigInt premise(0);
        for (const auto& [var, coef] : cond.premise.terms()) {
          premise += coef.num() * solved->values[var];
        }
        if (premise > BigInt(0)) {
          BigInt conclusion(0);
          for (const auto& [var, coef] : cond.conclusion.terms()) {
            conclusion += coef.num() * solved->values[var];
          }
          EXPECT_GT(conclusion, BigInt(0));
        }
      }
    }
  }
}

// The warm context carries the base basis across calls with a growing
// conditional set — verdicts must be unchanged vs. fresh cold calls.
TEST(ConditionalSolverTest, WarmContextReuseKeepsVerdicts) {
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(3).Normalize();
  auto enc = BuildCardinalityEncoding(dtd, sigma);
  ASSERT_TRUE(enc.ok());

  CaseSplitWarmContext warm;
  std::vector<Conditional> conditionals;
  for (size_t round = 0; round <= enc->conditionals.size(); ++round) {
    IlpOptions options;
    auto with_warm =
        SolveWithConditionals(enc->system, conditionals, options, &warm);
    auto cold = SolveWithConditionals(enc->system, conditionals, options);
    ASSERT_TRUE(with_warm.ok());
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(with_warm->feasible, cold->feasible) << "round " << round;
    if (round < enc->conditionals.size()) {
      conditionals.push_back(enc->conditionals[round]);
    }
  }
  EXPECT_TRUE(warm.valid);
}

// Parallel search respects the node budget: exhaustion is reported as
// kResourceExhausted in every thread configuration, never as a verdict.
TEST(ConditionalSolverTest, BudgetExhaustionReportedUnderThreads) {
  workloads::BinaryLipInstance instance =
      workloads::RandomLip(/*seed=*/77, 4, 6, /*ones_per_row=*/3);
  workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
  for (size_t threads : {1, 4}) {
    ConsistencyOptions options;
    options.build_witness = false;
    options.ilp.num_threads = threads;
    options.ilp.max_nodes = 1;
    auto result = CheckConsistency(enc.dtd, enc.sigma, options);
    ASSERT_FALSE(result.ok()) << "threads " << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << "threads " << threads;
  }
}

}  // namespace
}  // namespace xicc
