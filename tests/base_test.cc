#include <gtest/gtest.h>

#include <atomic>
#include <functional>

#include "base/bigint.h"
#include "base/rational.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/worksteal.h"

namespace xicc {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "parse-error: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUndecidableClass),
               "undecidable-class");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource-exhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid-argument");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  XICC_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 5);

  Result<int> err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_TRUE(Quarter(8).ok());
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
}

// ---------------------------------------------------------------- BigInt.

TEST(BigIntTest, ZeroBasics) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_EQ(zero.sign(), 0);
  EXPECT_EQ(zero.ToString(), "0");
  EXPECT_EQ(zero.BitLength(), 0u);
  EXPECT_EQ((-zero).ToString(), "0");
}

TEST(BigIntTest, Int64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{1}, int64_t{-1}, int64_t{123456789},
                    INT64_MAX, INT64_MIN}) {
    BigInt b(v);
    ASSERT_TRUE(b.FitsInt64()) << v;
    EXPECT_EQ(b.ToInt64(), v);
  }
}

TEST(BigIntTest, ToStringSmall) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  const std::string big = "123456789012345678901234567890123456789";
  auto parsed = BigInt::FromString(big);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ToString(), big);
  EXPECT_FALSE(parsed->FitsInt64());

  auto negative = BigInt::FromString("-987654321987654321987654321");
  ASSERT_TRUE(negative.ok());
  EXPECT_EQ(negative->ToString(), "-987654321987654321987654321");
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a4").ok());
}

TEST(BigIntTest, AdditionCarries) {
  auto a = *BigInt::FromString("18446744073709551615");  // 2^64 - 1.
  EXPECT_EQ((a + BigInt(1)).ToString(), "18446744073709551616");
  EXPECT_EQ((a + a).ToString(), "36893488147419103230");
}

TEST(BigIntTest, SubtractionSigns) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).ToString(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).ToString(), "2");
  EXPECT_EQ((BigInt(-5) + BigInt(5)).ToString(), "0");
}

TEST(BigIntTest, MultiplicationLarge) {
  auto a = *BigInt::FromString("123456789123456789");
  auto b = *BigInt::FromString("987654321987654321");
  EXPECT_EQ((a * b).ToString(), "121932631356500531347203169112635269");
  EXPECT_EQ((a * BigInt(0)).ToString(), "0");
  EXPECT_EQ(((-a) * b).sign(), -1);
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  BigInt q, r;
  BigInt::DivMod(BigInt(7), BigInt(2), &q, &r);
  EXPECT_EQ(q.ToInt64(), 3);
  EXPECT_EQ(r.ToInt64(), 1);
  BigInt::DivMod(BigInt(-7), BigInt(2), &q, &r);
  EXPECT_EQ(q.ToInt64(), -3);
  EXPECT_EQ(r.ToInt64(), -1);
  BigInt::DivMod(BigInt(7), BigInt(-2), &q, &r);
  EXPECT_EQ(q.ToInt64(), -3);
  EXPECT_EQ(r.ToInt64(), 1);
}

TEST(BigIntTest, LargeDivision) {
  auto a = *BigInt::FromString("121932631356500531347203169112635269");
  auto b = *BigInt::FromString("123456789123456789");
  EXPECT_EQ((a / b).ToString(), "987654321987654321");
  EXPECT_EQ((a % b).ToString(), "0");

  auto c = a + BigInt(17);
  EXPECT_EQ((c / b).ToString(), "987654321987654321");
  EXPECT_EQ((c % b).ToString(), "17");
}

TEST(BigIntTest, MultiLimbDivisionStress) {
  // (2^192 + 12345) / (2^96 + 7) exercises the multi-limb Knuth path.
  BigInt two_192 = BigInt::Pow(BigInt(2), 192) + BigInt(12345);
  BigInt two_96 = BigInt::Pow(BigInt(2), 96) + BigInt(7);
  BigInt q = two_192 / two_96;
  BigInt r = two_192 % two_96;
  EXPECT_EQ((q * two_96 + r), two_192);
  EXPECT_TRUE(r >= BigInt(0) && r < two_96);
}

TEST(BigIntTest, PowMatchesRepeatedMultiply) {
  EXPECT_EQ(BigInt::Pow(BigInt(3), 0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow(BigInt(3), 5).ToInt64(), 243);
  EXPECT_EQ(BigInt::Pow(BigInt(-2), 3).ToInt64(), -8);
  EXPECT_EQ(BigInt::Pow(BigInt(10), 30).ToString(),
            "1000000000000000000000000000000");
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).ToInt64(), 0);
}

TEST(BigIntTest, ComparisonTotalOrder) {
  EXPECT_LT(BigInt(-3), BigInt(-2));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), *BigInt::FromString("99999999999999999999"));
  EXPECT_LT(*BigInt::FromString("-99999999999999999999"), BigInt(-1));
}

TEST(BigIntTest, BitLength) {
  EXPECT_EQ(BigInt(1).BitLength(), 1u);
  EXPECT_EQ(BigInt(255).BitLength(), 8u);
  EXPECT_EQ(BigInt(256).BitLength(), 9u);
  EXPECT_EQ(BigInt::Pow(BigInt(2), 100).BitLength(), 101u);
}

// -------------------------------------------------------------- Rational.

TEST(RationalTest, NormalizesSignAndGcd) {
  Rational r(BigInt(4), BigInt(-6));
  EXPECT_EQ(r.num().ToInt64(), -2);
  EXPECT_EQ(r.den().ToInt64(), 3);
  EXPECT_EQ(r.ToString(), "-2/3");
}

TEST(RationalTest, ZeroIsCanonical) {
  Rational r(BigInt(0), BigInt(-7));
  EXPECT_TRUE(r.is_zero());
  EXPECT_EQ(r.den().ToInt64(), 1);
}

TEST(RationalTest, Arithmetic) {
  Rational half(BigInt(1), BigInt(2));
  Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ((half + third).ToString(), "5/6");
  EXPECT_EQ((half - third).ToString(), "1/6");
  EXPECT_EQ((half * third).ToString(), "1/6");
  EXPECT_EQ((half / third).ToString(), "3/2");
  EXPECT_EQ((half - half).ToString(), "0");
}

TEST(RationalTest, FloorCeil) {
  Rational seven_halves(BigInt(7), BigInt(2));
  EXPECT_EQ(seven_halves.Floor().ToInt64(), 3);
  EXPECT_EQ(seven_halves.Ceil().ToInt64(), 4);
  Rational negative(BigInt(-7), BigInt(2));
  EXPECT_EQ(negative.Floor().ToInt64(), -4);
  EXPECT_EQ(negative.Ceil().ToInt64(), -3);
  Rational integral(BigInt(6), BigInt(2));
  EXPECT_EQ(integral.Floor().ToInt64(), 3);
  EXPECT_EQ(integral.Ceil().ToInt64(), 3);
  EXPECT_TRUE(integral.is_integer());
}

TEST(RationalTest, Comparison) {
  Rational a(BigInt(1), BigInt(3));
  Rational b(BigInt(2), BigInt(5));
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_EQ(a, Rational(BigInt(2), BigInt(6)));
  EXPECT_LT(Rational(BigInt(-1), BigInt(2)), Rational());
}

// --------------------------------------------------------------- Strings.

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
}

TEST(StringsTest, NameValidation) {
  EXPECT_TRUE(IsValidName("teacher"));
  EXPECT_TRUE(IsValidName("_t1.x-y"));
  EXPECT_FALSE(IsValidName(""));
  EXPECT_FALSE(IsValidName("1abc"));
  EXPECT_FALSE(IsValidName("a b"));
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

// ------------------------------------------------------- WorkStealingPool.
//
// Regression coverage for the locking discipline the thread-safety
// annotations machine-check (-DXICC_THREAD_SAFETY=ON): Wait() observes
// every submitted task including ones submitted by running tasks, the
// destructor drains queued work before joining, and the same discipline
// holds under TSan (the sanitizer CI job runs this suite).

TEST(WorkStealingPoolTest, WaitObservesEverySubmittedTask) {
  WorkStealingPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(ran.load(), 200);

  // The pool is reusable after a drain.
  pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 201);
}

TEST(WorkStealingPoolTest, TasksMaySubmitMoreWork) {
  // The case-split search submits child subtrees from inside a running
  // task; Wait() must count the children even though they were enqueued
  // after it started blocking.
  WorkStealingPool pool(3);
  std::atomic<int> ran{0};
  std::function<void(int)> spawn = [&](int depth) {
    ran.fetch_add(1, std::memory_order_relaxed);
    if (depth < 4) {
      pool.Submit([&spawn, depth] { spawn(depth + 1); });
      pool.Submit([&spawn, depth] { spawn(depth + 1); });
    }
  };
  pool.Submit([&spawn] { spawn(0); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 31);  // Full binary tree, depths 0..4: 2^5 - 1.
}

TEST(WorkStealingPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    // One worker, many tasks: most are still queued when the destructor
    // runs; workers only exit on `stopping_` when no task is findable.
    WorkStealingPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(WorkStealingPoolTest, ZeroThreadsClampsToOneWorker) {
  WorkStealingPool pool(0);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace xicc
