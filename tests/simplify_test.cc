#include <gtest/gtest.h>

#include <random>

#include "dtd/analysis.h"
#include "dtd/glushkov.h"
#include "dtd/simplify.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(SimplifyTest, TeacherDtdBecomesSimple) {
  Dtd d1 = workloads::TeacherDtd();
  EXPECT_FALSE(IsSimpleDtd(d1));  // teachers → teacher, teacher* has a star.
  auto simplified = SimplifyDtd(d1);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_TRUE(IsSimpleDtd(simplified->dtd));
  EXPECT_EQ(simplified->dtd.root(), "teachers");
  // The paper's worked example introduces three fresh types for D1
  // (τ^1_t, τ^2_t, τ_ε).
  EXPECT_EQ(simplified->synthetic.size(), 3u);
  // Original element types survive with their attributes.
  EXPECT_TRUE(simplified->dtd.HasAttribute("teacher", "name"));
  EXPECT_TRUE(simplified->dtd.HasAttribute("subject", "taught_by"));
  for (const std::string& synth : simplified->synthetic) {
    EXPECT_TRUE(simplified->dtd.AttributesOf(synth).empty());
    EXPECT_TRUE(simplified->IsSynthetic(synth));
  }
}

TEST(SimplifyTest, AlreadySimpleIsUntouched) {
  Dtd d2 = workloads::InfiniteDtd();
  EXPECT_TRUE(IsSimpleDtd(d2));
  auto simplified = SimplifyDtd(d2);
  ASSERT_TRUE(simplified.ok());
  EXPECT_TRUE(simplified->synthetic.empty());
  EXPECT_EQ(simplified->dtd.elements().size(), d2.elements().size());
}

TEST(SimplifyTest, PreservesHasValidTree) {
  for (const Dtd& dtd :
       {workloads::TeacherDtd(), workloads::InfiniteDtd(),
        workloads::SchoolDtd(), workloads::ChainDtd(4),
        workloads::CatalogDtd(3)}) {
    auto simplified = SimplifyDtd(dtd);
    ASSERT_TRUE(simplified.ok());
    EXPECT_EQ(DtdHasValidTree(dtd), DtdHasValidTree(simplified->dtd));
  }
}

TEST(SimplifyTest, SimpleFormsOnly) {
  auto simplified = SimplifyDtd(workloads::SchoolDtd());
  ASSERT_TRUE(simplified.ok());
  for (const std::string& type : simplified->dtd.elements()) {
    const Regex& content = *simplified->dtd.ContentOf(type);
    switch (content.kind()) {
      case Regex::Kind::kEpsilon:
      case Regex::Kind::kString:
      case Regex::Kind::kElement:
        break;
      case Regex::Kind::kUnion:
      case Regex::Kind::kConcat: {
        auto is_atom = [](const Regex& node) {
          return node.kind() == Regex::Kind::kElement ||
                 node.kind() == Regex::Kind::kString;
        };
        EXPECT_TRUE(is_atom(*content.left())) << type;
        EXPECT_TRUE(is_atom(*content.right())) << type;
        break;
      }
      case Regex::Kind::kStar:
        ADD_FAILURE() << "star survived simplification in " << type;
    }
  }
}

TEST(SimplifyTest, StarExpansion) {
  // r → a* becomes r → τ1, τ1 → τε | τ2, τ2 → a, τ1 (modulo naming).
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Star(Regex::Elem("a")));
  builder.AddElement("a", Regex::Epsilon());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto simplified = SimplifyDtd(*dtd);
  ASSERT_TRUE(simplified.ok());
  EXPECT_TRUE(IsSimpleDtd(simplified->dtd));
  EXPECT_TRUE(DtdHasValidTree(simplified->dtd));
  // a must still be able to occur arbitrarily often.
  EXPECT_TRUE(CanHaveTwo(simplified->dtd, "a"));
}

TEST(SimplifyTest, FreshNamesDoNotClash) {
  DtdBuilder builder;
  builder.SetRoot("r");
  // Deliberately occupy a likely fresh name.
  builder.AddElement("r", Regex::Concat(Regex::Star(Regex::Elem("_r.1")),
                                        Regex::Elem("_r.1")));
  builder.AddElement("_r.1", Regex::Epsilon());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto simplified = SimplifyDtd(*dtd);
  ASSERT_TRUE(simplified.ok()) << simplified.status();
  EXPECT_TRUE(IsSimpleDtd(simplified->dtd));
  EXPECT_EQ(simplified->synthetic.count("_r.1"), 0u);
}

/// Lemma 4.3's structural core, checked empirically: words derivable from
/// P(τ) in D correspond to τ-subtree frontiers in D_N once synthetic
/// elements are erased. We verify a weaker but telling invariant — the
/// multiplicity lattice agrees on all original types.
class SimplifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyPropertyTest, MultiplicityAgreesOnOriginalTypes) {
  Dtd dtd = workloads::RandomDtd(GetParam(), 12, 2);
  auto simplified = SimplifyDtd(dtd);
  ASSERT_TRUE(simplified.ok());
  EXPECT_TRUE(IsSimpleDtd(simplified->dtd));
  for (const std::string& type : dtd.elements()) {
    EXPECT_EQ(MaxMultiplicity(dtd, type),
              MaxMultiplicity(simplified->dtd, type))
        << "type " << type << " in seed " << GetParam();
  }
}

TEST_P(SimplifyPropertyTest, SimplifiedSizeIsLinear) {
  Dtd dtd = workloads::RandomDtd(GetParam(), 20, 1);
  auto simplified = SimplifyDtd(dtd);
  ASSERT_TRUE(simplified.ok());
  // The rewriting introduces O(1) fresh types per AST node.
  EXPECT_LE(simplified->dtd.Size(), 6 * dtd.Size() + 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace xicc
