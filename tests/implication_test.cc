#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/implication.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

// --------------------------- Keys-only path (Theorem 3.5(3) / Lemma 3.7).

TEST(ImplicationTest, SuperkeyImplied) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("course", {"dept"}));
  auto result = CheckImplication(school, sigma,
                                 Constraint::Key("course", {"dept",
                                                            "course_no"}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->implied);
  EXPECT_EQ(result->method, "keys-only");
}

TEST(ImplicationTest, NonSubsumedKeyNotImplied) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("course", {"dept", "course_no"}));
  Constraint phi = Constraint::Key("course", {"dept"});
  auto result = CheckImplication(school, sigma, phi);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->implied);
  // The counterexample: valid, satisfies Σ, violates φ.
  ASSERT_TRUE(result->counterexample.has_value());
  EXPECT_TRUE(ValidateXml(*result->counterexample, school).valid);
  EXPECT_TRUE(Evaluate(*result->counterexample, sigma).satisfied);
  EXPECT_FALSE(Evaluate(*result->counterexample, phi).satisfied);
}

TEST(ImplicationTest, VacuousKeyOverSingletonType) {
  // Only one teachers (root) element ever exists: any key over it holds.
  Dtd d1 = workloads::TeacherDtd();
  DtdBuilder builder;
  // A root-level attribute-bearing type that occurs exactly once.
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("once"));
  builder.AddElement("once", Regex::Epsilon());
  builder.AddAttribute("once", "id");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto result = CheckImplication(*dtd, ConstraintSet(),
                                 Constraint::Key("once", {"id"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->implied);
  EXPECT_NE(result->explanation.find("Lemma 3.6"), std::string::npos);
  (void)d1;
}

TEST(ImplicationTest, EmptySigmaKeyOverRepeatableType) {
  Dtd school = workloads::SchoolDtd();
  auto result = CheckImplication(school, ConstraintSet(),
                                 Constraint::Key("course", {"dept"}));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->implied);
  ASSERT_TRUE(result->counterexample.has_value());
  // Two courses with the same dept.
  auto courses = result->counterexample->ExtOfType("course");
  ASSERT_GE(courses.size(), 2u);
}

TEST(ImplicationTest, NoValidTreeImpliesEverything) {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("a"));
  builder.AddElement("a", Regex::Elem("a"));
  builder.AddAttribute("a", "id");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto result = CheckImplication(*dtd, ConstraintSet(),
                                 Constraint::Key("a", {"id"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->implied);
}

// ---------------------------------- Refutation path (Theorems 4.10 / 5.4).

TEST(ImplicationTest, DtdForcedInclusionImplied) {
  // Over D1 with Σ = {taught_by ⊆ name}, is name ⊆ taught_by implied? No:
  // a teacher may teach only subjects labelled by another teacher. But with
  // the FK both ways consistency forces... use a simpler forced case:
  // Σ = {key teacher.name, subject.taught_by ⊆ teacher.name} does NOT imply
  // teacher.name ⊆ subject.taught_by.
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));
  sigma.Add(Constraint::Inclusion("subject", {"taught_by"}, "teacher",
                                  {"name"}));
  Constraint phi = Constraint::Inclusion("teacher", {"name"}, "subject",
                                         {"taught_by"});
  auto result = CheckImplication(d1, sigma, phi);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->implied);
  EXPECT_EQ(result->method, "refutation");
  ASSERT_TRUE(result->counterexample.has_value());
  EXPECT_TRUE(ValidateXml(*result->counterexample, d1).valid);
  EXPECT_TRUE(Evaluate(*result->counterexample, sigma).satisfied);
  EXPECT_FALSE(Evaluate(*result->counterexample, phi).satisfied);
}

TEST(ImplicationTest, CardinalityForcedKeyImplied) {
  // The D1 interaction in reverse: Σ = {subject.taught_by → subject,
  // teacher.name ⊆ subject.taught_by} over D1. Any tree has
  // |ext(teacher)| ≤ |ext(taught_by values)| … in fact the DTD forces
  // |ext(subject)| = 2|ext(teacher)| and the key gives
  // |ext(subject.taught_by)| = |ext(subject)|. Is teacher.name → teacher
  // implied? A counterexample needs two teachers sharing a name — allowed.
  // So NOT implied. The dual: with Σ1's inclusion, teacher.name → teacher
  // is *not* implied either, but subject.taught_by → subject over Σ =
  // {taught_by ⊆ name, name → teacher} IS refutation-decided: adding its
  // negation reconstructs Σ1 which is inconsistent — hence implied.
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));
  sigma.Add(Constraint::Inclusion("subject", {"taught_by"}, "teacher",
                                  {"name"}));
  // ¬(subject.taught_by → subject) + Σ: satisfiable (Figure 1's tree!), so
  // the key is not implied…
  auto not_implied = CheckImplication(
      d1, sigma, Constraint::Key("subject", {"taught_by"}));
  ASSERT_TRUE(not_implied.ok()) << not_implied.status();
  EXPECT_FALSE(not_implied->implied);

  // …but strengthening Σ with "subject.taught_by → subject" (giving Σ1)
  // makes *anything* implied, e.g. a fresh negated-key-refuting key.
  ConstraintSet sigma1 = workloads::TeacherSigma();
  auto vacuous = CheckImplication(d1, sigma1,
                                  Constraint::Key("teacher", {"name"}));
  ASSERT_TRUE(vacuous.ok());
  EXPECT_TRUE(vacuous->implied);
}

TEST(ImplicationTest, ForeignKeyImpliedComponentwise) {
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::ForeignKey("subject", {"taught_by"}, "teacher",
                                   {"name"}));
  // The FK itself is implied (it is in Σ).
  auto self = CheckImplication(
      d1, sigma,
      Constraint::ForeignKey("subject", {"taught_by"}, "teacher", {"name"}));
  ASSERT_TRUE(self.ok()) << self.status();
  EXPECT_TRUE(self->implied);

  // Components separately.
  auto inclusion = CheckImplication(
      d1, sigma,
      Constraint::Inclusion("subject", {"taught_by"}, "teacher", {"name"}));
  ASSERT_TRUE(inclusion.ok());
  EXPECT_TRUE(inclusion->implied);
  auto key = CheckImplication(d1, sigma,
                              Constraint::Key("teacher", {"name"}));
  ASSERT_TRUE(key.ok());
  EXPECT_TRUE(key->implied);

  // A reversed FK is not implied.
  auto reversed = CheckImplication(
      d1, sigma,
      Constraint::ForeignKey("teacher", {"name"}, "subject", {"taught_by"}));
  ASSERT_TRUE(reversed.ok());
  EXPECT_FALSE(reversed->implied);
}

TEST(ImplicationTest, UnaryInclusionTransitivity) {
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
  auto result = CheckImplication(
      dtd, sigma, Constraint::Inclusion("item1", {"id"}, "item3", {"id"}));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->implied);

  // And the converse direction is not implied.
  auto converse = CheckImplication(
      dtd, sigma, Constraint::Inclusion("item3", {"id"}, "item1", {"id"}));
  ASSERT_TRUE(converse.ok());
  EXPECT_FALSE(converse->implied);
}

TEST(ImplicationTest, MultiAttributePhiUndecidable) {
  Dtd school = workloads::SchoolDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("enroll", {"student_id"}, "student",
                                  {"student_id"}));
  auto result = CheckImplication(
      school, sigma,
      Constraint::Inclusion("enroll", {"dept", "course_no"}, "course",
                            {"dept", "course_no"}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUndecidableClass);
}

TEST(ImplicationTest, CoNpBehaviourUnderPrimaryKeys) {
  // Theorem 4.10's primary-key restriction: the checker handles it the same
  // way; verify a primary-key instance is decided.
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma();
  ASSERT_TRUE(sigma.SatisfiesPrimaryKeyRestriction());
  auto result = CheckImplication(d1, sigma,
                                 Constraint::Key("subject", {"taught_by"}));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->implied);  // Vacuously: Σ1 is inconsistent over D1.
}

}  // namespace
}  // namespace xicc
