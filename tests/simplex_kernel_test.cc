// Sparse pricing-driven kernel (DESIGN.md §12): the anti-cycling contract
// of the Dantzig→Bland degeneracy fallback, randomized differential parity
// against the dense-Bland reference solver, and the kernel's
// instrumentation counters.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/num.h"
#include "ilp/linear_system.h"
#include "ilp/simplex.h"

namespace xicc {
namespace {

// ------------------------------------------------------- Anti-cycling.

/// The Beale/Chvátal cycling LP (Chvátal, "Linear Programming", ch. 3)
/// mapped into phase-1 form. Rows are scaled ×2 to integer coefficients,
/// x4/x5 play the example's slack columns as structural variables, and the
/// last row is a driver whose coefficients make the artificial column sums
/// — and therefore the initial phase-1 reduced-cost row — equal the
/// example's objective. Every rhs is 0, so every pivot is degenerate and
/// Dantzig pricing with the example's tie-breaks revisits the same basis
/// forever; Bland's rule walks out in a handful of pivots.
LinearSystem CyclingFixture() {
  LinearSystem sys;
  for (int i = 0; i < 6; ++i) sys.AddVariable("x" + std::to_string(i));
  auto add_row = [&sys](std::initializer_list<int> coeffs) {
    LinearExpr expr;
    int var = 0;
    for (int c : coeffs) {
      if (c != 0) expr.Add(var, BigInt(c));
      ++var;
    }
    sys.AddConstraint(expr, RelOp::kEq, BigInt(0));
  };
  add_row({1, -11, -5, 18, 2, 0});
  add_row({1, -3, -1, 2, 0, 2});
  add_row({8, -43, -3, -44, -2, -2});
  return sys;
}

TEST(AntiCyclingTest, PureDantzigCyclesOnTheFixture) {
  LinearSystem sys = CyclingFixture();
  LpPricingConfig pure;
  pure.dantzig = true;
  pure.degenerate_streak_limit = 0;  // Fallback disabled.
  pure.pivot_cap = 1000;
  ScopedLpPricingConfig guard(pure);
  LpResult lp = SolveLpFeasibility(sys);
  // Without the fallback the solve spins on degenerate pivots until the cap
  // trips — the failure mode the fallback exists to rule out.
  EXPECT_TRUE(lp.pivot_cap_hit);
  EXPECT_TRUE(lp.aborted);
  EXPECT_EQ(lp.pivots, 1000u);
  EXPECT_EQ(lp.bland_fallbacks, 0u);
}

TEST(AntiCyclingTest, DegeneracyFallbackTerminatesTheFixture) {
  LinearSystem sys = CyclingFixture();
  LpResult lp = SolveLpFeasibility(sys);  // Default pricing config.
  ASSERT_FALSE(lp.aborted);
  EXPECT_TRUE(lp.feasible);  // x = 0 satisfies every row.
  // The degeneracy streak must actually have fired the fallback, and the
  // fallback's Bland pivots finished the solve.
  EXPECT_GE(lp.bland_fallbacks, 1u);
  EXPECT_GE(lp.bland_pivots, 1u);
  EXPECT_EQ(lp.pivots, lp.dantzig_pivots + lp.bland_pivots);
}

TEST(AntiCyclingTest, BlandOnlyConfigTerminatesTheFixture) {
  LinearSystem sys = CyclingFixture();
  LpPricingConfig bland;
  bland.dantzig = false;
  ScopedLpPricingConfig guard(bland);
  LpResult lp = SolveLpFeasibility(sys);
  ASSERT_FALSE(lp.aborted);
  EXPECT_TRUE(lp.feasible);
  EXPECT_EQ(lp.dantzig_pivots, 0u);
  EXPECT_EQ(lp.pivots, lp.bland_pivots);
}

TEST(AntiCyclingTest, DenseReferenceAgreesOnTheFixture) {
  LinearSystem sys = CyclingFixture();
  LpResult dense = SolveLpFeasibilityDenseBland(sys);
  ASSERT_FALSE(dense.aborted);
  EXPECT_TRUE(dense.feasible);
}

// ------------------------------------------------- Differential fuzz.

/// True iff `values` (one Num per structural variable, all expected ≥ 0)
/// satisfies every constraint of `sys` exactly.
bool SatisfiesSystem(const LinearSystem& sys, const std::vector<Num>& values) {
  for (const Num& v : values) {
    if (v.sign() < 0) return false;
  }
  for (const LinearConstraint& c : sys.constraints()) {
    Num lhs;
    for (const auto& [var, coeff] : c.coeffs) {
      lhs += coeff * values[static_cast<size_t>(var)];
    }
    const Num& rhs = c.rhs;
    switch (c.op) {
      case RelOp::kLe:
        if (!(lhs <= rhs)) return false;
        break;
      case RelOp::kGe:
        if (!(lhs >= rhs)) return false;
        break;
      case RelOp::kEq:
        if (!(lhs == rhs)) return false;
        break;
    }
  }
  return true;
}

TEST(SimplexDifferentialTest, SparseKernelMatchesDenseBlandOnRandomSystems) {
  std::mt19937_64 rng(0x51CC);
  std::uniform_int_distribution<int> nvars(1, 4);
  std::uniform_int_distribution<int> nrows(1, 4);
  std::uniform_int_distribution<int> coef(-4, 4);
  std::uniform_int_distribution<int> rhs_val(-6, 6);
  std::uniform_int_distribution<int> op_kind(0, 2);

  size_t feasible = 0, infeasible = 0;
  constexpr int kTrials = 10000;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int nv = nvars(rng);
    const int nr = nrows(rng);
    LinearSystem sys;
    for (int v = 0; v < nv; ++v) sys.AddVariable("x" + std::to_string(v));
    for (int r = 0; r < nr; ++r) {
      LinearExpr expr;
      for (int v = 0; v < nv; ++v) {
        const int c = coef(rng);
        if (c != 0) expr.Add(v, BigInt(c));
      }
      const int k = op_kind(rng);
      const RelOp op =
          k == 0 ? RelOp::kLe : (k == 1 ? RelOp::kGe : RelOp::kEq);
      sys.AddConstraint(expr, op, BigInt(rhs_val(rng)));
    }

    LpResult sparse = SolveLpFeasibility(sys);
    LpResult dense = SolveLpFeasibilityDenseBland(sys);
    ASSERT_FALSE(sparse.aborted) << "trial " << trial;
    ASSERT_FALSE(dense.aborted) << "trial " << trial;
    ASSERT_EQ(sparse.feasible, dense.feasible)
        << "verdict divergence at trial " << trial << ":\n"
        << sys.ToString();
    if (sparse.feasible) {
      ++feasible;
      ASSERT_TRUE(SatisfiesSystem(sys, sparse.values))
          << "sparse vertex violates the system at trial " << trial << ":\n"
          << sys.ToString();
      ASSERT_TRUE(SatisfiesSystem(sys, dense.values))
          << "dense vertex violates the system at trial " << trial << ":\n"
          << sys.ToString();
    } else {
      ++infeasible;
    }
    // The split instrumentation must always reconcile with the total.
    ASSERT_EQ(sparse.pivots, sparse.dantzig_pivots + sparse.bland_pivots)
        << "trial " << trial;
  }
  // Both verdicts must actually be exercised, or the generator is broken.
  EXPECT_GT(feasible, 0u);
  EXPECT_GT(infeasible, 0u);
}

// ------------------------------------------------------ Instrumentation.

TEST(SparseKernelStatsTest, DensityCountersMatchTheSystem) {
  // x0 + x1 <= 5 and x0 - x2 >= 1: the ≥ row needs an artificial; the
  // initial constraint block is 2 rows × (3 structural + 2 slack + 1
  // artificial) = 12 cells, of which the nonzeros are 2 structural + 1
  // slack in row 0 and 2 structural + 1 slack + 1 artificial in row 1.
  LinearSystem sys;
  VarId x0 = sys.AddVariable("x0");
  VarId x1 = sys.AddVariable("x1");
  sys.AddVariable("x2");
  LinearExpr a;
  a.Add(x0, BigInt(1)).Add(x1, BigInt(1));
  sys.AddConstraint(a, RelOp::kLe, BigInt(5));
  LinearExpr b;
  b.Add(x0, BigInt(1)).Add(2, BigInt(-1));
  sys.AddConstraint(b, RelOp::kGe, BigInt(1));

  LpResult lp = SolveLpFeasibility(sys);
  ASSERT_TRUE(lp.feasible);
  EXPECT_EQ(lp.total_cells, 12u);
  EXPECT_EQ(lp.nnz_cells, 7u);
  EXPECT_EQ(sys.NumNonzeros(), 4u);
  // These tiny coefficients never leave the int64 fast lane.
  EXPECT_EQ(lp.fast_row_promotions, 0u);
  EXPECT_GT(lp.fast_rows, 0u);
}

TEST(SparseKernelStatsTest, ScopedPricingConfigRestores) {
  const LpPricingConfig before = GetLpPricingConfig();
  {
    LpPricingConfig override_config;
    override_config.dantzig = false;
    override_config.pivot_cap = 7;
    ScopedLpPricingConfig guard(override_config);
    EXPECT_FALSE(GetLpPricingConfig().dantzig);
    EXPECT_EQ(GetLpPricingConfig().pivot_cap, 7u);
  }
  EXPECT_EQ(GetLpPricingConfig().dantzig, before.dantzig);
  EXPECT_EQ(GetLpPricingConfig().pivot_cap, before.pivot_cap);
}

}  // namespace
}  // namespace xicc
