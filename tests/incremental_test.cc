#include <gtest/gtest.h>

#include "core/incremental.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

using Outcome = IncrementalChecker::Outcome;

TEST(IncrementalTest, Sigma1RejectedAtTheFatalStep) {
  // Adding Σ1 constraint by constraint over D1: the first two go in, the
  // foreign key is the one that breaks the specification — exactly the
  // authoring experience the paper's introduction describes.
  Dtd d1 = workloads::TeacherDtd();
  IncrementalChecker checker(&d1);

  auto first = checker.TryAdd(Constraint::Key("teacher", {"name"}));
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->outcome, Outcome::kAccepted);

  auto second = checker.TryAdd(Constraint::Key("subject", {"taught_by"}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->outcome, Outcome::kAccepted);

  auto third = checker.TryAdd(Constraint::ForeignKey(
      "subject", {"taught_by"}, "teacher", {"name"}));
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->outcome, Outcome::kRejected);
  EXPECT_NE(third->explanation.find("inconsistent"), std::string::npos);
  // The accepted set is untouched by the rejection.
  EXPECT_EQ(checker.accepted().size(), 2u);
}

TEST(IncrementalTest, RedundantAdditionsFlagged) {
  Dtd dtd = workloads::CatalogDtd(3);
  IncrementalChecker checker(&dtd);
  ASSERT_TRUE(checker
                  .TryAdd(Constraint::Inclusion("item1", {"id"}, "item2",
                                                {"id"}))
                  .ok());
  ASSERT_TRUE(checker
                  .TryAdd(Constraint::Inclusion("item2", {"id"}, "item3",
                                                {"id"}))
                  .ok());
  auto transitive = checker.TryAdd(
      Constraint::Inclusion("item1", {"id"}, "item3", {"id"}));
  ASSERT_TRUE(transitive.ok()) << transitive.status();
  EXPECT_EQ(transitive->outcome, Outcome::kAcceptedRedundant);
  EXPECT_EQ(checker.accepted().size(), 3u);
}

TEST(IncrementalTest, BadConstraintReported) {
  Dtd dtd = workloads::CatalogDtd(1);
  IncrementalChecker checker(&dtd);
  auto result = checker.TryAdd(Constraint::Key("ghost", {"x"}));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(checker.accepted().empty());
}

TEST(IncrementalTest, OrderIndependenceOfFinalVerdict) {
  // Whatever order the Σ1 constraints arrive in, exactly one is rejected.
  Dtd d1 = workloads::TeacherDtd();
  std::vector<Constraint> sigma1 = workloads::TeacherSigma().constraints();
  std::vector<std::vector<size_t>> orders = {{0, 1, 2}, {2, 1, 0}, {1, 2, 0}};
  for (const auto& order : orders) {
    IncrementalChecker checker(&d1);
    int rejected = 0;
    for (size_t idx : order) {
      auto result = checker.TryAdd(sigma1[idx]);
      ASSERT_TRUE(result.ok()) << result.status();
      if (result->outcome == Outcome::kRejected) ++rejected;
    }
    EXPECT_EQ(rejected, 1);
  }
}

// ----------------------------------------------------------- Equivalence.

TEST(EquivalenceTest, FkEqualsInclusionPlusKey) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet as_fk;
  as_fk.Add(Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}));
  ConstraintSet as_parts;
  as_parts.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));
  as_parts.Add(Constraint::Key("item2", {"id"}));
  auto result = CheckEquivalence(dtd, as_fk, as_parts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->equivalent);
}

TEST(EquivalenceTest, StrictlyStrongerSideDetected) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet weaker;
  weaker.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));
  ConstraintSet stronger = weaker;
  stronger.Add(Constraint::Key("item2", {"id"}));
  auto result = CheckEquivalence(dtd, weaker, stronger);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->equivalent);
  EXPECT_NE(result->separating_constraint.find("Σ1 does not imply"),
            std::string::npos);
}

TEST(EquivalenceTest, VacuouslyImpliedKeysCollapse) {
  // Over a chain DTD (each type occurs once) every key holds, so any two
  // keys-only sets are equivalent.
  Dtd chain = workloads::ChainDtd(3);
  ConstraintSet a;
  a.Add(Constraint::Key("e1", {"id"}));
  ConstraintSet b;
  b.Add(Constraint::Key("e3", {"id"}));
  auto result = CheckEquivalence(chain, a, b);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->equivalent);
}

TEST(EquivalenceTest, EmptySetsAreEquivalent) {
  Dtd dtd = workloads::CatalogDtd(1);
  auto result = CheckEquivalence(dtd, ConstraintSet(), ConstraintSet());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->equivalent);
}

}  // namespace
}  // namespace xicc
