// The XICC_FAULTS deterministic fault-injection harness. In a normal build
// every probe is the compile-time constant `false` — the first test is the
// whole story. Under -DXICC_FAULTS=ON the seed-driven sites must fire
// deterministically (same seed → same hit pattern) without changing any
// verdict, and the disruptive cancel-at-pivot/node injections must drive
// the real cancellation plumbing end to end.

#include <gtest/gtest.h>

#include "base/deadline.h"
#include "base/faults.h"
#include "core/consistency.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

TEST(FaultsTest, ProbesCompileOutInReleaseBuilds) {
#if !XICC_FAULTS_ENABLED
  // The macro must be a constant false — usable in a condition with no
  // runtime library behind it.
  EXPECT_FALSE(XICC_FAULT_FIRES(kNumPromote));
  EXPECT_FALSE(XICC_FAULT_FIRES(kSimplexPivot));
#else
  GTEST_SKIP() << "faults build: probes are live";
#endif
}

#if XICC_FAULTS_ENABLED

workloads::LipEncoding SearchySpec() {
  return workloads::EncodeLipAsConsistency(
      workloads::RandomLip(/*seed=*/7, /*rows=*/6, /*cols=*/12,
                           /*ones_per_row=*/3));
}

/// Restores a zeroed config after each test so the suite's faults never
/// leak into other tests in this binary (or the env-driven defaults).
class FaultsFixture : public ::testing::Test {
 protected:
  void TearDown() override {
    faults::RegisterCancelTarget(nullptr);
    faults::SetConfig(faults::FaultConfig{});
  }
};

TEST_F(FaultsFixture, SeedDrivenSitesFireDeterministically) {
  faults::FaultConfig config;
  config.seed = 42;
  faults::SetConfig(config);
  auto first = CheckConsistency(SearchySpec().dtd, SearchySpec().sigma);
  ASSERT_TRUE(first.ok()) << first.status();
  uint64_t promote_hits = faults::Hits(faults::Site::kNumPromote);
  uint64_t pivot_hits = faults::Hits(faults::Site::kSimplexPivot);
  EXPECT_GT(pivot_hits, 0u) << "the pivot probe never ran";

  // Same seed, same work → same counters; and the faults were
  // value-preserving: the verdict is the unfaulted one.
  faults::SetConfig(config);
  auto second = CheckConsistency(SearchySpec().dtd, SearchySpec().sigma);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->consistent, first->consistent);
  EXPECT_EQ(faults::Hits(faults::Site::kNumPromote), promote_hits);
  EXPECT_EQ(faults::Hits(faults::Site::kSimplexPivot), pivot_hits);

  faults::SetConfig(faults::FaultConfig{});  // seed 0: sites go quiet.
  auto off = CheckConsistency(SearchySpec().dtd, SearchySpec().sigma);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->consistent, first->consistent);
}

TEST_F(FaultsFixture, InjectedCancelAtPivotStopsTheCheck) {
  CancelToken token;
  faults::RegisterCancelTarget(&token);
  faults::FaultConfig config;
  config.cancel_at_pivot = 40;  // Mid-search, past the first LP solve.
  faults::SetConfig(config);

  ConsistencyOptions options;
  options.stop.cancel = &token;
  ConsistencyStats partial;
  options.partial_stats = &partial;
  workloads::LipEncoding spec = SearchySpec();
  auto result = CheckConsistency(spec.dtd, spec.sigma, options);
  ASSERT_FALSE(result.ok())
      << "the injected cancel at pivot 40 never bit — the probe is "
         "disconnected from the pivot loop";
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultsFixture, InjectedCancelAtNodeStopsTheCheck) {
  CancelToken token;
  faults::RegisterCancelTarget(&token);
  faults::FaultConfig config;
  config.cancel_at_node = 2;
  faults::SetConfig(config);

  ConsistencyOptions options;
  options.stop.cancel = &token;
  workloads::LipEncoding spec = SearchySpec();
  auto result = CheckConsistency(spec.dtd, spec.sigma, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

TEST_F(FaultsFixture, ArenaAndPromoteFaultsPreserveVerdicts) {
  // Hammer the representation paths: every-few-ops Num promotion plus
  // arena chunk-growth. Verdict must match the quiet run exactly.
  auto quiet = CheckConsistency(SearchySpec().dtd, SearchySpec().sigma);
  ASSERT_TRUE(quiet.ok());

  faults::FaultConfig config;
  config.seed = 1;  // Small seed → short periods → maximum pressure.
  faults::SetConfig(config);
  auto faulted = CheckConsistency(SearchySpec().dtd, SearchySpec().sigma);
  ASSERT_TRUE(faulted.ok()) << faulted.status();
  EXPECT_EQ(faulted->consistent, quiet->consistent);
  EXPECT_EQ(faulted->method, quiet->method);
}

#endif  // XICC_FAULTS_ENABLED

}  // namespace
}  // namespace xicc
