// Machine-checks of the Section 3 reduction constructions. Undecidability
// itself cannot be tested; what can be — and is — tested are the concrete
// equivalences the proofs claim, on decidable instances.

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "dtd/validator.h"
#include "relational/reduction.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace relational {
namespace {

// ------------------------------------------------ Lemma 3.2 (FD/ID → K/FK).

TEST(FdIdEncodingTest, FdIntroducesFreshRelationAndFourConstraints) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a", "b", "c"}).ok());
  Dependency theta = Dependency::Fd("R", {"a"}, {"b"});
  auto encoding = EncodeFdIdImplication(schema, {}, theta);
  ASSERT_TRUE(encoding.ok()) << encoding.status();
  // θ's own encoding adds one fresh relation and ℓ2..ℓ4 to Σ'.
  EXPECT_EQ(encoding->fresh_relations.size(), 1u);
  EXPECT_EQ(encoding->sigma.size(), 3u);
  EXPECT_EQ(encoding->target_key.kind, DependencyKind::kKey);
  EXPECT_EQ(encoding->target_key.relation1, encoding->fresh_relations[0]);
  EXPECT_EQ(encoding->target_key.attrs1, std::vector<std::string>{"a"});
  // Fresh relation carries X ∪ Y ∪ Z = Att(R).
  EXPECT_EQ(encoding->schema.AttributesOf(encoding->fresh_relations[0]).size(),
            3u);
}

TEST(FdIdEncodingTest, IdIntroducesThreeConstraints) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R1", {"x"}).ok());
  ASSERT_TRUE(schema.AddRelation("R2", {"y", "z"}).ok());
  Dependency id = Dependency::Id("R1", {"x"}, "R2", {"y"});
  Dependency theta = Dependency::Fd("R2", {"y"}, {"z"});
  auto encoding = EncodeFdIdImplication(schema, {id}, theta);
  ASSERT_TRUE(encoding.ok()) << encoding.status();
  // ID: 3 constraints + fresh relation; θ: 3 constraints + fresh relation.
  EXPECT_EQ(encoding->fresh_relations.size(), 2u);
  EXPECT_EQ(encoding->sigma.size(), 6u);
}

TEST(FdIdEncodingTest, KeysAndFksPassThrough) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a", "b"}).ok());
  Dependency key = Dependency::Key("R", {"a"});
  Dependency theta = Dependency::Fd("R", {"a"}, {"b"});
  auto encoding = EncodeFdIdImplication(schema, {key}, theta);
  ASSERT_TRUE(encoding.ok());
  EXPECT_EQ(encoding->sigma.size(), 4u);  // key + ℓ2..ℓ4 of θ.
  EXPECT_EQ(encoding->sigma[0].kind, DependencyKind::kKey);
}

TEST(FdIdEncodingTest, InstanceExtensionMachineChecksDirectionOne) {
  // Σ = {FD a→b} does not imply θ = FD a→c: witness instance I with two
  // tuples agreeing on a,b and differing on c. The extension I' of the
  // Lemma 3.2 proof must satisfy Σ' while violating the target key φ'.
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a", "b", "c"}).ok());
  std::vector<Dependency> sigma = {Dependency::Fd("R", {"a"}, {"b"})};
  Dependency theta = Dependency::Fd("R", {"a"}, {"c"});
  auto encoding = EncodeFdIdImplication(schema, sigma, theta);
  ASSERT_TRUE(encoding.ok()) << encoding.status();

  Instance instance(&schema);
  ASSERT_TRUE(
      instance.Insert("R", {{"a", "1"}, {"b", "x"}, {"c", "p"}}).ok());
  ASSERT_TRUE(
      instance.Insert("R", {{"a", "1"}, {"b", "x"}, {"c", "q"}}).ok());
  ASSERT_TRUE(SatisfiesAll(instance, sigma));
  ASSERT_FALSE(Satisfies(instance, theta));

  auto extended = ExtendInstanceForFdIdEncoding(*encoding, schema, sigma,
                                                theta, instance);
  ASSERT_TRUE(extended.ok()) << extended.status();
  EXPECT_TRUE(SatisfiesAll(*extended, encoding->sigma));
  EXPECT_FALSE(Satisfies(*extended, encoding->target_key));
}

TEST(FdIdEncodingTest, InstanceExtensionWhenImplied) {
  // Σ = {FD a→bc} implies θ = FD a→c; on an instance satisfying Σ, the
  // extension also satisfies the target key (no refutation exists).
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a", "b", "c"}).ok());
  std::vector<Dependency> sigma = {Dependency::Fd("R", {"a"}, {"b", "c"})};
  Dependency theta = Dependency::Fd("R", {"a"}, {"c"});
  auto encoding = EncodeFdIdImplication(schema, sigma, theta);
  ASSERT_TRUE(encoding.ok());

  Instance instance(&schema);
  ASSERT_TRUE(
      instance.Insert("R", {{"a", "1"}, {"b", "x"}, {"c", "p"}}).ok());
  ASSERT_TRUE(
      instance.Insert("R", {{"a", "2"}, {"b", "x"}, {"c", "q"}}).ok());
  ASSERT_TRUE(SatisfiesAll(instance, sigma));
  ASSERT_TRUE(Satisfies(instance, theta));

  auto extended = ExtendInstanceForFdIdEncoding(*encoding, schema, sigma,
                                                theta, instance);
  ASSERT_TRUE(extended.ok()) << extended.status();
  EXPECT_TRUE(SatisfiesAll(*extended, encoding->sigma));
  EXPECT_TRUE(Satisfies(*extended, encoding->target_key));
}

TEST(FdIdEncodingTest, InstanceExtensionWithIds) {
  // Mixed Σ: an ID plus an FD, extension still closes direction (1).
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R1", {"x"}).ok());
  ASSERT_TRUE(schema.AddRelation("R2", {"y", "z"}).ok());
  std::vector<Dependency> sigma = {
      Dependency::Id("R1", {"x"}, "R2", {"y"}),
      Dependency::Fd("R2", {"y"}, {"y"}),  // Trivial FD, keeps shape mixed.
  };
  Dependency theta = Dependency::Fd("R2", {"y"}, {"z"});
  auto encoding = EncodeFdIdImplication(schema, sigma, theta);
  ASSERT_TRUE(encoding.ok()) << encoding.status();

  Instance instance(&schema);
  ASSERT_TRUE(instance.Insert("R1", {{"x", "k"}}).ok());
  ASSERT_TRUE(instance.Insert("R2", {{"y", "k"}, {"z", "1"}}).ok());
  ASSERT_TRUE(instance.Insert("R2", {{"y", "k"}, {"z", "2"}}).ok());
  ASSERT_TRUE(SatisfiesAll(instance, sigma));
  ASSERT_FALSE(Satisfies(instance, theta));

  auto extended = ExtendInstanceForFdIdEncoding(*encoding, schema, sigma,
                                                theta, instance);
  ASSERT_TRUE(extended.ok()) << extended.status();
  EXPECT_TRUE(SatisfiesAll(*extended, encoding->sigma));
  EXPECT_FALSE(Satisfies(*extended, encoding->target_key));
}

TEST(FdIdEncodingTest, RejectsNonFdTheta) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("R", {"a"}).ok());
  EXPECT_FALSE(
      EncodeFdIdImplication(schema, {}, Dependency::Key("R", {"a"})).ok());
}

// -------------------------------- Theorem 3.1 (¬implication → consistency).

struct Thm31Fixture {
  Schema schema;
  std::vector<Dependency> theta;
  Dependency phi = Dependency::Key("R", {"x"});

  Thm31Fixture() {
    EXPECT_TRUE(schema.AddRelation("R", {"x", "y"}).ok());
    EXPECT_TRUE(schema.AddRelation("Sr", {"u"}).ok());
    theta.push_back(Dependency::Key("Sr", {"u"}));
  }
};

TEST(Thm31Test, EncodingShape) {
  Thm31Fixture fx;
  auto encoding =
      EncodeImplicationComplementAsConsistency(fx.schema, fx.theta, fx.phi);
  ASSERT_TRUE(encoding.ok()) << encoding.status();
  // Root has children R, Sr, Dy, Dy, Ex.
  EXPECT_TRUE(encoding->dtd.HasElement(encoding->dy_type));
  EXPECT_TRUE(encoding->dtd.HasElement(encoding->ex_type));
  EXPECT_EQ(encoding->tuple_types.size(), 2u);
  // Dy carries X∪Y = {x,y}; Ex carries X = {x}.
  EXPECT_EQ(encoding->dtd.AttributesOf(encoding->dy_type).size(), 2u);
  EXPECT_EQ(encoding->dtd.AttributesOf(encoding->ex_type).size(), 1u);
  // Σ is genuinely multi-attribute (the Dy[X,Y] ⊆ t_R[X,Y] part).
  EXPECT_EQ(encoding->sigma.Classify(), ConstraintClass::kMultiAttribute);
}

TEST(Thm31Test, ForwardDirection) {
  // I ⊨ Θ ∧ ¬φ  ⇒  the built tree satisfies D and Σ.
  Thm31Fixture fx;
  auto encoding =
      EncodeImplicationComplementAsConsistency(fx.schema, fx.theta, fx.phi);
  ASSERT_TRUE(encoding.ok());

  Instance instance(&fx.schema);
  ASSERT_TRUE(instance.Insert("R", {{"x", "1"}, {"y", "p"}}).ok());
  ASSERT_TRUE(instance.Insert("R", {{"x", "1"}, {"y", "q"}}).ok());
  ASSERT_TRUE(instance.Insert("Sr", {{"u", "a"}}).ok());
  ASSERT_TRUE(SatisfiesAll(instance, fx.theta));
  ASSERT_FALSE(Satisfies(instance, fx.phi));

  auto tree = BuildTreeFromInstance(*encoding, fx.schema, instance, fx.phi);
  ASSERT_TRUE(tree.ok()) << tree.status();
  ValidationReport validation = ValidateXml(*tree, encoding->dtd);
  EXPECT_TRUE(validation.valid) << validation.ToString();
  EvaluationReport evaluation = Evaluate(*tree, encoding->sigma);
  EXPECT_TRUE(evaluation.satisfied) << evaluation.ToString();
}

TEST(Thm31Test, BackwardDirection) {
  // A tree ⊨ D ∧ Σ decodes to an instance ⊨ Θ ∧ ¬φ.
  Thm31Fixture fx;
  auto encoding =
      EncodeImplicationComplementAsConsistency(fx.schema, fx.theta, fx.phi);
  ASSERT_TRUE(encoding.ok());
  Instance instance(&fx.schema);
  ASSERT_TRUE(instance.Insert("R", {{"x", "1"}, {"y", "p"}}).ok());
  ASSERT_TRUE(instance.Insert("R", {{"x", "1"}, {"y", "q"}}).ok());
  auto tree = BuildTreeFromInstance(*encoding, fx.schema, instance, fx.phi);
  ASSERT_TRUE(tree.ok());

  auto decoded = ExtractInstanceFromTree(*encoding, fx.schema, *tree);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->RelationOf("R").size(), 2u);
  EXPECT_TRUE(SatisfiesAll(*decoded, fx.theta));
  EXPECT_FALSE(Satisfies(*decoded, fx.phi));
}

TEST(Thm31Test, NoWitnessPairRejected) {
  Thm31Fixture fx;
  auto encoding =
      EncodeImplicationComplementAsConsistency(fx.schema, fx.theta, fx.phi);
  ASSERT_TRUE(encoding.ok());
  Instance instance(&fx.schema);
  ASSERT_TRUE(instance.Insert("R", {{"x", "1"}, {"y", "p"}}).ok());
  // φ holds; no ¬φ witness pair exists.
  EXPECT_FALSE(
      BuildTreeFromInstance(*encoding, fx.schema, instance, fx.phi).ok());
}

TEST(Thm31Test, KeyOverAllAttributesRejected) {
  Thm31Fixture fx;
  Dependency all_attrs = Dependency::Key("R", {"x", "y"});
  auto encoding =
      EncodeImplicationComplementAsConsistency(fx.schema, fx.theta, all_attrs);
  EXPECT_FALSE(encoding.ok());
}

// ---------------------------- Lemma 3.3 (consistency → ¬implication), both
// variants, closed end-to-end through the *decidable* unary checker.

TEST(Lemma33Test, ConsistentSpecMeansNotImplied) {
  // Σ = {key teacher.name} over D1 is consistent, so in D' the key
  // φ1 = Dy.K → Dy must NOT be implied (variant 1), nor φ2 (variant 2).
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));

  auto enc1 = EncodeConsistencyAsKeyImplication(d1, sigma);
  ASSERT_TRUE(enc1.ok()) << enc1.status();
  auto implied1 = CheckImplication(enc1->dtd, enc1->sigma, enc1->implied);
  ASSERT_TRUE(implied1.ok()) << implied1.status();
  EXPECT_FALSE(implied1->implied);

  auto enc2 = EncodeConsistencyAsInclusionImplication(d1, sigma);
  ASSERT_TRUE(enc2.ok()) << enc2.status();
  auto implied2 = CheckImplication(enc2->dtd, enc2->sigma, enc2->implied);
  ASSERT_TRUE(implied2.ok()) << implied2.status();
  EXPECT_FALSE(implied2->implied);
}

TEST(Lemma33Test, InconsistentSpecMeansImplied) {
  // Σ1 over D1 is the paper's inconsistent flagship example; in D' both
  // gadget constraints are then implied (vacuously: no tree satisfies Σ).
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma();

  auto enc1 = EncodeConsistencyAsKeyImplication(d1, sigma);
  ASSERT_TRUE(enc1.ok());
  auto implied1 = CheckImplication(enc1->dtd, enc1->sigma, enc1->implied);
  ASSERT_TRUE(implied1.ok()) << implied1.status();
  EXPECT_TRUE(implied1->implied);

  auto enc2 = EncodeConsistencyAsInclusionImplication(d1, sigma);
  ASSERT_TRUE(enc2.ok());
  auto implied2 = CheckImplication(enc2->dtd, enc2->sigma, enc2->implied);
  ASSERT_TRUE(implied2.ok()) << implied2.status();
  EXPECT_TRUE(implied2->implied);
}

TEST(Lemma33Test, GadgetNamesAreFresh) {
  // A DTD already using Dy/Ex/K gets uniquified gadget names.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("Dy"));
  builder.AddElement("Dy", Regex::Elem("Ex"));
  builder.AddElement("Ex", Regex::Epsilon());
  builder.AddAttribute("Ex", "K");
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  ConstraintSet sigma;
  auto encoding = EncodeConsistencyAsKeyImplication(*dtd, sigma);
  ASSERT_TRUE(encoding.ok()) << encoding.status();
  // The implied key's type is a fresh Dy variant, not the user's "Dy".
  EXPECT_NE(encoding->implied.type1, "Dy");
  EXPECT_TRUE(encoding->dtd.HasElement(encoding->implied.type1));
}

}  // namespace
}  // namespace relational
}  // namespace xicc
