#include <gtest/gtest.h>

#include "constraints/constraint.h"
#include "constraints/constraint_parser.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(ConstraintTest, FactoriesAndToString) {
  Constraint key = Constraint::Key("teacher", {"name"});
  EXPECT_EQ(key.ToString(), "teacher.name -> teacher");

  Constraint multi = Constraint::Key("course", {"dept", "course_no"});
  EXPECT_EQ(multi.ToString(), "course[dept,course_no] -> course");
  EXPECT_FALSE(multi.IsUnary());

  Constraint inc =
      Constraint::Inclusion("subject", {"taught_by"}, "teacher", {"name"});
  EXPECT_EQ(inc.ToString(), "subject.taught_by <= teacher.name");
  EXPECT_TRUE(inc.IsUnary());

  Constraint fk =
      Constraint::ForeignKey("subject", {"taught_by"}, "teacher", {"name"});
  EXPECT_EQ(fk.ToString(),
            "subject.taught_by <= teacher.name, teacher.name -> teacher");

  Constraint neg_key = Constraint::NegKey("teacher", {"name"});
  EXPECT_EQ(neg_key.ToString(), "teacher.name -/-> teacher");
  EXPECT_TRUE(neg_key.IsNegation());

  Constraint neg_inc =
      Constraint::NegInclusion("a", {"x"}, "b", {"y"});
  EXPECT_EQ(neg_inc.ToString(), "a.x </= b.y");
  EXPECT_TRUE(neg_inc.IsNegation());
}

TEST(ConstraintTest, CheckAgainstDtd) {
  Dtd d1 = workloads::TeacherDtd();
  EXPECT_TRUE(workloads::TeacherSigma().CheckAgainst(d1).ok());

  ConstraintSet bad_type;
  bad_type.Add(Constraint::Key("ghost", {"x"}));
  EXPECT_FALSE(bad_type.CheckAgainst(d1).ok());

  ConstraintSet bad_attr;
  bad_attr.Add(Constraint::Key("teacher", {"salary"}));
  EXPECT_FALSE(bad_attr.CheckAgainst(d1).ok());

  ConstraintSet repeated;
  repeated.Add(Constraint::Key("teacher", {"name", "name"}));
  EXPECT_FALSE(repeated.CheckAgainst(d1).ok());

  ConstraintSet arity;
  arity.Add(Constraint{ConstraintKind::kInclusion,
                       "subject",
                       {"taught_by"},
                       "teacher",
                       {}});
  EXPECT_FALSE(arity.CheckAgainst(d1).ok());
}

TEST(ConstraintTest, ClassifyLadder) {
  ConstraintSet empty;
  EXPECT_EQ(empty.Classify(), ConstraintClass::kEmpty);

  ConstraintSet keys;
  keys.Add(Constraint::Key("course", {"dept", "course_no"}));
  keys.Add(Constraint::Key("student", {"student_id"}));
  // Multi-attribute *keys* stay in the linear class (Theorem 3.5).
  EXPECT_EQ(keys.Classify(), ConstraintClass::kKeysOnly);

  ConstraintSet unary = workloads::TeacherSigma();
  EXPECT_EQ(unary.Classify(), ConstraintClass::kUnaryKeyFk);

  ConstraintSet with_neg_key = unary;
  with_neg_key.Add(Constraint::NegKey("teacher", {"name"}));
  EXPECT_EQ(with_neg_key.Classify(), ConstraintClass::kUnaryWithNegKey);

  ConstraintSet with_neg_ic = with_neg_key;
  with_neg_ic.Add(
      Constraint::NegInclusion("teacher", {"name"}, "subject", {"taught_by"}));
  EXPECT_EQ(with_neg_ic.Classify(), ConstraintClass::kUnaryWithNegIc);

  EXPECT_EQ(workloads::SchoolSigma().Classify(),
            ConstraintClass::kMultiAttribute);

  // A multi-attribute key *mixed with* unary inclusions leaves the unary
  // classes too.
  ConstraintSet mixed;
  mixed.Add(Constraint::Key("course", {"dept", "course_no"}));
  mixed.Add(Constraint::Inclusion("enroll", {"student_id"}, "student",
                                  {"student_id"}));
  EXPECT_EQ(mixed.Classify(), ConstraintClass::kMultiAttribute);
}

TEST(ConstraintTest, NormalizeExpandsForeignKeys) {
  ConstraintSet sigma = workloads::TeacherSigma();
  ConstraintSet normalized = sigma.Normalize();
  // key(teacher.name), key(subject.taught_by), inclusion, key from FK
  // (deduplicated with the explicit teacher.name key).
  EXPECT_EQ(normalized.size(), 3u);
  for (const Constraint& c : normalized.constraints()) {
    EXPECT_NE(c.kind, ConstraintKind::kForeignKey);
  }
}

TEST(ConstraintTest, PrimaryKeyRestriction) {
  ConstraintSet one;
  one.Add(Constraint::Key("teacher", {"name"}));
  EXPECT_TRUE(one.SatisfiesPrimaryKeyRestriction());

  ConstraintSet two;
  two.Add(Constraint::Key("teacher", {"name"}));
  two.Add(Constraint::Key("teacher", {"office"}));
  EXPECT_FALSE(two.SatisfiesPrimaryKeyRestriction());

  // The same key twice (also via a foreign key) is still primary.
  ConstraintSet dup;
  dup.Add(Constraint::Key("teacher", {"name"}));
  dup.Add(Constraint::ForeignKey("subject", {"taught_by"}, "teacher",
                                 {"name"}));
  EXPECT_TRUE(dup.SatisfiesPrimaryKeyRestriction());
}

// ------------------------------------------------------------------ Parser.

TEST(ConstraintParserTest, ParsesAllForms) {
  auto sigma = ParseConstraints(R"(
    # the teacher constraints
    key teacher(name)
    key subject(taught_by)
    fk subject(taught_by) => teacher(name)

    inclusion enroll(student_id) <= student(student_id)
    !key teacher(name)
    !inclusion subject(taught_by) <= teacher(name)
    key course(dept, course_no)
  )");
  ASSERT_TRUE(sigma.ok()) << sigma.status();
  ASSERT_EQ(sigma->size(), 7u);
  EXPECT_EQ(sigma->constraints()[0].kind, ConstraintKind::kKey);
  EXPECT_EQ(sigma->constraints()[2].kind, ConstraintKind::kForeignKey);
  EXPECT_EQ(sigma->constraints()[3].kind, ConstraintKind::kInclusion);
  EXPECT_EQ(sigma->constraints()[4].kind, ConstraintKind::kNegKey);
  EXPECT_EQ(sigma->constraints()[5].kind, ConstraintKind::kNegInclusion);
  EXPECT_EQ(sigma->constraints()[6].attrs1.size(), 2u);
}

TEST(ConstraintParserTest, RoundTripThroughToString) {
  ConstraintSet original = workloads::TeacherSigma();
  // ToString is paper notation, not parser notation, so round-trip via the
  // parser syntax instead.
  auto reparsed = ParseConstraints(
      "key teacher(name)\nkey subject(taught_by)\n"
      "fk subject(taught_by) => teacher(name)\n");
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reparsed->constraints()[i], original.constraints()[i]);
  }
}

TEST(ConstraintParserTest, Rejections) {
  EXPECT_FALSE(ParseConstraint("key teacher()").ok());
  EXPECT_FALSE(ParseConstraint("key teacher").ok());
  EXPECT_FALSE(ParseConstraint("primary teacher(name)").ok());
  EXPECT_FALSE(ParseConstraint("inclusion a(x) => b(y)").ok());  // Wrong arrow.
  EXPECT_FALSE(ParseConstraint("fk a(x) <= b(y)").ok());         // Wrong arrow.
  EXPECT_FALSE(ParseConstraint("inclusion a(x,y) <= b(z)").ok());  // Arity.
  EXPECT_FALSE(ParseConstraint("!fk a(x) => b(y)").ok());  // No negated FKs.
  EXPECT_FALSE(ParseConstraint("key teacher(name) extra").ok());
  EXPECT_FALSE(ParseConstraint("key 1bad(name)").ok());
}

TEST(ConstraintParserTest, ErrorsNameTheLine) {
  auto sigma = ParseConstraints("key a(x)\nbogus line\n");
  ASSERT_FALSE(sigma.ok());
  EXPECT_NE(sigma.status().message().find("constraints:2"),
            std::string::npos);
}


TEST(ConstraintParserLimitsTest, OversizedInputIsRejected) {
  // 17 MiB of comment lines: over the 16 MiB cap, rejected up front with
  // kInvalidArgument (not a parse error — nothing was parsed).
  std::string big;
  big.reserve(17 * 1024 * 1024);
  while (big.size() < 17 * 1024 * 1024) {
    big += "# padding padding padding padding padding padding padding\n";
  }
  auto sigma = ParseConstraints(big);
  ASSERT_FALSE(sigma.ok());
  EXPECT_EQ(sigma.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xicc
