// Drives the xicc command-line tool through its library entry point.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "tools/cli.h"

namespace xicc {
namespace tools {
namespace {

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "xicc_cli_" +
           std::to_string(reinterpret_cast<uintptr_t>(this));
    // TempDir exists; fan out per-test files by prefix instead of mkdir.
    dtd_path_ = dir_ + ".dtd";
    sigma_path_ = dir_ + ".sigma";
    doc_path_ = dir_ + ".xml";
    WriteFile(dtd_path_, R"(
      <!ELEMENT teachers (teacher+)>
      <!ELEMENT teacher (teach, research)>
      <!ELEMENT teach (subject, subject)>
      <!ELEMENT subject (#PCDATA)>
      <!ELEMENT research (#PCDATA)>
      <!ATTLIST teacher name CDATA #REQUIRED>
      <!ATTLIST subject taught_by CDATA #REQUIRED>
    )");
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good());
    out << content;
  }

  int Run(const std::vector<std::string>& args) {
    out_.str("");
    err_.str("");
    return RunCli(args, out_, err_);
  }

  std::string dir_, dtd_path_, sigma_path_, doc_path_;
  std::ostringstream out_, err_;
};

TEST_F(CliTest, NoArgsPrintsUsage) {
  EXPECT_EQ(Run({}), 2);
  EXPECT_NE(err_.str().find("usage:"), std::string::npos);
}

TEST_F(CliTest, HelpSucceeds) {
  EXPECT_EQ(Run({"help"}), 0);
  EXPECT_NE(out_.str().find("check"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandFails) {
  EXPECT_EQ(Run({"frobnicate"}), 2);
}

TEST_F(CliTest, CheckInconsistentSpec) {
  WriteFile(sigma_path_,
            "key teacher(name)\nkey subject(taught_by)\n"
            "fk subject(taught_by) => teacher(name)\n");
  EXPECT_EQ(Run({"check", dtd_path_, sigma_path_}), 1);
  EXPECT_NE(out_.str().find("consistent: no"), std::string::npos);
  EXPECT_NE(out_.str().find("ilp-case-split"), std::string::npos);
}

TEST_F(CliTest, CheckConsistentWithWitnessFile) {
  WriteFile(sigma_path_,
            "key teacher(name)\n"
            "inclusion subject(taught_by) <= teacher(name)\n");
  std::string witness_path = dir_ + ".witness.xml";
  EXPECT_EQ(Run({"check", dtd_path_, sigma_path_, "--witness",
                 witness_path}),
            0);
  EXPECT_NE(out_.str().find("consistent: yes"), std::string::npos);
  std::ifstream written(witness_path);
  ASSERT_TRUE(written.good());
  std::string first_line;
  std::getline(written, first_line);
  EXPECT_NE(first_line.find("<?xml"), std::string::npos);
}

TEST_F(CliTest, CheckRejectsMissingFiles) {
  EXPECT_EQ(Run({"check", "/nonexistent/a", "/nonexistent/b"}), 2);
  EXPECT_EQ(Run({"check", dtd_path_}), 2);
  EXPECT_EQ(Run({"check", dtd_path_, dtd_path_, "--bogus"}), 2);
}

TEST_F(CliTest, ImpliesVerdictsAndExitCodes) {
  WriteFile(sigma_path_,
            "fk subject(taught_by) => teacher(name)\n");
  EXPECT_EQ(Run({"implies", dtd_path_, sigma_path_, "key teacher(name)"}),
            0);
  EXPECT_NE(out_.str().find("implied: yes"), std::string::npos);

  EXPECT_EQ(
      Run({"implies", dtd_path_, sigma_path_, "key subject(taught_by)"}),
      1);
  EXPECT_NE(out_.str().find("implied: no"), std::string::npos);

  EXPECT_EQ(Run({"implies", dtd_path_, sigma_path_, "garbage"}), 2);
}

TEST_F(CliTest, ValidateDocument) {
  WriteFile(sigma_path_, "key teacher(name)\n");
  WriteFile(doc_path_, R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>R</research>
      </teacher>
    </teachers>)");
  EXPECT_EQ(Run({"validate", dtd_path_, sigma_path_, doc_path_}), 0);

  WriteFile(doc_path_, "<teachers><teacher name='X'/></teachers>");
  EXPECT_EQ(Run({"validate", dtd_path_, sigma_path_, doc_path_}), 1);
  EXPECT_NE(out_.str().find("DTD violations"), std::string::npos);
}

TEST_F(CliTest, WitnessWithMinimumSize) {
  WriteFile(sigma_path_, "key teacher(name)\n");
  EXPECT_EQ(Run({"witness", dtd_path_, sigma_path_, "--min-nodes", "15"}),
            0);
  // 15 element nodes require ≥ 3 teachers (1 + 5k ≥ 15 ⇒ k ≥ 3).
  std::string xml = out_.str();
  size_t teachers = 0;
  for (size_t pos = xml.find("<teacher "); pos != std::string::npos;
       pos = xml.find("<teacher ", pos + 1)) {
    ++teachers;
  }
  EXPECT_GE(teachers, 3u);

  EXPECT_EQ(Run({"witness", dtd_path_, sigma_path_, "--min-nodes", "bad"}),
            2);
}

TEST_F(CliTest, WitnessInconsistentSpecExitsOne) {
  WriteFile(sigma_path_,
            "key teacher(name)\nkey subject(taught_by)\n"
            "fk subject(taught_by) => teacher(name)\n");
  EXPECT_EQ(Run({"witness", dtd_path_, sigma_path_}), 1);
}

TEST_F(CliTest, ClassifyReportsClassAndBound) {
  WriteFile(sigma_path_, "key teacher(name)\n");
  EXPECT_EQ(Run({"classify", dtd_path_, sigma_path_}), 0);
  EXPECT_NE(out_.str().find("keys-only"), std::string::npos);
  EXPECT_NE(out_.str().find("linear time"), std::string::npos);
}

TEST_F(CliTest, SimplifyPrintsSimpleDtd) {
  EXPECT_EQ(Run({"simplify", dtd_path_}), 0);
  EXPECT_NE(out_.str().find("synthetic element types"), std::string::npos);
  // The star expansion appears as synthetic names.
  EXPECT_NE(out_.str().find("_teachers"), std::string::npos);
}

TEST_F(CliTest, EncodePrintsSystem) {
  WriteFile(sigma_path_, "key teacher(name)\n");
  EXPECT_EQ(Run({"encode", dtd_path_, sigma_path_}), 0);
  EXPECT_NE(out_.str().find("ext(teachers)"), std::string::npos);
  EXPECT_NE(out_.str().find("conditional"), std::string::npos);
}

TEST_F(CliTest, ClosureListsImplications) {
  WriteFile(sigma_path_,
            "fk subject(taught_by) => teacher(name)\n");
  EXPECT_EQ(Run({"closure", dtd_path_, sigma_path_}), 0);
  // The FK's key component is implied... it is *stated* via the FK, so it
  // is filtered; the interesting rows are the redundancy section.
  EXPECT_NE(out_.str().find("implied keys"), std::string::npos);
  EXPECT_NE(out_.str().find("redundant constraints"), std::string::npos);
}

TEST_F(CliTest, EquivCommand) {
  WriteFile(sigma_path_, "fk subject(taught_by) => teacher(name)\n");
  std::string sigma2 = dir_ + ".sigma2";
  WriteFile(sigma2,
            "inclusion subject(taught_by) <= teacher(name)\n"
            "key teacher(name)\n");
  EXPECT_EQ(Run({"equiv", dtd_path_, sigma_path_, sigma2}), 0);
  EXPECT_NE(out_.str().find("equivalent: yes"), std::string::npos);

  WriteFile(sigma2, "key teacher(name)\n");
  EXPECT_EQ(Run({"equiv", dtd_path_, sigma_path_, sigma2}), 1);
  EXPECT_NE(out_.str().find("separated by"), std::string::npos);

  EXPECT_EQ(Run({"equiv", dtd_path_, sigma_path_}), 2);
}

TEST_F(CliTest, IdrefsTranslation) {
  std::string id_dtd = dir_ + ".ids.dtd";
  WriteFile(id_dtd, R"(
    <!ELEMENT library (book*, loan*)>
    <!ELEMENT book EMPTY>
    <!ELEMENT loan EMPTY>
    <!ATTLIST book isbn ID #REQUIRED>
    <!ATTLIST loan of IDREF #REQUIRED>
  )");
  EXPECT_EQ(Run({"idrefs", id_dtd}), 0);
  EXPECT_NE(out_.str().find("book.isbn -> book"), std::string::npos);
  EXPECT_NE(out_.str().find("loan.of <= book.isbn"), std::string::npos);
}

// ----------------------------------------------- Numeric flag validation.
// Every numeric flag must reject garbage with exit 2 and a usage hint —
// never crash, never silently clamp, never run with a nonsense value.

class CliFlagTest : public CliTest {
 protected:
  void SetUp() override {
    CliTest::SetUp();
    WriteFile(sigma_path_, "key teacher(name)\n");
    queries_path_ = dir_ + ".queries";
    WriteFile(queries_path_,
              "key teacher(name)\n---\n"
              "key teacher(name)\n!key teacher(name)\n");
  }

  // Runs `check` with one flag set to `value` and expects rejection that
  // names the flag and points at the usage text.
  void ExpectCheckRejects(const std::string& flag, const std::string& value) {
    EXPECT_EQ(Run({"check", dtd_path_, sigma_path_, flag, value}), 2)
        << flag << "=" << value;
    EXPECT_NE(err_.str().find(flag), std::string::npos) << err_.str();
    EXPECT_NE(err_.str().find("usage"), std::string::npos) << err_.str();
  }

  void ExpectBatchRejects(const std::string& flag, const std::string& value) {
    EXPECT_EQ(Run({"batch", dtd_path_, queries_path_, flag, value}), 2)
        << flag << "=" << value;
    EXPECT_NE(err_.str().find(flag), std::string::npos) << err_.str();
    EXPECT_NE(err_.str().find("usage"), std::string::npos) << err_.str();
  }

  std::string queries_path_;
};

TEST_F(CliFlagTest, TimeoutMsRejectsGarbage) {
  ExpectCheckRejects("--timeout-ms", "-5");
  ExpectCheckRejects("--timeout-ms", "0");
  ExpectCheckRejects("--timeout-ms", "soon");
  ExpectCheckRejects("--timeout-ms", "10x");
  ExpectCheckRejects("--timeout-ms", "");
  // Overflows long long: must be ERANGE-rejected, not wrapped or clamped.
  ExpectCheckRejects("--timeout-ms", "99999999999999999999");
  ExpectCheckRejects("--timeout-ms", "-99999999999999999999");
}

TEST_F(CliFlagTest, CancelAfterRejectsGarbage) {
  ExpectCheckRejects("--cancel-after", "-1");
  ExpectCheckRejects("--cancel-after", "1.5");
  ExpectCheckRejects("--cancel-after", "99999999999999999999");
}

TEST_F(CliFlagTest, MinNodesRejectsGarbageButAcceptsZero) {
  ExpectCheckRejects("--min-nodes", "-1");
  ExpectCheckRejects("--min-nodes", "many");
  ExpectCheckRejects("--min-nodes", "99999999999999999999");
  // Zero is a legitimate "no minimum".
  EXPECT_EQ(Run({"check", dtd_path_, sigma_path_, "--min-nodes", "0"}), 0);
}

TEST_F(CliFlagTest, BatchThreadsAndChunkRejectGarbage) {
  ExpectBatchRejects("--threads", "0");
  ExpectBatchRejects("--threads", "-2");
  ExpectBatchRejects("--threads", "2.0");
  ExpectBatchRejects("--threads", "99999999999999999999");
  ExpectBatchRejects("--chunk", "0");
  ExpectBatchRejects("--chunk", "nope");
  ExpectBatchRejects("--chunk", "99999999999999999999");
  // Batch item timeouts ride the same flag; garbage is caught there too.
  ExpectBatchRejects("--timeout-ms", "1e9");
}

TEST_F(CliFlagTest, ValidFlagsStillWork) {
  EXPECT_EQ(Run({"check", dtd_path_, sigma_path_, "--timeout-ms", "30000"}),
            0);
  // Exit 1: the second query block is inconsistent (negative verdict, not
  // an error).
  EXPECT_EQ(Run({"batch", dtd_path_, queries_path_, "--threads", "2",
                 "--chunk", "1", "--timeout-ms", "30000"}),
            1);
  EXPECT_NE(out_.str().find(": consistent"), std::string::npos) << out_.str();
  EXPECT_NE(out_.str().find(": inconsistent"), std::string::npos)
      << out_.str();
}

}  // namespace
}  // namespace tools
}  // namespace xicc
