#include <gtest/gtest.h>

#include "dtd/validator.h"
#include "xml/parser.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

XmlTree MustParse(const std::string& text) {
  auto tree = ParseXml(text);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).value();
}

TEST(ValidatorTest, Figure1TreeConformsToD1) {
  // The tree of Figure 1.
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>Web DB</research>
      </teacher>
      <teacher name="Ann">
        <teach>
          <subject taught_by="Ann">Logic</subject>
          <subject taught_by="Ann">Automata</subject>
        </teach>
        <research>Theory</research>
      </teacher>
    </teachers>)");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_TRUE(report.valid) << report.ToString();
}

TEST(ValidatorTest, WrongRootRejected) {
  XmlTree tree = MustParse("<teacher name=\"X\"><teach/><research/></teacher>");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.ToString().find("root"), std::string::npos);
}

TEST(ValidatorTest, ContentModelViolation) {
  // One subject instead of two.
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher name="Joe">
        <teach><subject taught_by="Joe">XML</subject></teach>
        <research>DB</research>
      </teacher>
    </teachers>)");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.ToString().find("teach"), std::string::npos);
}

TEST(ValidatorTest, MissingAttributeReported) {
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher>
        <teach>
          <subject taught_by="Joe">X</subject>
          <subject taught_by="Joe">Y</subject>
        </teach>
        <research>R</research>
      </teacher>
    </teachers>)");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.ToString().find("missing required attribute 'name'"),
            std::string::npos);
}

TEST(ValidatorTest, UndeclaredAttributeReported) {
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher name="Joe" age="44">
        <teach>
          <subject taught_by="Joe">X</subject>
          <subject taught_by="Joe">Y</subject>
        </teach>
        <research>R</research>
      </teacher>
    </teachers>)");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.ToString().find("undeclared attribute 'age'"),
            std::string::npos);
}

TEST(ValidatorTest, UndeclaredElementReported) {
  XmlTree tree = MustParse("<teachers><intruder/></teachers>");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.ToString().find("intruder"), std::string::npos);
}

TEST(ValidatorTest, ImplicitEmptyTextOption) {
  // <research/> has no text child but P(research) = S.
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">X</subject>
          <subject taught_by="Joe">Y</subject>
        </teach>
        <research/>
      </teacher>
    </teachers>)");
  EXPECT_TRUE(ValidateXml(tree, workloads::TeacherDtd()).valid);

  ValidateOptions strict;
  strict.implicit_empty_text = false;
  EXPECT_FALSE(ValidateXml(tree, workloads::TeacherDtd(), strict).valid);
}

TEST(ValidatorTest, SchoolDocumentWithStars) {
  XmlTree tree = MustParse(R"(
    <school>
      <course dept="CS" course_no="101"><subject>DB</subject></course>
      <course dept="CS" course_no="102"><subject>XML</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="CS" course_no="101"/>
    </school>)");
  ValidationReport report = ValidateXml(tree, workloads::SchoolDtd());
  EXPECT_TRUE(report.valid) << report.ToString();
}

TEST(ValidatorTest, SchoolStarOrderMatters) {
  // enroll before student violates course*,student*,enroll*.
  XmlTree tree = MustParse(R"(
    <school>
      <enroll student_id="s1" dept="CS" course_no="101"/>
      <student student_id="s1"><name>Kim</name></student>
    </school>)");
  EXPECT_FALSE(ValidateXml(tree, workloads::SchoolDtd()).valid);
}

TEST(ValidatorTest, EmptySchoolIsValid) {
  XmlTree tree = MustParse("<school/>");
  EXPECT_TRUE(ValidateXml(tree, workloads::SchoolDtd()).valid);
}

TEST(ValidatorTest, CollectsMultipleViolations) {
  XmlTree tree = MustParse(R"(
    <teachers>
      <teacher><teach/><research/></teacher>
    </teachers>)");
  ValidationReport report = ValidateXml(tree, workloads::TeacherDtd());
  EXPECT_FALSE(report.valid);
  // Missing name + teach content model.
  EXPECT_GE(report.violations.size(), 2u);
}

}  // namespace
}  // namespace xicc
