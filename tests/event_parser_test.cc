#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtd/glushkov.h"
#include "xml/event_parser.h"

namespace xicc {
namespace {

/// Records the event stream as strings like "start:a[x=1]", "text:hi",
/// "end:a"; can abort on a chosen element name.
class RecordingHandler : public XmlEventHandler {
 public:
  explicit RecordingHandler(std::string abort_on = "")
      : abort_on_(std::move(abort_on)) {}

  Status StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override {
    if (name == abort_on_) {
      return Status::InvalidArgument("handler aborted on <" + name + ">");
    }
    std::string event = "start:" + name;
    for (const auto& [attr, value] : attrs) {
      event += "[" + attr + "=" + value + "]";
    }
    events.push_back(std::move(event));
    return Status::Ok();
  }

  Status Text(const std::string& value) override {
    events.push_back("text:" + value);
    return Status::Ok();
  }

  Status EndElement(const std::string& name) override {
    events.push_back("end:" + name);
    return Status::Ok();
  }

  std::vector<std::string> events;

 private:
  std::string abort_on_;
};

TEST(EventParserTest, EventOrderAndAttributes) {
  RecordingHandler handler;
  Status status = ParseXmlEvents(
      "<a x=\"1\" y=\"2\"><b>hi</b><c/></a>", &handler);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:a[x=1][y=2]", "start:b",
                                      "text:hi", "end:b", "start:c", "end:c",
                                      "end:a"}));
}

TEST(EventParserTest, SelfClosingGetsBothEvents) {
  RecordingHandler handler;
  ASSERT_TRUE(ParseXmlEvents("<only/>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:only", "end:only"}));
}

TEST(EventParserTest, HandlerErrorAbortsParse) {
  RecordingHandler handler("bad");
  Status status =
      ParseXmlEvents("<a><ok/><bad/><never/></a>", &handler);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("aborted on <bad>"), std::string::npos);
  // Events before the abort were delivered; nothing after.
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:a", "start:ok", "end:ok"}));
}

TEST(EventParserTest, WhitespaceTextPolicy) {
  RecordingHandler squashed;
  ASSERT_TRUE(ParseXmlEvents("<a>\n  <b/>\n</a>", &squashed).ok());
  EXPECT_EQ(squashed.events,
            (std::vector<std::string>{"start:a", "start:b", "end:b",
                                      "end:a"}));

  XmlParseOptions keep;
  keep.skip_whitespace_text = false;
  RecordingHandler kept;
  ASSERT_TRUE(ParseXmlEvents("<a>\n  <b/>\n</a>", &kept, keep).ok());
  EXPECT_EQ(kept.events.size(), 6u);  // Two whitespace text events survive.
}

// ---------------------------------------------- Stepwise Glushkov matching.

TEST(GlushkovStepwiseTest, StepAndAccept) {
  // (a, b*) — streaming through the automaton.
  ContentModelMatcher m(
      Regex::Concat(Regex::Elem("a"), Regex::Star(Regex::Elem("b"))));
  int state = ContentModelMatcher::kStartState;
  EXPECT_FALSE(m.AcceptsAt(state));
  state = m.Step(state, "a");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "b");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "b");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "a");
  EXPECT_EQ(state, ContentModelMatcher::kDeadState);
  EXPECT_FALSE(m.AcceptsAt(state));
  // Dead is absorbing.
  EXPECT_EQ(m.Step(state, "b"), ContentModelMatcher::kDeadState);
}

TEST(GlushkovStepwiseTest, StartStateNullability) {
  ContentModelMatcher nullable(Regex::Star(Regex::Elem("a")));
  EXPECT_TRUE(nullable.AcceptsAt(ContentModelMatcher::kStartState));
  ContentModelMatcher strict(Regex::Elem("a"));
  EXPECT_FALSE(strict.AcceptsAt(ContentModelMatcher::kStartState));
}

TEST(GlushkovStepwiseTest, StepwiseMatchesBatch) {
  RegexPtr r = Regex::Concat(
      Regex::Union(Regex::Elem("a"),
                   Regex::Concat(Regex::Elem("a"), Regex::Elem("b"))),
      Regex::Elem("b"));
  ContentModelMatcher m(r);
  for (const std::vector<std::string>& word :
       {std::vector<std::string>{"a", "b"},
        std::vector<std::string>{"a", "b", "b"},
        std::vector<std::string>{"a"},
        std::vector<std::string>{"b"},
        std::vector<std::string>{}}) {
    int state = ContentModelMatcher::kStartState;
    for (const std::string& symbol : word) state = m.Step(state, symbol);
    EXPECT_EQ(m.AcceptsAt(state), m.Matches(word));
  }
}


TEST(EventParserTest, DepthBombIsRejectedNotOverflowed) {
  // 100k nested elements: one C++ recursion frame each would blow the
  // stack; the limit must turn this into a clean kInvalidArgument.
  constexpr size_t kDepth = 100'000;
  std::string bomb;
  bomb.reserve(kDepth * 7);
  for (size_t i = 0; i < kDepth; ++i) bomb += "<a>";
  for (size_t i = 0; i < kDepth; ++i) bomb += "</a>";
  RecordingHandler handler;
  Status status = ParseXmlEvents(bomb, &handler);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(EventParserTest, DepthLimitIsConfigurable) {
  RecordingHandler deep_handler;
  XmlParseOptions tight;
  tight.max_depth = 2;
  Status too_deep =
      ParseXmlEvents("<a><b><c/></b></a>", &deep_handler, tight);
  ASSERT_FALSE(too_deep.ok());
  EXPECT_EQ(too_deep.code(), StatusCode::kInvalidArgument);

  RecordingHandler ok_handler;
  XmlParseOptions enough;
  enough.max_depth = 3;
  EXPECT_TRUE(ParseXmlEvents("<a><b><c/></b></a>", &ok_handler, enough).ok());
}

TEST(EventParserTest, OversizedInputIsRejectedUpFront) {
  XmlParseOptions options;
  options.max_input_bytes = 64;
  std::string big = "<a>" + std::string(128, 'x') + "</a>";
  RecordingHandler handler;
  Status status = ParseXmlEvents(big, &handler, options);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  // Rejected before parsing: the handler never saw an event.
  EXPECT_TRUE(handler.events.empty());
}

}  // namespace
}  // namespace xicc
