#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dtd/glushkov.h"
#include "xml/event_parser.h"

namespace xicc {
namespace {

/// Records the event stream as strings like "start:a[x=1]", "text:hi",
/// "end:a"; can abort on a chosen element name.
class RecordingHandler : public XmlEventHandler {
 public:
  explicit RecordingHandler(std::string abort_on = "")
      : abort_on_(std::move(abort_on)) {}

  Status StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override {
    if (name == abort_on_) {
      return Status::InvalidArgument("handler aborted on <" + name + ">");
    }
    std::string event = "start:" + name;
    for (const auto& [attr, value] : attrs) {
      event += "[" + attr + "=" + value + "]";
    }
    events.push_back(std::move(event));
    return Status::Ok();
  }

  Status Text(const std::string& value) override {
    events.push_back("text:" + value);
    return Status::Ok();
  }

  Status EndElement(const std::string& name) override {
    events.push_back("end:" + name);
    return Status::Ok();
  }

  std::vector<std::string> events;

 private:
  std::string abort_on_;
};

TEST(EventParserTest, EventOrderAndAttributes) {
  RecordingHandler handler;
  Status status = ParseXmlEvents(
      "<a x=\"1\" y=\"2\"><b>hi</b><c/></a>", &handler);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:a[x=1][y=2]", "start:b",
                                      "text:hi", "end:b", "start:c", "end:c",
                                      "end:a"}));
}

TEST(EventParserTest, SelfClosingGetsBothEvents) {
  RecordingHandler handler;
  ASSERT_TRUE(ParseXmlEvents("<only/>", &handler).ok());
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:only", "end:only"}));
}

TEST(EventParserTest, HandlerErrorAbortsParse) {
  RecordingHandler handler("bad");
  Status status =
      ParseXmlEvents("<a><ok/><bad/><never/></a>", &handler);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("aborted on <bad>"), std::string::npos);
  // Events before the abort were delivered; nothing after.
  EXPECT_EQ(handler.events,
            (std::vector<std::string>{"start:a", "start:ok", "end:ok"}));
}

TEST(EventParserTest, WhitespaceTextPolicy) {
  RecordingHandler squashed;
  ASSERT_TRUE(ParseXmlEvents("<a>\n  <b/>\n</a>", &squashed).ok());
  EXPECT_EQ(squashed.events,
            (std::vector<std::string>{"start:a", "start:b", "end:b",
                                      "end:a"}));

  XmlParseOptions keep;
  keep.skip_whitespace_text = false;
  RecordingHandler kept;
  ASSERT_TRUE(ParseXmlEvents("<a>\n  <b/>\n</a>", &kept, keep).ok());
  EXPECT_EQ(kept.events.size(), 6u);  // Two whitespace text events survive.
}

// ---------------------------------------------- Stepwise Glushkov matching.

TEST(GlushkovStepwiseTest, StepAndAccept) {
  // (a, b*) — streaming through the automaton.
  ContentModelMatcher m(
      Regex::Concat(Regex::Elem("a"), Regex::Star(Regex::Elem("b"))));
  int state = ContentModelMatcher::kStartState;
  EXPECT_FALSE(m.AcceptsAt(state));
  state = m.Step(state, "a");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "b");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "b");
  EXPECT_TRUE(m.AcceptsAt(state));
  state = m.Step(state, "a");
  EXPECT_EQ(state, ContentModelMatcher::kDeadState);
  EXPECT_FALSE(m.AcceptsAt(state));
  // Dead is absorbing.
  EXPECT_EQ(m.Step(state, "b"), ContentModelMatcher::kDeadState);
}

TEST(GlushkovStepwiseTest, StartStateNullability) {
  ContentModelMatcher nullable(Regex::Star(Regex::Elem("a")));
  EXPECT_TRUE(nullable.AcceptsAt(ContentModelMatcher::kStartState));
  ContentModelMatcher strict(Regex::Elem("a"));
  EXPECT_FALSE(strict.AcceptsAt(ContentModelMatcher::kStartState));
}

TEST(GlushkovStepwiseTest, StepwiseMatchesBatch) {
  RegexPtr r = Regex::Concat(
      Regex::Union(Regex::Elem("a"),
                   Regex::Concat(Regex::Elem("a"), Regex::Elem("b"))),
      Regex::Elem("b"));
  ContentModelMatcher m(r);
  for (const std::vector<std::string>& word :
       {std::vector<std::string>{"a", "b"},
        std::vector<std::string>{"a", "b", "b"},
        std::vector<std::string>{"a"},
        std::vector<std::string>{"b"},
        std::vector<std::string>{}}) {
    int state = ContentModelMatcher::kStartState;
    for (const std::string& symbol : word) state = m.Step(state, symbol);
    EXPECT_EQ(m.AcceptsAt(state), m.Matches(word));
  }
}

}  // namespace
}  // namespace xicc
