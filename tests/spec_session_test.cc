// Differential testing of SpecSession against the fresh per-query pipeline:
// the session answers every query by pushing C_Σ rows onto the compiled
// skeleton's trail with a warm-started dual simplex, so the cheap thing to
// get wrong is exactly the verdict. Every test here runs the same (D, Σ)
// through both paths and requires identical verdicts, classes, and methods;
// witnesses may differ byte-wise (a different LP vertex realizes a
// different tree) but must independently check out against D and Σ.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "core/incremental.h"
#include "core/spec_session.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

using Outcome = IncrementalChecker::Outcome;

/// Fresh-vs-session check of one query; `label` names the corpus entry in
/// failure output.
void ExpectSameVerdict(const Dtd& dtd, SpecSession& session,
                       const ConstraintSet& sigma,
                       const ConsistencyOptions& options,
                       const std::string& label) {
  auto fresh = CheckConsistency(dtd, sigma, options);
  auto via_session = session.Check(sigma);
  ASSERT_EQ(fresh.ok(), via_session.ok())
      << label << ": fresh=" << fresh.status()
      << " session=" << via_session.status();
  if (!fresh.ok()) return;
  EXPECT_EQ(fresh->consistent, via_session->consistent)
      << label << ": fresh says '" << fresh->explanation
      << "', session says '" << via_session->explanation << "'";
  EXPECT_EQ(fresh->constraint_class, via_session->constraint_class) << label;
  EXPECT_EQ(fresh->method, via_session->method) << label;
  EXPECT_EQ(fresh->witness.has_value(), via_session->witness.has_value())
      << label;
  if (via_session->witness.has_value()) {
    EXPECT_TRUE(ValidateXml(*via_session->witness, dtd).valid) << label;
    EXPECT_TRUE(Evaluate(*via_session->witness, sigma).satisfied) << label;
  }
}

TEST(SpecSessionDifferentialTest, CatalogRandomUnaryCorpus) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ConsistencyOptions options;
  SpecSession session(*compiled, options);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed, 3, 2);
    ExpectSameVerdict(dtd, session, sigma, options,
                      "catalog seed " + std::to_string(seed));
  }
  ExpectSameVerdict(dtd, session, workloads::CatalogFkChainSigma(3), options,
                    "catalog fk chain");
  ExpectSameVerdict(dtd, session, workloads::AllKeysSigma(dtd), options,
                    "catalog all keys");
  ExpectSameVerdict(dtd, session, ConstraintSet(), options, "catalog empty");
  EXPECT_GT(session.stats().sigma_delta_checks, 0u);
}

TEST(SpecSessionDifferentialTest, AuctionCorpus) {
  Dtd dtd = workloads::AuctionDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  ConsistencyOptions options;
  SpecSession session(*compiled, options);
  ExpectSameVerdict(dtd, session, workloads::AuctionSigma(2), options,
                    "auction sigma");
  for (uint64_t seed = 11; seed <= 14; ++seed) {
    ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed, 4, 3);
    ExpectSameVerdict(dtd, session, sigma, options,
                      "auction seed " + std::to_string(seed));
  }
}

TEST(SpecSessionDifferentialTest, ChainAndTeacher) {
  Dtd chain = workloads::ChainDtd(5);
  auto compiled_chain = CompileDtd(chain);
  ASSERT_TRUE(compiled_chain.ok());
  ConsistencyOptions options;
  SpecSession chain_session(*compiled_chain, options);
  ExpectSameVerdict(chain, chain_session, workloads::AllKeysSigma(chain),
                    options, "chain all keys");

  // Σ1 over D1 is the paper's flagship inconsistent instance; the session
  // must reproduce the fresh explanation, not just the bit.
  Dtd teacher = workloads::TeacherDtd();
  auto compiled_teacher = CompileDtd(teacher);
  ASSERT_TRUE(compiled_teacher.ok());
  SpecSession teacher_session(*compiled_teacher, options);
  auto fresh = CheckConsistency(teacher, workloads::TeacherSigma(), options);
  auto via_session = teacher_session.Check(workloads::TeacherSigma());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(via_session.ok());
  EXPECT_FALSE(via_session->consistent);
  EXPECT_EQ(fresh->explanation, via_session->explanation);
}

TEST(SpecSessionDifferentialTest, LipGadgets) {
  // NP-hardness gadgets force real case-split search through the trail path.
  ConsistencyOptions options;
  for (uint64_t seed = 2; seed <= 5; ++seed) {
    workloads::LipEncoding lip =
        workloads::EncodeLipAsConsistency(workloads::RandomLip(seed, 3, 4, 2));
    auto compiled = CompileDtd(lip.dtd);
    ASSERT_TRUE(compiled.ok());
    SpecSession session(*compiled, options);
    ExpectSameVerdict(lip.dtd, session, lip.sigma, options,
                      "lip seed " + std::to_string(seed));
  }
}

TEST(SpecSessionDifferentialTest, NegatedConstraintsAndFallback) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  ConsistencyOptions options;
  SpecSession session(*compiled, options);

  // Negated keys ride the trail (kUnaryWithNegKey)...
  ConstraintSet neg_key;
  neg_key.Add(Constraint::Key("item1", {"id"}));
  neg_key.Add(Constraint::NegKey("item2", {"id"}));
  ExpectSameVerdict(dtd, session, neg_key, options, "negated key");
  EXPECT_EQ(session.stats().fresh_fallbacks, 0u);

  // ...while negated inclusions need the Section 5 region system, which the
  // session routes through the fresh pipeline.
  ConstraintSet neg_inc;
  neg_inc.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));
  neg_inc.Add(Constraint::NegInclusion("item1", {"id"}, "item2", {"id"}));
  ExpectSameVerdict(dtd, session, neg_inc, options, "negated inclusion");
  EXPECT_GT(session.stats().fresh_fallbacks, 0u);
}

TEST(SpecSessionDifferentialTest, MinWitnessNodesParity) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  ConsistencyOptions options;
  options.min_witness_nodes = 12;
  SpecSession session(*compiled, options);

  // Keys-only cell: Σ itself is linear-cell but the size bound rides the
  // trail as the one delta row.
  ConstraintSet keys = workloads::AllKeysSigma(dtd);
  ExpectSameVerdict(dtd, session, keys, options, "min-size keys-only");
  auto sized = session.Check(keys);
  ASSERT_TRUE(sized.ok());
  ASSERT_TRUE(sized->witness.has_value());
  EXPECT_GE(sized->witness->size(), 12u);

  // NP cell with the same bound.
  ExpectSameVerdict(dtd, session, workloads::CatalogFkChainSigma(2), options,
                    "min-size fk chain");
}

TEST(SpecSessionTest, MemoHitsAndEviction) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  SpecSession session(*compiled, ConsistencyOptions(), /*memo_capacity=*/2);

  ConstraintSet a = workloads::AllKeysSigma(dtd);
  ConstraintSet b = workloads::CatalogFkChainSigma(2);
  ConstraintSet c;
  c.Add(Constraint::Key("item1", {"id"}));

  ASSERT_TRUE(session.Check(a).ok());
  auto again = session.Check(a);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session.stats().memo_hits, 1u);
  // The memo answer reports zero incremental cost.
  EXPECT_EQ(again->stats.memo_hits, 1u);
  EXPECT_EQ(again->stats.compile_ms, 0.0);

  // Capacity 2: a third distinct key evicts the least recently used.
  ASSERT_TRUE(session.Check(b).ok());
  ASSERT_TRUE(session.Check(c).ok());
  EXPECT_GE(session.stats().memo_evictions, 1u);
  EXPECT_EQ(session.stats().queries, 4u);
}

TEST(SpecSessionTest, MemoKeyIsCanonical) {
  // The same Σ in a different order and with FKs split into parts must hit.
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  SpecSession session(*compiled);

  ConstraintSet as_fk;
  as_fk.Add(Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}));
  ConstraintSet as_parts;
  as_parts.Add(Constraint::Key("item2", {"id"}));
  as_parts.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));

  ASSERT_TRUE(session.Check(as_fk).ok());
  ASSERT_TRUE(session.Check(as_parts).ok());
  EXPECT_EQ(session.stats().memo_hits, 1u);
}

TEST(SpecSessionTest, CommitLayersAndRollback) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  SpecSession session(*compiled);

  ConstraintSet keys;
  keys.Add(Constraint::Key("item2", {"id"}));
  ASSERT_TRUE(session.Commit(keys).ok());

  // Committed constraints join every later query: check of just the
  // inclusion is evaluated as key + inclusion.
  ConstraintSet inclusion;
  inclusion.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));
  auto combined = session.Check(inclusion);
  ASSERT_TRUE(combined.ok());
  EXPECT_TRUE(combined->consistent);
  ASSERT_TRUE(combined->witness.has_value());
  ConstraintSet both = keys;
  both.Add(Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}));
  EXPECT_TRUE(Evaluate(*combined->witness, both).satisfied);

  session.Rollback();
  EXPECT_TRUE(session.committed().empty());
}

TEST(SpecSessionTest, ImpliesMatchesFreshImplication) {
  Dtd dtd = workloads::CatalogDtd(3);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  SpecSession session(*compiled);

  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
  sigma.Add(Constraint::Key("item3", {"id"}));
  ASSERT_TRUE(session.Commit(sigma).ok());

  std::vector<Constraint> phis = {
      // Implied: transitivity of the inclusions.
      Constraint::Inclusion("item1", {"id"}, "item3", {"id"}),
      // Implied: FK = inclusion + key of the target.
      Constraint::ForeignKey("item2", {"id"}, "item3", {"id"}),
      // Not implied: nothing keys item1.
      Constraint::Key("item1", {"id"}),
      // Not implied: the reverse inclusion.
      Constraint::Inclusion("item3", {"id"}, "item1", {"id"}),
  };
  for (const Constraint& phi : phis) {
    auto fresh = CheckImplication(dtd, sigma, phi);
    auto via_session = session.Implies(phi);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    ASSERT_TRUE(via_session.ok()) << via_session.status();
    EXPECT_EQ(fresh->implied, via_session->implied) << phi.ToString();
    if (via_session->counterexample.has_value()) {
      // Counterexamples satisfy Σ and violate φ.
      EXPECT_TRUE(ValidateXml(*via_session->counterexample, dtd).valid);
      EXPECT_TRUE(Evaluate(*via_session->counterexample, sigma).satisfied);
      EXPECT_FALSE(Evaluate(*via_session->counterexample, phi).satisfied);
    }
  }
}

TEST(SpecSessionTest, KeysOnlyImplicationLemma37) {
  // Lemma 3.7 fast path: keys-only committed set, key φ.
  Dtd dtd = workloads::TeacherDtd();
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok());
  SpecSession session(*compiled);
  ConstraintSet keys;
  keys.Add(Constraint::Key("teacher", {"name"}));
  ASSERT_TRUE(session.Commit(keys).ok());

  auto stated = session.Implies(Constraint::Key("teacher", {"name"}));
  ASSERT_TRUE(stated.ok());
  EXPECT_TRUE(stated->implied);

  auto unstated = session.Implies(Constraint::Key("subject", {"taught_by"}));
  auto fresh =
      CheckImplication(dtd, keys, Constraint::Key("subject", {"taught_by"}));
  ASSERT_TRUE(unstated.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->implied, unstated->implied);
  EXPECT_EQ(unstated->counterexample.has_value(),
            fresh->counterexample.has_value());
}

// ------------------------------------------- IncrementalChecker ablation.

TEST(IncrementalSessionTest, SessionAndFreshModesAgreeOnOutcomeSequences) {
  Dtd dtd = workloads::CatalogDtd(3);
  std::vector<Constraint> additions = {
      Constraint::Key("item1", {"id"}),
      Constraint::Key("item2", {"id"}),
      Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}),
      Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}),  // duplicate
      Constraint::Inclusion("item1", {"ref"}, "item2", {"id"}),   // implied
      Constraint::Key("item3", {"id"}),
  };
  IncrementalChecker session_mode(&dtd, {}, /*check_redundancy=*/true,
                                  IncrementalChecker::Mode::kSession);
  IncrementalChecker fresh_mode(&dtd, {}, /*check_redundancy=*/true,
                                IncrementalChecker::Mode::kFresh);
  for (const Constraint& c : additions) {
    auto via_session = session_mode.TryAdd(c);
    auto via_fresh = fresh_mode.TryAdd(c);
    ASSERT_TRUE(via_session.ok()) << c.ToString() << ": "
                                  << via_session.status();
    ASSERT_TRUE(via_fresh.ok()) << c.ToString() << ": " << via_fresh.status();
    EXPECT_EQ(via_session->outcome, via_fresh->outcome) << c.ToString();
  }
  EXPECT_EQ(session_mode.accepted().ToString(),
            fresh_mode.accepted().ToString());
  EXPECT_GT(session_mode.session_stats().sigma_delta_checks, 0u);
  EXPECT_EQ(fresh_mode.session_stats().queries, 0u);

  // Negated keys cannot be tested for redundancy (¬¬k is not a constraint —
  // both modes reject that identically), so they ride with redundancy off.
  IncrementalChecker session_neg(&dtd, {}, /*check_redundancy=*/false,
                                 IncrementalChecker::Mode::kSession);
  IncrementalChecker fresh_neg(&dtd, {}, /*check_redundancy=*/false,
                               IncrementalChecker::Mode::kFresh);
  std::vector<Constraint> with_neg = {
      Constraint::Key("item1", {"id"}),
      Constraint::NegKey("item3", {"ref"}),
      Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}),
  };
  for (const Constraint& c : with_neg) {
    auto via_session = session_neg.TryAdd(c);
    auto via_fresh = fresh_neg.TryAdd(c);
    ASSERT_TRUE(via_session.ok()) << c.ToString() << ": "
                                  << via_session.status();
    ASSERT_TRUE(via_fresh.ok()) << c.ToString() << ": " << via_fresh.status();
    EXPECT_EQ(via_session->outcome, via_fresh->outcome) << c.ToString();
  }
  EXPECT_EQ(session_neg.accepted().ToString(), fresh_neg.accepted().ToString());
}

TEST(IncrementalSessionTest, Sigma1RejectionParity) {
  // The paper's Σ1-over-D1 authoring story must play out identically in
  // both modes, including which addition is the fatal one.
  Dtd d1 = workloads::TeacherDtd();
  for (auto mode : {IncrementalChecker::Mode::kSession,
                    IncrementalChecker::Mode::kFresh}) {
    IncrementalChecker checker(&d1, {}, true, mode);
    std::vector<Constraint> sigma1 = workloads::TeacherSigma().constraints();
    std::vector<Outcome> outcomes;
    for (const Constraint& c : sigma1) {
      auto result = checker.TryAdd(c);
      ASSERT_TRUE(result.ok()) << result.status();
      outcomes.push_back(result->outcome);
    }
    EXPECT_EQ(outcomes, (std::vector<Outcome>{Outcome::kAccepted,
                                              Outcome::kAccepted,
                                              Outcome::kRejected}));
    EXPECT_EQ(checker.accepted().size(), 2u);
  }
}

TEST(IncrementalSessionTest, AcceptedAdditionsCarryCheckedWitnesses) {
  // The small fix: TryAdd no longer force-disables witness building, so an
  // accepted addition reports a witness of the whole accepted set.
  Dtd dtd = workloads::CatalogDtd(2);
  ConsistencyOptions options;
  options.min_witness_nodes = 8;
  IncrementalChecker checker(&dtd, options);

  auto key = checker.TryAdd(Constraint::Key("item2", {"id"}));
  ASSERT_TRUE(key.ok()) << key.status();
  ASSERT_EQ(key->outcome, Outcome::kAccepted);
  ASSERT_TRUE(key->witness.has_value());
  EXPECT_GE(key->witness->size(), 8u);
  EXPECT_TRUE(ValidateXml(*key->witness, dtd).valid);

  auto fk = checker.TryAdd(
      Constraint::ForeignKey("item1", {"ref"}, "item2", {"id"}));
  ASSERT_TRUE(fk.ok()) << fk.status();
  ASSERT_EQ(fk->outcome, Outcome::kAccepted);
  ASSERT_TRUE(fk->witness.has_value());
  EXPECT_TRUE(ValidateXml(*fk->witness, dtd).valid);
  EXPECT_TRUE(Evaluate(*fk->witness, checker.accepted()).satisfied);
}

TEST(SpecSessionTest, EmptyLanguageDtdCompilesAndAnswers) {
  // D2: db → foo, foo → foo — no finite tree. Compilation succeeds and the
  // precomputed facts answer every query without touching the solver.
  Dtd d2 = workloads::InfiniteDtd();
  auto compiled = CompileDtd(d2);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  SpecSession session(*compiled);
  auto fresh = CheckConsistency(d2, ConstraintSet());
  auto via_session = session.Check(ConstraintSet());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(via_session.ok());
  EXPECT_FALSE(via_session->consistent);
  EXPECT_EQ(fresh->explanation, via_session->explanation);
}

TEST(SpecSessionMemoTest, ConcurrentStressKeepsExactAccounting) {
  // 16 threads hammer one small sharded memo with colliding keys — hits,
  // misses, stores, duplicate stores, and evictions all in flight at once.
  // The memo's counters are exact by contract (atomic, never sampled), so
  // at quiescence the books must balance to the last operation, and every
  // payload ever returned must match the key it was stored under. TSan
  // runs this binary in CI, so the lock-free-read path is exercised under
  // the race detector, not just under load.
  constexpr size_t kThreads = 16;
  constexpr size_t kOpsPerThread = 400;
  constexpr size_t kKeySpace = 48;
  // Capacity far below the key space, few shards: every shard sees
  // insert-at-capacity evictions while other threads read it.
  SharedSigmaMemo memo(/*capacity=*/12, /*num_shards=*/4);

  std::vector<size_t> lookups(kThreads, 0);
  std::vector<size_t> observed_hits(kThreads, 0);
  std::vector<size_t> store_attempts(kThreads, 0);
  std::vector<std::string> payload_errors(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        // Deterministic per-thread walk over a shared key space; odd ops
        // store, even ops look up, so both paths interleave on every key.
        const size_t k = (t * 131 + op * 17) % kKeySpace;
        const std::string key = "sigma-" + std::to_string(k);
        if (op % 2 == 0) {
          ++lookups[t];
          std::shared_ptr<const ConsistencyResult> found =
              memo.LookupShared(key);
          if (found != nullptr) {
            ++observed_hits[t];
            if (found->explanation != key) {
              payload_errors[t] = "key " + key + " returned payload for " +
                                  found->explanation;
              return;
            }
          }
        } else {
          ++store_attempts[t];
          ConsistencyResult result;
          result.consistent = true;
          result.explanation = key;  // Payload-integrity marker.
          memo.Store(key, result);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  size_t total_lookups = 0, total_observed_hits = 0, total_stores = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(payload_errors[t].empty())
        << "thread " << t << ": " << payload_errors[t];
    total_lookups += lookups[t];
    total_observed_hits += observed_hits[t];
    total_stores += store_attempts[t];
  }
  const SharedSigmaMemo::Stats stats = memo.TotalStats();
  // Exact accounting: every lookup is a hit or a miss, every store attempt
  // an insert or a duplicate, and what the threads saw is what was counted.
  EXPECT_EQ(stats.hits + stats.misses, total_lookups);
  EXPECT_EQ(stats.hits, total_observed_hits);
  EXPECT_EQ(stats.stores + stats.duplicate_stores, total_stores);
  // Far more inserts than capacity → evictions must have happened, and
  // never more than there were inserts.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.evictions, stats.stores);
  // The colliding key space guarantees both hits and duplicate stores.
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.duplicate_stores, 0u);
}

TEST(SpecSessionMemoTest, CapacityZeroBypassesFromEveryWorker) {
  // The PR-4 contract, now under concurrency: a capacity-0 memo is a true
  // bypass — no shard locks, no hashing, no counters — no matter how many
  // workers hit it at once. Every lookup must miss, every store must be a
  // no-op, and the books must read all-zero afterwards (a nonzero counter
  // would mean the bypass path regressed into touching shard state).
  constexpr size_t kThreads = 16;
  SharedSigmaMemo memo(/*capacity=*/0);
  EXPECT_EQ(memo.capacity(), 0u);

  std::vector<int> saw_phantom(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t op = 0; op < 200; ++op) {
        const std::string key = "k" + std::to_string(op % 8);
        ConsistencyResult result;
        result.explanation = key;
        if (memo.Store(key, result) != 0) saw_phantom[t] = 1;
        if (memo.LookupShared(key) != nullptr) saw_phantom[t] = 1;
        ConsistencyResult out;
        if (memo.Lookup(key, &out)) saw_phantom[t] = 1;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(saw_phantom[t], 0) << "thread " << t;
  }
  const SharedSigmaMemo::Stats stats = memo.TotalStats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.stores, 0u);
  EXPECT_EQ(stats.duplicate_stores, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

}  // namespace
}  // namespace xicc
