// Tests for the invariant auditors (ilp/audit.h, core/audit.h) that the
// XICC_AUDIT build wires into solver checkpoints: clean artifacts audit
// empty, and each corruption a hook is meant to catch produces a violation
// naming it. The auditors are plain functions returning violation lists, so
// this suite runs in every build — XICC_AUDIT only decides whether the
// hooks abort on what these tests provoke deliberately.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/debug.h"
#include "base/rational.h"
#include "core/audit.h"
#include "core/spec_session.h"
#include "ilp/audit.h"
#include "ilp/linear_system.h"
#include "ilp/simplex.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

std::string Joined(const std::vector<std::string>& violations) {
  std::string out;
  for (const std::string& v : violations) out += v + "\n";
  return out;
}

/// True when some violation mentions `needle`.
bool Mentions(const std::vector<std::string>& violations,
              const std::string& needle) {
  for (const std::string& v : violations) {
    if (v.find(needle) != std::string::npos) return true;
  }
  return false;
}

// ------------------------------------------------------------- AuditTrail.

TEST(AuditTrailTest, DisciplinedUseIsClean) {
  LinearSystem system;
  VarId x = system.AddVariable("x");
  system.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(1));
  EXPECT_TRUE(AuditTrail(system).empty());

  system.PushCheckpoint();
  VarId y = system.AddVariable("y");
  system.AddConstraint(LinearExpr::Var(y), RelOp::kLe, BigInt(3));
  system.PushCheckpoint();
  system.AddConstraint(LinearExpr::Var(x), RelOp::kLe, BigInt(7));
  EXPECT_TRUE(AuditTrail(system).empty()) << Joined(AuditTrail(system));

  system.PopCheckpoint();
  EXPECT_TRUE(AuditTrail(system).empty());
  {
    TrailScope scope(&system);
    system.AddConstraint(LinearExpr::Var(y), RelOp::kEq, BigInt(2));
    EXPECT_TRUE(AuditTrail(system).empty());
  }
  system.PopCheckpoint();
  EXPECT_TRUE(AuditTrail(system).empty());
}

TEST(AuditTrailTest, RejectsNonMonotoneCheckpoints) {
  // LinearSystem's own API cannot produce these trails — which is exactly
  // the invariant; the raw overload lets us check the auditor would notice.
  const std::vector<LinearSystem::Checkpoint> shrinking = {{4, 4}, {2, 3}};
  auto violations = AuditTrail(shrinking, 10, 10);
  ASSERT_EQ(violations.size(), 1u) << Joined(violations);
  EXPECT_TRUE(Mentions(violations, "checkpoint 1 is not monotone"))
      << Joined(violations);
}

TEST(AuditTrailTest, RejectsCheckpointsBeyondTheLiveSystem) {
  const std::vector<LinearSystem::Checkpoint> overflowing = {{1, 1}, {3, 9}};
  auto violations = AuditTrail(overflowing, 3, 5);
  ASSERT_EQ(violations.size(), 1u) << Joined(violations);
  EXPECT_TRUE(Mentions(violations, "beyond the live system"))
      << Joined(violations);
}

// ----------------------------------------------------------- AuditTableau.

/// A small feasible system and its exported basis, the fixture every
/// corruption below starts from.
struct TableauFixture {
  LinearSystem system;
  LpTableau tableau;

  TableauFixture() {
    VarId x = system.AddVariable("x");
    VarId y = system.AddVariable("y");
    LinearExpr sum;
    sum.Add(x, BigInt(1)).Add(y, BigInt(1));
    system.AddConstraint(sum, RelOp::kLe, BigInt(5));
    system.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(1));
    LpResult lp = SolveLpFeasibility(system, &tableau);
    EXPECT_TRUE(lp.feasible);
  }

  /// Index of a row whose basis entry names a real column, for corruptions
  /// that need one.
  size_t BasicRow() const {
    for (size_t i = 0; i < tableau.basis.size(); ++i) {
      if (tableau.basis[i] >= 0) return i;
    }
    ADD_FAILURE() << "no basic row in the fixture tableau";
    return 0;
  }
};

TEST(AuditTableauTest, SolverExportIsClean) {
  TableauFixture fx;
  EXPECT_TRUE(AuditTableau(fx.system, fx.tableau).empty())
      << Joined(AuditTableau(fx.system, fx.tableau));
}

TEST(AuditTableauTest, RejectsNegativeRhs) {
  TableauFixture fx;
  fx.tableau.rhs[fx.BasicRow()] = Num(-1);
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau), "negative rhs"))
      << Joined(AuditTableau(fx.system, fx.tableau));
}

TEST(AuditTableauTest, RejectsBrokenUnitColumn) {
  TableauFixture fx;
  const size_t row = fx.BasicRow();
  const int col = fx.tableau.basis[row];
  fx.tableau.rows[row][col] = Num(2);
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau),
                       "not unit in its own row"))
      << Joined(AuditTableau(fx.system, fx.tableau));

  // And a stray entry for the basic column outside its own row.
  TableauFixture fy;
  const size_t other = (fy.BasicRow() + 1) % fy.tableau.rows.size();
  ASSERT_NE(other, fy.BasicRow());
  fy.tableau.rows[other][fy.tableau.basis[fy.BasicRow()]] =
      Num(1);
  EXPECT_TRUE(Mentions(AuditTableau(fy.system, fy.tableau),
                       "nonzero entry outside its row"))
      << Joined(AuditTableau(fy.system, fy.tableau));
}

TEST(AuditTableauTest, RejectsDuplicateAndOutOfRangeBasis) {
  TableauFixture fx;
  ASSERT_GE(fx.tableau.basis.size(), 2u);
  fx.tableau.basis[0] = fx.tableau.basis[1] = fx.tableau.basis[fx.BasicRow()];
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau), "is basic in rows"))
      << Joined(AuditTableau(fx.system, fx.tableau));

  TableauFixture fy;
  fy.tableau.basis[fy.BasicRow()] = 999;
  EXPECT_TRUE(Mentions(AuditTableau(fy.system, fy.tableau),
                       "names column 999"))
      << Joined(AuditTableau(fy.system, fy.tableau));
}

TEST(AuditTableauTest, RejectsNondegenerateArtificialRow) {
  TableauFixture fx;
  const size_t row = fx.BasicRow();
  fx.tableau.basis[row] = -1;  // Artificial still basic...
  fx.tableau.rhs[row] = Num(2);  // ...at a nonzero value.
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau),
                       "artificial-basic row"))
      << Joined(AuditTableau(fx.system, fx.tableau));
}

TEST(AuditTableauTest, RejectsBadColumnMetadata) {
  TableauFixture fx;
  for (LpColumnInfo& column : fx.tableau.columns) {
    if (column.kind == LpColumnInfo::Kind::kStructural) {
      column.index = 42;  // The system has two variables.
      break;
    }
  }
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau),
                       "names unknown variable 42"))
      << Joined(AuditTableau(fx.system, fx.tableau));

  TableauFixture fy;
  for (LpColumnInfo& column : fy.tableau.columns) {
    if (column.kind == LpColumnInfo::Kind::kSlack) {
      column.sub_sign = 0;
      break;
    }
  }
  EXPECT_TRUE(Mentions(AuditTableau(fy.system, fy.tableau),
                       "substitution sign 0"))
      << Joined(AuditTableau(fy.system, fy.tableau));
}

TEST(AuditTableauTest, RejectsShapeMismatches) {
  TableauFixture fx;
  fx.tableau.num_constraints = fx.system.NumConstraints() + 1;
  EXPECT_TRUE(Mentions(AuditTableau(fx.system, fx.tableau),
                       "but the system has only"))
      << Joined(AuditTableau(fx.system, fx.tableau));

  TableauFixture fy;
  fy.tableau.basis.pop_back();
  EXPECT_TRUE(
      Mentions(AuditTableau(fy.system, fy.tableau), "shape mismatch"))
      << Joined(AuditTableau(fy.system, fy.tableau));

  TableauFixture fz;
  fz.tableau.rows[0].pop_back();
  EXPECT_TRUE(Mentions(AuditTableau(fz.system, fz.tableau), "cells for"))
      << Joined(AuditTableau(fz.system, fz.tableau));
}

// ------------------------------------------------------- AuditCompiledDtd.

TEST(AuditCompiledDtdTest, DigestIsDeterministic) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto a = CompileDtd(dtd);
  auto b = CompileDtd(dtd);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE((*a)->audit_digest, 0u);
  EXPECT_EQ((*a)->audit_digest, (*b)->audit_digest);
  EXPECT_EQ(CompiledDtdDigest(**a), (*a)->audit_digest);
}

TEST(AuditCompiledDtdTest, CleanArtifactAuditsEmptyEvenAfterQueries) {
  Dtd dtd = workloads::CatalogDtd(2);
  auto compiled = CompileDtd(dtd);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EXPECT_TRUE(AuditCompiledDtd(**compiled).empty())
      << Joined(AuditCompiledDtd(**compiled));

  // Sessions answer through the shared artifact without writing to it.
  SpecSession session(*compiled);
  auto verdict = session.Check(workloads::AllKeysSigma(dtd));
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_TRUE(AuditCompiledDtd(**compiled).empty())
      << Joined(AuditCompiledDtd(**compiled));
}

TEST(AuditCompiledDtdTest, DetectsMutationOfTheSharedArtifact) {
  auto compiled = CompileDtd(workloads::CatalogDtd(2));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  // The artifact is shared read-only; writing through it is exactly the bug
  // the auditor exists to catch, so the test commits it deliberately.
  CompiledDtd& artifact = const_cast<CompiledDtd&>(**compiled);

  artifact.facts.has_valid_tree = !artifact.facts.has_valid_tree;
  auto violations = AuditCompiledDtd(artifact);
  ASSERT_EQ(violations.size(), 1u) << Joined(violations);
  EXPECT_TRUE(Mentions(violations, "compiled-DTD digest changed"))
      << Joined(violations);
  artifact.facts.has_valid_tree = !artifact.facts.has_valid_tree;
  EXPECT_TRUE(AuditCompiledDtd(artifact).empty());

  // An unstamped artifact (digest 0) is skipped rather than reported.
  const uint64_t stamp = artifact.audit_digest;
  artifact.audit_digest = 0;
  EXPECT_TRUE(AuditCompiledDtd(artifact).empty());
  artifact.audit_digest = stamp ^ 1;  // A wrong stamp is a violation.
  EXPECT_FALSE(AuditCompiledDtd(artifact).empty());
  artifact.audit_digest = stamp;
  EXPECT_TRUE(AuditCompiledDtd(artifact).empty());
}

TEST(AuditCompiledDtdTest, SkeletonTableauSatisfiesTheTableauAuditor) {
  // The compiled skeleton basis is itself a retained tableau; the same
  // invariants the solver hooks check must hold for it.
  auto compiled = CompileDtd(workloads::CatalogDtd(2));
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  if (!(*compiled)->skeleton_tableau_valid) {
    GTEST_SKIP() << "no skeleton tableau for this DTD";
  }
  auto violations = AuditTableau((*compiled)->skeleton.system,
                                 (*compiled)->skeleton_tableau);
  EXPECT_TRUE(violations.empty()) << Joined(violations);
}

// The audit hooks themselves: XICC_DCHECK_AUDIT must be compiled out of
// normal builds (this expression would abort under XICC_AUDIT if evaluated
// with a violation, and must not even evaluate its argument otherwise).
TEST(AuditHooksTest, DcheckAuditMatchesBuildMode) {
#if XICC_AUDIT_ENABLED
  LinearSystem clean;
  XICC_DCHECK_AUDIT(AuditTrail(clean));  // Empty violations: no abort.
  SUCCEED() << "XICC_AUDIT build: hooks are live";
#else
  bool evaluated = false;
  XICC_DCHECK_AUDIT([&evaluated]() -> std::vector<std::string> {
    evaluated = true;
    return {"must never run"};
  }());
  EXPECT_FALSE(evaluated) << "XICC_DCHECK_AUDIT evaluated its argument in a "
                             "non-audit build";
#endif
}

}  // namespace
}  // namespace xicc
