// End-to-end tests of the XmlSpec facade: text in, verdicts out.

#include <gtest/gtest.h>

#include "core/spec.h"
#include "xml/parser.h"

namespace xicc {
namespace {

constexpr const char* kTeacherDtd = R"(
  <!ELEMENT teachers (teacher+)>
  <!ELEMENT teacher (teach, research)>
  <!ELEMENT teach (subject, subject)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT research (#PCDATA)>
  <!ATTLIST teacher name CDATA #REQUIRED>
  <!ATTLIST subject taught_by CDATA #REQUIRED>
)";

constexpr const char* kTeacherSigma = R"(
  key teacher(name)
  key subject(taught_by)
  fk subject(taught_by) => teacher(name)
)";

TEST(SpecTest, ParseAndCrossCheck) {
  auto spec = XmlSpec::Parse(kTeacherDtd, kTeacherSigma);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_EQ(spec->dtd.root(), "teachers");
  EXPECT_EQ(spec->constraints.size(), 3u);
}

TEST(SpecTest, ParseRejectsMismatchedConstraint) {
  auto spec = XmlSpec::Parse(kTeacherDtd, "key teacher(salary)\n");
  ASSERT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument);
}

TEST(SpecTest, FlagshipInconsistency) {
  auto spec = XmlSpec::Parse(kTeacherDtd, kTeacherSigma);
  ASSERT_TRUE(spec.ok());
  auto result = spec->CheckConsistent();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result->consistent);
}

TEST(SpecTest, ConsistentVariantProducesWitness) {
  auto spec = XmlSpec::Parse(kTeacherDtd,
                             "key teacher(name)\n"
                             "inclusion subject(taught_by) <= teacher(name)\n");
  ASSERT_TRUE(spec.ok());
  auto result = spec->CheckConsistent();
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  // The witness itself passes dynamic validation.
  auto report = spec->CheckDocument(*result->witness);
  EXPECT_TRUE(report.conforms) << report.details;
}

TEST(SpecTest, ImpliesFromText) {
  auto spec = XmlSpec::Parse(kTeacherDtd,
                             "key teacher(name)\n"
                             "inclusion subject(taught_by) <= teacher(name)\n");
  ASSERT_TRUE(spec.ok());
  // Self-implication.
  auto self = spec->Implies("key teacher(name)");
  ASSERT_TRUE(self.ok()) << self.status();
  EXPECT_TRUE(self->implied);
  // Not implied: taught_by is free to repeat.
  auto other = spec->Implies("key subject(taught_by)");
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_FALSE(other->implied);
  // Parse errors surface.
  EXPECT_FALSE(spec->Implies("nonsense").ok());
}

TEST(SpecTest, CheckDocumentAgainstBothLayers) {
  auto spec = XmlSpec::Parse(kTeacherDtd, kTeacherSigma);
  ASSERT_TRUE(spec.ok());

  // The Figure 1 tree: valid for the DTD, violates the subject key.
  auto tree = ParseXml(R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>Web DB</research>
      </teacher>
    </teachers>)");
  ASSERT_TRUE(tree.ok());
  auto report = spec->CheckDocument(*tree);
  EXPECT_FALSE(report.conforms);
  EXPECT_NE(report.details.find("constraint violations"), std::string::npos);
  EXPECT_EQ(report.details.find("DTD violations"), std::string::npos);

  // A structurally broken document reports DTD violations.
  auto broken = ParseXml("<teachers><teacher name=\"X\"/></teachers>");
  ASSERT_TRUE(broken.ok());
  auto report2 = spec->CheckDocument(*broken);
  EXPECT_FALSE(report2.conforms);
  EXPECT_NE(report2.details.find("DTD violations"), std::string::npos);
}

TEST(SpecTest, MultiAttributeSpecsCanStillValidateDocuments) {
  // The undecidable class is still fine for *dynamic* checking.
  auto spec = XmlSpec::Parse(R"(
    <!ELEMENT school (course*, student*, enroll*)>
    <!ELEMENT course (subject)>
    <!ELEMENT student (name)>
    <!ELEMENT enroll EMPTY>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT subject (#PCDATA)>
    <!ATTLIST course dept CDATA #REQUIRED course_no CDATA #REQUIRED>
    <!ATTLIST student student_id CDATA #REQUIRED>
    <!ATTLIST enroll student_id CDATA #REQUIRED
                     dept CDATA #REQUIRED course_no CDATA #REQUIRED>
  )", R"(
    key student(student_id)
    key course(dept, course_no)
    fk enroll(student_id) => student(student_id)
    fk enroll(dept, course_no) => course(dept, course_no)
  )");
  ASSERT_TRUE(spec.ok()) << spec.status();

  // Static analysis refuses (Theorem 3.1)…
  auto consistency = spec->CheckConsistent();
  ASSERT_FALSE(consistency.ok());
  EXPECT_EQ(consistency.status().code(), StatusCode::kUndecidableClass);

  // …dynamic validation works.
  auto good = ParseXml(R"(
    <school>
      <course dept="CS" course_no="1"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s1" dept="CS" course_no="1"/>
    </school>)");
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(spec->CheckDocument(*good).conforms);

  auto dangling = ParseXml(R"(
    <school>
      <course dept="CS" course_no="1"><subject>DB</subject></course>
      <student student_id="s1"><name>Kim</name></student>
      <enroll student_id="s2" dept="CS" course_no="1"/>
    </school>)");
  ASSERT_TRUE(dangling.ok());
  EXPECT_FALSE(spec->CheckDocument(*dangling).conforms);
}

}  // namespace
}  // namespace xicc
