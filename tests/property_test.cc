// Cross-cutting property sweeps: the whole pipeline is self-checking —
// every "consistent" verdict must come with a witness that independently
// passes DTD validation and constraint evaluation, and the Theorem 4.7
// gadget must agree with a brute-force LIP oracle.

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/implication.h"
#include "dtd/validator.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

class RandomSpecTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSpecTest, WitnessesAlwaysCheckOut) {
  const uint64_t seed = GetParam();
  Dtd dtd = workloads::RandomDtd(seed, 10, 2);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed * 31 + 7, 3, 3);
  ConsistencyOptions options;
  // verify_witness is on by default: CheckConsistency internally
  // re-validates. We additionally re-check here with fresh calls.
  auto result = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(result.ok()) << result.status() << " seed=" << seed;
  if (result->consistent && result->witness.has_value()) {
    EXPECT_TRUE(ValidateXml(*result->witness, dtd).valid) << "seed " << seed;
    EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied)
        << "seed " << seed;
  }
}

// The big-M linearization carries Papadimitriou-sized coefficients, so the
// strategy-agreement sweep runs on smaller instances and fewer seeds than
// the other properties.
class StrategyAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StrategyAgreementTest, StrategiesAgree) {
  const uint64_t seed = GetParam();
  Dtd dtd = workloads::RandomDtd(seed, 5, 1);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed * 17 + 3, 1, 1);
  ConsistencyOptions split;
  split.build_witness = false;
  ConsistencyOptions big_m = split;
  big_m.strategy = SolveStrategy::kBigM;
  auto a = CheckConsistency(dtd, sigma, split);
  auto b = CheckConsistency(dtd, sigma, big_m);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->consistent, b->consistent) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyAgreementTest,
                         ::testing::Range(uint64_t{1}, uint64_t{7}));

TEST_P(RandomSpecTest, MonotonicityUnderConstraintRemoval) {
  // Removing constraints can only keep or gain consistency.
  const uint64_t seed = GetParam();
  Dtd dtd = workloads::RandomDtd(seed, 9, 2);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed * 13 + 1, 3, 3);
  ConsistencyOptions options;
  options.build_witness = false;
  auto full = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(full.ok()) << full.status();
  if (full->consistent) {
    // Any subset must be consistent too.
    ConstraintSet subset;
    const auto& all = sigma.constraints();
    for (size_t i = 0; i < all.size(); i += 2) subset.Add(all[i]);
    auto sub = CheckConsistency(dtd, subset, options);
    ASSERT_TRUE(sub.ok());
    EXPECT_TRUE(sub->consistent) << "seed " << seed;
  }
}

TEST_P(RandomSpecTest, ImpliedConstraintsAreSound) {
  // If (D,Σ) ⊢ φ, then adding φ to Σ must not change consistency.
  const uint64_t seed = GetParam();
  Dtd dtd = workloads::RandomDtd(seed, 8, 2);
  ConstraintSet sigma = workloads::RandomUnarySigma(dtd, seed * 37 + 5, 2, 1);
  auto pairs = dtd.AllAttributePairs();
  if (pairs.empty()) return;
  const auto& [type, attr] = pairs[seed % pairs.size()];
  Constraint phi = Constraint::Key(type, {attr});
  ConsistencyOptions options;
  options.build_witness = false;
  auto implication = CheckImplication(dtd, sigma, phi, options);
  ASSERT_TRUE(implication.ok()) << implication.status();
  auto before = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(before.ok());
  ConstraintSet extended = sigma;
  extended.Add(phi);
  auto after = CheckConsistency(dtd, extended, options);
  ASSERT_TRUE(after.ok());
  if (implication->implied) {
    EXPECT_EQ(before->consistent, after->consistent) << "seed " << seed;
  }
  // Soundness of "not implied": the counterexample (when built) violates φ
  // while satisfying Σ — CheckImplication already verifies this internally
  // with verify_witness; exercise the verified path on a few seeds.
  if (!implication->implied && before->consistent) {
    ConsistencyOptions with_witness;
    auto again = CheckImplication(dtd, sigma, phi, with_witness);
    ASSERT_TRUE(again.ok()) << again.status();
    if (again->counterexample.has_value()) {
      EXPECT_FALSE(Evaluate(*again->counterexample, phi).satisfied);
      EXPECT_TRUE(Evaluate(*again->counterexample, sigma).satisfied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSpecTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

class LipOracleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LipOracleTest, GadgetAgreesWithBruteForce) {
  const uint64_t seed = GetParam();
  workloads::BinaryLipInstance instance =
      workloads::RandomLip(seed, /*rows=*/3, /*cols=*/4, /*ones_per_row=*/2);
  bool expected = workloads::LipHasBinarySolution(instance);
  workloads::LipEncoding enc = workloads::EncodeLipAsConsistency(instance);
  ConsistencyOptions options;
  auto result = CheckConsistency(enc.dtd, enc.sigma, options);
  ASSERT_TRUE(result.ok()) << result.status() << " seed=" << seed;
  EXPECT_EQ(result->consistent, expected) << "seed " << seed;
  if (result->consistent) {
    ASSERT_TRUE(result->witness.has_value());
    EXPECT_TRUE(ValidateXml(*result->witness, enc.dtd).valid);
    EXPECT_TRUE(Evaluate(*result->witness, enc.sigma).satisfied);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LipOracleTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace xicc
