#include <gtest/gtest.h>

#include <random>

#include "ilp/linear_system.h"
#include "ilp/simplex.h"
#include "ilp/solver.h"

namespace xicc {
namespace {

// ------------------------------------------------------------ LinearSystem.

TEST(LinearSystemTest, BuildAndRender) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(-1));
  sys.AddConstraint(expr, RelOp::kGe, BigInt(3));
  EXPECT_EQ(sys.NumVariables(), 2u);
  EXPECT_EQ(sys.NumConstraints(), 1u);
  EXPECT_NE(sys.ToString().find("2*x"), std::string::npos);
  EXPECT_EQ(sys.MaxAbsValue(), BigInt(3));
}

TEST(LinearSystemTest, ExprMergesAndDropsZeroTerms) {
  LinearExpr expr;
  expr.Add(0, BigInt(2));
  expr.Add(0, BigInt(-2));
  EXPECT_TRUE(expr.terms().empty());
  expr.Add(1, BigInt(0));
  EXPECT_TRUE(expr.terms().empty());
}

TEST(LinearSystemTest, AddEqFoldsConstants) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  LinearExpr lhs = LinearExpr::Var(x);
  lhs.AddConstant(BigInt(5));
  LinearExpr rhs(BigInt(12));
  sys.AddEq(lhs, rhs);  // x + 5 == 12  →  x == 7.
  const LinearConstraint& c = sys.constraints()[0];
  EXPECT_EQ(c.op, RelOp::kEq);
  EXPECT_EQ(c.rhs, BigInt(7));
}

// ----------------------------------------------------------------- Simplex.

TEST(SimplexTest, TrivialFeasible) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(3));
  LpResult lp = SolveLpFeasibility(sys);
  ASSERT_TRUE(lp.feasible);
  EXPECT_GE(lp.values[x], Num(3));
}

TEST(SimplexTest, InfeasibleBounds) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(5));
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kLe, BigInt(4));
  EXPECT_FALSE(SolveLpFeasibility(sys).feasible);
}

TEST(SimplexTest, NegativityImpliedInfeasible) {
  // Nonnegative variables: x + y <= -1 has no solution.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(1)).Add(y, BigInt(1));
  sys.AddConstraint(expr, RelOp::kLe, BigInt(-1));
  EXPECT_FALSE(SolveLpFeasibility(sys).feasible);
}

TEST(SimplexTest, EqualitySystem) {
  // x + y == 10, x - y == 4 → x = 7, y = 3.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr sum;
  sum.Add(x, BigInt(1)).Add(y, BigInt(1));
  sys.AddConstraint(sum, RelOp::kEq, BigInt(10));
  LinearExpr diff;
  diff.Add(x, BigInt(1)).Add(y, BigInt(-1));
  sys.AddConstraint(diff, RelOp::kEq, BigInt(4));
  LpResult lp = SolveLpFeasibility(sys);
  ASSERT_TRUE(lp.feasible);
  EXPECT_EQ(lp.values[x], Num(7));
  EXPECT_EQ(lp.values[y], Num(3));
}

TEST(SimplexTest, FractionalVertex) {
  // 2x == 5 → x = 5/2 (rational, exact).
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  LinearExpr expr;
  expr.Add(x, BigInt(2));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(5));
  LpResult lp = SolveLpFeasibility(sys);
  ASSERT_TRUE(lp.feasible);
  EXPECT_EQ(lp.values[x], Num(BigInt(5), BigInt(2)));
}

TEST(SimplexTest, SolutionSatisfiesAllConstraints) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    LinearSystem sys;
    const int n = 4;
    for (int i = 0; i < n; ++i) sys.AddVariable("x" + std::to_string(i));
    std::uniform_int_distribution<int> coeff(-3, 3);
    std::uniform_int_distribution<int> rhs(0, 10);
    for (int c = 0; c < 5; ++c) {
      LinearExpr expr;
      for (int i = 0; i < n; ++i) expr.Add(i, BigInt(coeff(rng)));
      sys.AddConstraint(expr, c % 2 == 0 ? RelOp::kLe : RelOp::kGe,
                        BigInt(rhs(rng) * (c % 2 == 0 ? 1 : -1)));
    }
    LpResult lp = SolveLpFeasibility(sys);
    if (!lp.feasible) continue;
    for (const LinearConstraint& c : sys.constraints()) {
      Num lhs;
      for (const auto& [var, coef] : c.coeffs) {
        lhs += coef * lp.values[var];
      }
      const Num& bound = c.rhs;
      switch (c.op) {
        case RelOp::kLe:
          EXPECT_LE(lhs, bound);
          break;
        case RelOp::kGe:
          EXPECT_GE(lhs, bound);
          break;
        case RelOp::kEq:
          EXPECT_EQ(lhs, bound);
          break;
      }
    }
  }
}

// ------------------------------------------------------------------ Solver.

TEST(IlpTest, IntegralVertexDirect) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr sum;
  sum.Add(x, BigInt(1)).Add(y, BigInt(1));
  sys.AddConstraint(sum, RelOp::kEq, BigInt(10));
  auto solution = SolveIlp(sys);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution->feasible);
  EXPECT_EQ(solution->values[x] + solution->values[y], BigInt(10));
}

TEST(IlpTest, BranchingRequired) {
  // 2x == 5 is LP-feasible but integer-infeasible.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  LinearExpr expr;
  expr.Add(x, BigInt(2));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(5));
  auto solution = SolveIlp(sys);
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution->feasible);
}

TEST(IlpTest, BranchingFindsLatticePoint) {
  // 2x + 3y == 12 with x,y ≥ 0 integer: (0,4), (3,2), (6,0).
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(3));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(12));
  // Forbid the all-easy corner to force some branching.
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(1));
  auto solution = SolveIlp(sys);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution->feasible);
  BigInt value = solution->values[x] * BigInt(2) + solution->values[y] * BigInt(3);
  EXPECT_EQ(value, BigInt(12));
  EXPECT_GE(solution->values[x], BigInt(1));
}

TEST(IlpTest, InfeasibleParity) {
  // 2x == 2y + 1: no integer solution (parity).
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(-2));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(1));
  auto solution = SolveIlp(sys);
  ASSERT_TRUE(solution.ok());
  EXPECT_FALSE(solution->feasible);
}

TEST(IlpTest, GomoryCutProvesParityInfeasibilityFast) {
  // 2x == 2y + 1: with cuts enabled the infeasibility certificate comes out
  // of the very first node instead of a branching climb.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(-2));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(1));
  IlpOptions options;
  options.max_nodes = 4;  // Tiny budget: cuts must carry the proof.
  auto solution = SolveIlp(sys, options);
  ASSERT_TRUE(solution.ok()) << solution.status();
  EXPECT_FALSE(solution->feasible);
  EXPECT_GE(solution->cuts_added, 1u);
}

TEST(IlpTest, NodeBudgetRespectedWithoutCuts) {
  // Same parity system with cuts disabled: branching alone climbs toward
  // the variable bound and the node budget must stop it.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(-2));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(1));
  IlpOptions options;
  options.max_nodes = 16;
  options.max_cut_rounds = 0;
  auto solution = SolveIlp(sys, options);
  EXPECT_FALSE(solution.ok());
  EXPECT_EQ(solution.status().code(), StatusCode::kResourceExhausted);
}

TEST(IlpTest, PapadimitriouBound) {
  EXPECT_EQ(PapadimitriouBound(0, 5, BigInt(10)), BigInt(1));
  // n(ma)^{2m+1} with n=2, m=1, a=3: 2*(3)^3 = 54.
  EXPECT_EQ(PapadimitriouBound(1, 2, BigInt(3)), BigInt(54));
  // Grows fast but stays exact.
  BigInt big = PapadimitriouBound(10, 10, BigInt(100));
  EXPECT_GT(big.BitLength(), 100u);
}

TEST(IlpTest, LargeCoefficientsExact) {
  // x == 10^30, y == x / 2 over integers: solvable exactly with bignums.
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  BigInt huge = BigInt::Pow(BigInt(10), 30);
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kEq, huge);
  LinearExpr expr;
  expr.Add(y, BigInt(2)).Add(x, BigInt(-1));
  sys.AddConstraint(expr, RelOp::kEq, BigInt(0));
  auto solution = SolveIlp(sys);
  ASSERT_TRUE(solution.ok());
  ASSERT_TRUE(solution->feasible);
  EXPECT_EQ(solution->values[x], huge);
  EXPECT_EQ(solution->values[y], huge / BigInt(2));
}

class IlpPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IlpPropertyTest, SolutionsSatisfyTheSystem) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> coeff(-2, 3);
  std::uniform_int_distribution<int> rhs_dist(-5, 15);
  for (int trial = 0; trial < 15; ++trial) {
    LinearSystem sys;
    const int n = 3;
    for (int i = 0; i < n; ++i) sys.AddVariable("x" + std::to_string(i));
    for (int c = 0; c < 4; ++c) {
      LinearExpr expr;
      for (int i = 0; i < n; ++i) expr.Add(i, BigInt(coeff(rng)));
      RelOp op = c % 3 == 0 ? RelOp::kEq : (c % 3 == 1 ? RelOp::kLe : RelOp::kGe);
      sys.AddConstraint(expr, op, BigInt(rhs_dist(rng)));
    }
    auto solution = SolveIlp(sys);
    if (!solution.ok() || !solution->feasible) continue;
    for (const LinearConstraint& c : sys.constraints()) {
      BigInt lhs(0);
      for (const auto& [var, coef] : c.coeffs) {
        lhs += coef.num() * solution->values[var];
      }
      switch (c.op) {
        case RelOp::kLe:
          EXPECT_LE(lhs, c.rhs);
          break;
        case RelOp::kGe:
          EXPECT_GE(lhs, c.rhs);
          break;
        case RelOp::kEq:
          EXPECT_EQ(lhs, c.rhs);
          break;
      }
    }
    for (const BigInt& v : solution->values) {
      EXPECT_GE(v, BigInt(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpPropertyTest,
                         ::testing::Values(11u, 23u, 47u, 101u));


// ------------------------------------------------- trail checkpoints + warm.

TEST(LinearSystemTest, PushPopCheckpointRestoresExactly) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  VarId y = sys.AddVariable("y");
  LinearExpr expr;
  expr.Add(x, BigInt(2)).Add(y, BigInt(-1));
  sys.AddConstraint(expr, RelOp::kGe, BigInt(3));
  const size_t vars = sys.NumVariables();
  const size_t rows = sys.NumConstraints();
  const BigInt max_abs = sys.MaxAbsValue();
  const std::string rendered = sys.ToString();

  sys.PushCheckpoint();
  EXPECT_EQ(sys.CheckpointDepth(), 1u);
  VarId z = sys.AddVariable("z");
  sys.AddConstraint(LinearExpr::Var(z), RelOp::kLe, BigInt(1000));
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kEq, BigInt(7));
  EXPECT_EQ(sys.NumVariables(), vars + 1);
  EXPECT_EQ(sys.NumConstraints(), rows + 2);
  EXPECT_EQ(sys.MaxAbsValue(), BigInt(1000));

  // Nested checkpoint: popped independently.
  sys.PushCheckpoint();
  sys.AddConstraint(LinearExpr::Var(y), RelOp::kGe, BigInt(2));
  EXPECT_EQ(sys.NumConstraints(), rows + 3);
  sys.PopCheckpoint();
  EXPECT_EQ(sys.NumConstraints(), rows + 2);

  sys.PopCheckpoint();
  EXPECT_EQ(sys.CheckpointDepth(), 0u);
  EXPECT_EQ(sys.NumVariables(), vars);
  EXPECT_EQ(sys.NumConstraints(), rows);
  EXPECT_EQ(sys.MaxAbsValue(), max_abs);
  EXPECT_EQ(sys.ToString(), rendered);
}

TEST(SimplexTest, DualReSolveMatchesColdOnAppendedRows) {
  // Parent: a feasible 2-var system; child: append rows of every RelOp and
  // check the warm verdict and solution against a cold solve from scratch.
  for (int variant = 0; variant < 3; ++variant) {
    LinearSystem sys;
    VarId x = sys.AddVariable("x");
    VarId y = sys.AddVariable("y");
    LinearExpr sum;
    sum.Add(x, BigInt(1)).Add(y, BigInt(1));
    sys.AddConstraint(sum, RelOp::kGe, BigInt(4));
    sys.AddConstraint(LinearExpr::Var(x), RelOp::kLe, BigInt(10));

    LpTableau tab;
    LpResult parent = SolveLpFeasibility(sys, &tab);
    ASSERT_TRUE(parent.feasible);

    LinearExpr diff;
    diff.Add(x, BigInt(1)).Add(y, BigInt(-1));
    RelOp op = variant == 0 ? RelOp::kLe : (variant == 1 ? RelOp::kGe : RelOp::kEq);
    sys.AddConstraint(diff, op, BigInt(2));

    WarmResult warm = ReSolveLpFeasibilityDual(sys, &tab);
    LpResult cold = SolveLpFeasibility(sys);
    ASSERT_EQ(warm.status, WarmStatus::kOk) << "variant " << variant;
    EXPECT_EQ(warm.lp.feasible, cold.feasible) << "variant " << variant;
    if (warm.lp.feasible) {
      // The warm vertex satisfies every row.
      for (const LinearConstraint& c : sys.constraints()) {
        Num lhs;
        for (const auto& [var, coef] : c.coeffs) {
          lhs += coef * warm.lp.values[var];
        }
        const Num& rhs = c.rhs;
        switch (c.op) {
          case RelOp::kLe:
            EXPECT_TRUE(lhs <= rhs);
            break;
          case RelOp::kGe:
            EXPECT_TRUE(lhs >= rhs);
            break;
          case RelOp::kEq:
            EXPECT_TRUE(lhs == rhs);
            break;
        }
      }
    }
  }
}

TEST(SimplexTest, DualReSolveCertifiesInfeasibility) {
  LinearSystem sys;
  VarId x = sys.AddVariable("x");
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kLe, BigInt(5));
  LpTableau tab;
  ASSERT_TRUE(SolveLpFeasibility(sys, &tab).feasible);
  sys.AddConstraint(LinearExpr::Var(x), RelOp::kGe, BigInt(7));
  WarmResult warm = ReSolveLpFeasibilityDual(sys, &tab);
  ASSERT_EQ(warm.status, WarmStatus::kOk);
  EXPECT_FALSE(warm.lp.feasible);
}

// Warm-started search must agree with cold search on verdicts, and any
// solution it returns must satisfy the system — across a seeded random
// workload (same generator shape as SolutionsSatisfyTheSystem, denser).
class WarmColdEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmColdEquivalenceTest, VerdictsIdenticalSolutionsChecked) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> coeff(-2, 3);
  std::uniform_int_distribution<int> rhs_dist(-5, 15);
  std::uniform_int_distribution<int> rows_dist(3, 5);
  for (int trial = 0; trial < 20; ++trial) {
    LinearSystem sys;
    const int n = 3;
    for (int i = 0; i < n; ++i) sys.AddVariable("x" + std::to_string(i));
    const int rows = rows_dist(rng);
    for (int c = 0; c < rows; ++c) {
      LinearExpr expr;
      for (int i = 0; i < n; ++i) expr.Add(i, BigInt(coeff(rng)));
      RelOp op =
          c % 3 == 0 ? RelOp::kEq : (c % 3 == 1 ? RelOp::kLe : RelOp::kGe);
      sys.AddConstraint(expr, op, BigInt(rhs_dist(rng)));
    }

    IlpOptions warm_opts;
    warm_opts.warm_start = true;
    warm_opts.max_nodes = 5000;
    IlpOptions cold_opts;
    cold_opts.warm_start = false;
    cold_opts.max_nodes = 5000;
    auto warm = SolveIlp(sys, warm_opts);
    auto cold = SolveIlp(sys, cold_opts);
    // Warm and cold LP solves may surface different optimal vertices, so the
    // search trees (and a budget exhaustion) can legitimately differ; the
    // decided verdicts may not.
    if (!warm.ok() || !cold.ok()) continue;
    EXPECT_EQ(warm->feasible, cold->feasible) << "trial " << trial;
    EXPECT_EQ(cold->warm_starts, 0u);
    for (const IlpSolution* solution : {&*warm, &*cold}) {
      if (!solution->feasible) continue;
      for (const LinearConstraint& c : sys.constraints()) {
        BigInt lhs(0);
        for (const auto& [var, coef] : c.coeffs) {
          lhs += coef.num() * solution->values[var];
        }
        switch (c.op) {
          case RelOp::kLe:
            EXPECT_LE(lhs, c.rhs);
            break;
          case RelOp::kGe:
            EXPECT_GE(lhs, c.rhs);
            break;
          case RelOp::kEq:
            EXPECT_EQ(lhs, c.rhs);
            break;
        }
      }
      for (const BigInt& v : solution->values) EXPECT_GE(v, BigInt(0));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmColdEquivalenceTest,
                         ::testing::Values(5u, 19u, 71u, 131u, 257u));

}  // namespace
}  // namespace xicc
