// The chaos soak: many concurrent clients drive the daemon with a random
// mix of sessions, checks under mixed deadlines, batches, malformed and
// truncated frames, abrupt disconnects, and overload — while (in the
// XICC_FAULTS build) the net fault sites inject accept/read/write/
// frame-decode failures underneath. The invariant under all of it, from
// DESIGN.md §13:
//
//   Every request ends in exactly one of
//     result | UNAVAILABLE | DEADLINE_EXCEEDED | CANCELLED | INVALID_ARGUMENT
//   (never INTERNAL, never a hang, never a dropped connection without a
//   transport-visible end), and after a drain the server's session and
//   in-flight accounting returns to baseline.
//
// Randomness is deterministic (splitmix64 per client, fixed seeds) so a
// failing soak replays. The CI daemon-soak job runs this same binary under
// ASan with XICC_FAULTS seeds 1–4 and XICC_FAULT_NET_EVERY set, which the
// fault layer picks up from the environment on first use.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "base/faults.h"
#include "base/worksteal.h"
#include "daemon_harness.h"
#include "net/client.h"
#include "net/server.h"

namespace xicc {
namespace net {
namespace {

uint64_t Mix(uint64_t* state) {
  *state += 0x9e3779b97f4a7c15ull;
  uint64_t z = *state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

struct SoakTotals {
  std::atomic<uint64_t> calls{0};           // protocol responses received
  std::atomic<uint64_t> transport_ends{0};  // calls ended by the transport
  std::atomic<uint64_t> oks{0};
  std::atomic<uint64_t> unavailable{0};
  std::atomic<uint64_t> deadline{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> invalid{0};
  std::atomic<uint64_t> sessions_opened{0};
};

/// One client's script: `ops` random operations against the daemon.
/// Returns "" on success or the first invariant violation, so the main
/// thread can FAIL with it (gtest assertions stay on the main thread).
std::string RunClientScript(uint16_t port, uint64_t seed, int ops,
                            const TextSpec& easy, const TextSpec& hard,
                            SoakTotals* totals) {
  uint64_t rng = seed;
  ClientOptions copts;
  copts.port = port;
  copts.io_timeout_ms = 10'000;
  copts.connect_timeout_ms = 2'000;

  auto connect = [&]() -> std::unique_ptr<Client> {
    // Accept faults and the connection cap shed at the door; ride them out.
    for (int attempt = 0; attempt < 20; ++attempt) {
      auto c = Client::Connect(copts);
      if (c.ok()) return std::make_unique<Client>(std::move(*c));
      SleepFor(2 + static_cast<int64_t>(Mix(&rng) % 8), nullptr);
    }
    return nullptr;
  };

  std::unique_ptr<Client> client = connect();
  if (client == nullptr) return "could not connect at all";
  std::vector<uint64_t> sessions;
  int64_t next_id = 1;

  // Classify one finished call against the closed outcome set.
  auto absorb = [&](const Result<JsonValue>& resp) -> std::string {
    if (!resp.ok()) {
      // Transport end: reset/EOF/short-write/io-timeout/injected fault.
      // kUnavailable is the client library's class for all of them;
      // kCancelled/kDeadlineExceeded can come from retry policies.
      totals->transport_ends.fetch_add(1);
      const StatusCode code = resp.status().code();
      if (code != StatusCode::kUnavailable &&
          code != StatusCode::kCancelled &&
          code != StatusCode::kDeadlineExceeded) {
        return "transport end with unexpected status: " +
               std::string(StatusCodeName(code));
      }
      // The connection is typically dead now; reconnect for the next op.
      if (!client->connected()) {
        auto fresh = connect();
        if (fresh != nullptr) client = std::move(fresh);
      }
      return "";
    }
    totals->calls.fetch_add(1);
    if (!IsClosedOutcome(*resp)) {
      return "outcome outside the closed set: " + resp->Dump();
    }
    if (resp->GetBool("ok", false)) {
      totals->oks.fetch_add(1);
    } else {
      const std::string err = resp->GetString("error", "");
      if (err == "UNAVAILABLE") totals->unavailable.fetch_add(1);
      if (err == "DEADLINE_EXCEEDED") totals->deadline.fetch_add(1);
      if (err == "CANCELLED") totals->cancelled.fetch_add(1);
      if (err == "INVALID_ARGUMENT") totals->invalid.fetch_add(1);
    }
    return "";
  };

  for (int op = 0; op < ops; ++op) {
    const uint64_t dice = Mix(&rng) % 100;
    std::string violation;
    if (dice < 4) {
      // Malformed frame: must answer INVALID_ARGUMENT, never drop.
      violation = absorb(client->CallRaw("{\"verb\":\"chec"));
    } else if (dice < 7) {
      // Oversize frame (server cap is 8 KiB in this soak).
      violation = absorb(client->CallRaw(std::string(10'000, 'z')));
    } else if (dice < 11) {
      // Truncated frame then half-close: the "client gave up mid-request"
      // shape. No response is owed; reconnect after.
      client->ShutdownWrite();
      client->Disconnect();
      auto fresh = connect();
      if (fresh != nullptr) client = std::move(fresh);
    } else if (dice < 15) {
      // Abrupt disconnect, possibly with a request in flight (sent but
      // never read) — exercises disconnect cancellation server-side.
      client->Disconnect();
      auto fresh = connect();
      if (fresh != nullptr) client = std::move(fresh);
    } else if (dice < 38) {
      // Open a session; ride out shedding with the retry contract.
      RetryPolicy policy;
      policy.max_attempts = 6;
      policy.initial_backoff_ms = 2;
      policy.max_backoff_ms = 40;
      policy.jitter_seed = Mix(&rng);
      auto resp = client->CallWithRetry(OpenReq(next_id++, easy), policy);
      violation = absorb(resp);
      if (resp.ok() && resp->GetBool("ok", false)) {
        sessions.push_back(
            static_cast<uint64_t>(resp->GetInt("session", 0)));
        totals->sessions_opened.fetch_add(1);
        if (sessions.size() > 8) sessions.erase(sessions.begin());
      }
    } else if (dice < 60 && !sessions.empty()) {
      // Session check; 1/3 of them against the hard gadget with a
      // millisecond deadline (DEADLINE_EXCEEDED + fault-streak fodder).
      const uint64_t sid = sessions[Mix(&rng) % sessions.size()];
      const bool make_it_hurt = Mix(&rng) % 3 == 0;
      // Hard sigma names elements of the hard DTD — against an easy-DTD
      // session that is INVALID_ARGUMENT, which is also a soak outcome.
      violation = absorb(client->Call(
          CheckReq(next_id++, sid, make_it_hurt ? hard.sigma : easy.sigma,
                   make_it_hurt ? 1 + static_cast<int64_t>(Mix(&rng) % 10)
                                : 0)));
    } else if (dice < 70 && !sessions.empty()) {
      const uint64_t sid = sessions[Mix(&rng) % sessions.size()];
      JsonValue req = Req(Mix(&rng) % 2 == 0 ? "commit" : "rollback",
                          next_id++);
      req.Set("session", JsonValue::Int(static_cast<int64_t>(sid)));
      if (req.GetString("verb", "") == "commit") {
        req.Set("sigma", JsonValue::Str(easy.sigma));
      }
      violation = absorb(client->Call(req));
    } else if (dice < 80) {
      // One-shot check under a mixed deadline.
      const int64_t timeout =
          Mix(&rng) % 4 == 0 ? 1 + static_cast<int64_t>(Mix(&rng) % 5) : 0;
      violation = absorb(client->Call(OneShotCheckReq(
          next_id++, timeout > 0 ? hard : easy, timeout)));
    } else if (dice < 88) {
      // Small batch with a per-item deadline.
      JsonValue sigmas = JsonValue::Array();
      const size_t n = 1 + Mix(&rng) % 3;
      for (size_t i = 0; i < n; ++i) {
        sigmas.Push(JsonValue::Str(easy.sigma));
      }
      JsonValue req = Req("batch", next_id++);
      req.Set("dtd", JsonValue::Str(easy.dtd))
          .Set("sigmas", sigmas)
          .Set("item_timeout_ms", JsonValue::Int(50));
      violation = absorb(client->Call(req));
    } else if (dice < 94 && !sessions.empty()) {
      const uint64_t sid = sessions[Mix(&rng) % sessions.size()];
      JsonValue req = Req("close", next_id++);
      req.Set("session", JsonValue::Int(static_cast<int64_t>(sid)));
      violation = absorb(client->Call(req));
    } else {
      violation = absorb(
          client->Call(Req(Mix(&rng) % 2 == 0 ? "ping" : "stats",
                           next_id++)));
    }
    if (!violation.empty()) {
      return "op " + std::to_string(op) + ": " + violation;
    }
  }
  return "";
}

void RunSoak(size_t num_clients, int ops_per_client) {
  ServerOptions options;
  options.workers = 4;
  options.max_connections = 64;
  options.max_inflight = 12;
  options.per_connection_inflight = 4;
  options.max_sessions = 48;
  options.quarantine_after_faults = 3;
  options.max_line_bytes = 8 * 1024;
  options.retry_after_ms = 5;
  options.drain_deadline_ms = 1'000;
  auto started = Server::Start(options);
  ASSERT_TRUE(started.ok()) << started.status();
  std::unique_ptr<Server> server = std::move(*started);

  const TextSpec easy = EasySpec();
  const TextSpec hard = HardSpec();
  SoakTotals totals;
  std::vector<std::string> violations(num_clients);
  {
    WorkStealingPool pool(num_clients);
    for (size_t c = 0; c < num_clients; ++c) {
      pool.Submit([c, port = server->port(), ops_per_client, &easy, &hard,
                   &totals, &violations] {
        violations[c] = RunClientScript(port, /*seed=*/c * 7919 + 1,
                                        ops_per_client, easy, hard, &totals);
      });
    }
    // Pool destructor joins every client script.
  }
  for (size_t c = 0; c < num_clients; ++c) {
    EXPECT_EQ(violations[c], "") << "client " << c;
  }

  // Drain and audit the accounting baseline.
  server->RequestShutdown();
  server->Wait();
  EXPECT_TRUE(server->Stopped());
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.responses_internal, 0u) << "INTERNAL leaked to the wire";
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.open_sessions, 0u) << "sessions leaked past the drain";
  EXPECT_GT(stats.requests, 0u);
  EXPECT_GT(totals.calls.load() + totals.transport_ends.load(), 0u);
  // The soak must have actually exercised the degradation machinery.
  EXPECT_GT(totals.sessions_opened.load(), 50u)
      << "soak did not open enough sessions to mean anything";

  ::testing::Test::RecordProperty("soak_calls",
                                  static_cast<int>(totals.calls.load()));
  ::testing::Test::RecordProperty(
      "soak_transport_ends",
      static_cast<int>(totals.transport_ends.load()));
  ::testing::Test::RecordProperty("soak_ok",
                                  static_cast<int>(totals.oks.load()));
  ::testing::Test::RecordProperty(
      "soak_unavailable", static_cast<int>(totals.unavailable.load()));
  ::testing::Test::RecordProperty("soak_deadline",
                                  static_cast<int>(totals.deadline.load()));
}

/// The baseline soak. In a plain build no faults are injected (unless the
/// XICC_FAULTS env drives them, as the CI daemon-soak job does); the chaos
/// comes from concurrency, overload, hostile frames, and disconnects.
TEST(DaemonSoakTest, RandomizedSoakHoldsTheClosedOutcomeSet) {
  RunSoak(/*num_clients=*/8, /*ops_per_client=*/100);
}

#if XICC_FAULTS_ENABLED

class FaultySoakFixture : public ::testing::Test {
 protected:
  void TearDown() override { faults::SetConfig(faults::FaultConfig{}); }
};

/// The same soak with the net fault sites firing: accepts abort, reads
/// reset, writes break, frames rot — the closed outcome set must hold
/// anyway. Period 97 ≈ a few percent of socket operations.
TEST_F(FaultySoakFixture, InjectedNetFaultsStillHoldTheClosedOutcomeSet) {
  faults::FaultConfig config;
  config.seed = 1;
  config.net_fault_every = 97;
  faults::SetConfig(config);
  RunSoak(/*num_clients=*/8, /*ops_per_client=*/60);
}

#endif  // XICC_FAULTS_ENABLED

}  // namespace
}  // namespace net
}  // namespace xicc
