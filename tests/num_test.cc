// Tests for the two-tier exact number (base/num.h): differential chains
// against the pure-BigInt Rational it must agree with bit-for-bit, the
// INT64-boundary promotions that move values onto the big tier, and the
// canonical-form invariants (reduced, positive denominator, canonical zero)
// that every tier transition must preserve. RepOk is asserted after every
// operation — a big-tier value that fits the small words is a demotion bug,
// an unreduced small value a canonicalization bug.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/num.h"
#include "base/rational.h"

namespace xicc {
namespace {

Rational MakeRational(int64_t num, int64_t den) {
  return Rational(BigInt(num), BigInt(den));
}

Num MakeNum(int64_t num, int64_t den) {
  return Num(BigInt(num), BigInt(den));
}

/// Exact agreement with the reference Rational, via the string rendering
/// both types canonicalize to.
void ExpectAgrees(const Num& value, const Rational& reference,
                  const std::string& context) {
  EXPECT_TRUE(value.RepOk()) << context << ": " << value.ToString();
  EXPECT_EQ(value.ToString(), reference.ToString()) << context;
  EXPECT_EQ(Rational::Compare(value.ToRational(), reference), 0) << context;
}

// ------------------------------------------------------ Canonical form.

TEST(NumTest, ConstructionCanonicalizes) {
  EXPECT_EQ(MakeNum(2, 4).ToString(), "1/2");
  EXPECT_EQ(MakeNum(-2, 4).ToString(), "-1/2");
  EXPECT_EQ(MakeNum(2, -4).ToString(), "-1/2");   // Sign moves to the top.
  EXPECT_EQ(MakeNum(-2, -4).ToString(), "1/2");
  EXPECT_EQ(MakeNum(0, -7).ToString(), "0");      // Canonical zero is 0/1.
  EXPECT_EQ(MakeNum(42, 6).ToString(), "7");
  EXPECT_TRUE(MakeNum(42, 6).is_integer());
  EXPECT_TRUE(MakeNum(0, 9).is_zero());
  for (const Num& n : {MakeNum(2, 4), MakeNum(-9, 3), MakeNum(0, -7)}) {
    EXPECT_TRUE(n.RepOk()) << n.ToString();
  }
}

TEST(NumTest, GcdCanonicalizationSurvivesArithmetic) {
  // 1/6 + 1/10 = 4/15: the naive cross-multiplication gives 16/60, which
  // the reduced-gcd scheme must bring to lowest terms.
  Num sum = MakeNum(1, 6);
  sum += MakeNum(1, 10);
  EXPECT_EQ(sum.ToString(), "4/15");
  EXPECT_TRUE(sum.RepOk());

  // 3/4 * 8/9 = 2/3 via cross-reduction.
  Num prod = MakeNum(3, 4);
  prod *= MakeNum(8, 9);
  EXPECT_EQ(prod.ToString(), "2/3");
  EXPECT_TRUE(prod.RepOk());

  // x - x and 0 * x land exactly on the canonical zero.
  Num diff = MakeNum(7, 13);
  diff -= MakeNum(7, 13);
  EXPECT_TRUE(diff.is_zero());
  EXPECT_EQ(diff.ToString(), "0");
  Num zero = MakeNum(0, 1);
  zero *= MakeNum(-5, 3);
  EXPECT_TRUE(zero.is_zero());
  EXPECT_TRUE(zero.RepOk());
}

// ------------------------------------------------- Boundary promotions.

TEST(NumTest, Int64BoundaryPromotesLosslessly) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  const NumCounters before = ThisThreadNumCounters();

  // max + max overflows the small adder and must promote, not wrap.
  Num doubled(max);
  EXPECT_TRUE(doubled.is_small());
  doubled += Num(max);
  EXPECT_FALSE(doubled.is_small());
  ExpectAgrees(doubled, Rational(BigInt(max) + BigInt(max)),
               "max+max");

  // max * max likewise.
  Num squared(max);
  squared *= Num(max);
  EXPECT_FALSE(squared.is_small());
  ExpectAgrees(squared, Rational(BigInt(max) * BigInt(max)),
               "max*max");

  const NumCounters after = ThisThreadNumCounters();
  EXPECT_GE(after.promotions - before.promotions, 2u);
}

TEST(NumTest, Int64MinLivesOnTheBigTier) {
  // INT64_MIN has no small-tier negation, so it is excluded from the small
  // domain outright — construction, negation, and arithmetic must all keep
  // the representation well-formed.
  const int64_t min = std::numeric_limits<int64_t>::min();
  Num value(min);
  EXPECT_FALSE(value.is_small());
  EXPECT_TRUE(value.RepOk());
  ExpectAgrees(value, Rational(BigInt(min)), "INT64_MIN");

  Num negated = -value;
  EXPECT_TRUE(negated.RepOk());
  EXPECT_EQ(negated.ToString(), "9223372036854775808");

  // min/2 fits the small tier again: the divide demotes.
  Num halved = value;
  halved /= Num(2);
  EXPECT_TRUE(halved.is_small());
  EXPECT_EQ(halved.ToString(), "-4611686018427387904");
}

TEST(NumTest, BigResultsThatFitDemote) {
  const int64_t max = std::numeric_limits<int64_t>::max();
  Num value(max);
  value += Num(max);  // Promoted.
  ASSERT_FALSE(value.is_small());
  const NumCounters before = ThisThreadNumCounters();
  value -= Num(max);  // Fits again: must come back to the small tier.
  EXPECT_TRUE(value.is_small());
  EXPECT_EQ(value.ToString(), std::to_string(max));
  const NumCounters after = ThisThreadNumCounters();
  EXPECT_GE(after.demotions - before.demotions, 1u);
}

// ------------------------------------------------- Differential chains.

TEST(NumTest, RandomOperationChainsAgreeWithRational) {
  // 10^5 random operations split over independent chains (fresh start every
  // 50 steps so a big value doesn't trap the whole run on the big tier).
  // Every step applies the same op to the Num chain and the pure-Rational
  // reference and demands exact agreement; operand magnitudes are biased
  // across word-boundary scales so the chains cross tiers both ways.
  std::mt19937_64 rng(20260806);
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<int> scale_dist(0, 2);
  std::uniform_int_distribution<int64_t> small_dist(-999, 999);
  std::uniform_int_distribution<int64_t> word_dist(
      std::numeric_limits<int64_t>::min() / 2,
      std::numeric_limits<int64_t>::max() / 2);
  std::uniform_int_distribution<int64_t> edge_dist(
      std::numeric_limits<int64_t>::max() - 999,
      std::numeric_limits<int64_t>::max());

  constexpr size_t kTotalOps = 100000;
  constexpr size_t kChainLength = 50;
  size_t ops = 0;
  size_t chain = 0;
  while (ops < kTotalOps) {
    ++chain;
    Num value(1);
    Rational reference(BigInt(1));
    for (size_t step = 0; step < kChainLength && ops < kTotalOps;
         ++step, ++ops) {
      int64_t raw_num;
      switch (scale_dist(rng)) {
        case 0: raw_num = small_dist(rng); break;
        case 1: raw_num = word_dist(rng); break;
        default: raw_num = edge_dist(rng); break;
      }
      int64_t raw_den = small_dist(rng);
      if (raw_den == 0) raw_den = 1;
      const Num operand = MakeNum(raw_num, raw_den);
      const Rational operand_ref = MakeRational(raw_num, raw_den);

      const int op = op_dist(rng);
      const std::string context = "chain " + std::to_string(chain) +
                                  " step " + std::to_string(step) + " op " +
                                  std::to_string(op) + " operand " +
                                  operand.ToString();
      switch (op) {
        case 0:
          value += operand;
          reference = reference + operand_ref;
          break;
        case 1:
          value -= operand;
          reference = reference - operand_ref;
          break;
        case 2:
          value *= operand;
          reference = reference * operand_ref;
          break;
        case 3:
          if (operand.is_zero()) continue;
          value /= operand;
          reference = reference / operand_ref;
          break;
        default: {
          // Comparison + floor/ceil as read-only probes of the same state.
          EXPECT_EQ(Num::Compare(value, operand),
                    Rational::Compare(reference, operand_ref))
              << context;
          EXPECT_EQ(value.Floor().ToString(), reference.Floor().ToString())
              << context;
          EXPECT_EQ(value.Ceil().ToString(), reference.Ceil().ToString())
              << context;
          break;
        }
      }
      ASSERT_TRUE(value.RepOk()) << context << " -> " << value.ToString();
      ASSERT_EQ(value.ToString(), reference.ToString()) << context;
    }
  }
  EXPECT_EQ(ops, kTotalOps);

  // The mixed-scale chains must actually have exercised both tiers.
  const NumCounters& counters = ThisThreadNumCounters();
  EXPECT_GT(counters.small_ops, 0u);
  EXPECT_GT(counters.big_ops, 0u);
  EXPECT_GT(counters.promotions, 0u);
  EXPECT_GT(counters.demotions, 0u);
}

}  // namespace
}  // namespace xicc
