#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "workloads/paper_examples.h"
#include "xml/parser.h"

namespace xicc {
namespace {

XmlTree MustParse(const std::string& text) {
  auto tree = ParseXml(text);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).value();
}

XmlTree Figure1Tree() {
  // The Figure 1 document: both subjects point at Joe, so
  // subject.taught_by → subject fails (as the paper observes).
  return MustParse(R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>Web DB</research>
      </teacher>
    </teachers>)");
}

TEST(EvaluatorTest, KeySatisfied) {
  XmlTree tree = Figure1Tree();
  EXPECT_TRUE(Evaluate(tree, Constraint::Key("teacher", {"name"})).satisfied);
}

TEST(EvaluatorTest, Figure1ViolatesSubjectKey) {
  XmlTree tree = Figure1Tree();
  EvaluationReport report =
      Evaluate(tree, Constraint::Key("subject", {"taught_by"}));
  EXPECT_FALSE(report.satisfied);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].node, kInvalidNode);
  EXPECT_NE(report.violations[0].other, kInvalidNode);
  EXPECT_NE(report.violations[0].message.find("Joe"), std::string::npos);
}

TEST(EvaluatorTest, InclusionSatisfiedAndViolated) {
  XmlTree tree = Figure1Tree();
  EXPECT_TRUE(Evaluate(tree, Constraint::Inclusion("subject", {"taught_by"},
                                                   "teacher", {"name"}))
                  .satisfied);
  // Reverse direction: teacher.name ⊆ subject.taught_by holds here too
  // (Joe appears in both). Change the name to break it.
  XmlTree other = MustParse(R"(
    <teachers>
      <teacher name="Ann">
        <teach>
          <subject taught_by="Joe">XML</subject>
          <subject taught_by="Joe">DB</subject>
        </teach>
        <research>R</research>
      </teacher>
    </teachers>)");
  EvaluationReport report = Evaluate(
      other, Constraint::Inclusion("subject", {"taught_by"}, "teacher",
                                   {"name"}));
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.violations[0].message.find("no matching"),
            std::string::npos);
}

TEST(EvaluatorTest, ForeignKeyChecksBothParts) {
  XmlTree tree = Figure1Tree();
  // Inclusion holds but the target key teacher.name holds as well; the
  // FK as a whole holds.
  EXPECT_TRUE(
      Evaluate(tree, Constraint::ForeignKey("subject", {"taught_by"},
                                            "teacher", {"name"}))
          .satisfied);
  // Duplicate teacher names break the key component.
  XmlTree dup = MustParse(R"(
    <teachers>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">A</subject>
          <subject taught_by="Joe">B</subject>
        </teach>
        <research>R</research>
      </teacher>
      <teacher name="Joe">
        <teach>
          <subject taught_by="Joe">C</subject>
          <subject taught_by="Joe">D</subject>
        </teach>
        <research>R</research>
      </teacher>
    </teachers>)");
  EXPECT_FALSE(
      Evaluate(dup, Constraint::ForeignKey("subject", {"taught_by"},
                                           "teacher", {"name"}))
          .satisfied);
}

TEST(EvaluatorTest, WholeSigmaOnFigure1) {
  // The paper: the Figure 1 tree violates subject.taught_by → subject.
  EvaluationReport report = Evaluate(Figure1Tree(), workloads::TeacherSigma());
  EXPECT_FALSE(report.satisfied);
}

TEST(EvaluatorTest, MultiAttributeKey) {
  XmlTree tree = MustParse(R"(
    <school>
      <course dept="CS" course_no="1"><subject>A</subject></course>
      <course dept="CS" course_no="2"><subject>B</subject></course>
      <course dept="EE" course_no="1"><subject>C</subject></course>
    </school>)");
  // Pairwise distinct (dept, course_no) pairs.
  EXPECT_TRUE(
      Evaluate(tree, Constraint::Key("course", {"dept", "course_no"}))
          .satisfied);
  // course_no alone is not a key here.
  EXPECT_FALSE(Evaluate(tree, Constraint::Key("course", {"course_no"}))
                   .satisfied);
}

TEST(EvaluatorTest, MultiAttributeInclusion) {
  XmlTree tree = MustParse(R"(
    <school>
      <course dept="CS" course_no="1"><subject>A</subject></course>
      <enroll student_id="s1" dept="CS" course_no="1"/>
      <enroll student_id="s1" dept="EE" course_no="9"/>
    </school>)");
  EvaluationReport report = Evaluate(
      tree, Constraint::Inclusion("enroll", {"dept", "course_no"}, "course",
                                  {"dept", "course_no"}));
  EXPECT_FALSE(report.satisfied);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].message.find("EE"), std::string::npos);
}

TEST(EvaluatorTest, NegatedKeyNeedsAClash) {
  XmlTree tree = Figure1Tree();
  // Subjects clash on taught_by: ¬key satisfied.
  EXPECT_TRUE(Evaluate(tree, Constraint::NegKey("subject", {"taught_by"}))
                  .satisfied);
  // Teachers are unique: ¬key violated.
  EvaluationReport report =
      Evaluate(tree, Constraint::NegKey("teacher", {"name"}));
  EXPECT_FALSE(report.satisfied);
  EXPECT_EQ(report.violations[0].node, kInvalidNode);
}

TEST(EvaluatorTest, NegatedInclusionNeedsADangler) {
  XmlTree tree = Figure1Tree();
  // Every taught_by matches a name: ¬inclusion violated.
  EXPECT_FALSE(Evaluate(tree, Constraint::NegInclusion(
                                  "subject", {"taught_by"}, "teacher",
                                  {"name"}))
                   .satisfied);
  // name "Joe" ⊆ taught_by values holds, so its negation fails too.
  EXPECT_FALSE(Evaluate(tree, Constraint::NegInclusion(
                                  "teacher", {"name"}, "subject",
                                  {"taught_by"}))
                   .satisfied);
}

TEST(EvaluatorTest, EmptyExtensionEdgeCases) {
  XmlTree tree = MustParse("<school/>");
  // Keys over empty extensions hold; negated keys do not.
  EXPECT_TRUE(Evaluate(tree, Constraint::Key("course", {"dept"})).satisfied);
  EXPECT_FALSE(
      Evaluate(tree, Constraint::NegKey("course", {"dept"})).satisfied);
  // Inclusions from an empty source hold vacuously.
  EXPECT_TRUE(Evaluate(tree, Constraint::Inclusion("enroll", {"student_id"},
                                                   "student", {"student_id"}))
                  .satisfied);
  // A negated inclusion needs a source element.
  EXPECT_FALSE(
      Evaluate(tree, Constraint::NegInclusion("enroll", {"student_id"},
                                              "student", {"student_id"}))
          .satisfied);
}

TEST(EvaluatorTest, MissingAttributeIsViolation) {
  XmlTree tree("r");
  NodeId a = tree.AddElement(tree.root(), "a");
  (void)a;  // No attribute set.
  EvaluationReport report = Evaluate(tree, Constraint::Key("a", {"id"}));
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.violations[0].message.find("lacks an attribute"),
            std::string::npos);
}

TEST(EvaluatorTest, SetEvaluationAggregates) {
  XmlTree tree = Figure1Tree();
  ConstraintSet sigma = workloads::TeacherSigma();
  sigma.Add(Constraint::NegKey("teacher", {"name"}));
  EvaluationReport report = Evaluate(tree, sigma);
  EXPECT_FALSE(report.satisfied);
  EXPECT_GE(report.violations.size(), 2u);
}

}  // namespace
}  // namespace xicc
