// End-to-end daemon behavior over real loopback sockets: protocol verbs,
// fault-tolerant framing, admission control and overload shedding,
// deadlines with partial stats, session degradation (LRU eviction,
// quarantine), disconnect cancellation, and drain-on-shutdown. Each test
// starts its own in-process Server on an ephemeral port; the chaos-soak
// counterpart (daemon_soak_test.cc) drives the same surface randomly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/deadline.h"
#include "base/worksteal.h"
#include "daemon_harness.h"
#include "net/client.h"
#include "net/server.h"

namespace xicc {
namespace net {
namespace {

std::unique_ptr<Server> MustStart(ServerOptions options) {
  auto server = Server::Start(options);
  EXPECT_TRUE(server.ok()) << server.status();
  return server.ok() ? std::move(*server) : nullptr;
}

Client MustConnect(const Server& server) {
  ClientOptions options;
  options.port = server.port();
  auto client = Client::Connect(options);
  EXPECT_TRUE(client.ok()) << client.status();
  return std::move(*client);
}

/// Polls `stats()` until `pred` holds or the budget expires.
template <typename Pred>
bool EventuallyStats(const Server& server, Pred pred, int64_t budget_ms) {
  Deadline deadline = Deadline::After(budget_ms);
  while (!deadline.Expired()) {
    if (pred(server.stats())) return true;
    SleepFor(2, nullptr);
  }
  return pred(server.stats());
}

TEST(DaemonTest, PingAndStats) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  auto pong = client.Call(Req("ping", 1));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->GetBool("ok", false));
  EXPECT_EQ(pong->GetInt("id", 0), 1);

  auto stats = client.Call(Req("stats", 2));
  ASSERT_TRUE(stats.ok());
  const JsonValue* s = stats->Find("stats");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->GetInt("connections_accepted", -1), 1);
  EXPECT_GE(s->GetInt("requests", 0), 1);
  EXPECT_EQ(s->GetInt("responses_internal", -1), 0);
}

TEST(DaemonTest, SessionLifecycle) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  const TextSpec spec = EasySpec();

  auto open = client.Call(OpenReq(1, spec));
  ASSERT_TRUE(open.ok()) << open.status();
  ASSERT_TRUE(open->GetBool("ok", false)) << open->Dump();
  const uint64_t session =
      static_cast<uint64_t>(open->GetInt("session", 0));
  ASSERT_GT(session, 0u);

  // Check against the session's DTD.
  auto check = client.Call(CheckReq(2, session, spec.sigma));
  ASSERT_TRUE(check.ok());
  ASSERT_TRUE(check->GetBool("ok", false)) << check->Dump();
  EXPECT_TRUE(check->GetBool("consistent", false));
  EXPECT_NE(check->Find("stats"), nullptr);

  // Commit it, then ask for an implication of the committed set.
  auto commit = client.Call(
      Req("commit", 3)
          .Set("session", JsonValue::Int(static_cast<int64_t>(session)))
          .Set("sigma", JsonValue::Str(spec.sigma)));
  ASSERT_TRUE(commit.ok());
  EXPECT_TRUE(commit->GetBool("ok", false)) << commit->Dump();

  // Any committed constraint is implied by the committed set.
  const std::string first_line =
      spec.sigma.substr(0, spec.sigma.find('\n'));
  auto implies = client.Call(
      Req("implies", 4)
          .Set("session", JsonValue::Int(static_cast<int64_t>(session)))
          .Set("phi", JsonValue::Str(first_line)));
  ASSERT_TRUE(implies.ok());
  ASSERT_TRUE(implies->GetBool("ok", false)) << implies->Dump();
  EXPECT_TRUE(implies->GetBool("implied", false));

  auto rollback = client.Call(
      Req("rollback", 5)
          .Set("session", JsonValue::Int(static_cast<int64_t>(session))));
  ASSERT_TRUE(rollback.ok());
  EXPECT_TRUE(rollback->GetBool("ok", false));

  auto close = client.Call(
      Req("close", 6)
          .Set("session", JsonValue::Int(static_cast<int64_t>(session))));
  ASSERT_TRUE(close.ok());
  EXPECT_TRUE(close->GetBool("ok", false));

  // The session is gone: further use is INVALID_ARGUMENT, not a hang.
  auto stale = client.Call(CheckReq(7, session, spec.sigma));
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->GetString("error", ""), "INVALID_ARGUMENT")
      << stale->Dump();

  EXPECT_TRUE(EventuallyStats(
      *server, [](const ServerStats& s) { return s.open_sessions == 0; },
      1000));
}

TEST(DaemonTest, MalformedFramesAnswerInvalidArgumentAndConnectionLives) {
  ServerOptions options;
  options.max_line_bytes = 512;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  // Hostile inputs, all on ONE connection: each answers INVALID_ARGUMENT
  // and the connection keeps working.
  const std::string kHostile[] = {
      "not json at all",
      "{\"verb\":",
      "[1,2,3]",
      "{\"verb\":\"warp\"}",
      "{\"verb\":\"check\"}",
      "{\"nested\":" + std::string(200, '[') + std::string(200, ']') + "}",
  };
  for (const std::string& line : kHostile) {
    auto resp = client.CallRaw(line);
    ASSERT_TRUE(resp.ok()) << "dropped on: " << line << ": "
                           << resp.status();
    EXPECT_EQ(resp->GetString("error", ""), "INVALID_ARGUMENT")
        << line << " → " << resp->Dump();
  }

  // An oversize line: reported once, then the stream resynchronizes.
  auto oversize = client.CallRaw(std::string(2048, 'x'));
  ASSERT_TRUE(oversize.ok()) << oversize.status();
  EXPECT_EQ(oversize->GetString("error", ""), "INVALID_ARGUMENT");

  auto pong = client.Call(Req("ping", 42));
  ASSERT_TRUE(pong.ok()) << pong.status();
  EXPECT_TRUE(pong->GetBool("ok", false));

  const ServerStats stats = server->stats();
  // Three of the hostile lines fail at the JSON layer (malformed frames);
  // the rest are well-formed JSON with a broken envelope — every one of
  // them answered INVALID_ARGUMENT either way.
  EXPECT_GE(stats.malformed_frames, 3u);
  EXPECT_GE(stats.oversize_frames, 1u);
  EXPECT_GE(stats.responses_invalid_argument, 7u);
  EXPECT_EQ(stats.responses_internal, 0u);
}

TEST(DaemonTest, DeadlineExceededCarriesPartialStats) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  const TextSpec spec = HardSpec();

  auto resp = client.Call(OneShotCheckReq(1, spec, /*timeout_ms=*/1));
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_EQ(resp->GetString("error", ""), "DEADLINE_EXCEEDED")
      << resp->Dump();
  // The partial stats of the stopped search ride on the error.
  const JsonValue* partial = resp->Find("partial");
  ASSERT_NE(partial, nullptr) << resp->Dump();
  EXPECT_NE(partial->Find("ilp_nodes"), nullptr);

  // Same via a session.
  auto open = client.Call(OpenReq(2, spec));
  ASSERT_TRUE(open.ok() && open->GetBool("ok", false)) << open->Dump();
  const uint64_t session = static_cast<uint64_t>(open->GetInt("session", 0));
  auto timed = client.Call(CheckReq(3, session, spec.sigma, 1));
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(timed->GetString("error", ""), "DEADLINE_EXCEEDED")
      << timed->Dump();
  EXPECT_NE(timed->Find("partial"), nullptr);

  // A deadline is a fault strike but not a death sentence: the session
  // still answers a cheap query (default quarantine threshold is 3).
  const std::string one_key = spec.sigma.substr(0, spec.sigma.find('\n'));
  auto again = client.Call(CheckReq(4, session, one_key));
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->GetBool("ok", false)) << again->Dump();
}

TEST(DaemonTest, OverloadShedsWithRetryAfterAndClientBackoffRecovers) {
  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.retry_after_ms = 15;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);

  // Saturate the single in-flight slot with a bounded slow check.
  Client slow = MustConnect(*server);
  const TextSpec hard = HardSpec();
  // Fire-and-read-later: write the request, don't wait for the response.
  ASSERT_TRUE(slow.connected());
  Client probe = MustConnect(*server);

  // The slow call occupies the slot for ~its full deadline, because the
  // LIP gadget search does not finish in 400ms.
  WorkStealingPool pool(1);
  pool.Submit([&slow, &hard] {
    auto resp = slow.Call(OneShotCheckReq(1, hard, /*timeout_ms=*/400));
    // DEADLINE_EXCEEDED (search stopped) — or ok if the box is absurdly
    // fast; either way the slot was held.
    EXPECT_TRUE(resp.ok()) << resp.status();
  });

  // Give the slow request time to be admitted.
  ASSERT_TRUE(EventuallyStats(
      *server, [](const ServerStats& s) { return s.inflight >= 1; }, 2000));

  // A bare call now is shed: UNAVAILABLE + retry_after_ms, and the
  // connection is NOT dropped.
  auto shed = probe.Call(Req("ping", 2));
  ASSERT_TRUE(shed.ok()) << shed.status();
  EXPECT_EQ(shed->GetString("error", ""), "UNAVAILABLE") << shed->Dump();
  EXPECT_EQ(shed->GetInt("retry_after_ms", 0), 15);
  EXPECT_TRUE(probe.connected());

  // The retrying client absorbs the shed responses and recovers once the
  // slot frees.
  RetryPolicy policy;
  policy.max_attempts = 40;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 50;
  RetryStats retry_stats;
  auto recovered = probe.CallWithRetry(Req("ping", 3), policy, &retry_stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(recovered->GetBool("ok", false)) << recovered->Dump();
  EXPECT_GE(retry_stats.attempts, 1);

  const ServerStats stats = server->stats();
  EXPECT_GE(stats.shed_requests, 1u);
  EXPECT_EQ(stats.responses_internal, 0u);
}

TEST(DaemonTest, ConnectionCapShedsAtAccept) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);
  Client first = MustConnect(*server);
  ASSERT_TRUE(first.Call(Req("ping", 1)).ok());

  // The second connection is told UNAVAILABLE at the door and closed.
  ClientOptions copts;
  copts.port = server->port();
  auto second = Client::Connect(copts);
  ASSERT_TRUE(second.ok()) << second.status();
  auto resp = second->Call(Req("ping", 2));
  if (resp.ok()) {
    // The farewell frame made it before the close.
    EXPECT_EQ(resp->GetString("error", ""), "UNAVAILABLE") << resp->Dump();
    EXPECT_GT(resp->GetInt("retry_after_ms", 0), 0);
  } else {
    // Or the close raced the read; both are the UNAVAILABLE contract.
    EXPECT_EQ(resp.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE(EventuallyStats(
      *server, [](const ServerStats& s) { return s.connections_shed >= 1; },
      1000));

  // The first connection is unaffected.
  EXPECT_TRUE(first.Call(Req("ping", 3)).ok());
}

TEST(DaemonTest, LruEvictionKeepsSessionTableBounded) {
  ServerOptions options;
  options.max_sessions = 2;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  const TextSpec spec = EasySpec();

  uint64_t ids[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    auto open = client.Call(OpenReq(i + 1, spec));
    ASSERT_TRUE(open.ok() && open->GetBool("ok", false)) << open->Dump();
    ids[i] = static_cast<uint64_t>(open->GetInt("session", 0));
  }

  // The oldest (LRU) session was evicted to admit the third.
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.sessions_evicted, 1u);
  EXPECT_EQ(stats.open_sessions, 2u);

  auto evicted = client.Call(CheckReq(10, ids[0], spec.sigma));
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(evicted->GetString("error", ""), "INVALID_ARGUMENT");
  auto alive = client.Call(CheckReq(11, ids[2], spec.sigma));
  ASSERT_TRUE(alive.ok());
  EXPECT_TRUE(alive->GetBool("ok", false)) << alive->Dump();
}

TEST(DaemonTest, RepeatedlyFaultingSessionIsQuarantined) {
  ServerOptions options;
  options.quarantine_after_faults = 2;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  const TextSpec hard = HardSpec();

  auto open = client.Call(OpenReq(1, hard));
  ASSERT_TRUE(open.ok() && open->GetBool("ok", false)) << open->Dump();
  const uint64_t session = static_cast<uint64_t>(open->GetInt("session", 0));

  // Two deadline faults in a row reach the quarantine threshold.
  for (int i = 0; i < 2; ++i) {
    auto resp = client.Call(CheckReq(2 + i, session, hard.sigma, 1));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->GetString("error", ""), "DEADLINE_EXCEEDED")
        << resp->Dump();
  }

  // The quarantined session refuses further work as UNAVAILABLE — the
  // caller can open a fresh session; this one is suspected poisoned.
  auto refused = client.Call(CheckReq(4, session, hard.sigma));
  ASSERT_TRUE(refused.ok());
  EXPECT_EQ(refused->GetString("error", ""), "UNAVAILABLE")
      << refused->Dump();
  EXPECT_EQ(server->stats().sessions_quarantined, 1u);
}

TEST(DaemonTest, DisconnectCancelsInflightWork) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  const TextSpec hard = HardSpec();

  // A long check with NO deadline, then vanish. The server must not burn
  // the worker until the search completes naturally. Raw socket: write the
  // request, never read, close.
  auto fd = TcpConnect(server->port(), /*timeout_ms=*/1000);
  ASSERT_TRUE(fd.ok()) << fd.status();
  const std::string line = OneShotCheckReq(1, hard, /*timeout_ms=*/0).Dump() +
                           "\n";
  ASSERT_TRUE(WriteAll(*fd, line, /*deadline_ms=*/1000).ok());
  ASSERT_TRUE(EventuallyStats(
      *server, [](const ServerStats& s) { return s.inflight >= 1; }, 2000));
  fd->Close();

  // The disconnect fires the connection's cancel token; the worker stops
  // at its next solver poll and accounting returns to zero.
  EXPECT_TRUE(EventuallyStats(
      *server,
      [](const ServerStats& s) {
        return s.inflight == 0 && s.disconnect_cancels >= 1;
      },
      5000))
      << "inflight=" << server->stats().inflight
      << " cancels=" << server->stats().disconnect_cancels;
}

TEST(DaemonTest, ShutdownVerbDrainsAndServerStops) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);

  auto resp = client.Call(Req("shutdown", 1));
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_TRUE(resp->GetBool("ok", false));

  server->Wait();
  EXPECT_TRUE(server->Stopped());
  const ServerStats stats = server->stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.open_sessions, 0u);

  // New connections are refused (listener closed).
  ClientOptions copts;
  copts.port = server->port();
  copts.connect_timeout_ms = 200;
  auto late = Client::Connect(copts);
  if (late.ok()) {
    auto r = late->Call(Req("ping", 2));
    EXPECT_FALSE(r.ok() && r->GetBool("ok", false));
  }
}

TEST(DaemonTest, DrainCancelsOverdueWorkAtDeadline) {
  ServerOptions options;
  options.drain_deadline_ms = 150;
  auto server = MustStart(options);
  ASSERT_NE(server, nullptr);
  ClientOptions copts;
  copts.port = server->port();
  copts.io_timeout_ms = 5000;  // bound the test even if the farewell is lost
  auto connected = Client::Connect(copts);
  ASSERT_TRUE(connected.ok()) << connected.status();
  Client client = std::move(*connected);
  const TextSpec hard = HardSpec();

  WorkStealingPool pool(1);
  pool.Submit([&client, &hard] {
    auto resp = client.Call(OneShotCheckReq(1, hard, /*timeout_ms=*/0));
    // Either the CANCELLED farewell arrives, or the transport drops first;
    // both are a bounded, accounted end.
    if (resp.ok()) {
      EXPECT_TRUE(IsClosedOutcome(*resp)) << resp->Dump();
    }
  });
  ASSERT_TRUE(EventuallyStats(
      *server, [](const ServerStats& s) { return s.inflight >= 1; }, 2000));

  const Deadline drain_budget = Deadline::After(5000);
  server->RequestShutdown();
  server->Wait();
  EXPECT_TRUE(server->Stopped());
  EXPECT_FALSE(drain_budget.Expired()) << "drain exceeded its budget";
  const ServerStats stats = server->stats();
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.responses_internal, 0u);
}

TEST(DaemonTest, BatchMixesVerdictsAndFlagsBadItems) {
  auto server = MustStart({});
  ASSERT_NE(server, nullptr);
  Client client = MustConnect(*server);
  TextSpec spec;
  spec.dtd =
      "<!ELEMENT r (a*)> <!ELEMENT a EMPTY> "
      "<!ATTLIST a id CDATA #REQUIRED>";
  spec.sigma = "key a(id)\n";

  JsonValue sigmas = JsonValue::Array();
  sigmas.Push(JsonValue::Str(spec.sigma));                  // consistent
  sigmas.Push(JsonValue::Str("key a(id)\n!key a(id)\n"));   // inconsistent
  sigmas.Push(JsonValue::Str("this is not a constraint"));  // parse error
  JsonValue req = Req("batch", 1);
  req.Set("dtd", JsonValue::Str(spec.dtd)).Set("sigmas", sigmas);

  auto resp = client.Call(req);
  ASSERT_TRUE(resp.ok()) << resp.status();
  ASSERT_TRUE(resp->GetBool("ok", false)) << resp->Dump();
  const JsonValue* results = resp->Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->AsArray().size(), 3u);
  EXPECT_EQ(results->AsArray()[0].GetString("status", ""), "ok");
  EXPECT_TRUE(results->AsArray()[0].GetBool("consistent", false));
  EXPECT_EQ(results->AsArray()[1].GetString("status", ""), "ok");
  EXPECT_FALSE(results->AsArray()[1].GetBool("consistent", true));
  EXPECT_EQ(results->AsArray()[2].GetString("status", ""),
            "INVALID_ARGUMENT");
}

}  // namespace
}  // namespace net
}  // namespace xicc
