#include <gtest/gtest.h>

#include "relational/dependencies.h"
#include "relational/schema.h"

namespace xicc {
namespace relational {
namespace {

Schema EmployeeSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("emp", {"id", "name", "dept"}).ok());
  EXPECT_TRUE(schema.AddRelation("dept", {"dno", "head"}).ok());
  return schema;
}

Instance SampleInstance(const Schema* schema) {
  Instance instance(schema);
  EXPECT_TRUE(
      instance.Insert("emp", {{"id", "1"}, {"name", "Ann"}, {"dept", "d1"}})
          .ok());
  EXPECT_TRUE(
      instance.Insert("emp", {{"id", "2"}, {"name", "Bob"}, {"dept", "d1"}})
          .ok());
  EXPECT_TRUE(
      instance.Insert("dept", {{"dno", "d1"}, {"head", "1"}}).ok());
  return instance;
}

TEST(SchemaTest, DeclarationRules) {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("r", {"a", "b"}).ok());
  EXPECT_FALSE(schema.AddRelation("r", {"c"}).ok());     // Duplicate.
  EXPECT_FALSE(schema.AddRelation("s", {}).ok());        // Empty attrs.
  EXPECT_FALSE(schema.AddRelation("t", {"a", "a"}).ok());  // Repeated attr.
  EXPECT_TRUE(schema.HasAttribute("r", "a"));
  EXPECT_FALSE(schema.HasAttribute("r", "z"));
  EXPECT_FALSE(schema.HasAttribute("zzz", "a"));
}

TEST(InstanceTest, InsertValidation) {
  Schema schema = EmployeeSchema();
  Instance instance(&schema);
  EXPECT_FALSE(instance.Insert("ghost", {{"x", "1"}}).ok());
  EXPECT_FALSE(instance.Insert("emp", {{"id", "1"}}).ok());  // Missing attrs.
  EXPECT_FALSE(
      instance.Insert("emp", {{"id", "1"}, {"name", "A"}, {"wrong", "x"}})
          .ok());
  EXPECT_TRUE(
      instance.Insert("emp", {{"id", "1"}, {"name", "A"}, {"dept", "d"}})
          .ok());
  EXPECT_EQ(instance.RelationOf("emp").size(), 1u);
  EXPECT_TRUE(instance.RelationOf("dept").empty());
}

TEST(DependencyTest, KeySatisfaction) {
  Schema schema = EmployeeSchema();
  Instance instance = SampleInstance(&schema);
  EXPECT_TRUE(Satisfies(instance, Dependency::Key("emp", {"id"})));
  // dept is shared: not a key.
  EXPECT_FALSE(Satisfies(instance, Dependency::Key("emp", {"dept"})));
  // Composite always-key.
  EXPECT_TRUE(
      Satisfies(instance, Dependency::Key("emp", {"id", "name", "dept"})));
}

TEST(DependencyTest, FdSatisfaction) {
  Schema schema = EmployeeSchema();
  Instance instance = SampleInstance(&schema);
  EXPECT_TRUE(Satisfies(instance, Dependency::Fd("emp", {"id"}, {"name"})));
  EXPECT_FALSE(Satisfies(instance, Dependency::Fd("emp", {"dept"}, {"name"})));
  // X → X trivially.
  EXPECT_TRUE(Satisfies(instance, Dependency::Fd("emp", {"dept"}, {"dept"})));
}

TEST(DependencyTest, InclusionAndForeignKey) {
  Schema schema = EmployeeSchema();
  Instance instance = SampleInstance(&schema);
  // dept.head ⊆ emp.id holds.
  EXPECT_TRUE(Satisfies(
      instance, Dependency::Id("dept", {"head"}, "emp", {"id"})));
  // emp.dept ⊆ dept.dno holds.
  EXPECT_TRUE(Satisfies(
      instance, Dependency::Id("emp", {"dept"}, "dept", {"dno"})));
  // FK needs the target to be a key too: emp.id is one.
  EXPECT_TRUE(Satisfies(
      instance, Dependency::ForeignKey("dept", {"head"}, "emp", {"id"})));
  // Reverse inclusion fails (emp.id = 2 has no dept.head = 2).
  EXPECT_FALSE(Satisfies(
      instance, Dependency::Id("emp", {"id"}, "dept", {"head"})));
}

TEST(DependencyTest, ForeignKeyFailsWhenTargetNotKey) {
  Schema schema;
  ASSERT_TRUE(schema.AddRelation("a", {"x"}).ok());
  ASSERT_TRUE(schema.AddRelation("b", {"y", "z"}).ok());
  Instance instance(&schema);
  ASSERT_TRUE(instance.Insert("a", {{"x", "1"}}).ok());
  ASSERT_TRUE(instance.Insert("b", {{"y", "1"}, {"z", "p"}}).ok());
  ASSERT_TRUE(instance.Insert("b", {{"y", "1"}, {"z", "q"}}).ok());
  // Inclusion holds but y is not a key of b.
  EXPECT_TRUE(Satisfies(instance, Dependency::Id("a", {"x"}, "b", {"y"})));
  EXPECT_FALSE(
      Satisfies(instance, Dependency::ForeignKey("a", {"x"}, "b", {"y"})));
}

TEST(DependencyTest, SatisfiesAllAggregates) {
  Schema schema = EmployeeSchema();
  Instance instance = SampleInstance(&schema);
  std::vector<Dependency> deps = {
      Dependency::Key("emp", {"id"}),
      Dependency::Id("dept", {"head"}, "emp", {"id"}),
  };
  EXPECT_TRUE(SatisfiesAll(instance, deps));
  deps.push_back(Dependency::Key("emp", {"dept"}));
  EXPECT_FALSE(SatisfiesAll(instance, deps));
}

TEST(DependencyTest, ToStringForms) {
  EXPECT_EQ(Dependency::Key("r", {"a", "b"}).ToString(), "r[a,b] -> r");
  EXPECT_EQ(Dependency::Fd("r", {"a"}, {"b"}).ToString(), "r : [a] -> [b]");
  EXPECT_EQ(Dependency::Id("r", {"a"}, "s", {"b"}).ToString(),
            "r[a] <= s[b]");
  EXPECT_EQ(Dependency::ForeignKey("r", {"a"}, "s", {"b"}).ToString(),
            "r[a] <= s[b] (key)");
}

TEST(DependencyTest, EmptyInstanceSatisfiesEverythingPositive) {
  Schema schema = EmployeeSchema();
  Instance instance(&schema);
  EXPECT_TRUE(Satisfies(instance, Dependency::Key("emp", {"id"})));
  EXPECT_TRUE(
      Satisfies(instance, Dependency::Id("emp", {"id"}, "dept", {"dno"})));
  EXPECT_TRUE(Satisfies(
      instance, Dependency::ForeignKey("emp", {"id"}, "dept", {"dno"})));
}

}  // namespace
}  // namespace relational
}  // namespace xicc
