// Tests for the Ψ(D,Σ) cardinality encoding (Theorem 4.1, Lemmas 4.4–4.6)
// and its two conditional-discharge strategies.

#include <gtest/gtest.h>

#include "core/cardinality_encoding.h"
#include "core/conditional_solver.h"
#include "ilp/solver.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(EncodingTest, TeacherSystemStructure) {
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma().Normalize();
  auto enc = BuildCardinalityEncoding(d1, sigma);
  ASSERT_TRUE(enc.ok()) << enc.status();

  // ext variables exist for originals, synthetics, and S.
  EXPECT_TRUE(enc->ext_var.count("teachers"));
  EXPECT_TRUE(enc->ext_var.count("teacher"));
  EXPECT_TRUE(enc->ext_var.count("S"));
  EXPECT_EQ(enc->ext_var.size(), enc->simplified.dtd.elements().size() + 1);

  // Mentioned pairs: teacher.name and subject.taught_by.
  EXPECT_EQ(enc->attr_var.size(), 2u);
  EXPECT_EQ(enc->conditionals.size(), 2u);

  // Occurrence variables drive the sum rows; the paper's worked example for
  // D_N1 has 12 (two per binary production, one per S production).
  EXPECT_EQ(enc->occurrences.size(), 12u);
}

TEST(EncodingTest, TeacherSigmaIsInfeasible) {
  // The flagship example: Ψ(D1, Σ1) has no solution (Section 1's cardinality
  // argument: |ext(subject)| = 2|ext(teacher)| vs ≤ |ext(teacher)|).
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma().Normalize();
  auto enc = BuildCardinalityEncoding(d1, sigma);
  ASSERT_TRUE(enc.ok());
  auto solved = SolveWithConditionals(enc->system, enc->conditionals);
  ASSERT_TRUE(solved.ok()) << solved.status();
  EXPECT_FALSE(solved->feasible);
}

TEST(EncodingTest, TeacherDtdAloneIsFeasible) {
  Dtd d1 = workloads::TeacherDtd();
  auto enc = BuildCardinalityEncoding(d1, ConstraintSet());
  ASSERT_TRUE(enc.ok());
  EXPECT_TRUE(enc->conditionals.empty());
  auto solved = SolveIlp(enc->system);
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(solved->feasible);
  // ext(teachers) = 1, ext(teacher) ≥ 1, ext(subject) = 2·ext(teacher),
  // ext(research) = ext(teacher).
  const BigInt& teachers = solved->values[enc->ext_var.at("teachers")];
  const BigInt& teacher = solved->values[enc->ext_var.at("teacher")];
  const BigInt& subject = solved->values[enc->ext_var.at("subject")];
  const BigInt& research = solved->values[enc->ext_var.at("research")];
  EXPECT_EQ(teachers, BigInt(1));
  EXPECT_GE(teacher, BigInt(1));
  EXPECT_EQ(subject, teacher * BigInt(2));
  EXPECT_EQ(research, teacher);
}

TEST(EncodingTest, InfiniteDtdIsInfeasible) {
  auto enc = BuildCardinalityEncoding(workloads::InfiniteDtd(),
                                      ConstraintSet());
  ASSERT_TRUE(enc.ok());
  auto solved = SolveIlp(enc->system);
  ASSERT_TRUE(solved.ok());
  // Ψ_D2: ext(db)=1, ext(db)=x1(foo,db), ext(foo)=x1(foo,foo)+x1(foo,db),
  // ext(foo)=x1(foo,foo) — forces 1 = 0.
  EXPECT_FALSE(solved->feasible);
}

TEST(EncodingTest, DroppedKeyRestoresFeasibility) {
  // Σ1 without the subject key is consistent over D1.
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("teacher", {"name"}));
  sigma.Add(Constraint::Inclusion("subject", {"taught_by"}, "teacher",
                                  {"name"}));
  auto enc = BuildCardinalityEncoding(d1, sigma);
  ASSERT_TRUE(enc.ok());
  auto solved = SolveWithConditionals(enc->system, enc->conditionals);
  ASSERT_TRUE(solved.ok());
  EXPECT_TRUE(solved->feasible);
}

TEST(EncodingTest, NegatedKeyRows) {
  // ¬(e1.id → e1) over a chain where |ext(e1)| = 1 is unsatisfiable: a
  // clash needs two elements.
  Dtd chain = workloads::ChainDtd(3);
  ConstraintSet sigma;
  sigma.Add(Constraint::NegKey("e1", {"id"}));
  auto enc = BuildCardinalityEncoding(chain, sigma);
  ASSERT_TRUE(enc.ok());
  auto solved = SolveWithConditionals(enc->system, enc->conditionals);
  ASSERT_TRUE(solved.ok());
  EXPECT_FALSE(solved->feasible);
}

TEST(EncodingTest, RejectsUnnormalizedAndNonUnary) {
  Dtd d1 = workloads::TeacherDtd();
  EXPECT_FALSE(
      BuildCardinalityEncoding(d1, workloads::TeacherSigma()).ok());

  ConstraintSet multi;
  multi.Add(Constraint::Key("teacher", {"name"}));
  multi.Add(Constraint::Inclusion("subject", {"taught_by"}, "teacher",
                                  {"name"}));
  // Smuggle in a binary inclusion.
  multi.Add(Constraint{ConstraintKind::kInclusion,
                       "subject",
                       {"taught_by", "taught_by"},
                       "teacher",
                       {"name", "name"}});
  EXPECT_FALSE(BuildCardinalityEncoding(d1, multi).ok());
}

TEST(EncodingTest, BigMAgreesWithCaseSplitOnFeasibility) {
  struct Case {
    ConstraintSet sigma;
    bool feasible;
  };
  Dtd d1 = workloads::TeacherDtd();
  std::vector<Case> cases;
  cases.push_back({workloads::TeacherSigma().Normalize(), false});
  {
    ConstraintSet ok;
    ok.Add(Constraint::Key("teacher", {"name"}));
    ok.Add(Constraint::Inclusion("teacher", {"name"}, "subject",
                                 {"taught_by"}));
    cases.push_back({ok, true});
  }
  for (const Case& c : cases) {
    auto enc = BuildCardinalityEncoding(d1, c.sigma);
    ASSERT_TRUE(enc.ok());
    auto split = SolveWithConditionals(enc->system, enc->conditionals);
    ASSERT_TRUE(split.ok());
    auto big_m = SolveIlp(ApplyBigMLinearization(enc->system, enc->conditionals));
    ASSERT_TRUE(big_m.ok());
    EXPECT_EQ(split->feasible, c.feasible);
    EXPECT_EQ(big_m->feasible, c.feasible);
  }
}

TEST(EncodingTest, ConditionalSemantics) {
  // The inclusion teacher.name ⊆ subject.taught_by forces subjects to carry
  // at least one value once teachers exist — only the conditional rows can
  // express that; without them (plain SolveIlp on the base system) the
  // system is "feasible" with ext(teacher.name) = 0, which the case-split
  // correctly rules in (it IS satisfiable — but with nonzero value sets).
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("teacher", {"name"}, "subject",
                                  {"taught_by"}));
  auto enc = BuildCardinalityEncoding(d1, sigma);
  ASSERT_TRUE(enc.ok());
  auto solved = SolveWithConditionals(enc->system, enc->conditionals);
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(solved->feasible);
  // Teachers exist in every valid tree, so their name-value count is ≥ 1.
  EXPECT_GE(solved->values[enc->attr_var.at({"teacher", "name"})], BigInt(1));
  EXPECT_GE(solved->values[enc->attr_var.at({"subject", "taught_by"})],
            BigInt(1));
}

}  // namespace
}  // namespace xicc
