// Tests for xicc_lint's rule library (src/analysis/lint_rules.h): each rule
// on a good and a bad fixture with the exact diagnostic asserted, the
// comment/string scanner that decides what counts as code, the suppression
// scope, the --fix guard rewriting, the directory walker — and finally the
// repo itself, which must be lint-clean (the same gate CI runs via the
// xicc_lint binary).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/lint_rules.h"

namespace xicc {
namespace {

/// The rule names of every issue, in report order.
std::vector<std::string> RuleNames(const std::vector<LintIssue>& issues) {
  std::vector<std::string> names;
  for (const LintIssue& issue : issues) names.push_back(issue.rule);
  return names;
}

TEST(LintRulesTest, RuleTableIsComplete) {
  std::vector<std::string> names;
  for (const LintRuleInfo& rule : LintRules()) {
    names.push_back(rule.name);
    EXPECT_FALSE(std::string(rule.summary).empty()) << rule.name;
  }
  EXPECT_EQ(names,
            (std::vector<std::string>{"exact-arithmetic",
                                      "raw-coefficient-words",
                                      "no-nondeterminism", "raw-concurrency",
                                      "raw-blocking", "raw-deserialization",
                                      "void-discard", "pragma-once",
                                      "include-layering"}));
}

TEST(LintRulesTest, ExactArithmeticFlagsOnlyVerdictDirs) {
  const std::string bad = "#pragma once\ndouble x = 0.5;\n";
  auto issues = LintFile("src/ilp/foo.h", bad);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].ToString(),
            "src/ilp/foo.h:2: [exact-arithmetic] 'double' in a verdict path: "
            "the ILP/simplex core is exact BigInt/Rational/Num (two-tier) "
            "arithmetic only");

  // Same token in core/ is flagged; in xml/ (not a verdict path) it is not.
  EXPECT_EQ(RuleNames(LintFile("src/core/foo.cc", "float f;\n")),
            std::vector<std::string>{"exact-arithmetic"});
  EXPECT_TRUE(LintFile("src/xml/foo.cc", "double d;\n").empty());

  // Identifier boundaries: "double_entry" is not the token "double".
  EXPECT_TRUE(LintFile("src/ilp/foo.cc", "int double_entry = 0;\n").empty());
}

TEST(LintRulesTest, RawCoefficientWordsBansBareInt64InIlp) {
  // A bare int64_t on a coefficient path in src/ilp/ is flagged...
  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc", "int64_t coeff = a * b;\n")),
            std::vector<std::string>{"raw-coefficient-words"});
  // ...but the sanctioned cast of a dimension is not, nor is uint64_t (a
  // counter, not a coefficient), nor int64_t outside src/ilp/.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "BigInt m(static_cast<int64_t>(rows));\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/ilp/foo.cc", "uint64_t ops = 0;\n").empty());
  EXPECT_TRUE(LintFile("src/core/foo.cc", "int64_t fine = 0;\n").empty());
  // Suppression works like every other rule.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "int64_t raw;  // xicc-lint: allow(raw-coefficient-words)\n")
                  .empty());
}

TEST(LintRulesTest, NoNondeterminismFlagsRandomSources) {
  auto issues =
      LintFile("src/core/foo.cc", "#include <random>\nstd::mt19937 gen;\n");
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_EQ(issues[0].line, 1u);  // The <random> include itself.
  EXPECT_EQ(issues[1].ToString(),
            "src/core/foo.cc:2: [no-nondeterminism] 'std::mt19937' in a "
            "verdict path: verdicts must be deterministic and replayable");

  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc", "int x = rand();\n")),
            std::vector<std::string>{"no-nondeterminism"});
  // steady_clock is deterministic enough for timing; only system_clock and
  // the PRNG family are banned.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "auto t = std::chrono::steady_clock::now();\n")
                  .empty());
}

TEST(LintRulesTest, RawConcurrencyBannedOutsideBase) {
  auto issues = LintFile("src/core/foo.cc", "std::mutex mu;\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].ToString(),
            "src/core/foo.cc:1: [raw-concurrency] 'std::mutex' outside "
            "src/base/: use the annotated primitives in "
            "base/thread_annotations.h and base/worksteal.h so the "
            "thread-safety analysis sees every lock");

  // The raw headers count too, and every directory but base/ is covered.
  EXPECT_EQ(RuleNames(LintFile("src/tools/foo.cc", "#include <thread>\n")),
            std::vector<std::string>{"raw-concurrency"});
  // base/ is where the annotated wrappers live; raw primitives are fine.
  EXPECT_TRUE(LintFile("src/base/foo.cc", "std::mutex mu;\n").empty());
  // Qualified-name boundary: xicc::Mutex and my_mutex are not std::mutex.
  EXPECT_TRUE(LintFile("src/core/foo.cc", "Mutex mu;\nint my_mutex;\n")
                  .empty());
}

TEST(LintRulesTest, RawBlockingBannedOutsideSanctionedFiles) {
  // A raw sleep anywhere a CancelToken cannot wake it is flagged — even in
  // base/ files other than the sanctioned blocking primitives.
  EXPECT_EQ(RuleNames(LintFile(
                "src/core/foo.cc",
                "std::this_thread::sleep_for(std::chrono::seconds(1));\n")),
            std::vector<std::string>{"raw-blocking"});
  EXPECT_EQ(RuleNames(LintFile("src/base/arena.h",
                               "#pragma once\nusleep(100);\n")),
            std::vector<std::string>{"raw-blocking"});
  // An unbounded CondVar wait outside the sanctioned files is the
  // lost-wakeup shape this rule exists for.
  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc", "CondVar cv;\n")),
            std::vector<std::string>{"raw-blocking"});

  // The sanctioned blocking primitives themselves are exempt: that is
  // where sleeps and waits are wired to cancellation.
  EXPECT_TRUE(LintFile("src/base/worksteal.h",
                       "#pragma once\ncv.Wait(&mu); CondVar done;\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/base/deadline.cc", "CondVar cv;\n").empty());
  EXPECT_TRUE(LintFile("src/base/thread_annotations.h",
                       "#pragma once\nclass CondVar {};\n")
                  .empty());
  // SleepFor (base/deadline.h) is the sanctioned cancellable sleep — its
  // callers are fine anywhere.
  EXPECT_TRUE(LintFile("src/core/foo.cc", "SleepFor(10, cancel);\n").empty());
  // Suppressions work as usual.
  EXPECT_TRUE(LintFile("src/core/foo.cc",
                       "CondVar cv;  // xicc-lint: allow(raw-blocking)\n")
                  .empty());
}

TEST(LintRulesTest, RawSocketSyscallsQuarantinedInBaseSocket) {
  // A bare socket syscall outside base/socket.* is an I/O wait that
  // cancellation, shutdown, and fault injection cannot reach.
  EXPECT_EQ(RuleNames(LintFile("src/net/foo.cc",
                               "int n = ::recv(fd, buf, len, 0);\n")),
            std::vector<std::string>{"raw-blocking"});
  EXPECT_EQ(RuleNames(LintFile("src/net/foo.cc",
                               "::poll(fds.data(), fds.size(), 50);\n")),
            std::vector<std::string>{"raw-blocking"});
  EXPECT_EQ(RuleNames(LintFile("src/tools/foo.cc",
                               "int s = ::socket(AF_INET, SOCK_STREAM, 0);\n"
                               "::connect(s, addr, len);\n"))
                .size(),
            2u);
  // The ::-qualified token is the rule's anchor: an unqualified identifier
  // like a member function `accept` or a local named `poll_ms` is not a
  // syscall and must not fire.
  EXPECT_TRUE(
      LintFile("src/net/foo.cc", "server.accept(conn);\nint poll_ms = 5;\n")
          .empty());
  // base/socket.* is the sanctioned home: EINTR retries and fault probes
  // live there.
  EXPECT_TRUE(LintFile("src/base/socket.h",
                       "#pragma once\nint n = ::recv(fd, buf, len, 0);\n")
                  .empty());
  EXPECT_TRUE(
      LintFile("src/base/socket.cc", "::poll(fds, n, timeout);\n").empty());
  // Suppressions work as usual.
  EXPECT_TRUE(LintFile("src/net/foo.cc",
                       "::shutdown(fd, SHUT_WR);  "
                       "// xicc-lint: allow(raw-blocking)\n")
                  .empty());
}

TEST(LintRulesTest, RawDeserializationQuarantinedInSerde) {
  // memcpy-into-struct decoding outside base/serde is an unaudited parser.
  auto issues =
      LintFile("src/core/foo.cc", "memcpy(&header, bytes, sizeof(header));\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].ToString(),
            "src/core/foo.cc:1: [raw-deserialization] 'memcpy' outside "
            "base/serde: deserialize through serde::Cursor / serde::Reader "
            "(bounds-checked, checksummed) instead of raw byte "
            "reinterpretation");

  // reinterpret_cast decoding is the same hazard, in every directory.
  EXPECT_EQ(RuleNames(LintFile(
                "src/tools/foo.cc",
                "auto* rec = reinterpret_cast<const Record*>(p);\n")),
            std::vector<std::string>{"raw-deserialization"});
  // base/serde.{h,cc} is the one audited home for byte reinterpretation —
  // but the exemption is those two files, not all of base/.
  EXPECT_TRUE(LintFile("src/base/serde.h",
                       "#pragma once\nstd::memcpy(&v, p, sizeof(v));\n")
                  .empty());
  EXPECT_TRUE(
      LintFile("src/base/serde.cc", "reinterpret_cast<const T*>(p);\n")
          .empty());
  EXPECT_EQ(RuleNames(LintFile("src/base/foo.cc",
                               "memcpy(&v, p, sizeof(v));\n")),
            std::vector<std::string>{"raw-deserialization"});
  // Comments and strings are not code, and suppression works as usual.
  EXPECT_TRUE(LintFile("src/core/foo.cc", "// avoids a memcpy here\n")
                  .empty());
  EXPECT_TRUE(LintFile("src/core/foo.cc",
                       "reinterpret_cast<const char*>(d);  "
                       "// xicc-lint: allow(raw-deserialization)\n")
                  .empty());
}

TEST(LintRulesTest, VoidDiscardFlagsMutedCallsNotUnusedParams) {
  auto issues = LintFile("src/dtd/foo.cc", "(void)session.Check(sigma);\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "void-discard");
  EXPECT_EQ(issues[0].line, 1u);

  EXPECT_EQ(RuleNames(LintFile("src/dtd/foo.cc", "  (void)Solve(x);\n")),
            std::vector<std::string>{"void-discard"});
  // The unused-parameter idiom has no call and stays legal.
  EXPECT_TRUE(LintFile("src/dtd/foo.cc", "(void)unused_param;\n").empty());
}

TEST(LintRulesTest, PragmaOnceRequiredInHeadersOnly) {
  auto issues = LintFile("src/xml/foo.h", "#ifndef G\n#define G\n#endif\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].ToString(),
            "src/xml/foo.h:1: [pragma-once] header must open with '#pragma "
            "once' (run --fix to rewrite an #ifndef guard)");

  EXPECT_TRUE(LintFile("src/xml/foo.h", "#pragma once\nint x;\n").empty());
  // A leading comment block before the pragma is fine.
  EXPECT_TRUE(
      LintFile("src/xml/foo.h", "// banner\n\n#pragma once\n").empty());
  // .cc files have no guard requirement.
  EXPECT_TRUE(LintFile("src/xml/foo.cc", "int x;\n").empty());
}

TEST(LintRulesTest, IncludeLayeringFollowsTheLayerOrder) {
  // ilp/ must not reach up into core/.
  auto issues =
      LintFile("src/ilp/foo.cc", "#include \"core/consistency.h\"\n");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "include-layering");
  EXPECT_NE(issues[0].message.find("layer 'core' is above it"),
            std::string::npos)
      << issues[0].message;

  // Downward and same-layer includes are fine; so are system headers and
  // non-layer quoted includes.
  EXPECT_TRUE(LintFile("src/core/foo.cc",
                       "#include \"ilp/solver.h\"\n"
                       "#include \"core/witness.h\"\n"
                       "#include <vector>\n"
                       "#include \"gtest/gtest.h\"\n")
                  .empty());
  EXPECT_EQ(RuleNames(LintFile("src/base/foo.cc", "#include \"xml/doc.h\"\n")),
            std::vector<std::string>{"include-layering"});
}

TEST(LintRulesTest, CommentsAndStringsAreNotCode) {
  // Tokens inside comments, string literals, and raw strings never fire.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "// a double comment\n"
                       "/* double\n   double */\n"
                       "const char* s = \"double\";\n"
                       "const char* r = R\"(std::mutex double)\";\n")
                  .empty());
  // But code after a closed block comment on the same line still counts.
  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc", "/* c */ double d;\n")),
            std::vector<std::string>{"exact-arithmetic"});
}

TEST(LintRulesTest, SuppressionCoversOwnAndNextLine) {
  // Trailing on the offending line.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "double ms;  // xicc-lint: allow(exact-arithmetic)\n")
                  .empty());
  // Standalone comment directly above covers the next line only.
  EXPECT_TRUE(LintFile("src/ilp/foo.cc",
                       "// xicc-lint: allow(exact-arithmetic)\n"
                       "double ms;\n")
                  .empty());
  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc",
                               "// xicc-lint: allow(exact-arithmetic)\n"
                               "double a;\n"
                               "double b;\n")),
            std::vector<std::string>{"exact-arithmetic"});
  // Multi-rule allow list, and an allow for a different rule changes nothing.
  EXPECT_TRUE(
      LintFile("src/core/foo.cc",
               "double d; std::mutex m;  // xicc-lint: "
               "allow(exact-arithmetic, raw-concurrency)\n")
          .empty());
  EXPECT_EQ(RuleNames(LintFile("src/ilp/foo.cc",
                               "double d;  // xicc-lint: allow(pragma-once)\n")),
            std::vector<std::string>{"exact-arithmetic"});
}

TEST(LintFixTest, RewritesClassicGuardToPragmaOnce) {
  const std::string guarded =
      "// banner comment\n"
      "#ifndef XICC_XML_FOO_H_\n"
      "#define XICC_XML_FOO_H_\n"
      "\n"
      "int x;\n"
      "\n"
      "#endif  // XICC_XML_FOO_H_\n";
  bool changed = false;
  const std::string fixed = ApplyLintFixes("src/xml/foo.h", guarded, &changed);
  EXPECT_TRUE(changed);
  EXPECT_EQ(fixed,
            "// banner comment\n"
            "#pragma once\n"
            "\n"
            "int x;\n");
  EXPECT_TRUE(LintFile("src/xml/foo.h", fixed).empty());
}

TEST(LintFixTest, LeavesUnrecognizableGuardsAlone) {
  // #define does not match the #ifndef symbol — not a guard pair; a human
  // must look at it, so --fix keeps its hands off.
  const std::string odd =
      "#ifndef XICC_A_H_\n#define XICC_B_H_\n#endif\n";
  bool changed = true;
  EXPECT_EQ(ApplyLintFixes("src/xml/foo.h", odd, &changed), odd);
  EXPECT_FALSE(changed);

  // Already-clean headers and .cc files are untouched.
  const std::string clean = "#pragma once\nint x;\n";
  EXPECT_EQ(ApplyLintFixes("src/xml/foo.h", clean, &changed), clean);
  EXPECT_FALSE(changed);
  EXPECT_EQ(ApplyLintFixes("src/xml/foo.cc", "int x;\n", &changed), "int x;\n");
  EXPECT_FALSE(changed);
}

/// Writes `content` under dir (creating parents) for the RunLint tests.
void WriteFile(const std::filesystem::path& path, const std::string& content) {
  std::filesystem::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out) << path;
  out << content;
}

TEST(RunLintTest, WalksFixesAndReports) {
  const std::filesystem::path root =
      std::filesystem::path(::testing::TempDir()) / "xicc_lint_walk";
  std::filesystem::remove_all(root);
  WriteFile(root / "src/ilp/bad.cc", "double d;\n");
  WriteFile(root / "src/xml/guarded.h",
            "#ifndef XICC_XML_GUARDED_H_\n#define XICC_XML_GUARDED_H_\n"
            "int x;\n#endif\n");
  WriteFile(root / "src/xml/note.txt", "double is fine here\n");  // Skipped.

  auto dry = RunLint(root.string(), /*fix=*/false);
  ASSERT_TRUE(dry.ok()) << dry.status();
  EXPECT_EQ(dry->files_scanned, 2u);
  EXPECT_EQ(dry->files_fixed, 0u);
  EXPECT_EQ(RuleNames(dry->issues),
            (std::vector<std::string>{"exact-arithmetic", "pragma-once"}));
  EXPECT_EQ(dry->issues[0].file, "src/ilp/bad.cc");
  EXPECT_EQ(dry->issues[1].file, "src/xml/guarded.h");

  // --fix repairs the guard in place; the arithmetic finding remains.
  auto fixed = RunLint(root.string(), /*fix=*/true);
  ASSERT_TRUE(fixed.ok()) << fixed.status();
  EXPECT_EQ(fixed->files_fixed, 1u);
  EXPECT_EQ(RuleNames(fixed->issues),
            std::vector<std::string>{"exact-arithmetic"});
  std::ifstream in(root / "src/xml/guarded.h");
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "#pragma once");

  EXPECT_FALSE(RunLint((root / "no-such-dir").string(), false).ok());
  std::filesystem::remove_all(root);
}

// The gate CI enforces with the xicc_lint binary, kept in the unit suite so
// a plain ctest run catches a violation without the separate tool step.
TEST(RunLintTest, RepositoryIsLintClean) {
#ifdef XICC_SOURCE_DIR
  auto run = RunLint(XICC_SOURCE_DIR, /*fix=*/false);
  ASSERT_TRUE(run.ok()) << run.status();
  std::string rendered;
  for (const LintIssue& issue : run->issues) {
    rendered += issue.ToString() + "\n";
  }
  EXPECT_EQ(run->issues.size(), 0u) << rendered;
  EXPECT_GT(run->files_scanned, 50u);
#else
  GTEST_SKIP() << "XICC_SOURCE_DIR not defined";
#endif
}

}  // namespace
}  // namespace xicc
