// Unit coverage for the daemon's byte-facing layers: the JSON document
// model and limit-enforcing parser (net/json.h), newline framing with
// oversize recovery (net/frame.h), and the protocol envelope / wire-error
// mapping (net/protocol.h). The daemon-level suites (daemon_test,
// daemon_soak_test) exercise the same code over real sockets; this suite
// pins the byte-level contracts in isolation, where every fragmentation
// and every malformed input is cheap to enumerate.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.h"
#include "net/json.h"
#include "net/protocol.h"

namespace xicc {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// JSON: values and serialization
// ---------------------------------------------------------------------------

TEST(JsonValueTest, BuildersAndAccessors) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", JsonValue::Bool(true))
      .Set("i", JsonValue::Int(-42))
      .Set("s", JsonValue::Str("hi"))
      .Set("n", JsonValue::Null());
  EXPECT_TRUE(obj.GetBool("b", false));
  EXPECT_EQ(obj.GetInt("i", 0), -42);
  EXPECT_EQ(obj.GetString("s", ""), "hi");
  EXPECT_NE(obj.Find("n"), nullptr);
  EXPECT_TRUE(obj.Find("n")->is_null());
  EXPECT_EQ(obj.Find("absent"), nullptr);
  // Typed getters fall back on wrong types, they do not coerce.
  EXPECT_EQ(obj.GetInt("s", 7), 7);
  EXPECT_EQ(obj.GetString("i", "dflt"), "dflt");
}

TEST(JsonValueTest, SetSelfConvertsNullAndReplacesKeys) {
  JsonValue v;  // null
  v.Set("k", JsonValue::Int(1));
  ASSERT_TRUE(v.is_object());
  v.Set("k", JsonValue::Int(2));
  EXPECT_EQ(v.GetInt("k", 0), 2);
  EXPECT_EQ(v.AsObject().size(), 1u);

  JsonValue a;  // null
  a.Push(JsonValue::Int(1)).Push(JsonValue::Int(2));
  ASSERT_TRUE(a.is_array());
  EXPECT_EQ(a.AsArray().size(), 2u);
}

TEST(JsonValueTest, DumpIsDeterministicInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("z", JsonValue::Int(1)).Set("a", JsonValue::Int(2));
  EXPECT_EQ(obj.Dump(), "{\"z\":1,\"a\":2}");
}

TEST(JsonValueTest, DumpEscapesControlCharactersAndQuotes) {
  JsonValue v = JsonValue::Str(std::string("a\"b\\c\n\t") + '\x01');
  EXPECT_EQ(v.Dump(), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

// ---------------------------------------------------------------------------
// JSON: parser — happy paths
// ---------------------------------------------------------------------------

TEST(JsonParseTest, RoundTripsEnvelope) {
  const std::string text =
      "{\"verb\":\"check\",\"id\":7,\"sigma\":\"key a(id)\","
      "\"timeout_ms\":250,\"nested\":{\"xs\":[1,2.5,true,null,\"s\"]}}";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->GetString("verb", ""), "check");
  EXPECT_EQ(v->GetInt("id", 0), 7);
  const JsonValue* xs = v->Find("nested")->Find("xs");
  ASSERT_NE(xs, nullptr);
  ASSERT_EQ(xs->AsArray().size(), 5u);
  EXPECT_TRUE(xs->AsArray()[1].is_number());
  EXPECT_TRUE(xs->AsArray()[3].is_null());
  // Dump → Parse → Dump is a fixed point.
  EXPECT_EQ(ParseJson(v->Dump())->Dump(), v->Dump());
}

TEST(JsonParseTest, IntBoundariesAndDoubleFallback) {
  auto max = ParseJson("9223372036854775807");
  ASSERT_TRUE(max.ok());
  EXPECT_TRUE(max->is_int());
  EXPECT_EQ(max->AsInt(), INT64_MAX);
  // One past int64 range: parsed, as a double.
  auto over = ParseJson("9223372036854775808");
  ASSERT_TRUE(over.ok());
  EXPECT_TRUE(over->is_number());
  EXPECT_FALSE(over->is_int());
}

TEST(JsonParseTest, UnicodeEscapesIncludingSurrogatePairs) {
  auto v = ParseJson("\"\\u0041\\u00e9\\u20ac\\ud83d\\ude00\"");
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(v->AsString(), "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");
}

// ---------------------------------------------------------------------------
// JSON: parser — totality over hostile input
// ---------------------------------------------------------------------------

TEST(JsonParseTest, MalformedInputsAreInvalidArgumentNeverCrash) {
  const char* kBad[] = {
      "",           "   ",        "{",           "}",
      "[1,",        "{\"a\":}",   "{\"a\" 1}",   "{a:1}",
      "tru",        "nul",        "+1",          "01",
      "1.",         "1e",         ".5",          "\"unterminated",
      "\"bad\\q\"", "\"\\u12\"",  "\"\\ud800\"", "\"\\ud800\\u0041\"",
      "\x01",       "{} garbage", "[1] [2]",     "\"a\"\"b\"",
      "nan",        "Infinity",   "[1,,2]",      "{\"a\":1,}",
  };
  for (const char* text : kBad) {
    auto v = ParseJson(text);
    EXPECT_FALSE(v.ok()) << "accepted: " << text;
    EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument) << text;
  }
  // Raw control characters inside strings are rejected (RFC 8259 §7).
  auto ctrl = ParseJson(std::string("\"a\nb\""));
  EXPECT_FALSE(ctrl.ok());
}

TEST(JsonParseTest, DepthLimitIsAnErrorNotAStackOverflow) {
  JsonLimits limits;
  limits.max_depth = 8;
  std::string deep;
  for (int i = 0; i < 64; ++i) deep += '[';
  for (int i = 0; i < 64; ++i) deep += ']';
  auto v = ParseJson(deep, limits);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);

  // Exactly at the limit parses.
  std::string ok;
  for (int i = 0; i < 8; ++i) ok += '[';
  for (int i = 0; i < 8; ++i) ok += ']';
  EXPECT_TRUE(ParseJson(ok, limits).ok());
}

TEST(JsonParseTest, NodeBudgetBoundsParserMemory) {
  JsonLimits limits;
  limits.max_nodes = 10;
  EXPECT_TRUE(ParseJson("[1,2,3]", limits).ok());
  auto v = ParseJson("[1,2,3,4,5,6,7,8,9,10,11,12]", limits);
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

TEST(LineBufferTest, SplitsLinesRegardlessOfFragmentation) {
  const std::string stream = "alpha\nbeta\r\ngamma\n";
  // Feed the same stream one byte at a time and all at once; same lines.
  for (size_t chunk : {size_t{1}, stream.size()}) {
    LineBuffer lines(64);
    std::vector<std::string> got;
    for (size_t i = 0; i < stream.size(); i += chunk) {
      lines.Append(stream.data() + i, std::min(chunk, stream.size() - i));
      std::string line;
      while (lines.NextLine(&line) == LineBuffer::Next::kLine) {
        got.push_back(line);
      }
    }
    ASSERT_EQ(got.size(), 3u) << "chunk=" << chunk;
    EXPECT_EQ(got[0], "alpha");
    EXPECT_EQ(got[1], "beta");  // CRLF-tolerant: '\r' stripped.
    EXPECT_EQ(got[2], "gamma");
  }
}

TEST(LineBufferTest, OversizeReportedOnceThenResynchronizes) {
  LineBuffer lines(8);
  const std::string big(100, 'x');
  lines.Append(big.data(), big.size());
  std::string line;
  // Unterminated oversize: reported once, then kNeedMore while skipping.
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kOversize);
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kNeedMore);
  EXPECT_TRUE(lines.skipping());
  EXPECT_LE(lines.buffered_bytes(), 8u);

  // More oversize bytes, then the newline, then a normal line: the normal
  // line comes through — the connection survived.
  lines.Append(big.data(), big.size());
  lines.Append("\nok\n", 4);
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "ok");
  EXPECT_FALSE(lines.skipping());
}

TEST(LineBufferTest, CompletedOversizeLineDroppedWhole) {
  LineBuffer lines(4);
  const std::string stream = "toolongline\nab\n";
  lines.Append(stream.data(), stream.size());
  std::string line;
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kOversize);
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "ab");
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kNeedMore);
}

TEST(LineBufferTest, EmptyLinesAreDelivered) {
  LineBuffer lines(16);
  lines.Append("\n\nx\n", 4);
  std::string line;
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "");
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "");
  EXPECT_EQ(lines.NextLine(&line), LineBuffer::Next::kLine);
  EXPECT_EQ(line, "x");
}

// ---------------------------------------------------------------------------
// Protocol envelopes
// ---------------------------------------------------------------------------

JsonValue Envelope(const std::string& text) {
  auto v = ParseJson(text);
  EXPECT_TRUE(v.ok()) << v.status();
  return v.ok() ? *v : JsonValue::Null();
}

TEST(ProtocolTest, ParsesEveryVerb) {
  struct Case {
    const char* text;
    Verb verb;
  };
  const Case kCases[] = {
      {"{\"verb\":\"ping\"}", Verb::kPing},
      {"{\"verb\":\"open\",\"dtd\":\"d\",\"memo\":4}", Verb::kOpen},
      {"{\"verb\":\"check\",\"session\":3,\"sigma\":\"s\"}", Verb::kCheck},
      {"{\"verb\":\"implies\",\"session\":3,\"phi\":\"p\"}", Verb::kImplies},
      {"{\"verb\":\"commit\",\"session\":3,\"sigma\":\"s\"}", Verb::kCommit},
      {"{\"verb\":\"rollback\",\"session\":3}", Verb::kRollback},
      {"{\"verb\":\"close\",\"session\":3}", Verb::kClose},
      {"{\"verb\":\"batch\",\"dtd\":\"d\",\"sigmas\":[\"a\",\"b\"]}",
       Verb::kBatch},
      {"{\"verb\":\"stats\"}", Verb::kStats},
      {"{\"verb\":\"shutdown\"}", Verb::kShutdown},
  };
  for (const Case& c : kCases) {
    auto req = ParseRequest(Envelope(c.text));
    ASSERT_TRUE(req.ok()) << c.text << ": " << req.status();
    EXPECT_EQ(req->verb, c.verb) << c.text;
  }
}

TEST(ProtocolTest, MissingRequiredMembersAreNamed) {
  struct Case {
    const char* text;
    const char* needle;  // substring the error message must carry
  };
  const Case kCases[] = {
      {"{}", "verb"},
      {"{\"verb\":\"frobnicate\"}", "frobnicate"},
      {"{\"verb\":\"open\"}", "dtd"},
      {"{\"verb\":\"check\",\"sigma\":\"s\"}", "session"},
      {"{\"verb\":\"check\",\"session\":1}", "sigma"},
      {"{\"verb\":\"implies\",\"session\":1}", "phi"},
      {"{\"verb\":\"commit\",\"session\":1}", "sigma"},
      {"{\"verb\":\"close\"}", "session"},
      {"{\"verb\":\"batch\",\"sigmas\":[]}", "dtd"},
      {"{\"verb\":\"batch\",\"dtd\":\"d\"}", "sigmas"},
      // Wrong types, not just absence.
      {"{\"verb\":\"check\",\"session\":\"one\",\"sigma\":\"s\"}", "session"},
      {"{\"verb\":\"batch\",\"dtd\":\"d\",\"sigmas\":[1]}", "sigmas"},
      {"[1,2,3]", "object"},
  };
  for (const Case& c : kCases) {
    auto req = ParseRequest(Envelope(c.text));
    ASSERT_FALSE(req.ok()) << "accepted: " << c.text;
    EXPECT_EQ(req.status().code(), StatusCode::kInvalidArgument) << c.text;
    EXPECT_NE(std::string(req.status().message()).find(c.needle),
              std::string::npos)
        << c.text << " → " << req.status().message();
  }
}

TEST(ProtocolTest, IdIsEchoedVerbatimIncludingNonIntegers) {
  auto req = ParseRequest(Envelope("{\"verb\":\"ping\",\"id\":\"abc-7\"}"));
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->id.AsString(), "abc-7");
  auto none = ParseRequest(Envelope("{\"verb\":\"ping\"}"));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->id.is_null());
}

TEST(ProtocolTest, WireErrorClassIsAClosedTotalMap) {
  EXPECT_STREQ(WireErrorClass(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(WireErrorClass(StatusCode::kParseError), "INVALID_ARGUMENT");
  EXPECT_STREQ(WireErrorClass(StatusCode::kUndecidableClass),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(WireErrorClass(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(WireErrorClass(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(WireErrorClass(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(WireErrorClass(StatusCode::kResourceExhausted), "UNAVAILABLE");
  EXPECT_STREQ(WireErrorClass(StatusCode::kInternal), "INTERNAL");
}

TEST(ProtocolTest, ErrorResponseShape) {
  JsonValue resp = MakeErrorResponse(JsonValue::Int(9),
                                     Status::Unavailable("try later"),
                                     /*retry_after_ms=*/40);
  EXPECT_EQ(resp.GetInt("id", 0), 9);
  EXPECT_EQ(resp.GetString("error", ""), "UNAVAILABLE");
  EXPECT_EQ(resp.GetInt("retry_after_ms", 0), 40);
  EXPECT_NE(resp.GetString("message", "").find("try later"),
            std::string::npos);

  // retry_after_ms attaches only when positive.
  JsonValue plain = MakeErrorResponse(JsonValue::Null(),
                                      Status::InvalidArgument("bad"));
  EXPECT_EQ(plain.Find("retry_after_ms"), nullptr);
  EXPECT_TRUE(plain.Find("id")->is_null());

  JsonValue ok = MakeOkResponse(JsonValue::Int(3));
  EXPECT_TRUE(ok.GetBool("ok", false));
  EXPECT_EQ(ok.GetInt("id", 0), 3);
}

}  // namespace
}  // namespace net
}  // namespace xicc
