// Unit tests for the witness construction module: minimal trees, the
// Lemma 4.3 synthetic collapse, prefix value sets, and witness invariants.

#include <gtest/gtest.h>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "core/encoding_solver.h"
#include "core/witness.h"
#include "dtd/validator.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(MinimalTreeTest, TeacherMinimalHasOneTeacher) {
  Dtd d1 = workloads::TeacherDtd();
  auto tree = BuildMinimalTree(d1);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_TRUE(ValidateXml(*tree, d1).valid)
      << ValidateXml(*tree, d1).ToString();
  EXPECT_EQ(tree->ExtOfType("teacher").size(), 1u);
  EXPECT_EQ(tree->ExtOfType("subject").size(), 2u);
}

TEST(MinimalTreeTest, StarsCollapseToZero) {
  Dtd school = workloads::SchoolDtd();
  auto tree = BuildMinimalTree(school);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ValidateXml(*tree, school).valid);
  EXPECT_EQ(tree->size(), 1u);  // <school/> alone.
}

TEST(MinimalTreeTest, UnionPicksCheaperBranch) {
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Union(Regex::Elem("heavy"),
                                       Regex::Elem("light")));
  builder.AddElement("heavy",
                     Regex::Concat(Regex::Elem("light"),
                                   Regex::Concat(Regex::Elem("light"),
                                                 Regex::Elem("light"))));
  builder.AddElement("light", Regex::Epsilon());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto tree = BuildMinimalTree(*dtd);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 2u);  // r + light.
  EXPECT_TRUE(tree->ExtOfType("heavy").empty());
}

TEST(MinimalTreeTest, RecursiveEscape) {
  // list → (item, list) | nil — minimal tree bottoms out at nil.
  DtdBuilder builder;
  builder.SetRoot("r");
  builder.AddElement("r", Regex::Elem("list"));
  builder.AddElement("list",
                     Regex::Union(Regex::Concat(Regex::Elem("item"),
                                                Regex::Elem("list")),
                                  Regex::Elem("nil")));
  builder.AddElement("item", Regex::Epsilon());
  builder.AddElement("nil", Regex::Epsilon());
  auto dtd = builder.Build();
  ASSERT_TRUE(dtd.ok());
  auto tree = BuildMinimalTree(*dtd);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(ValidateXml(*tree, *dtd).valid);
  EXPECT_EQ(tree->ExtOfType("item").size(), 0u);
  EXPECT_EQ(tree->ExtOfType("nil").size(), 1u);
}

TEST(MinimalTreeTest, InvalidDtdRefused) {
  EXPECT_FALSE(BuildMinimalTree(workloads::InfiniteDtd()).ok());
}

TEST(MinimalTreeTest, DistinctAttributeValues) {
  Dtd dtd = workloads::WideDtd(5);
  auto tree = BuildMinimalTree(dtd);
  ASSERT_TRUE(tree.ok());
  // All five keys satisfied by construction.
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(
        Evaluate(*tree, Constraint::Key("e" + std::to_string(i), {"id"}))
            .satisfied);
  }
}

TEST(WitnessTest, PrefixValueSetsArePrefixes) {
  Dtd d1 = workloads::TeacherDtd();
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("teacher", {"name"}, "subject",
                                  {"taught_by"}));
  auto enc = BuildCardinalityEncoding(d1, sigma.Normalize());
  ASSERT_TRUE(enc.ok());
  EncodingSolveOptions options;
  auto solved = SolveEncodingSystem(*enc, enc->system, options);
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(solved->feasible);
  auto sets = PrefixValueSets(*enc, *solved);
  ASSERT_EQ(sets.size(), 2u);
  const auto& teacher_set = sets.at({"teacher", "name"});
  const auto& subject_set = sets.at({"subject", "taught_by"});
  // Inclusion realized as prefix containment on the global chain.
  ASSERT_LE(teacher_set.size(), subject_set.size());
  for (size_t i = 0; i < teacher_set.size(); ++i) {
    EXPECT_EQ(teacher_set[i], subject_set[i]);
  }
}

TEST(WitnessTest, NodeBudgetEnforced) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  auto enc = BuildCardinalityEncoding(dtd, sigma);
  ASSERT_TRUE(enc.ok());
  // Demand a large document but cap materialization below it.
  enc->system.AddConstraint(LinearExpr::Var(enc->ext_var.at("item1")),
                            RelOp::kGe, BigInt(500));
  EncodingSolveOptions solve_options;
  auto solved = SolveEncodingSystem(*enc, enc->system, solve_options);
  ASSERT_TRUE(solved.ok());
  ASSERT_TRUE(solved->feasible);
  WitnessOptions witness_options;
  witness_options.max_nodes = 100;
  auto tree = BuildWitnessTree(*enc, *solved, {}, witness_options);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kResourceExhausted);
}

TEST(WitnessTest, AuctionWorkloadEndToEnd) {
  Dtd dtd = workloads::AuctionDtd(2);
  ConstraintSet sigma = workloads::AuctionSigma(2);
  ASSERT_TRUE(sigma.CheckAgainst(dtd).ok());
  ConsistencyOptions options;
  options.min_witness_nodes = 20;
  auto result = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->consistent);
  ASSERT_TRUE(result->witness.has_value());
  EXPECT_TRUE(ValidateXml(*result->witness, dtd).valid);
  EXPECT_TRUE(Evaluate(*result->witness, sigma).satisfied)
      << Evaluate(*result->witness, sigma).ToString();
  // The sizing forced actual content: at least one person exists whenever
  // an item does (seller FK + conditionals).
  if (!result->witness->ExtOfType("item1").empty()) {
    EXPECT_FALSE(result->witness->ExtOfType("person").empty());
  }
}

TEST(WitnessTest, WitnessHasNoSyntheticLabels) {
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(3);
  ConsistencyOptions options;
  options.min_witness_nodes = 25;
  auto result = CheckConsistency(dtd, sigma, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->witness.has_value());
  for (NodeId node = 0; node < result->witness->size(); ++node) {
    if (!result->witness->IsElement(node)) continue;
    EXPECT_TRUE(dtd.HasElement(result->witness->label(node)))
        << "synthetic label leaked: " << result->witness->label(node);
  }
}

}  // namespace
}  // namespace xicc
