#include <gtest/gtest.h>

#include "core/closure.h"
#include "workloads/generators.h"
#include "workloads/paper_examples.h"

namespace xicc {
namespace {

TEST(ClosureTest, TransitiveInclusionSurfaces) {
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
  auto closure = ComputeUnaryClosure(dtd, sigma);
  ASSERT_TRUE(closure.ok()) << closure.status();
  Constraint expected =
      Constraint::Inclusion("item1", {"id"}, "item3", {"id"});
  bool found = false;
  for (const Constraint& c : closure->implied_inclusions) {
    if (c == expected) found = true;
    // Implied inclusions must not repeat stated ones.
    EXPECT_NE(c, sigma.constraints()[0]);
    EXPECT_NE(c, sigma.constraints()[1]);
  }
  EXPECT_TRUE(found);
}

TEST(ClosureTest, SingletonTypesYieldVacuousKeys) {
  // In a chain DTD every type occurs exactly once, so every unary key is
  // implied vacuously (Lemma 3.6 route through refutation).
  Dtd dtd = workloads::ChainDtd(3);
  ConstraintSet sigma;
  ClosureOptions options;
  options.include_inclusions = false;
  auto closure = ComputeUnaryClosure(dtd, sigma, options);
  ASSERT_TRUE(closure.ok()) << closure.status();
  // e1..e3 each carry `id`; all three keys are implied.
  EXPECT_EQ(closure->implied_keys.size(), 3u);
  EXPECT_TRUE(closure->implied_inclusions.empty());
}

TEST(ClosureTest, RepeatableTypesImplyNothing) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  ClosureOptions options;
  options.include_inclusions = false;
  auto closure = ComputeUnaryClosure(dtd, sigma, options);
  ASSERT_TRUE(closure.ok()) << closure.status();
  EXPECT_TRUE(closure->implied_keys.empty());
}

TEST(ClosureTest, RedundantConstraintDetected) {
  Dtd dtd = workloads::CatalogDtd(3);
  ConstraintSet sigma;
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  sigma.Add(Constraint::Inclusion("item2", {"id"}, "item3", {"id"}));
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item3", {"id"}));  // Redundant.
  auto redundant = FindRedundantConstraints(dtd, sigma);
  ASSERT_TRUE(redundant.ok()) << redundant.status();
  ASSERT_EQ(redundant->size(), 1u);
  EXPECT_EQ((*redundant)[0],
            Constraint::Inclusion("item1", {"id"}, "item3", {"id"}));
}

TEST(ClosureTest, IrredundantSetStaysClean) {
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma;
  sigma.Add(Constraint::Key("item1", {"id"}));
  sigma.Add(Constraint::Inclusion("item1", {"id"}, "item2", {"id"}));
  auto redundant = FindRedundantConstraints(dtd, sigma);
  ASSERT_TRUE(redundant.ok()) << redundant.status();
  EXPECT_TRUE(redundant->empty());
}

TEST(ClosureTest, ForeignKeyMakesItsKeyComponentRedundant) {
  // fk item1.ref ⊆ item2.id states key(item2.id) as its component, so the
  // standalone key is redundant — a useful lint for specification authors.
  Dtd dtd = workloads::CatalogDtd(2);
  ConstraintSet sigma = workloads::CatalogFkChainSigma(2);
  auto redundant = FindRedundantConstraints(dtd, sigma);
  ASSERT_TRUE(redundant.ok()) << redundant.status();
  ASSERT_EQ(redundant->size(), 1u);
  EXPECT_EQ((*redundant)[0], Constraint::Key("item2", {"id"}));
}

TEST(ClosureTest, InconsistentSigmaImpliesEverything) {
  // Over D1 + Σ1, every candidate is vacuously implied; the closure makes
  // that visible (it is the caller's cue to check consistency first).
  Dtd dtd = workloads::TeacherDtd();
  ConstraintSet sigma = workloads::TeacherSigma();
  ClosureOptions options;
  options.include_inclusions = false;
  auto closure = ComputeUnaryClosure(dtd, sigma, options);
  ASSERT_TRUE(closure.ok()) << closure.status();
  // teacher.name and subject.taught_by keys are stated (via FK expansion);
  // no further pairs exist, so nothing new shows — extend the DTD view by
  // asking with a fresh Σ subset instead: drop the subject key and the
  // subject key becomes implied? No — Σ1 minus it is consistent and does
  // not imply it. Keep the vacuous check on the full Σ1: zero *new* keys
  // since both pairs are already stated.
  EXPECT_TRUE(closure->implied_keys.empty());
}

TEST(ClosureTest, MultiAttributeSigmaRefused) {
  Dtd dtd = workloads::SchoolDtd();
  auto closure = ComputeUnaryClosure(dtd, workloads::SchoolSigma());
  ASSERT_FALSE(closure.ok());
  EXPECT_EQ(closure.status().code(), StatusCode::kUndecidableClass);
}

}  // namespace
}  // namespace xicc
