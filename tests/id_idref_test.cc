#include <gtest/gtest.h>

#include "constraints/id_idref.h"
#include "core/consistency.h"
#include "dtd/dtd_parser.h"

namespace xicc {
namespace {

TEST(AttrKindTest, ParserRecordsKinds) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (a*, b*)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ATTLIST a id ID #REQUIRED note CDATA #IMPLIED>
    <!ATTLIST b ref IDREF #REQUIRED kind (x|y) "x" n NMTOKEN #IMPLIED>
  )");
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  EXPECT_EQ(dtd->AttributeKind("a", "id"), AttrKind::kId);
  EXPECT_EQ(dtd->AttributeKind("a", "note"), AttrKind::kCdata);
  EXPECT_EQ(dtd->AttributeKind("b", "ref"), AttrKind::kIdref);
  EXPECT_EQ(dtd->AttributeKind("b", "kind"), AttrKind::kOther);
  EXPECT_EQ(dtd->AttributeKind("b", "n"), AttrKind::kOther);
  // Undeclared pairs default to CDATA.
  EXPECT_EQ(dtd->AttributeKind("r", "whatever"), AttrKind::kCdata);
}

TEST(AttrKindTest, KindsSurviveToStringRoundTrip) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (a*)>
    <!ELEMENT a EMPTY>
    <!ATTLIST a id ID #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto reparsed = ParseDtd(dtd->ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status() << "\n" << dtd->ToString();
  EXPECT_EQ(reparsed->AttributeKind("a", "id"), AttrKind::kId);
}

TEST(IdIdrefTest, SingleIdTypeTranslatesExactly) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT library (book*, loan*)>
    <!ELEMENT book EMPTY>
    <!ELEMENT loan EMPTY>
    <!ATTLIST book isbn ID #REQUIRED>
    <!ATTLIST loan of IDREF #REQUIRED who CDATA #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_TRUE(translation.ok()) << translation.status();
  ASSERT_EQ(translation->constraints.size(), 2u);
  EXPECT_EQ(translation->constraints.constraints()[0].ToString(),
            "book.isbn -> book");
  EXPECT_EQ(translation->constraints.constraints()[1].kind,
            ConstraintKind::kForeignKey);
  EXPECT_TRUE(translation->notes.empty());

  // The derived constraints feed straight into the checker.
  auto result = CheckConsistency(*dtd, translation->constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
}

TEST(IdIdrefTest, MultipleIdTypesNoteTheApproximation) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (a*, b*)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ATTLIST a id ID #REQUIRED>
    <!ATTLIST b id ID #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_TRUE(translation.ok()) << translation.status();
  EXPECT_EQ(translation->constraints.size(), 2u);
  ASSERT_EQ(translation->notes.size(), 1u);
  EXPECT_NE(translation->notes[0].find("cross-type"), std::string::npos);
}

TEST(IdIdrefTest, UnscopedIdrefRefused) {
  // Two ID-bearing types + an IDREF: the footnote-1 limitation.
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (a*, b*, c*)>
    <!ELEMENT a EMPTY>
    <!ELEMENT b EMPTY>
    <!ELEMENT c EMPTY>
    <!ATTLIST a id ID #REQUIRED>
    <!ATTLIST b id ID #REQUIRED>
    <!ATTLIST c ref IDREF #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_FALSE(translation.ok());
  EXPECT_EQ(translation.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(translation.status().message().find("unscoped"),
            std::string::npos);
}

TEST(IdIdrefTest, IdrefWithoutAnyIdRefused) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r (c*)>
    <!ELEMENT c EMPTY>
    <!ATTLIST c ref IDREF #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_FALSE(translation.ok());
  EXPECT_NE(translation.status().message().find("no ID attribute"),
            std::string::npos);
}

TEST(IdIdrefTest, NoIdsNoConstraints) {
  auto dtd = ParseDtd(R"(
    <!ELEMENT r EMPTY>
    <!ATTLIST r name CDATA #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_TRUE(translation.ok());
  EXPECT_TRUE(translation->constraints.empty());
}

TEST(IdIdrefTest, DerivedConstraintsCatchDtdInteraction) {
  // The D1 interaction reconstructed through ID/IDREF: taught_by as an
  // IDREF to the teacher ID gives the *inclusion*; adding a key on
  // subject.taught_by via ID on subject would be the inconsistent Σ1 — but
  // an ID attribute on subject makes two ID types (refused). Instead verify
  // the derived FK alone is consistent over D1.
  auto dtd = ParseDtd(R"(
    <!ELEMENT teachers (teacher+)>
    <!ELEMENT teacher (teach, research)>
    <!ELEMENT teach (subject, subject)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT research (#PCDATA)>
    <!ATTLIST teacher name ID #REQUIRED>
    <!ATTLIST subject taught_by IDREF #REQUIRED>
  )");
  ASSERT_TRUE(dtd.ok());
  auto translation = DeriveIdConstraints(*dtd);
  ASSERT_TRUE(translation.ok()) << translation.status();
  ASSERT_EQ(translation->constraints.size(), 2u);
  auto result = CheckConsistency(*dtd, translation->constraints);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->consistent);
}

}  // namespace
}  // namespace xicc
