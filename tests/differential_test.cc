// Differential testing: the consistency checker vs a bounded brute-force
// model finder. For tiny DTDs we can enumerate EVERY valid tree shape up to
// a node budget and EVERY canonical attribute-value assignment over the
// mentioned pairs; if that exhaustive search finds a model, the checker
// must answer "consistent" — and since every checker "consistent" comes
// with an independently verified witness, the two directions together pin
// the decision procedure on the whole bounded space.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "constraints/evaluator.h"
#include "core/consistency.h"
#include "dtd/validator.h"
#include "workloads/generators.h"

namespace xicc {
namespace {

/// A tree shape: element label + ordered children (text children are
/// represented by label "S").
struct Shape {
  std::string label;
  std::vector<Shape> children;
};

size_t CountElements(const Shape& shape) {
  if (shape.label == "S") return 0;
  size_t total = 1;
  for (const Shape& child : shape.children) total += CountElements(child);
  return total;
}

/// All words in L(regex) of length ≤ max_len (lists of child symbols).
void Words(const Regex& regex, size_t max_len,
           std::vector<std::vector<std::string>>* out) {
  switch (regex.kind()) {
    case Regex::Kind::kEpsilon:
      out->push_back({});
      return;
    case Regex::Kind::kString:
      if (max_len >= 1) out->push_back({"S"});
      return;
    case Regex::Kind::kElement:
      if (max_len >= 1) out->push_back({regex.name()});
      return;
    case Regex::Kind::kUnion: {
      Words(*regex.left(), max_len, out);
      Words(*regex.right(), max_len, out);
      return;
    }
    case Regex::Kind::kConcat: {
      std::vector<std::vector<std::string>> lefts, rights;
      Words(*regex.left(), max_len, &lefts);
      for (const auto& left : lefts) {
        rights.clear();
        Words(*regex.right(), max_len - left.size(), &rights);
        for (const auto& right : rights) {
          std::vector<std::string> word = left;
          word.insert(word.end(), right.begin(), right.end());
          out->push_back(std::move(word));
        }
      }
      return;
    }
    case Regex::Kind::kStar: {
      out->push_back({});
      std::vector<std::vector<std::string>> units;
      Words(*regex.child(), max_len, &units);
      // Iteratively extend by one unit; dedupe not needed for soundness.
      std::vector<std::vector<std::string>> current = {{}};
      for (;;) {
        std::vector<std::vector<std::string>> next;
        for (const auto& prefix : current) {
          for (const auto& unit : units) {
            if (unit.empty()) continue;  // ε-units loop forever.
            if (prefix.size() + unit.size() > max_len) continue;
            std::vector<std::string> word = prefix;
            word.insert(word.end(), unit.begin(), unit.end());
            out->push_back(word);
            next.push_back(std::move(word));
          }
        }
        if (next.empty()) return;
        current = std::move(next);
      }
    }
  }
}

/// All trees rooted at an element of `type` using ≤ budget element nodes.
void EnumerateShapes(const Dtd& dtd, const std::string& type, size_t budget,
                     std::vector<Shape>* out);

/// All child-forests realizing `word[from..]` within `budget` element nodes.
void EnumerateForests(const Dtd& dtd, const std::vector<std::string>& word,
                      size_t from, size_t budget,
                      std::vector<std::vector<Shape>>* out) {
  if (from == word.size()) {
    out->push_back({});
    return;
  }
  const std::string& symbol = word[from];
  std::vector<Shape> heads;
  if (symbol == "S") {
    heads.push_back({"S", {}});
  } else {
    EnumerateShapes(dtd, symbol, budget, &heads);
  }
  for (const Shape& head : heads) {
    size_t used = CountElements(head);
    std::vector<std::vector<Shape>> tails;
    EnumerateForests(dtd, word, from + 1, budget - used, &tails);
    for (auto& tail : tails) {
      std::vector<Shape> forest;
      forest.push_back(head);
      forest.insert(forest.end(), tail.begin(), tail.end());
      out->push_back(std::move(forest));
    }
  }
}

void EnumerateShapes(const Dtd& dtd, const std::string& type, size_t budget,
                     std::vector<Shape>* out) {
  if (budget == 0) return;
  std::vector<std::vector<std::string>> words;
  Words(*dtd.ContentOf(type), budget - 1, &words);
  for (const auto& word : words) {
    std::vector<std::vector<Shape>> forests;
    EnumerateForests(dtd, word, 0, budget - 1, &forests);
    for (auto& forest : forests) {
      out->push_back({type, std::move(forest)});
    }
  }
}

void ShapeToTree(const Shape& shape, XmlTree* tree, NodeId node) {
  for (const Shape& child : shape.children) {
    if (child.label == "S") {
      tree->AddText(node, "t");
      continue;
    }
    NodeId id = tree->AddElement(node, child.label);
    ShapeToTree(child, tree, id);
  }
}

/// Attribute slots of the mentioned pairs; a canonical domain of size
/// #slots suffices (satisfaction depends only on the (in)equality pattern).
struct Slot {
  NodeId node;
  std::string attr;
};

bool SearchAssignments(XmlTree* tree, const std::vector<Slot>& slots,
                       size_t index, size_t domain,
                       const ConstraintSet& sigma) {
  if (index == slots.size()) {
    return Evaluate(*tree, sigma).satisfied;
  }
  for (size_t v = 0; v < domain; ++v) {
    tree->SetAttribute(slots[index].node, slots[index].attr,
                       "v" + std::to_string(v));
    if (SearchAssignments(tree, slots, index + 1, domain, sigma)) return true;
  }
  return false;
}

/// True iff some tree with ≤ max_elements elements models (dtd, sigma).
/// `gave_up` reports instances whose assignment space is too large.
bool BoundedModelExists(const Dtd& dtd, const ConstraintSet& sigma,
                        size_t max_elements, bool* gave_up) {
  *gave_up = false;
  std::set<std::pair<std::string, std::string>> mentioned;
  ConstraintSet normalized = sigma.Normalize();
  for (const Constraint& c : normalized.constraints()) {
    mentioned.emplace(c.type1, c.attrs1[0]);
    if (!c.type2.empty()) mentioned.emplace(c.type2, c.attrs2[0]);
  }

  std::vector<Shape> shapes;
  EnumerateShapes(dtd, dtd.root(), max_elements, &shapes);
  if (shapes.size() > 800) {
    // Too many shapes to exhaust; a found model below stays conclusive, a
    // miss does not.
    *gave_up = true;
    shapes.resize(800);
  }
  for (const Shape& shape : shapes) {
    XmlTree tree(shape.label);
    ShapeToTree(shape, &tree, tree.root());
    // Fill every declared attribute with a default; constrained slots are
    // then searched exhaustively.
    int fresh = 0;
    std::vector<Slot> slots;
    for (NodeId node = 0; node < tree.size(); ++node) {
      if (!tree.IsElement(node)) continue;
      for (const std::string& attr : dtd.AttributesOf(tree.label(node))) {
        if (mentioned.count({tree.label(node), attr}) > 0) {
          slots.push_back({node, attr});
        } else {
          tree.SetAttribute(node, attr, "fresh" + std::to_string(++fresh));
        }
      }
    }
    if (slots.size() > 5) {
      *gave_up = true;
      continue;
    }
    size_t domain = slots.empty() ? 1 : slots.size();
    if (SearchAssignments(&tree, slots, 0, domain, sigma)) {
      // Cross-check: the model we found really is valid.
      EXPECT_TRUE(ValidateXml(tree, dtd).valid);
      return true;
    }
  }
  return false;
}

/// Tiny random DTDs: 3 element types below a root, shallow content models.
Dtd TinyRandomDtd(std::mt19937_64* rng) {
  DtdBuilder builder;
  builder.SetRoot("r");
  auto atom = [&](int i) { return Regex::Elem("t" + std::to_string(i)); };
  std::uniform_int_distribution<int> pick(0, 5);
  auto content = [&](int above) -> RegexPtr {
    // Types reference strictly higher indices (DAG → always productive).
    std::uniform_int_distribution<int> ref(above, 3);
    switch (pick(*rng)) {
      case 0:
        return Regex::Epsilon();
      case 1:
        return above > 3 ? Regex::Epsilon() : Regex::Star(atom(ref(*rng)));
      case 2:
        return above > 3 ? Regex::Epsilon()
                         : Regex::Union(atom(ref(*rng)), Regex::Epsilon());
      case 3: {
        if (above > 3) return Regex::Epsilon();
        int a = ref(*rng);
        int b = ref(*rng);
        return Regex::Concat(atom(a), atom(b));
      }
      case 4:
        return above > 3 ? Regex::Epsilon()
                         : Regex::Concat(atom(ref(*rng)),
                                         Regex::Star(atom(ref(*rng))));
      default:
        return above > 3 ? Regex::Epsilon() : atom(ref(*rng));
    }
  };
  builder.AddElement("r", content(1));
  for (int i = 1; i <= 3; ++i) {
    builder.AddElement("t" + std::to_string(i), content(i + 1));
    builder.AddAttribute("t" + std::to_string(i), "a");
  }
  auto dtd = builder.Build();
  EXPECT_TRUE(dtd.ok());
  return std::move(dtd).value();
}

ConstraintSet TinyRandomSigma(std::mt19937_64* rng) {
  ConstraintSet sigma;
  std::uniform_int_distribution<int> type_pick(1, 3);
  std::uniform_int_distribution<int> kind_pick(0, 4);
  std::uniform_int_distribution<int> count_pick(1, 3);
  int count = count_pick(*rng);
  for (int i = 0; i < count; ++i) {
    std::string t1 = "t" + std::to_string(type_pick(*rng));
    std::string t2 = "t" + std::to_string(type_pick(*rng));
    switch (kind_pick(*rng)) {
      case 0:
        sigma.Add(Constraint::Key(t1, {"a"}));
        break;
      case 1:
        sigma.Add(Constraint::Inclusion(t1, {"a"}, t2, {"a"}));
        break;
      case 2:
        sigma.Add(Constraint::ForeignKey(t1, {"a"}, t2, {"a"}));
        break;
      case 3:
        sigma.Add(Constraint::NegKey(t1, {"a"}));
        break;
      default:
        sigma.Add(Constraint::NegInclusion(t1, {"a"}, t2, {"a"}));
        break;
    }
  }
  return sigma;
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, BruteForceModelImpliesCheckerSat) {
  std::mt19937_64 rng(GetParam());
  constexpr size_t kMaxElements = 5;
  int compared = 0;
  for (int trial = 0; trial < 12; ++trial) {
    Dtd dtd = TinyRandomDtd(&rng);
    ConstraintSet sigma = TinyRandomSigma(&rng);

    bool gave_up = false;
    bool brute_sat = BoundedModelExists(dtd, sigma, kMaxElements, &gave_up);

    ConsistencyOptions options;
    auto checker = CheckConsistency(dtd, sigma, options);
    ASSERT_TRUE(checker.ok())
        << checker.status() << "\nDTD:\n"
        << dtd.ToString() << "\nSigma:\n"
        << sigma.ToString();

    if (brute_sat) {
      // Completeness on the bounded space: a real model exists, so the
      // checker must find the specification consistent.
      EXPECT_TRUE(checker->consistent)
          << "brute force found a model but the checker said UNSAT\nDTD:\n"
          << dtd.ToString() << "Sigma:\n"
          << sigma.ToString();
      ++compared;
    } else if (!gave_up && checker->consistent &&
               checker->witness.has_value()) {
      // The checker's (verified) witness must simply be bigger than the
      // enumeration bound — otherwise the enumerator missed it.
      size_t elements = 0;
      for (NodeId node = 0; node < checker->witness->size(); ++node) {
        if (checker->witness->IsElement(node)) ++elements;
      }
      EXPECT_GT(elements, kMaxElements)
          << "checker witness fits the bound but brute force saw no model\n"
          << "DTD:\n"
          << dtd.ToString() << "Sigma:\n"
          << sigma.ToString();
      ++compared;
    }
  }
  // The sweep must actually compare something.
  EXPECT_GT(compared, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

}  // namespace
}  // namespace xicc
