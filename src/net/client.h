#pragma once

// Client library for xiccd: one connection, synchronous call/response, and
// a retrying wrapper that cooperates with the server's admission control.
//
// The retry loop implements the contract the daemon's UNAVAILABLE
// responses assume:
//
//   - retry_after_ms from the server is honored as the floor for the next
//     backoff (the server knows its drain/overload horizon; the client
//     does not);
//   - otherwise capped exponential backoff with deterministic jitter
//     (seeded splitmix64 — reproducible in tests, decorrelated across
//     clients by seed);
//   - transport failures (connection refused/reset mid-call) count as
//     UNAVAILABLE and trigger a reconnect before the next attempt;
//   - INVALID_ARGUMENT / DEADLINE_EXCEEDED / CANCELLED are terminal — the
//     request itself is wrong or spent, and retrying would duplicate work
//     (none of the daemon's verbs are made idempotent-by-retry for a spent
//     deadline).
//
// Blocking behavior: every wait is bounded (socket waits go through
// base/socket.h PollFds slices; backoff sleeps through SleepFor with the
// caller's optional CancelToken), so a caller can always cancel a retry
// loop promptly.

#include <cstdint>
#include <memory>
#include <string>

#include "base/deadline.h"
#include "base/socket.h"
#include "base/status.h"
#include "net/frame.h"
#include "net/json.h"

namespace xicc {
namespace net {

struct ClientOptions {
  uint16_t port = 0;
  int64_t connect_timeout_ms = 2'000;
  /// Per-call budget for writing the request and reading the response.
  int64_t io_timeout_ms = 30'000;
  size_t max_line_bytes = 1 << 20;
};

struct RetryPolicy {
  int max_attempts = 8;
  int64_t initial_backoff_ms = 10;
  int64_t max_backoff_ms = 1'000;
  /// Deterministic jitter stream; give each concurrent client its own seed.
  uint64_t jitter_seed = 1;
  /// Overall wall budget across attempts and backoffs (0 = none).
  int64_t overall_deadline_ms = 0;
  /// Optional cooperative cancel for the whole retry loop.
  const CancelToken* cancel = nullptr;
};

struct RetryStats {
  int attempts = 0;
  int unavailable = 0;       ///< UNAVAILABLE responses absorbed by backoff.
  int transport_failures = 0;
  int64_t backoff_slept_ms = 0;
  int64_t server_hints = 0;  ///< Retries whose floor came from retry_after_ms.
};

class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static Result<Client> Connect(const ClientOptions& options);

  Client(Client&&) noexcept = default;
  Client& operator=(Client&&) noexcept = default;

  bool connected() const { return fd_.valid(); }

  /// Sends one request envelope, awaits its response line. Transport
  /// failures (reset, EOF, io_timeout_ms) are kUnavailable and leave the
  /// client disconnected; protocol-level errors are the parsed response
  /// object, NOT a bad Status — the caller inspects "error"/"ok".
  Result<JsonValue> Call(const JsonValue& request);

  /// Same, but sends `line` verbatim (malformed-frame tests).
  Result<JsonValue> CallRaw(const std::string& line);

  /// Call with the retry contract described above. Reconnects as needed.
  /// `stats`, when non-null, receives the loop's accounting. The final
  /// Status is: the last UNAVAILABLE turned kUnavailable when attempts or
  /// the overall budget run out; kCancelled if `policy.cancel` fired.
  Result<JsonValue> CallWithRetry(const JsonValue& request,
                                  const RetryPolicy& policy,
                                  RetryStats* stats = nullptr);

  /// Drops the connection (next CallWithRetry reconnects).
  void Disconnect() { fd_.Close(); }

  /// Half-closes the write side, leaving reads open — the "client gave up
  /// mid-request" shape the chaos soak injects.
  void ShutdownWrite();

 private:
  explicit Client(const ClientOptions& options)
      : options_(options),
        lines_(std::make_unique<LineBuffer>(options.max_line_bytes)) {}

  Status EnsureConnected();
  Result<JsonValue> RoundTrip(const std::string& line);

  ClientOptions options_;
  Fd fd_;
  /// Heap-held so the Client stays movable (LineBuffer is not).
  std::unique_ptr<LineBuffer> lines_;
};

}  // namespace net
}  // namespace xicc
