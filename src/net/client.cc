#include "net/client.h"

#include <algorithm>

namespace xicc {
namespace net {

namespace {

/// splitmix64 — the repo's standard deterministic mixer; used here to
/// decorrelate concurrent clients' backoff schedules reproducibly.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Result<Client> Client::Connect(const ClientOptions& options) {
  Client client(options);
  XICC_RETURN_IF_ERROR(client.EnsureConnected());
  return client;
}

Status Client::EnsureConnected() {
  if (fd_.valid()) return Status::Ok();
  XICC_ASSIGN_OR_RETURN(fd_,
                        TcpConnect(options_.port, options_.connect_timeout_ms));
  // A fresh connection starts a fresh byte stream.
  lines_ = std::make_unique<LineBuffer>(options_.max_line_bytes);
  return Status::Ok();
}

void Client::ShutdownWrite() { HalfCloseWrite(fd_); }

Result<JsonValue> Client::Call(const JsonValue& request) {
  return CallRaw(request.Dump());
}

Result<JsonValue> Client::CallRaw(const std::string& line) {
  XICC_RETURN_IF_ERROR(EnsureConnected());
  return RoundTrip(line);
}

Result<JsonValue> Client::RoundTrip(const std::string& line) {
  const Status sent = WriteAll(fd_, line + "\n", options_.io_timeout_ms);
  if (!sent.ok()) {
    Disconnect();
    return sent;
  }
  const Deadline deadline = Deadline::After(options_.io_timeout_ms);
  std::string response;
  for (;;) {
    const LineBuffer::Next next = lines_->NextLine(&response);
    if (next == LineBuffer::Next::kLine) break;
    if (next == LineBuffer::Next::kOversize) {
      Disconnect();
      return Status::Unavailable("oversize response frame");
    }
    if (deadline.Expired()) {
      Disconnect();
      return Status::Unavailable("timed out awaiting response");
    }
    std::vector<PollEvent> events;
    std::vector<PollFd> wait = {{fd_.get(), true, false}};
    XICC_ASSIGN_OR_RETURN(size_t n,
                          PollFds(wait, deadline.RemainingMs(), &events));
    if (n == 0) continue;  // Timeout slice/EINTR; deadline re-checked above.
    char buf[16 * 1024];
    const IoResult io = ReadSome(fd_, buf, sizeof(buf));
    if (io.status == IoStatus::kOk) {
      lines_->Append(buf, io.bytes);
      continue;
    }
    if (io.status == IoStatus::kWouldBlock) continue;
    Disconnect();
    return Status::Unavailable(io.status == IoStatus::kEof
                                   ? "connection closed by server"
                                   : "connection reset");
  }
  Result<JsonValue> parsed = ParseJson(response);
  if (!parsed.ok()) {
    // The server never emits malformed JSON; garbage means the transport
    // is compromised, so it is treated like a reset.
    Disconnect();
    return Status::Unavailable("unparseable response frame");
  }
  return parsed;
}

Result<JsonValue> Client::CallWithRetry(const JsonValue& request,
                                        const RetryPolicy& policy,
                                        RetryStats* stats) {
  RetryStats local;
  RetryStats& tally = stats != nullptr ? *stats : local;
  tally = RetryStats();
  const Deadline overall = policy.overall_deadline_ms > 0
                               ? Deadline::After(policy.overall_deadline_ms)
                               : Deadline::Infinite();
  uint64_t jitter_state = policy.jitter_seed;
  Status last = Status::Unavailable("no attempts made");
  for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
    if (policy.cancel != nullptr && policy.cancel->Cancelled()) {
      return Status::Cancelled("retry loop cancelled");
    }
    if (overall.Expired()) break;
    ++tally.attempts;
    int64_t server_floor_ms = 0;
    Result<JsonValue> response = Call(request);
    if (response.ok()) {
      if (response->GetString("error", "") != "UNAVAILABLE") {
        return response;  // A result or a terminal error: done either way.
      }
      ++tally.unavailable;
      server_floor_ms = response->GetInt("retry_after_ms", 0);
      last = Status::Unavailable(response->GetString("message", "shed"));
    } else if (response.status().code() == StatusCode::kUnavailable) {
      ++tally.transport_failures;
      last = response.status();
    } else {
      return response.status();  // Non-retryable transport problem.
    }
    if (attempt + 1 >= policy.max_attempts) break;
    // Capped exponential backoff with full jitter in the upper half, floored
    // by the server's own hint when it gave one.
    int64_t backoff = policy.initial_backoff_ms;
    for (int i = 0; i < attempt && backoff < policy.max_backoff_ms; ++i) {
      backoff *= 2;
    }
    backoff = std::min(backoff, policy.max_backoff_ms);
    jitter_state = Mix(jitter_state);
    int64_t delay = backoff / 2 +
                    static_cast<int64_t>(jitter_state %
                                         static_cast<uint64_t>(
                                             backoff / 2 + 1));
    if (server_floor_ms > delay) {
      delay = server_floor_ms;
      ++tally.server_hints;
    }
    const int64_t remaining = overall.RemainingMs();
    if (remaining != INT64_MAX && delay > remaining) break;
    tally.backoff_slept_ms += delay;
    if (SleepFor(delay, policy.cancel)) {
      return Status::Cancelled("retry loop cancelled during backoff");
    }
  }
  return last;
}

}  // namespace net
}  // namespace xicc
