#include "net/frame.h"

namespace xicc {
namespace net {

void LineBuffer::Append(const char* data, size_t n) {
  if (skipping_) {
    // Discard until (and including) the newline that ends the oversize
    // line, then resume buffering with whatever follows it.
    for (size_t i = 0; i < n; ++i) {
      if (data[i] == '\n') {
        skipping_ = false;
        buf_.append(data + i + 1, n - i - 1);
        return;
      }
    }
    return;  // Still inside the oversize line; all n bytes dropped.
  }
  buf_.append(data, n);
}

LineBuffer::Next LineBuffer::NextLine(std::string* line) {
  const size_t nl = buf_.find('\n', scan_from_);
  if (nl != std::string::npos) {
    if (nl > max_) {
      // The line completed but over the cap: drop it whole; the stream is
      // already resynchronized at the byte after the newline.
      buf_.erase(0, nl + 1);
      scan_from_ = 0;
      return Next::kOversize;
    }
    line->assign(buf_, 0, nl);
    // Tolerate CRLF peers.
    if (!line->empty() && line->back() == '\r') line->pop_back();
    buf_.erase(0, nl + 1);
    scan_from_ = 0;
    return Next::kLine;
  }
  scan_from_ = buf_.size();
  if (buf_.size() > max_) {
    // Unterminated and already over the cap: report once, switch to skip
    // mode until the newline eventually arrives.
    buf_.clear();
    scan_from_ = 0;
    skipping_ = true;
    return Next::kOversize;
  }
  return Next::kNeedMore;
}

}  // namespace net
}  // namespace xicc
