#pragma once

// Minimal JSON document model + limit-enforcing parser for the xiccd wire
// protocol (one JSON object per line, both directions).
//
// The parser is the daemon's first line of fault tolerance: every byte that
// arrives over a socket goes through ParseJson before anything else looks
// at it, and ParseJson is total — malformed, truncated, hostile, or
// absurdly nested input yields Status::InvalidArgument with a position,
// never a crash, never unbounded recursion (depth is capped by
// JsonLimits::max_depth, the recursion budget), never unbounded memory
// (the frame layer caps line length before the parser ever runs).
//
// Scope: exactly what the protocol needs. Objects preserve insertion order
// (responses render deterministically), numbers are int64 when they fit and
// double otherwise, strings support the standard escapes plus \uXXXX
// (decoded to UTF-8). No comments, no trailing commas, no NaN/Infinity —
// anything RFC 8259 rejects, this parser rejects.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace xicc {
namespace net {

/// One JSON value; a small tagged union. Copyable (trees are small —
/// protocol envelopes, not documents).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b);
  static JsonValue Int(int64_t i);
  static JsonValue Double(double d);
  static JsonValue Str(std::string s);
  static JsonValue Array();
  static JsonValue Object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_int() const { return kind_ == Kind::kInt; }
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  /// kInt → the value; kDouble → truncated; anything else → 0.
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const {
    return object_;
  }

  // -- Object access ------------------------------------------------------

  /// The member named `key`, or nullptr if absent / not an object.
  const JsonValue* Find(std::string_view key) const;
  /// Typed convenience lookups with defaults; absent or wrong-typed members
  /// yield the fallback (the caller validates required members explicitly).
  int64_t GetInt(std::string_view key, int64_t fallback) const;
  bool GetBool(std::string_view key, bool fallback) const;
  std::string GetString(std::string_view key,
                        std::string_view fallback) const;

  // -- Building -----------------------------------------------------------

  /// Appends (object) / replaces (existing key) a member. Self-converts a
  /// null value to an object first, so builders can chain from {}.
  JsonValue& Set(std::string_view key, JsonValue v);
  /// Appends an element; self-converts null to array.
  JsonValue& Push(JsonValue v);

  /// Compact single-line serialization (no spaces). Object members render
  /// in insertion order, so equal builds produce equal bytes.
  std::string Dump() const;

 private:
  void DumpTo(std::string* out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0.0;  // xicc-lint: allow(exact-arithmetic)
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

struct JsonLimits {
  /// Maximum nesting depth of arrays/objects; exceeding it is
  /// kInvalidArgument ("nested too deeply"), not a stack overflow.
  size_t max_depth = 32;
  /// Maximum total container slots (array elements + object members)
  /// allocated by one parse; a bound on parser memory independent of the
  /// frame-layer byte cap.
  size_t max_nodes = 1 << 16;
};

/// Parses exactly one JSON value spanning all of `text` (leading/trailing
/// whitespace allowed, trailing garbage rejected). Total: every failure is
/// kInvalidArgument naming the byte offset.
Result<JsonValue> ParseJson(std::string_view text,
                            const JsonLimits& limits = {});

}  // namespace net
}  // namespace xicc
