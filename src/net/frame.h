#pragma once

// Newline-delimited framing with bounded buffering and oversize recovery.
//
// xiccd speaks one JSON object per '\n'-terminated line. The frame layer
// sits between the raw socket reads and the JSON parser and enforces the
// protocol's byte-level fault-tolerance contract:
//
//   - A line longer than the cap is reported ONCE (Next::kOversize) and
//     then discarded byte-by-byte until its terminating newline, so the
//     buffer never grows past max_line_bytes + one read's worth and the
//     connection resynchronizes on the next line instead of being dropped.
//   - Bytes may arrive in any fragmentation (short reads, one byte at a
//     time, many lines per read) — framing is a pure function of the byte
//     stream, not of read boundaries.

#include <cstddef>
#include <string>

namespace xicc {
namespace net {

class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes) : max_(max_line_bytes) {}

  /// Appends raw bytes from the transport.
  void Append(const char* data, size_t n);

  enum class Next {
    kLine,      ///< `*line` holds a complete line (newline stripped).
    kNeedMore,  ///< No complete line buffered; read more.
    /// The current line exceeded max_line_bytes. Reported exactly once per
    /// offending line; the line's bytes (those buffered and those still in
    /// flight) are discarded through its terminating newline.
    kOversize,
  };

  /// Pops the next complete line. Call in a loop until kNeedMore.
  Next NextLine(std::string* line);

  size_t buffered_bytes() const { return buf_.size(); }
  /// True while discarding an oversize line's remainder.
  bool skipping() const { return skipping_; }

 private:
  std::string buf_;
  size_t max_;
  size_t scan_from_ = 0;  // No '\n' before this offset; makes Append+
                          // NextLine linear over the stream, not quadratic.
  bool skipping_ = false;
};

}  // namespace net
}  // namespace xicc
