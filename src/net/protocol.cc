#include "net/protocol.h"

namespace xicc {
namespace net {

const char* VerbName(Verb v) {
  switch (v) {
    case Verb::kPing:
      return "ping";
    case Verb::kOpen:
      return "open";
    case Verb::kCheck:
      return "check";
    case Verb::kImplies:
      return "implies";
    case Verb::kCommit:
      return "commit";
    case Verb::kRollback:
      return "rollback";
    case Verb::kClose:
      return "close";
    case Verb::kBatch:
      return "batch";
    case Verb::kStats:
      return "stats";
    case Verb::kShutdown:
      return "shutdown";
  }
  return "?";
}

namespace {

Status Missing(const char* verb, const char* field) {
  return Status::InvalidArgument(std::string(verb) + ": missing or " +
                                 "mistyped required member \"" + field +
                                 "\"");
}

Result<std::string> RequireString(const JsonValue& env, const char* verb,
                                  const char* field) {
  const JsonValue* v = env.Find(field);
  if (v == nullptr || !v->is_string()) return Missing(verb, field);
  return v->AsString();
}

Status ReadNonNegative(const JsonValue& env, const char* field,
                       int64_t* out) {
  const JsonValue* v = env.Find(field);
  if (v == nullptr) return Status::Ok();
  if (!v->is_int() || v->AsInt() < 0) {
    return Status::InvalidArgument(std::string("member \"") + field +
                                   "\" must be a non-negative integer");
  }
  *out = v->AsInt();
  return Status::Ok();
}

Status ReadSize(const JsonValue& env, const char* field, size_t* out) {
  int64_t v = -1;
  XICC_RETURN_IF_ERROR(ReadNonNegative(env, field, &v));
  if (v >= 0) *out = static_cast<size_t>(v);
  return Status::Ok();
}

}  // namespace

Result<Request> ParseRequest(const JsonValue& envelope) {
  if (!envelope.is_object()) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  Request req;
  if (const JsonValue* id = envelope.Find("id"); id != nullptr) {
    req.id = *id;
  }

  const JsonValue* verb = envelope.Find("verb");
  if (verb == nullptr || !verb->is_string()) {
    return Status::InvalidArgument(
        "request needs a string \"verb\" member "
        "(ping|open|check|implies|commit|rollback|close|batch|stats|"
        "shutdown)");
  }
  const std::string& name = verb->AsString();
  if (name == "ping") {
    req.verb = Verb::kPing;
  } else if (name == "open") {
    req.verb = Verb::kOpen;
  } else if (name == "check") {
    req.verb = Verb::kCheck;
  } else if (name == "implies") {
    req.verb = Verb::kImplies;
  } else if (name == "commit") {
    req.verb = Verb::kCommit;
  } else if (name == "rollback") {
    req.verb = Verb::kRollback;
  } else if (name == "close") {
    req.verb = Verb::kClose;
  } else if (name == "batch") {
    req.verb = Verb::kBatch;
  } else if (name == "stats") {
    req.verb = Verb::kStats;
  } else if (name == "shutdown") {
    req.verb = Verb::kShutdown;
  } else {
    return Status::InvalidArgument("unknown verb \"" + name + "\"");
  }
  const char* vn = VerbName(req.verb);

  // Common optional members (validated wherever they appear).
  if (const JsonValue* s = envelope.Find("session"); s != nullptr) {
    if (!s->is_int() || s->AsInt() < 0) {
      return Status::InvalidArgument(
          "member \"session\" must be a non-negative integer");
    }
    req.session = static_cast<uint64_t>(s->AsInt());
    req.has_session = true;
  }
  if (const JsonValue* d = envelope.Find("dtd"); d != nullptr) {
    if (!d->is_string()) return Missing(vn, "dtd");
    req.dtd = d->AsString();
    req.has_dtd = true;
  }
  if (const JsonValue* s = envelope.Find("sigma"); s != nullptr) {
    if (!s->is_string()) return Missing(vn, "sigma");
    req.sigma = s->AsString();
    req.has_sigma = true;
  }
  XICC_RETURN_IF_ERROR(ReadNonNegative(envelope, "timeout_ms",
                                       &req.timeout_ms));
  XICC_RETURN_IF_ERROR(ReadNonNegative(envelope, "item_timeout_ms",
                                       &req.item_timeout_ms));
  XICC_RETURN_IF_ERROR(ReadSize(envelope, "threads", &req.threads));
  XICC_RETURN_IF_ERROR(ReadSize(envelope, "memo", &req.memo));
  XICC_RETURN_IF_ERROR(
      ReadSize(envelope, "min_witness_nodes", &req.min_witness_nodes));
  req.build_witness = envelope.GetBool("witness", false);

  // Per-verb required members.
  switch (req.verb) {
    case Verb::kPing:
    case Verb::kStats:
    case Verb::kShutdown:
      break;
    case Verb::kOpen:
      if (!req.has_dtd) return Missing(vn, "dtd");
      break;
    case Verb::kCheck:
      if (!req.has_sigma) return Missing(vn, "sigma");
      if (!req.has_session && !req.has_dtd) {
        return Status::InvalidArgument(
            "check: needs either \"session\" or \"dtd\"");
      }
      break;
    case Verb::kImplies: {
      XICC_ASSIGN_OR_RETURN(req.phi, RequireString(envelope, vn, "phi"));
      if (!req.has_session && !req.has_dtd) {
        return Status::InvalidArgument(
            "implies: needs either \"session\" or \"dtd\"");
      }
      break;
    }
    case Verb::kCommit:
      if (!req.has_session) return Missing(vn, "session");
      if (!req.has_sigma) return Missing(vn, "sigma");
      break;
    case Verb::kRollback:
    case Verb::kClose:
      if (!req.has_session) return Missing(vn, "session");
      break;
    case Verb::kBatch: {
      if (!req.has_dtd) return Missing(vn, "dtd");
      const JsonValue* sigmas = envelope.Find("sigmas");
      if (sigmas == nullptr || !sigmas->is_array()) {
        return Missing(vn, "sigmas");
      }
      req.sigmas.reserve(sigmas->AsArray().size());
      for (const JsonValue& s : sigmas->AsArray()) {
        if (!s.is_string()) {
          return Status::InvalidArgument(
              "batch: every \"sigmas\" element must be a string");
        }
        req.sigmas.push_back(s.AsString());
      }
      break;
    }
  }
  return req;
}

const char* WireErrorClass(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return nullptr;
    case StatusCode::kInvalidArgument:
    case StatusCode::kParseError:
    case StatusCode::kUndecidableClass:
      return "INVALID_ARGUMENT";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
    case StatusCode::kResourceExhausted:
      return "UNAVAILABLE";
    default:
      return "INTERNAL";
  }
}

JsonValue MakeErrorResponse(const JsonValue& id, const Status& status,
                            int64_t retry_after_ms) {
  JsonValue out = JsonValue::Object();
  out.Set("id", id);
  const char* wire = WireErrorClass(status.code());
  out.Set("error", JsonValue::Str(wire == nullptr ? "INTERNAL" : wire));
  out.Set("code", JsonValue::Str(StatusCodeName(status.code())));
  out.Set("message", JsonValue::Str(std::string(status.message())));
  if (retry_after_ms > 0) {
    out.Set("retry_after_ms", JsonValue::Int(retry_after_ms));
  }
  return out;
}

JsonValue MakeOkResponse(const JsonValue& id) {
  JsonValue out = JsonValue::Object();
  out.Set("id", id);
  out.Set("ok", JsonValue::Bool(true));
  return out;
}

}  // namespace net
}  // namespace xicc
