#pragma once

// xiccd's engine room: a poll-driven I/O thread feeding a work-stealing
// worker pool, with admission control in front and graceful degradation
// behind. See DESIGN.md §13 for the full failure-semantics contract; the
// short version:
//
//   One I/O thread owns every socket. It accepts, reads, frames, and
//   dispatches; it never parses JSON, never touches a SpecSession, and
//   never blocks (its only wait is a bounded poll that includes a self-pipe
//   so both RequestShutdown — async-signal-safe — and worker completions
//   can interrupt it). Workers do everything else: parse, validate, solve,
//   serialize, write. A connection's responses are serialized by a
//   per-connection write lock; requests on DIFFERENT connections (and
//   pipelined requests on one connection, up to the per-connection
//   in-flight cap) run concurrently.
//
//   Admission happens before a request ever reaches the pool: a draining
//   server, a full global in-flight window, or a full per-connection
//   window answers UNAVAILABLE + retry_after_ms immediately from cheap
//   atomic checks — overload costs O(1), not a thread. Connections beyond
//   max_connections are told UNAVAILABLE and closed at accept.
//
//   Every request runs under StopSignal{deadline, connection cancel token}:
//   timeout_ms arms the deadline; a client disconnect cancels the token, so
//   an expensive check whose requester vanished stops burning CPU at the
//   next solver poll point. DEADLINE_EXCEEDED responses carry the partial
//   ConsistencyStats of the stopped search.
//
//   Shutdown drains: stop accepting, finish in-flight work under
//   drain_deadline_ms, then cancel whatever remains, then join. Session
//   state degrades by LRU/TTL eviction and fault quarantine
//   (core/session_registry.h) before anything is refused.

#include <cstdint>
#include <memory>
#include <string>

#include "base/status.h"

namespace xicc {
namespace net {

struct ServerOptions {
  /// Loopback port; 0 picks an ephemeral port (read back with port()).
  uint16_t port = 0;
  /// Worker threads (0 = hardware concurrency).
  size_t workers = 0;
  /// Accepted-connection cap; excess accepts are shed at the door.
  size_t max_connections = 256;
  int listen_backlog = 64;
  /// Global in-flight request cap (0 = 4 × workers).
  size_t max_inflight = 0;
  /// Pipelined in-flight requests per connection.
  size_t per_connection_inflight = 8;
  /// The retry_after_ms hint attached to shed responses.
  int64_t retry_after_ms = 25;

  /// Frame/parse limits (fault-tolerant I/O bounds).
  size_t max_line_bytes = 1 << 20;
  size_t max_json_depth = 32;
  /// Ceiling clamped onto every request's timeout_ms (0 = no ceiling).
  int64_t max_timeout_ms = 120'000;
  /// A response write that cannot make progress for this long (peer not
  /// reading) abandons the connection.
  int64_t write_stall_ms = 5'000;

  /// Session-table limits (core/session_registry.h).
  size_t max_sessions = 256;
  size_t quarantine_after_faults = 3;
  int64_t idle_session_ttl_ms = 300'000;
  /// Default memo capacity for sessions and one-shot checks.
  size_t memo_capacity = 128;

  /// Compiled-DTD artifact cache directory ("" = memory tier only).
  std::string artifact_dir;
  size_t artifact_memory_capacity = 16;

  /// Drain budget: after RequestShutdown, in-flight requests get this long
  /// to finish before they are cancelled.
  int64_t drain_deadline_ms = 2'000;

  /// Batch-verb ceilings.
  size_t max_batch_items = 4096;
  size_t max_batch_threads = 16;
};

/// Point-in-time server counters, all cumulative unless marked as a gauge.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_shed = 0;  ///< Told UNAVAILABLE and closed at accept.
  uint64_t accept_faults = 0;     ///< Transient accept errors (incl. injected).
  uint64_t requests = 0;          ///< Frames admitted to the pool.
  uint64_t responses_ok = 0;
  uint64_t responses_invalid_argument = 0;
  uint64_t responses_deadline_exceeded = 0;
  uint64_t responses_cancelled = 0;
  uint64_t responses_unavailable = 0;
  uint64_t responses_internal = 0;
  uint64_t shed_requests = 0;     ///< UNAVAILABLE from admission control.
  uint64_t malformed_frames = 0;  ///< JSON/envelope rejects (+ injected).
  uint64_t oversize_frames = 0;
  uint64_t disconnect_cancels = 0;  ///< Cancellations from peer disconnect.
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t sessions_opened = 0;
  uint64_t sessions_closed = 0;
  uint64_t sessions_evicted = 0;
  uint64_t sessions_quarantined = 0;
  size_t open_connections = 0;  ///< Gauge.
  size_t open_sessions = 0;     ///< Gauge.
  size_t inflight = 0;          ///< Gauge.
  bool draining = false;
};

class ServerImpl;

/// A running daemon. Construction via Start binds, listens, and spins up
/// the I/O thread and worker pool; destruction performs a full drain-and-
/// join (equivalent to RequestShutdown() + Wait()).
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with options.port == 0).
  uint16_t port() const;

  /// Begins the drain. Async-signal-safe (atomic flag + self-pipe write):
  /// this is the SIGTERM handler's one permitted call.
  void RequestShutdown();

  /// Blocks until the drain completes and every thread has exited.
  void Wait();

  /// True once Wait() would return immediately.
  bool Stopped() const;

  ServerStats stats() const;

 private:
  explicit Server(std::unique_ptr<ServerImpl> impl);
  std::unique_ptr<ServerImpl> impl_;
};

}  // namespace net
}  // namespace xicc
