#include "net/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/deadline.h"
#include "base/faults.h"
#include "base/socket.h"
#include "base/thread_annotations.h"
#include "base/worksteal.h"
#include "constraints/constraint_parser.h"
#include "core/artifact_cache.h"
#include "core/batch.h"
#include "core/session_registry.h"
#include "dtd/dtd_parser.h"
#include "net/frame.h"
#include "net/json.h"
#include "net/protocol.h"

namespace xicc {
namespace net {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Everything the I/O thread and the workers share about one client. The
/// I/O thread owns fd/lines/outbox flushing; workers only ever append to
/// the outbox (under mu) and poke the atomics — they never touch the
/// descriptor, so there is exactly one reader and one writer per socket.
struct Connection {
  Connection(Fd socket, size_t max_line_bytes)
      : fd(std::move(socket)), lines(max_line_bytes) {}

  Fd fd;
  LineBuffer lines;
  /// Fires when the peer disconnects (or the drain deadline passes):
  /// every in-flight request on this connection runs under a StopSignal
  /// holding this token, so abandoned work stops at the next solver poll.
  CancelToken cancel;

  Mutex mu;  // xicc-analyze: lock-leaf
  /// Bytes awaiting the socket. Single-writer discipline: only the I/O
  /// thread flushes; workers append whole frames, so responses are never
  /// interleaved mid-line.
  std::string outbox XICC_GUARDED_BY(mu);
  bool dead XICC_GUARDED_BY(mu) = false;

  std::atomic<size_t> inflight{0};
  /// I/O-thread-only: when the outbox last made progress (stall detection).
  int64_t last_write_progress_ms = 0;
};

using ConnPtr = std::shared_ptr<Connection>;

JsonValue StatsField(uint64_t v) {
  return JsonValue::Int(static_cast<int64_t>(v));
}

}  // namespace

class ServerImpl {
 public:
  explicit ServerImpl(const ServerOptions& options)
      : options_(Normalize(options)),
        registry_(SessionRegistryLimits{options_.max_sessions,
                                        options_.quarantine_after_faults,
                                        options_.idle_session_ttl_ms}),
        artifacts_(ArtifactCache::Options{options_.artifact_dir,
                                          options_.artifact_memory_capacity}),
        pool_(options_.workers) {}

  Status Listen() {
    XICC_ASSIGN_OR_RETURN(listener_,
                          TcpListen(options_.port, options_.listen_backlog));
    XICC_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
    XICC_ASSIGN_OR_RETURN(wake_, WakePipe::Create());
    return Status::Ok();
  }

  void StartIoThread() {
    io_thread_ = std::make_unique<ServiceThread>([this] { RunIoLoop(); });
  }

  uint16_t port() const { return port_; }

  void RequestShutdown() {
    // Async-signal-safe: one relaxed store + one pipe write.
    shutdown_requested_.store(true, std::memory_order_release);
    wake_.Wake();
  }

  void Wait() {
    // CondVar waits are quarantined to src/base; a bounded sleep-poll is
    // the sanctioned shape, and shutdown latency here is test-visible only.
    while (!stopped_.load(std::memory_order_acquire)) {
      SleepFor(2, nullptr);
    }
    io_thread_->Join();
  }

  bool Stopped() const { return stopped_.load(std::memory_order_acquire); }

  ServerStats stats() const {
    ServerStats out;
    out.connections_accepted = connections_accepted_.load();
    out.connections_shed = connections_shed_.load();
    out.accept_faults = accept_faults_.load();
    out.requests = requests_.load();
    out.responses_ok = responses_ok_.load();
    out.responses_invalid_argument = responses_invalid_argument_.load();
    out.responses_deadline_exceeded = responses_deadline_exceeded_.load();
    out.responses_cancelled = responses_cancelled_.load();
    out.responses_unavailable = responses_unavailable_.load();
    out.responses_internal = responses_internal_.load();
    out.shed_requests = shed_requests_.load();
    out.malformed_frames = malformed_frames_.load();
    out.oversize_frames = oversize_frames_.load();
    out.disconnect_cancels = disconnect_cancels_.load();
    out.read_faults = read_faults_.load();
    out.write_faults = write_faults_.load();
    const SessionRegistryStats s = registry_.stats();
    out.sessions_opened = s.opened;
    out.sessions_closed = s.closed;
    out.sessions_evicted = s.evicted;
    out.sessions_quarantined = s.quarantined;
    out.open_sessions = s.resident;
    out.open_connections = open_connections_.load();
    out.inflight = inflight_.load();
    out.draining = draining_.load();
    return out;
  }

 private:
  static ServerOptions Normalize(ServerOptions o) {
    if (o.workers == 0) o.workers = HardwareConcurrency();
    if (o.max_inflight == 0) o.max_inflight = 4 * o.workers;
    if (o.per_connection_inflight == 0) o.per_connection_inflight = 1;
    if (o.max_json_depth == 0) o.max_json_depth = 32;
    return o;
  }

  // ---- I/O thread ------------------------------------------------------

  void RunIoLoop() {
    std::unordered_map<int, ConnPtr> conns;
    bool listener_open = true;
    bool drain_cancelled = false;
    Deadline drain_deadline = Deadline::Infinite();

    for (;;) {
      const bool draining = draining_.load(std::memory_order_acquire);
      if (shutdown_requested_.load(std::memory_order_acquire) && !draining) {
        draining_.store(true, std::memory_order_release);
        drain_deadline = Deadline::After(options_.drain_deadline_ms);
        continue;
      }
      if (draining && listener_open) {
        listener_.Close();
        listener_open = false;
        drain_deadline = Deadline::After(options_.drain_deadline_ms);
      }
      if (draining && !drain_cancelled && drain_deadline.Expired()) {
        // The drain budget is spent: whatever is still running gets its
        // cancel token fired and finishes as CANCELLED.
        for (auto& [fd, conn] : conns) conn->cancel.Cancel();
        drain_cancelled = true;
      }
      if (draining && inflight_.load(std::memory_order_acquire) == 0) {
        bool flushed = true;
        for (auto& [fd, conn] : conns) {
          MutexLock lock(&conn->mu);
          if (!conn->dead && !conn->outbox.empty()) {
            flushed = false;
            break;
          }
        }
        // Give unflushed farewells until the drain deadline, then go.
        if (flushed || drain_cancelled) break;
      }

      // Build the poll set: wake pipe + listener + every live connection.
      std::vector<PollFd> wait;
      wait.push_back({wake_.read_fd(), true, false});
      if (listener_open) wait.push_back({listener_.get(), true, false});
      for (auto& [fd, conn] : conns) {
        bool want_write = false;
        bool dead = false;
        {
          MutexLock lock(&conn->mu);
          dead = conn->dead;
          want_write = !conn->outbox.empty() && !dead;
        }
        // Dead connections awaiting their in-flight workers are corpses,
        // not pollable sockets; re-polling them would spin on EOF.
        if (dead) continue;
        wait.push_back({fd, true, want_write});
      }

      std::vector<PollEvent> events;
      const auto polled = PollFds(wait, draining ? 10 : 100, &events);
      if (!polled.ok()) {
        // poll() itself failing (EBADF would be a server bug; ENOMEM a sick
        // host) — count it and keep serving; the loop's own checks bound
        // the damage.
        responses_internal_.fetch_add(1, std::memory_order_relaxed);
        SleepFor(5, nullptr);
        continue;
      }

      wake_.Drain();
      const int64_t now = NowMs();

      for (const PollEvent& ev : events) {
        if (ev.fd == wake_.read_fd()) continue;
        if (listener_open && ev.fd == listener_.get()) {
          AcceptPending(&conns, now);
          continue;
        }
        auto it = conns.find(ev.fd);
        if (it == conns.end()) continue;
        ConnPtr conn = it->second;
        bool drop = false;
        if (ev.readable) drop = !ReadPending(conn, now);
        if (!drop && ev.writable) FlushOutbox(conn, now);
        if (!drop && ev.closed && conn->inflight.load() == 0) {
          // Pure hangup with nothing in flight and nothing readable.
          MutexLock lock(&conn->mu);
          drop = conn->dead || conn->outbox.empty();
        }
        if (drop) DropConnection(&conns, it->first);
      }

      // Housekeeping on every pass: write-stall detection, corpse
      // collection, and the idle-session TTL sweep.
      std::vector<int> corpses;
      for (auto& [fd, conn] : conns) {
        bool dead;
        bool stalled = false;
        {
          MutexLock lock(&conn->mu);
          dead = conn->dead;
          if (!dead && !conn->outbox.empty() &&
              now - conn->last_write_progress_ms > options_.write_stall_ms) {
            stalled = true;
          }
        }
        if (stalled) {
          write_faults_.fetch_add(1, std::memory_order_relaxed);
          KillConnection(conn);
          dead = true;
        }
        if (dead && conn->inflight.load(std::memory_order_acquire) == 0) {
          corpses.push_back(fd);
        }
      }
      for (int fd : corpses) DropConnection(&conns, fd);
      registry_.SweepIdle(SessionRegistry::NowMs());
    }

    // Drain epilogue: every remaining connection is torn down; sessions
    // close so the accounting the soak test asserts on returns to zero.
    for (auto& [fd, conn] : conns) KillConnection(conn);
    conns.clear();
    registry_.CloseAll();
    stopped_.store(true, std::memory_order_release);
  }

  void AcceptPending(std::unordered_map<int, ConnPtr>* conns, int64_t now) {
    for (;;) {
      Fd accepted;
      const IoResult io = AcceptOne(listener_, &accepted);
      if (io.status == IoStatus::kWouldBlock) return;
      if (io.status != IoStatus::kOk) {
        accept_faults_.fetch_add(1, std::memory_order_relaxed);
        // Transient (ECONNABORTED, EMFILE, injected): the listener stays.
        return;
      }
      if (conns->size() >= options_.max_connections ||
          draining_.load(std::memory_order_acquire)) {
        // Shed at the door: a one-shot farewell (best effort — the buffer
        // of a fresh socket always has room for one small frame) and close.
        connections_shed_.fetch_add(1, std::memory_order_relaxed);
        const std::string line =
            MakeErrorResponse(JsonValue::Null(),
                              Status::Unavailable(
                                  draining_.load() ? "server is draining"
                                                   : "connection limit"),
                              options_.retry_after_ms)
                .Dump() +
            "\n";
        // The shed farewell is best-effort by contract; the socket closes
        // right after regardless of outcome.
        // xicc-lint: allow(void-discard)
        (void)WriteSome(accepted, line.data(), line.size());
        continue;
      }
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      auto conn =
          std::make_shared<Connection>(std::move(accepted),
                                       options_.max_line_bytes);
      conn->last_write_progress_ms = now;
      const int fd = conn->fd.get();
      conns->emplace(fd, std::move(conn));
      open_connections_.store(conns->size(), std::memory_order_relaxed);
    }
  }

  /// Reads until the socket would block, framing and dispatching complete
  /// lines. Returns false when the connection should be dropped.
  bool ReadPending(const ConnPtr& conn, int64_t now) {
    char buf[16 * 1024];
    for (;;) {
      const IoResult io = ReadSome(conn->fd, buf, sizeof(buf));
      if (io.status == IoStatus::kWouldBlock) break;
      if (io.status == IoStatus::kEof || io.status == IoStatus::kError) {
        if (io.status == IoStatus::kError) {
          read_faults_.fetch_add(1, std::memory_order_relaxed);
        }
        KillConnection(conn);
        return false;
      }
      conn->lines.Append(buf, io.bytes);
      std::string line;
      for (;;) {
        const LineBuffer::Next next = conn->lines.NextLine(&line);
        if (next == LineBuffer::Next::kNeedMore) break;
        if (next == LineBuffer::Next::kOversize) {
          oversize_frames_.fetch_add(1, std::memory_order_relaxed);
          Enqueue(conn,
                  MakeErrorResponse(
                      JsonValue::Null(),
                      Status::InvalidArgument(
                          "frame exceeds " +
                          std::to_string(options_.max_line_bytes) +
                          " bytes"))
                      .Dump(),
                  now);
          continue;
        }
        if (line.empty()) continue;  // Bare newlines are keep-alive noise.
        Dispatch(conn, std::move(line), now);
      }
    }
    return true;
  }

  /// Admission control + handoff to the pool. Runs on the I/O thread, so
  /// everything here is O(1): atomic window checks, no parsing.
  void Dispatch(const ConnPtr& conn, std::string line, int64_t now) {
    // The admission path's cancellation poll: a connection that was killed
    // (disconnect, drain deadline) admits nothing further — and every I/O
    // loop that calls Dispatch inherits this poll for the stop-poll
    // analysis.
    if (conn->cancel.Cancelled()) return;
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (XICC_FAULT_FIRES(kFrameDecode)) {
      // Injected decode fault: the frame is treated exactly like hostile
      // bytes — answered, counted, connection kept.
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      Enqueue(conn,
              MakeErrorResponse(JsonValue::Null(),
                                Status::InvalidArgument(
                                    "frame decode fault (injected)"))
                  .Dump(),
              now);
      return;
    }
    if (draining_.load(std::memory_order_acquire)) {
      Shed(conn, "server is draining", now);
      return;
    }
    const size_t global = inflight_.load(std::memory_order_acquire);
    if (global >= options_.max_inflight) {
      Shed(conn, "server is at its in-flight request limit", now);
      return;
    }
    if (conn->inflight.load(std::memory_order_acquire) >=
        options_.per_connection_inflight) {
      Shed(conn, "connection pipeline limit reached", now);
      return;
    }
    inflight_.fetch_add(1, std::memory_order_acq_rel);
    conn->inflight.fetch_add(1, std::memory_order_acq_rel);
    ConnPtr shared = conn;
    std::string owned = std::move(line);
    pool_.Submit([this, shared = std::move(shared),
                  owned = std::move(owned)]() mutable {
      HandleRequest(shared, owned);
      shared->inflight.fetch_sub(1, std::memory_order_acq_rel);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      // The I/O thread may be waiting on this completion (drain, or a
      // response to flush).
      wake_.Wake();
    });
  }

  void Shed(const ConnPtr& conn, const std::string& why, int64_t now) {
    shed_requests_.fetch_add(1, std::memory_order_relaxed);
    Enqueue(conn,
            MakeErrorResponse(JsonValue::Null(), Status::Unavailable(why),
                              options_.retry_after_ms)
                .Dump(),
            now);
  }

  /// Appends one framed response to the connection's outbox (worker- and
  /// I/O-thread-callable) and tallies its outcome class.
  void Enqueue(const ConnPtr& conn, std::string line, int64_t now) {
    CountResponseLine(line);
    line.push_back('\n');
    {
      MutexLock lock(&conn->mu);
      if (conn->dead) return;
      if (conn->outbox.empty()) conn->last_write_progress_ms = now;
      conn->outbox.append(line);
    }
    wake_.Wake();
  }

  void CountResponseLine(const std::string& line) {
    // Responses are built by MakeOkResponse/MakeErrorResponse, so the
    // class is readable from the serialized prefix without re-parsing.
    auto has = [&line](const char* needle) {
      return line.find(needle) != std::string::npos;
    };
    if (has("\"ok\":true")) {
      responses_ok_.fetch_add(1, std::memory_order_relaxed);
    } else if (has("\"error\":\"INVALID_ARGUMENT\"")) {
      responses_invalid_argument_.fetch_add(1, std::memory_order_relaxed);
    } else if (has("\"error\":\"DEADLINE_EXCEEDED\"")) {
      responses_deadline_exceeded_.fetch_add(1, std::memory_order_relaxed);
    } else if (has("\"error\":\"CANCELLED\"")) {
      responses_cancelled_.fetch_add(1, std::memory_order_relaxed);
    } else if (has("\"error\":\"UNAVAILABLE\"")) {
      responses_unavailable_.fetch_add(1, std::memory_order_relaxed);
    } else {
      responses_internal_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void FlushOutbox(const ConnPtr& conn, int64_t now) {
    MutexLock lock(&conn->mu);
    if (conn->dead) return;
    while (!conn->outbox.empty()) {
      const IoResult io =
          WriteSome(conn->fd, conn->outbox.data(), conn->outbox.size());
      if (io.status == IoStatus::kOk) {
        conn->outbox.erase(0, io.bytes);
        conn->last_write_progress_ms = now;
        continue;
      }
      if (io.status == IoStatus::kWouldBlock) return;
      // kError/kEof: the peer is gone; reads will confirm, but stop
      // buffering now.
      write_faults_.fetch_add(1, std::memory_order_relaxed);
      conn->dead = true;
      conn->outbox.clear();
      conn->outbox.shrink_to_fit();
      return;
    }
  }

  /// Marks a connection dead and cancels its in-flight work. The fd itself
  /// closes when the last worker's shared_ptr drops.
  void KillConnection(const ConnPtr& conn) {
    {
      MutexLock lock(&conn->mu);
      if (conn->dead) return;
      conn->dead = true;
      conn->outbox.clear();
      conn->outbox.shrink_to_fit();
    }
    const size_t inflight = conn->inflight.load(std::memory_order_acquire);
    if (inflight > 0) {
      disconnect_cancels_.fetch_add(inflight, std::memory_order_relaxed);
      conn->cancel.Cancel();
    }
  }

  void DropConnection(std::unordered_map<int, ConnPtr>* conns, int fd) {
    auto it = conns->find(fd);
    if (it == conns->end()) return;
    KillConnection(it->second);
    if (it->second->inflight.load(std::memory_order_acquire) > 0) {
      // Workers still hold it; the corpse sweep retires it once they wake
      // from the cancel and finish. Keep it out of the poll set by marking
      // dead (done) but leave the map entry so the sweep finds it.
      return;
    }
    conns->erase(it);
    open_connections_.store(conns->size(), std::memory_order_relaxed);
  }

  // ---- Workers ---------------------------------------------------------

  void HandleRequest(const ConnPtr& conn, const std::string& line) {
    const int64_t now = NowMs();
    JsonLimits limits;
    limits.max_depth = options_.max_json_depth;
    Result<JsonValue> envelope = ParseJson(line, limits);
    if (!envelope.ok()) {
      malformed_frames_.fetch_add(1, std::memory_order_relaxed);
      Enqueue(conn,
              MakeErrorResponse(JsonValue::Null(), envelope.status()).Dump(),
              now);
      return;
    }
    Result<Request> parsed = ParseRequest(*envelope);
    if (!parsed.ok()) {
      const JsonValue* id = envelope->Find("id");
      Enqueue(conn,
              MakeErrorResponse(id == nullptr ? JsonValue::Null() : *id,
                                parsed.status())
                  .Dump(),
              now);
      return;
    }
    Enqueue(conn, Execute(conn, *parsed).Dump(), NowMs());
  }

  StopSignal MakeStop(const ConnPtr& conn, int64_t timeout_ms) {
    StopSignal stop;
    int64_t budget = timeout_ms;
    if (options_.max_timeout_ms > 0 &&
        (budget == 0 || budget > options_.max_timeout_ms)) {
      budget = options_.max_timeout_ms;
    }
    if (budget > 0) stop.deadline = Deadline::After(budget);
    stop.cancel = &conn->cancel;
    return stop;
  }

  static bool IsFaultOutcome(const Status& status) {
    return status.code() == StatusCode::kDeadlineExceeded ||
           status.code() == StatusCode::kCancelled ||
           status.code() == StatusCode::kResourceExhausted;
  }

  static JsonValue StatsJson(const ConsistencyStats& stats) {
    JsonValue out = JsonValue::Object();
    out.Set("ilp_nodes", StatsField(stats.ilp_nodes));
    out.Set("lp_pivots", StatsField(stats.lp_pivots));
    out.Set("search_depth", StatsField(stats.search_depth));
    out.Set("sigma_delta_checks", StatsField(stats.sigma_delta_checks));
    out.Set("memo_hits", StatsField(stats.memo_hits));
    out.Set("memo_misses", StatsField(stats.memo_misses));
    return out;
  }

  /// Error response with the stopped search's partial statistics attached —
  /// the "how far did it get" a caller needs to choose a better budget.
  JsonValue ErrorWithPartial(const JsonValue& id, const Status& status,
                             const ConsistencyStats& partial) {
    JsonValue out = MakeErrorResponse(id, status);
    if (status.code() == StatusCode::kDeadlineExceeded ||
        status.code() == StatusCode::kCancelled) {
      out.Set("partial", StatsJson(partial));
    }
    return out;
  }

  JsonValue Execute(const ConnPtr& conn, const Request& req) {
    switch (req.verb) {
      case Verb::kPing:
        return MakeOkResponse(req.id);
      case Verb::kStats:
        return DoStats(req);
      case Verb::kShutdown: {
        RequestShutdown();
        return MakeOkResponse(req.id);
      }
      case Verb::kOpen:
        return DoOpen(req);
      case Verb::kCheck:
        return DoCheck(conn, req);
      case Verb::kImplies:
        return DoImplies(conn, req);
      case Verb::kCommit:
      case Verb::kRollback:
        return DoSessionEdit(req);
      case Verb::kClose: {
        const Status status = registry_.CloseSession(req.session);
        return status.ok() ? MakeOkResponse(req.id)
                           : MakeErrorResponse(req.id, status);
      }
      case Verb::kBatch:
        return DoBatch(conn, req);
    }
    return MakeErrorResponse(req.id,
                             Status::Internal("unreachable verb"));
  }

  JsonValue DoStats(const Request& req) {
    const ServerStats s = stats();
    JsonValue out = MakeOkResponse(req.id);
    JsonValue body = JsonValue::Object();
    body.Set("connections_accepted", StatsField(s.connections_accepted));
    body.Set("connections_shed", StatsField(s.connections_shed));
    body.Set("accept_faults", StatsField(s.accept_faults));
    body.Set("requests", StatsField(s.requests));
    body.Set("responses_ok", StatsField(s.responses_ok));
    body.Set("responses_invalid_argument",
             StatsField(s.responses_invalid_argument));
    body.Set("responses_deadline_exceeded",
             StatsField(s.responses_deadline_exceeded));
    body.Set("responses_cancelled", StatsField(s.responses_cancelled));
    body.Set("responses_unavailable", StatsField(s.responses_unavailable));
    body.Set("responses_internal", StatsField(s.responses_internal));
    body.Set("shed_requests", StatsField(s.shed_requests));
    body.Set("malformed_frames", StatsField(s.malformed_frames));
    body.Set("oversize_frames", StatsField(s.oversize_frames));
    body.Set("disconnect_cancels", StatsField(s.disconnect_cancels));
    body.Set("read_faults", StatsField(s.read_faults));
    body.Set("write_faults", StatsField(s.write_faults));
    body.Set("sessions_opened", StatsField(s.sessions_opened));
    body.Set("sessions_closed", StatsField(s.sessions_closed));
    body.Set("sessions_evicted", StatsField(s.sessions_evicted));
    body.Set("sessions_quarantined", StatsField(s.sessions_quarantined));
    body.Set("open_connections", StatsField(s.open_connections));
    body.Set("open_sessions", StatsField(s.open_sessions));
    body.Set("inflight", StatsField(s.inflight));
    body.Set("draining", JsonValue::Bool(s.draining));
    out.Set("stats", std::move(body));
    return out;
  }

  Result<std::shared_ptr<const CompiledDtd>> CompileFromText(
      const std::string& dtd_text, const char** source_name) {
    XICC_ASSIGN_OR_RETURN(Dtd dtd, ParseDtd(dtd_text));
    XICC_ASSIGN_OR_RETURN(ArtifactCache::Lookup lookup,
                          artifacts_.GetOrCompile(dtd));
    if (source_name != nullptr) {
      *source_name = ArtifactSourceName(lookup.source);
    }
    return std::move(lookup.compiled);
  }

  JsonValue DoOpen(const Request& req) {
    const char* source = "cold";
    auto compiled = CompileFromText(req.dtd, &source);
    if (!compiled.ok()) return MakeErrorResponse(req.id, compiled.status());
    ConsistencyOptions options;
    options.build_witness = req.build_witness;
    const size_t memo =
        req.memo == 0 ? options_.memo_capacity : req.memo;
    auto opened = registry_.Open(std::move(*compiled), options, memo);
    if (!opened.ok()) {
      return MakeErrorResponse(req.id, opened.status(),
                               options_.retry_after_ms);
    }
    JsonValue out = MakeOkResponse(req.id);
    out.Set("session", JsonValue::Int(static_cast<int64_t>(*opened)));
    out.Set("artifact_source", JsonValue::Str(source));
    return out;
  }

  JsonValue CheckResultJson(const JsonValue& id,
                            const ConsistencyResult& result) {
    JsonValue out = MakeOkResponse(id);
    out.Set("consistent", JsonValue::Bool(result.consistent));
    out.Set("class",
            JsonValue::Str(ConstraintClassName(result.constraint_class)));
    out.Set("method", JsonValue::Str(result.method));
    if (result.witness.has_value()) {
      out.Set("witness_nodes",
              JsonValue::Int(static_cast<int64_t>(result.witness->size())));
    }
    out.Set("stats", StatsJson(result.stats));
    return out;
  }

  /// Runs `body(session)` against the registry session `id` under the
  /// checkout protocol, classifying the outcome for quarantine accounting.
  template <typename Body>
  JsonValue WithSession(const Request& req, Body body) {
    auto acquired = registry_.Acquire(req.session);
    if (!acquired.ok()) {
      const bool retryable =
          acquired.status().code() == StatusCode::kUnavailable;
      return MakeErrorResponse(req.id, acquired.status(),
                               retryable ? options_.retry_after_ms : 0);
    }
    SpecSession* session = *acquired;
    JsonValue response = body(session);
    // A deadline/cancel/shed outcome bumps the session's fault streak; any
    // verdict (or caller error) resets it.
    const bool faulted =
        response.Find("error") != nullptr &&
        (response.GetString("error", "") == "DEADLINE_EXCEEDED" ||
         response.GetString("error", "") == "CANCELLED");
    // Disarm before returning to the table: the next request arms its own.
    session->SetStop(StopSignal());
    registry_.Release(req.session, faulted);
    return response;
  }

  JsonValue DoCheck(const ConnPtr& conn, const Request& req) {
    auto sigma = ParseConstraints(req.sigma);
    if (!sigma.ok()) return MakeErrorResponse(req.id, sigma.status());
    const StopSignal stop = MakeStop(conn, req.timeout_ms);
    if (req.has_session) {
      return WithSession(req, [&](SpecSession* session) {
        session->SetStop(stop);
        auto result = session->Check(*sigma);
        if (!result.ok()) {
          return ErrorWithPartial(req.id, result.status(),
                                  session->LastPartialStats());
        }
        return CheckResultJson(req.id, *result);
      });
    }
    // One-shot: compile (artifact-cached) and run through a throwaway
    // session so the warm-start path is identical to the session path.
    auto compiled = CompileFromText(req.dtd, nullptr);
    if (!compiled.ok()) return MakeErrorResponse(req.id, compiled.status());
    ConsistencyOptions options;
    options.build_witness = req.build_witness;
    options.min_witness_nodes = req.min_witness_nodes;
    options.stop = stop;
    SpecSession session(std::move(*compiled), options, /*memo_capacity=*/0);
    auto result = session.Check(*sigma);
    if (!result.ok()) {
      return ErrorWithPartial(req.id, result.status(),
                              session.LastPartialStats());
    }
    return CheckResultJson(req.id, *result);
  }

  JsonValue DoImplies(const ConnPtr& conn, const Request& req) {
    auto phi = ParseConstraint(req.phi);
    if (!phi.ok()) return MakeErrorResponse(req.id, phi.status());
    const StopSignal stop = MakeStop(conn, req.timeout_ms);
    auto render = [this, &req](SpecSession* session,
                               const Result<ImplicationResult>& result) {
      if (!result.ok()) {
        return ErrorWithPartial(req.id, result.status(),
                                session->LastPartialStats());
      }
      JsonValue out = MakeOkResponse(req.id);
      out.Set("implied", JsonValue::Bool(result->implied));
      out.Set("method", JsonValue::Str(result->method));
      out.Set("stats", StatsJson(result->stats));
      return out;
    };
    if (req.has_session) {
      return WithSession(req, [&](SpecSession* session) {
        session->SetStop(stop);
        return render(session, session->Implies(*phi));
      });
    }
    auto compiled = CompileFromText(req.dtd, nullptr);
    if (!compiled.ok()) return MakeErrorResponse(req.id, compiled.status());
    ConstraintSet sigma;
    if (req.has_sigma) {
      auto parsed = ParseConstraints(req.sigma);
      if (!parsed.ok()) return MakeErrorResponse(req.id, parsed.status());
      sigma = std::move(*parsed);
    }
    ConsistencyOptions options;
    options.stop = stop;
    SpecSession session(std::move(*compiled), options, /*memo_capacity=*/0);
    const Status committed = session.Commit(sigma);
    if (!committed.ok()) return MakeErrorResponse(req.id, committed);
    return render(&session, session.Implies(*phi));
  }

  JsonValue DoSessionEdit(const Request& req) {
    if (req.verb == Verb::kRollback) {
      return WithSession(req, [&](SpecSession* session) {
        session->Rollback();
        return MakeOkResponse(req.id);
      });
    }
    auto sigma = ParseConstraints(req.sigma);
    if (!sigma.ok()) return MakeErrorResponse(req.id, sigma.status());
    return WithSession(req, [&](SpecSession* session) {
      const Status status = session->Commit(*sigma);
      return status.ok() ? MakeOkResponse(req.id)
                         : MakeErrorResponse(req.id, status);
    });
  }

  JsonValue DoBatch(const ConnPtr& conn, const Request& req) {
    if (req.sigmas.size() > options_.max_batch_items) {
      return MakeErrorResponse(
          req.id, Status::InvalidArgument(
                      "batch of " + std::to_string(req.sigmas.size()) +
                      " items exceeds the " +
                      std::to_string(options_.max_batch_items) + " cap"));
    }
    auto compiled = CompileFromText(req.dtd, nullptr);
    if (!compiled.ok()) return MakeErrorResponse(req.id, compiled.status());
    // A rotten item degrades to a per-item INVALID_ARGUMENT row; it must
    // not sink the rest of the batch.
    std::vector<ConstraintSet> queries;
    std::vector<Status> item_errors(req.sigmas.size(), Status::Ok());
    queries.reserve(req.sigmas.size());
    for (size_t i = 0; i < req.sigmas.size(); ++i) {
      auto parsed = ParseConstraints(req.sigmas[i]);
      if (!parsed.ok()) {
        item_errors[i] = Status::InvalidArgument(
            "sigmas[" + std::to_string(i) + "]: " +
            std::string(parsed.status().message()));
        continue;
      }
      queries.push_back(std::move(*parsed));
    }
    BatchOptions options;
    // The batch runs inline on THIS worker; extra workers would nest a pool
    // inside the pool, so the thread request is capped hard.
    options.num_threads =
        req.threads == 0
            ? 1
            : std::min(req.threads, options_.max_batch_threads);
    options.memo_capacity = options_.memo_capacity;
    options.item_timeout_ms = req.item_timeout_ms;
    const StopSignal stop = MakeStop(conn, req.timeout_ms);
    options.check.stop = stop;
    options.cancel = stop.cancel;
    BatchDegradedStats degraded;
    BatchRunStats run;
    const std::vector<BatchItemResult> results =
        CheckBatch(std::move(*compiled), queries, options, &degraded, &run);
    JsonValue out = MakeOkResponse(req.id);
    JsonValue items = JsonValue::Array();
    size_t next_result = 0;
    for (size_t i = 0; i < req.sigmas.size(); ++i) {
      JsonValue row = JsonValue::Object();
      if (!item_errors[i].ok()) {
        row.Set("status", JsonValue::Str(WireErrorClass(
                              item_errors[i].code())));
        row.Set("message",
                JsonValue::Str(std::string(item_errors[i].message())));
      } else if (next_result < results.size()) {
        const BatchItemResult& item = results[next_result++];
        if (item.status.ok()) {
          row.Set("status", JsonValue::Str("ok"));
          row.Set("consistent", JsonValue::Bool(item.result.consistent));
        } else {
          const char* wire = WireErrorClass(item.status.code());
          row.Set("status",
                  JsonValue::Str(wire == nullptr ? "INTERNAL" : wire));
          row.Set("message",
                  JsonValue::Str(std::string(item.status.message())));
        }
      } else {
        // CheckBatch returned fewer rows than queries (cancelled mid-run);
        // the unstarted tail reports CANCELLED, not silence.
        row.Set("status", JsonValue::Str("CANCELLED"));
      }
      items.Push(std::move(row));
    }
    out.Set("results", std::move(items));
    JsonValue deg = JsonValue::Object();
    deg.Set("deadline_exceeded", StatsField(degraded.deadline_exceeded));
    deg.Set("cancelled", StatsField(degraded.cancelled));
    deg.Set("resource_exhausted", StatsField(degraded.resource_exhausted));
    deg.Set("retries", StatsField(degraded.retries));
    deg.Set("retry_rescues", StatsField(degraded.retry_rescues));
    deg.Set("quarantined", StatsField(degraded.quarantined));
    out.Set("degraded", std::move(deg));
    out.Set("workers", StatsField(run.workers));
    return out;
  }

  // ---- State -----------------------------------------------------------

  const ServerOptions options_;
  Fd listener_;
  uint16_t port_ = 0;
  WakePipe wake_;

  SessionRegistry registry_;
  ArtifactCache artifacts_;
  WorkStealingPool pool_;

  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<size_t> inflight_{0};
  std::atomic<size_t> open_connections_{0};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_shed_{0};
  std::atomic<uint64_t> accept_faults_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> responses_ok_{0};
  std::atomic<uint64_t> responses_invalid_argument_{0};
  std::atomic<uint64_t> responses_deadline_exceeded_{0};
  std::atomic<uint64_t> responses_cancelled_{0};
  std::atomic<uint64_t> responses_unavailable_{0};
  std::atomic<uint64_t> responses_internal_{0};
  std::atomic<uint64_t> shed_requests_{0};
  std::atomic<uint64_t> malformed_frames_{0};
  std::atomic<uint64_t> oversize_frames_{0};
  std::atomic<uint64_t> disconnect_cancels_{0};
  std::atomic<uint64_t> read_faults_{0};
  std::atomic<uint64_t> write_faults_{0};

  /// Declared last: destroyed (joined) first. By the time any other member
  /// dies, the I/O thread has exited.
  std::unique_ptr<ServiceThread> io_thread_;
};

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  auto impl = std::make_unique<ServerImpl>(options);
  XICC_RETURN_IF_ERROR(impl->Listen());
  impl->StartIoThread();
  return std::unique_ptr<Server>(new Server(std::move(impl)));
}

Server::Server(std::unique_ptr<ServerImpl> impl) : impl_(std::move(impl)) {}

Server::~Server() {
  if (impl_ != nullptr) {
    impl_->RequestShutdown();
    impl_->Wait();
  }
}

uint16_t Server::port() const { return impl_->port(); }
void Server::RequestShutdown() { impl_->RequestShutdown(); }
void Server::Wait() { impl_->Wait(); }
bool Server::Stopped() const { return impl_->Stopped(); }
ServerStats Server::stats() const { return impl_->stats(); }

}  // namespace net
}  // namespace xicc
