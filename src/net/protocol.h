#pragma once

// The xiccd wire protocol: request envelopes, verbs, and the Status →
// wire-error mapping.
//
// Transport: one JSON object per newline-terminated line, both directions.
// Every request line yields exactly one response line carrying the same
// "id" member (echoed verbatim; null if the request had none). A response
// is either a result ({"ok":true, ...}) or an error:
//
//   {"id":..., "error":"<wire class>", "code":"<status code name>",
//    "message":"...", ["retry_after_ms":N], ["partial":{...}]}
//
// The wire classes form the closed set the chaos soak asserts over — every
// request, however mangled, times out, or cancelled, ends in exactly one of:
//
//   result | INVALID_ARGUMENT | DEADLINE_EXCEEDED | CANCELLED | UNAVAILABLE
//
// (INTERNAL exists as the escape hatch for bugs; the soak asserts it never
// appears.) UNAVAILABLE responses carry retry_after_ms — the admission
// controller's backpressure hint, which the client library honors.
// DEADLINE_EXCEEDED responses from check/implies carry "partial": the
// ConsistencyStats of the stopped search (nodes, pivots, depth), because a
// timed-out check that explored 40k nodes is operationally very different
// from one that never got scheduled.
//
// Verbs:
//   ping                                          → {"ok":true}
//   open     dtd [memo]                           → {"ok":true,"session":N}
//   check    (session | dtd) sigma [timeout_ms] [min_witness_nodes]
//   implies  (session | dtd+sigma) phi [timeout_ms]
//   commit   session sigma                        → {"ok":true}
//   rollback session                              → {"ok":true}
//   close    session                              → {"ok":true}
//   batch    dtd sigmas[] [timeout_ms item_timeout_ms threads]
//   stats                                         → {"ok":true,"stats":{}}
//   shutdown                                      → {"ok":true} + drain

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "net/json.h"

namespace xicc {
namespace net {

enum class Verb {
  kPing,
  kOpen,
  kCheck,
  kImplies,
  kCommit,
  kRollback,
  kClose,
  kBatch,
  kStats,
  kShutdown,
};

const char* VerbName(Verb v);

/// One parsed, type-checked request envelope. Field presence is validated
/// per verb by ParseRequest; sizes/limits are validated by the server (it
/// owns the configured caps).
struct Request {
  Verb verb = Verb::kPing;
  /// Echoed verbatim into the response ("id" member); null when absent.
  JsonValue id;
  uint64_t session = 0;
  bool has_session = false;
  std::string dtd;
  bool has_dtd = false;
  std::string sigma;
  bool has_sigma = false;
  std::string phi;
  std::vector<std::string> sigmas;  // batch only
  int64_t timeout_ms = 0;           // 0 = no deadline
  int64_t item_timeout_ms = 0;      // batch per-item deadline
  size_t threads = 0;               // batch workers (0 = server default)
  size_t memo = 0;                  // open: session memo capacity
  size_t min_witness_nodes = 0;
  bool build_witness = false;
};

/// Envelope → Request. kInvalidArgument on unknown verb, missing required
/// member, or wrong member type — with a message naming the offender. Never
/// inspects DTD/constraint *content*; that is the dispatcher's job.
Result<Request> ParseRequest(const JsonValue& envelope);

/// The closed wire-error vocabulary. kOk maps to nullptr (not an error).
/// Everything retryable (kUnavailable, kResourceExhausted) → "UNAVAILABLE";
/// everything caller-fixable (kInvalidArgument, kParseError,
/// kUndecidableClass) → "INVALID_ARGUMENT"; kDeadline /
/// kCancelled map to themselves; the rest → "INTERNAL".
const char* WireErrorClass(StatusCode code);

/// Builds the error response for `status`, echoing `id`. retry_after_ms > 0
/// attaches the backpressure hint (meaningful only for UNAVAILABLE).
JsonValue MakeErrorResponse(const JsonValue& id, const Status& status,
                            int64_t retry_after_ms = 0);

/// Starts a result response: {"id":..., "ok":true}.
JsonValue MakeOkResponse(const JsonValue& id);

}  // namespace net
}  // namespace xicc
