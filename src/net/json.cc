#include "net/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace xicc {
namespace net {

JsonValue JsonValue::Bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::Int(int64_t i) {
  JsonValue v;
  v.kind_ = Kind::kInt;
  v.int_ = i;
  return v;
}

JsonValue JsonValue::Double(double d) {
  JsonValue v;
  v.kind_ = Kind::kDouble;
  v.double_ = d;
  return v;
}

JsonValue JsonValue::Str(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::Array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::Object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

int64_t JsonValue::AsInt() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble) return static_cast<int64_t>(double_);
  return 0;
}

double JsonValue::AsDouble() const {
  if (kind_ == Kind::kDouble) return double_;
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  return 0.0;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_number()) ? v->AsInt() : fallback;
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_bool()) ? v->AsBool() : fallback;
}

std::string JsonValue::GetString(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* v = Find(key);
  return (v != nullptr && v->is_string()) ? v->AsString()
                                          : std::string(fallback);
}

JsonValue& JsonValue::Set(std::string_view key, JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  for (auto& [name, value] : object_) {
    if (name == key) {
      value = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::string(key), std::move(v));
  return *this;
}

JsonValue& JsonValue::Push(JsonValue v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  array_.push_back(std::move(v));
  return *this;
}

namespace {

void AppendEscaped(std::string_view s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void JsonValue::DumpTo(std::string* out) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kInt:
      out->append(std::to_string(int_));
      return;
    case Kind::kDouble: {
      if (!std::isfinite(double_)) {
        out->append("null");  // JSON has no NaN/Inf; null is the honest gap.
        return;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", double_);
      out->append(buf);
      return;
    }
    case Kind::kString:
      AppendEscaped(string_, out);
      return;
    case Kind::kArray: {
      out->push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out->push_back(',');
        first = false;
        v.DumpTo(out);
      }
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [name, value] : object_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(name, out);
        out->push_back(':');
        value.DumpTo(out);
      }
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump() const {
  std::string out;
  DumpTo(&out);
  return out;
}

namespace {

/// Recursive-descent parser with an explicit depth budget (the recursion
/// and the limit are the same counter, so the depth cap IS the stack-safety
/// proof) and a node budget shared across the whole parse.
class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  Result<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    XICC_RETURN_IF_ERROR(Value(&v, limits_.max_depth));
    SkipWs();
    if (pos_ != text_.size()) return ParseFail("trailing characters after value");
    return v;
  }

 private:
  Status ParseFail(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ChargeNode() {
    if (++nodes_ > limits_.max_nodes) return ParseFail("too many values");
    return Status::Ok();
  }

  Status Value(JsonValue* out, size_t depth_budget) {
    if (pos_ >= text_.size()) return ParseFail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ObjectValue(out, depth_budget);
      case '[':
        return ArrayValue(out, depth_budget);
      case '"': {
        std::string s;
        XICC_RETURN_IF_ERROR(StringValue(&s));
        *out = JsonValue::Str(std::move(s));
        return Status::Ok();
      }
      case 't':
        return Literal("true", JsonValue::Bool(true), out);
      case 'f':
        return Literal("false", JsonValue::Bool(false), out);
      case 'n':
        return Literal("null", JsonValue::Null(), out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return NumberValue(out);
        return ParseFail(std::string("unexpected character '") + c + "'");
    }
  }

  Status Literal(std::string_view word, JsonValue value, JsonValue* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return ParseFail("malformed literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return Status::Ok();
  }

  Status ObjectValue(JsonValue* out, size_t depth_budget) {
    if (depth_budget == 0) return ParseFail("nested too deeply");
    ++pos_;  // '{'
    *out = JsonValue::Object();
    SkipWs();
    if (Eat('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      std::string key;
      XICC_RETURN_IF_ERROR(StringValue(&key));
      SkipWs();
      if (!Eat(':')) return ParseFail("expected ':' after object key");
      SkipWs();
      JsonValue member;
      XICC_RETURN_IF_ERROR(ChargeNode());
      XICC_RETURN_IF_ERROR(Value(&member, depth_budget - 1));
      out->Set(key, std::move(member));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat('}')) return Status::Ok();
      return ParseFail("expected ',' or '}' in object");
    }
  }

  Status ArrayValue(JsonValue* out, size_t depth_budget) {
    if (depth_budget == 0) return ParseFail("nested too deeply");
    ++pos_;  // '['
    *out = JsonValue::Array();
    SkipWs();
    if (Eat(']')) return Status::Ok();
    for (;;) {
      SkipWs();
      JsonValue element;
      XICC_RETURN_IF_ERROR(ChargeNode());
      XICC_RETURN_IF_ERROR(Value(&element, depth_budget - 1));
      out->Push(std::move(element));
      SkipWs();
      if (Eat(',')) continue;
      if (Eat(']')) return Status::Ok();
      return ParseFail("expected ',' or ']' in array");
    }
  }

  Status StringValue(std::string* out) {
    if (!Eat('"')) return ParseFail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return ParseFail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          uint32_t code = 0;
          XICC_RETURN_IF_ERROR(Hex4(&code));
          // Surrogate pairs: decode \uD800-\uDBFF + \uDC00-\uDFFF into one
          // code point; a lone surrogate is malformed input.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return ParseFail("unpaired surrogate");
            }
            pos_ += 2;
            uint32_t low = 0;
            XICC_RETURN_IF_ERROR(Hex4(&low));
            if (low < 0xDC00 || low > 0xDFFF) {
              return ParseFail("unpaired surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return ParseFail("unpaired surrogate");
          }
          AppendUtf8(code, out);
          break;
        }
        default:
          return ParseFail("unknown escape");
      }
    }
    return ParseFail("unterminated string");
  }

  Status Hex4(uint32_t* out) {
    if (pos_ + 4 > text_.size()) return ParseFail("truncated \\u escape");
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return ParseFail("bad hex digit in \\u escape");
      }
    }
    *out = value;
    return Status::Ok();
  }

  static void AppendUtf8(uint32_t code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status NumberValue(JsonValue* out) {
    const size_t start = pos_;
    if (Eat('-')) {
      // sign consumed
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return ParseFail("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // No leading zeros: "0" may only be followed by . e E or end.
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return ParseFail("malformed number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return ParseFail("malformed number");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        *out = JsonValue::Int(v);
        return Status::Ok();
      }
      // Out of int64 range: fall through to double like everyone else does.
    }
    errno = 0;
    const double d = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(d)) return ParseFail("number out of range");
    *out = JsonValue::Double(d);
    return Status::Ok();
  }

  std::string_view text_;
  const JsonLimits& limits_;
  size_t pos_ = 0;
  size_t nodes_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).Parse();
}

}  // namespace net
}  // namespace xicc
