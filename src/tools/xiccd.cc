// xiccd — the fault-tolerant constraint-checking daemon.
//
// Serves the newline-delimited JSON protocol of net/protocol.h on a
// loopback TCP port: interactive sessions (open/check/implies/commit/
// rollback/close), one-shot checks, batches, and live stats, with admission
// control and overload shedding in front and drain-on-SIGTERM behind. See
// DESIGN.md §13 and README.md for the protocol and operational story.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/server.h"

namespace {

constexpr const char kUsage[] =
    "usage: xiccd [--port N] [--workers N] [--max-connections N]\n"
    "             [--max-inflight N] [--per-connection-inflight N]\n"
    "             [--max-sessions N] [--memo N] [--artifact-cache DIR]\n"
    "             [--idle-session-ttl-ms N] [--quarantine-faults N]\n"
    "             [--max-timeout-ms N] [--drain-deadline-ms N]\n"
    "             [--retry-after-ms N] [--max-line-bytes N] [--print-port]\n"
    "\n"
    "Serves the xicc consistency/implication engine over newline-delimited\n"
    "JSON on 127.0.0.1:<port> (default: an ephemeral port, printed at\n"
    "startup). SIGTERM/SIGINT drains gracefully. Every numeric flag takes\n"
    "a non-negative integer.\n";

xicc::net::Server* g_server = nullptr;

void HandleSignal(int /*sig*/) {
  // Async-signal-safe by construction: RequestShutdown is an atomic store
  // plus a self-pipe write.
  if (g_server != nullptr) g_server->RequestShutdown();
}

/// Parses a non-negative integer flag value. Rejects negatives, garbage,
/// trailing junk, and overflow — a daemon must not "helpfully" reinterpret
/// a typo'd limit as some other limit.
bool ParseNonNegative(const std::string& flag, const std::string& text,
                      int64_t* out) {
  if (text.empty()) {
    std::fprintf(stderr, "xiccd: %s needs a value\n%s", flag.c_str(),
                 kUsage);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end == text.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr,
                 "xiccd: %s needs a non-negative integer, got \"%s\"\n%s",
                 flag.c_str(), text.c_str(), kUsage);
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  xicc::net::ServerOptions options;
  bool print_port = false;

  std::vector<std::string> args(argv + 1, argv + argc);
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next = [&](std::string* value) {
      if (i + 1 >= args.size()) return false;
      *value = args[++i];
      return true;
    };
    auto numeric = [&](int64_t* out) {
      std::string value;
      if (!next(&value)) {
        std::fprintf(stderr, "xiccd: %s needs a value\n%s", arg.c_str(),
                     kUsage);
        return false;
      }
      return ParseNonNegative(arg, value, out);
    };
    int64_t v = 0;
    if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (arg == "--print-port") {
      print_port = true;
    } else if (arg == "--port") {
      if (!numeric(&v)) return 2;
      if (v > 65535) {
        std::fprintf(stderr, "xiccd: --port must be <= 65535\n%s", kUsage);
        return 2;
      }
      options.port = static_cast<uint16_t>(v);
    } else if (arg == "--workers") {
      if (!numeric(&v)) return 2;
      options.workers = static_cast<size_t>(v);
    } else if (arg == "--max-connections") {
      if (!numeric(&v)) return 2;
      options.max_connections = static_cast<size_t>(v);
    } else if (arg == "--max-inflight") {
      if (!numeric(&v)) return 2;
      options.max_inflight = static_cast<size_t>(v);
    } else if (arg == "--per-connection-inflight") {
      if (!numeric(&v)) return 2;
      options.per_connection_inflight = static_cast<size_t>(v);
    } else if (arg == "--max-sessions") {
      if (!numeric(&v)) return 2;
      options.max_sessions = static_cast<size_t>(v);
    } else if (arg == "--memo") {
      if (!numeric(&v)) return 2;
      options.memo_capacity = static_cast<size_t>(v);
    } else if (arg == "--artifact-cache") {
      if (!next(&options.artifact_dir)) {
        std::fprintf(stderr, "xiccd: --artifact-cache needs a directory\n%s",
                     kUsage);
        return 2;
      }
    } else if (arg == "--idle-session-ttl-ms") {
      if (!numeric(&v)) return 2;
      options.idle_session_ttl_ms = v;
    } else if (arg == "--quarantine-faults") {
      if (!numeric(&v)) return 2;
      options.quarantine_after_faults = static_cast<size_t>(v);
    } else if (arg == "--max-timeout-ms") {
      if (!numeric(&v)) return 2;
      options.max_timeout_ms = v;
    } else if (arg == "--drain-deadline-ms") {
      if (!numeric(&v)) return 2;
      options.drain_deadline_ms = v;
    } else if (arg == "--retry-after-ms") {
      if (!numeric(&v)) return 2;
      options.retry_after_ms = v;
    } else if (arg == "--max-line-bytes") {
      if (!numeric(&v)) return 2;
      options.max_line_bytes = static_cast<size_t>(v);
    } else {
      std::fprintf(stderr, "xiccd: unknown flag \"%s\"\n%s", arg.c_str(),
                   kUsage);
      return 2;
    }
  }

  auto server = xicc::net::Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "xiccd: cannot start: %s\n",
                 std::string(server.status().message()).c_str());
    return 1;
  }
  g_server = server->get();

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  if (print_port) {
    // Machine-readable first line for test harnesses.
    std::printf("%u\n", static_cast<unsigned>((*server)->port()));
  } else {
    std::printf("xiccd: listening on 127.0.0.1:%u\n",
                static_cast<unsigned>((*server)->port()));
  }
  std::fflush(stdout);

  (*server)->Wait();

  const xicc::net::ServerStats stats = (*server)->stats();
  std::fprintf(stderr,
               "xiccd: drained (requests=%llu ok=%llu shed=%llu "
               "deadline=%llu cancelled=%llu invalid=%llu sessions=%zu)\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.responses_ok),
               static_cast<unsigned long long>(stats.shed_requests),
               static_cast<unsigned long long>(
                   stats.responses_deadline_exceeded),
               static_cast<unsigned long long>(stats.responses_cancelled),
               static_cast<unsigned long long>(
                   stats.responses_invalid_argument),
               stats.open_sessions);
  g_server = nullptr;
  return 0;
}
