#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace xicc {
namespace tools {

/// The `xicc` command-line interface, exposed as a function so the test
/// suite can drive it. `args` excludes argv[0]. Returns the process exit
/// code: 0 success / "yes", 1 negative verdict ("inconsistent", "not
/// implied", "document rejected"), 2 usage or input error.
///
/// Subcommands:
///   compile  <dtd> [--artifact-cache DIR] [--out FILE]
///   check    <dtd> <constraints> [--witness FILE] [--min-nodes N] [--big-m]
///   implies  <dtd> <constraints> <phi> [--counterexample FILE]
///   validate <dtd> <constraints> <document.xml>
///   witness  <dtd> <constraints> [--min-nodes N]      (print to stdout)
///   classify <dtd> <constraints>
///   simplify <dtd>
///   encode   <dtd> <constraints>
///   closure  <dtd> <constraints> [--no-inclusions]
///   idrefs   <dtd>
/// File arguments use the dtd_parser.h / constraint_parser.h syntaxes.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace tools
}  // namespace xicc
