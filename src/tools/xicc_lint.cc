// xicc_lint — the repo's soundness linter (see src/analysis/lint_rules.h).
//
// Walks <root>/src and enforces the invariants no compiler checks for us:
// exact arithmetic in the verdict paths, no nondeterminism, annotated
// concurrency primitives only, no muted [[nodiscard]] results, #pragma once,
// and include layering. Exits 0 when clean, 1 with file:line diagnostics
// otherwise, 2 on usage/I/O errors.

#include <cstring>
#include <iostream>
#include <string>

#include "analysis/lint_rules.h"

namespace {

constexpr const char* kUsage = R"(usage: xicc_lint [options]
  --root DIR    repository root to lint (default: .); scans DIR/src
  --fix         apply mechanical fixes in place (pragma-once guards), then
                report what remains
  --list-rules  print every rule with its summary and exit

Suppress a finding with a trailing comment on (or directly above) the line:
  // xicc-lint: allow(rule-name)
)";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool fix = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--fix") == 0) {
      fix = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const xicc::LintRuleInfo& rule : xicc::LintRules()) {
        std::cout << rule.name << (rule.fixable ? "  [fixable]" : "") << "\n    "
                  << rule.summary << "\n";
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "unknown argument '" << argv[i] << "'\n" << kUsage;
      return 2;
    }
  }

  xicc::Result<xicc::LintRunReport> run = xicc::RunLint(root, fix);
  if (!run.ok()) {
    std::cerr << "xicc_lint: " << run.status() << "\n";
    return 2;
  }
  for (const xicc::LintIssue& issue : run->issues) {
    std::cout << issue.ToString() << "\n";
  }
  std::cerr << "xicc_lint: " << run->files_scanned << " files scanned, "
            << run->files_fixed << " fixed, " << run->issues.size()
            << " finding" << (run->issues.size() == 1 ? "" : "s") << "\n";
  return run->issues.empty() ? 0 : 1;
}
