#include "tools/cli.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "base/deadline.h"
#include "constraints/constraint_parser.h"
#include "constraints/id_idref.h"
#include "core/artifact.h"
#include "core/artifact_cache.h"
#include "core/batch.h"
#include "core/cardinality_encoding.h"
#include "core/closure.h"
#include "core/incremental.h"
#include "core/spec.h"
#include "core/spec_session.h"
#include "core/streaming_validator.h"
#include "dtd/dtd_parser.h"
#include "dtd/simplify.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace xicc {
namespace tools {

namespace {

constexpr int kOk = 0;
constexpr int kNegative = 1;
constexpr int kError = 2;

constexpr const char* kUsage = R"(usage: xicc <command> ...

  check    <dtd> <constraints> [--witness FILE] [--min-nodes N] [--big-m]
           [--stats] [--timeout-ms N] [--cancel-after N]
           [--artifact-cache DIR]
           Is the specification consistent? (exit 0 yes / 1 no)
  batch    <dtd> <queries> [--threads N] [--chunk N] [--big-m] [--stats]
           [--timeout-ms N] [--cancel-after N] [--artifact-cache DIR]
           Answer many consistency queries against one compiled DTD.
           <queries> holds constraint blocks separated by lines of `---`;
           the DTD is compiled once and shared by all worker sessions.
  compile  <dtd> [--artifact-cache DIR] [--out FILE]
           Compile the DTD into a persistent artifact (grammar facts,
           frozen DFAs, minimal-tree plan, LP skeleton + warm-start basis)
           and store it in the cache directory and/or an explicit file.
           Later check/batch runs with --artifact-cache DIR warm-start
           from the artifact instead of recompiling.
  implies  <dtd> <constraints> <phi> [--counterexample FILE]
           Does the specification imply the constraint <phi>?
  validate <dtd> <constraints> <document.xml> [--stream]
           Check a concrete document against DTD and constraints
           (--stream: single pass, no tree materialized).
  witness  <dtd> <constraints> [--min-nodes N]
           Print an example document satisfying the specification.
  classify <dtd> <constraints>
           Report the Figure-5 constraint class and decidability.
  simplify <dtd>
           Print the Section 4.1 simplified DTD.
  encode   <dtd> <constraints>
           Print the Ψ(D,Σ) cardinality system (Theorem 4.1).
  closure  <dtd> <constraints> [--no-inclusions]
           List implied-but-unstated unary keys/inclusions and redundant
           constraints.
  equiv    <dtd> <constraints1> <constraints2>
           Are two constraint sets equivalent over the DTD? (exit 0/1)
  idrefs   <dtd>
           Translate ID/IDREF attribute declarations into constraints.

Constraint syntax (one per line):
  key teacher(name)
  fk subject(taught_by) => teacher(name)
  inclusion a(x) <= b(y)
  !key a(x)          !inclusion a(x) <= b(y)

--timeout-ms bounds one check's wall clock (for batch: EACH query's,
measured from when that query starts). A check that outlives its budget
reports "no verdict" with the partial search statistics — it never turns
into a consistency answer. --cancel-after arms a timer that cancels the
whole run after N ms; batch returns promptly, keeping every verdict
that finished and recording the rest as cancelled.

--artifact-cache names a directory of compiled-DTD artifacts keyed by DTD
content hash. A hit mmaps the artifact (integrity-checked: container
checksums, content key, and a recomputed semantic digest) instead of
compiling; a miss or a corrupt file falls back to a cold compile and
(re)writes the artifact. Cache trouble never changes verdicts.

--stats prints the solver counters behind a verdict (system size, ILP
nodes, warm/cold LP solves, compile-vs-query time, sigma-delta and memo
hits). Verdict soundness itself is machine-checked separately: xicc_lint
gates the source invariants (exact arithmetic, determinism, annotated
concurrency), -DXICC_THREAD_SAFETY=ON makes clang verify the locking, and
a -DXICC_AUDIT=ON build re-checks solver invariants at every checkpoint —
see "Verifying correctness" in README.md.
)";

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::InvalidArgument("cannot open '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot write '" + path + "'");
  }
  out << content;
  return Status::Ok();
}

/// Positional / flag splitter: flags may carry one value.
struct ParsedArgs {
  std::vector<std::string> positional;
  std::map<std::string, std::string> flags;  // --name -> value ("" if bare).
};

Result<ParsedArgs> ParseArgs(const std::vector<std::string>& args,
                             size_t from,
                             const std::map<std::string, bool>& known_flags) {
  ParsedArgs out;
  for (size_t i = from; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg.rfind("--", 0) != 0) {
      out.positional.push_back(arg);
      continue;
    }
    auto it = known_flags.find(arg);
    if (it == known_flags.end()) {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
    if (it->second) {  // Takes a value.
      if (i + 1 >= args.size()) {
        return Status::InvalidArgument("flag '" + arg + "' needs a value");
      }
      out.flags[arg] = args[++i];
    } else {
      out.flags[arg] = "";
    }
  }
  return out;
}

Result<XmlSpec> LoadSpec(const std::string& dtd_path,
                         const std::string& constraints_path) {
  XICC_ASSIGN_OR_RETURN(std::string dtd_text, ReadFile(dtd_path));
  XICC_ASSIGN_OR_RETURN(std::string sigma_text, ReadFile(constraints_path));
  return XmlSpec::Parse(dtd_text, sigma_text);
}

/// Parses a flag value that must be an integer >= `min`. Rejects empty
/// values, trailing junk ("10x"), and out-of-range magnitudes (ERANGE or
/// beyond the int64 the callers store), each with a usage hint so the
/// operator sees what shape was expected.
Result<int64_t> ParseIntFlag(const std::string& name, const std::string& text,
                             int64_t min, const std::string& expected) {
  errno = 0;
  char* end = nullptr;
  long long n = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(name + " needs " + expected + ", got '" +
                                   text + "' (run `xicc` for usage)");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument(name + " value '" + text +
                                   "' is out of range (run `xicc` for usage)");
  }
  if (n < min) {
    return Status::InvalidArgument(name + " needs " + expected + ", got '" +
                                   text + "' (run `xicc` for usage)");
  }
  return static_cast<int64_t>(n);
}

/// Parses an optional positive-integer flag; 0 means "not given".
Result<int64_t> PositiveMsFlag(const ParsedArgs& parsed,
                               const std::string& name) {
  auto it = parsed.flags.find(name);
  if (it == parsed.flags.end()) return int64_t{0};
  return ParseIntFlag(name, it->second, 1, "a positive integer (ms)");
}

/// The --timeout-ms / --cancel-after plumbing shared by check and batch:
/// owns the cancel token and its timer so the StopSignal pointers given to
/// the solver stack stay valid for the command's whole run.
struct StopPlumbing {
  CancelToken token;
  std::optional<CancelTimer> timer;  // Armed iff --cancel-after was given.
  int64_t timeout_ms = 0;
  int64_t cancel_after_ms = 0;

  Status Arm(const ParsedArgs& parsed) {
    XICC_ASSIGN_OR_RETURN(timeout_ms, PositiveMsFlag(parsed, "--timeout-ms"));
    XICC_ASSIGN_OR_RETURN(cancel_after_ms,
                          PositiveMsFlag(parsed, "--cancel-after"));
    if (cancel_after_ms > 0) timer.emplace(&token, cancel_after_ms);
    return Status::Ok();
  }
};

Result<ConsistencyOptions> OptionsFromFlags(const ParsedArgs& parsed) {
  ConsistencyOptions options;
  if (parsed.flags.count("--big-m")) {
    options.strategy = SolveStrategy::kBigM;
  }
  auto it = parsed.flags.find("--min-nodes");
  if (it != parsed.flags.end()) {
    XICC_ASSIGN_OR_RETURN(int64_t n,
                          ParseIntFlag("--min-nodes", it->second, 0,
                                       "a nonnegative integer"));
    options.min_witness_nodes = static_cast<size_t>(n);
  }
  return options;
}

/// One line of sparse-LP-kernel counters (DESIGN.md §12), shared by the
/// per-check and batch-total stats blocks.
void PrintLpKernel(const LpKernelStats& k, std::ostream& out) {
  out << "lp kernel:  " << k.dantzig_pivots << " dantzig / " << k.bland_pivots
      << " bland pivots, " << k.bland_fallbacks << " fallbacks, fill-in "
      << k.fill_in << ", nnz " << k.nnz_cells << "/" << k.total_cells
      << " cells, fast rows " << k.fast_rows << " (" << k.fast_row_promotions
      << " promoted)\n";
}

void PrintStats(const ConsistencyStats& stats, std::ostream& out) {
  out << "stats:      " << stats.system_variables << " vars, "
      << stats.system_constraints << " rows, " << stats.ilp_nodes
      << " ilp nodes, " << stats.lp_pivots << " lp pivots ("
      << stats.warm_starts << " warm / " << stats.cold_restarts
      << " cold), depth " << stats.search_depth << ", ilp "
      << stats.ilp_wall_ms << " ms\n";
  out << "arithmetic: " << stats.num_small_ops << " small ops, "
      << stats.num_big_ops << " big ops, " << stats.num_promotions
      << " promotions / " << stats.num_demotions << " demotions, arena "
      << stats.arena_bytes << " bytes\n";
  PrintLpKernel(stats.lp_kernel, out);
  out << "session:    compile " << stats.compile_ms << " ms, "
      << stats.sigma_delta_checks << " sigma-delta, " << stats.memo_hits
      << " memo hits, " << stats.memo_misses << " memo misses\n";
  out << "stages:     setup " << stats.session_setup_ms << " ms, memo key "
      << stats.memo_key_ms << " ms, lookup " << stats.memo_lookup_ms
      << " ms, store " << stats.memo_store_ms << " ms\n";
}

int CmdCheck(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  auto parsed = ParseArgs(args, 1,
                          {{"--witness", true},
                           {"--min-nodes", true},
                           {"--big-m", false},
                           {"--stats", false},
                           {"--timeout-ms", true},
                           {"--cancel-after", true},
                           {"--artifact-cache", true}});
  if (!parsed.ok() || parsed->positional.size() != 2) {
    err << (parsed.ok() ? std::string("check needs <dtd> <constraints>")
                        : parsed.status().message())
        << "\n";
    return kError;
  }
  auto spec = LoadSpec(parsed->positional[0], parsed->positional[1]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  auto options = OptionsFromFlags(*parsed);
  if (!options.ok()) {
    err << options.status() << "\n";
    return kError;
  }
  StopPlumbing plumbing;
  Status armed = plumbing.Arm(*parsed);
  if (!armed.ok()) {
    err << armed << "\n";
    return kError;
  }
  ConsistencyStats partial;
  if (plumbing.timeout_ms > 0 || plumbing.cancel_after_ms > 0) {
    if (plumbing.timeout_ms > 0) {
      options->stop.deadline = Deadline::After(plumbing.timeout_ms);
    }
    options->stop.cancel = &plumbing.token;
    options->partial_stats = &partial;
  }
  // With --artifact-cache the check routes through a SpecSession over the
  // cached CompiledDtd (verdict-identical to CheckConsistent's dispatch);
  // without it, the classic compile-inline path.
  auto cache_flag = parsed->flags.find("--artifact-cache");
  std::optional<SpecSession> session;
  std::optional<ArtifactSource> artifact_source;
  auto result = [&]() -> Result<ConsistencyResult> {
    if (cache_flag == parsed->flags.end()) {
      return spec->CheckConsistent(*options);
    }
    ArtifactCache cache(ArtifactCache::Options{cache_flag->second, 16});
    XICC_ASSIGN_OR_RETURN(ArtifactCache::Lookup lookup,
                          cache.GetOrCompile(spec->dtd));
    artifact_source = lookup.source;
    session.emplace(std::move(lookup.compiled), *options);
    return session->Check(spec->constraints);
  }();
  if (session.has_value() && !result.ok()) partial = session->LastPartialStats();
  if (!result.ok()) {
    const StatusCode code = result.status().code();
    if (code == StatusCode::kDeadlineExceeded ||
        code == StatusCode::kCancelled) {
      // A stopped check has decided nothing; report how far it got, never
      // a verdict.
      err << "no verdict: " << result.status().message() << "\n";
      if (parsed->flags.count("--stats")) PrintStats(partial, err);
      return kError;
    }
    err << result.status() << "\n";
    return kError;
  }
  out << "class:      " << ConstraintClassName(result->constraint_class)
      << "\n";
  out << "method:     " << result->method << "\n";
  out << "consistent: " << (result->consistent ? "yes" : "no") << "\n";
  if (!result->explanation.empty()) {
    out << "why:        " << result->explanation << "\n";
  }
  if (parsed->flags.count("--stats")) {
    PrintStats(result->stats, out);
    if (artifact_source.has_value()) {
      out << "artifact:   " << ArtifactSourceName(*artifact_source) << " ("
          << cache_flag->second << ")\n";
    }
  }
  auto witness_flag = parsed->flags.find("--witness");
  if (witness_flag != parsed->flags.end() && result->witness.has_value()) {
    Status written =
        WriteFile(witness_flag->second, SerializeXml(*result->witness));
    if (!written.ok()) {
      err << written << "\n";
      return kError;
    }
    out << "witness:    " << witness_flag->second << " ("
        << result->witness->size() << " nodes)\n";
  }
  return result->consistent ? kOk : kNegative;
}

/// Splits the batch query file into blocks on lines that are exactly `---`
/// (ignoring surrounding whitespace). Blank blocks are kept: an empty Σ is a
/// legitimate (trivially consistent) query.
std::vector<std::string> SplitQueryBlocks(const std::string& text) {
  std::vector<std::string> blocks;
  std::string current;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::string trimmed = line;
    size_t begin = trimmed.find_first_not_of(" \t\r");
    size_t end = trimmed.find_last_not_of(" \t\r");
    trimmed = begin == std::string::npos
                  ? std::string()
                  : trimmed.substr(begin, end - begin + 1);
    if (trimmed == "---") {
      blocks.push_back(current);
      current.clear();
    } else {
      current += line;
      current += '\n';
    }
  }
  blocks.push_back(current);
  return blocks;
}

int CmdBatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  auto parsed = ParseArgs(args, 1,
                          {{"--threads", true},
                           {"--chunk", true},
                           {"--big-m", false},
                           {"--stats", false},
                           {"--timeout-ms", true},
                           {"--cancel-after", true},
                           {"--artifact-cache", true}});
  if (!parsed.ok() || parsed->positional.size() != 2) {
    err << (parsed.ok() ? std::string("batch needs <dtd> <queries>")
                        : parsed.status().message())
        << "\n";
    return kError;
  }
  auto dtd_text = ReadFile(parsed->positional[0]);
  if (!dtd_text.ok()) {
    err << dtd_text.status() << "\n";
    return kError;
  }
  auto dtd = ParseDtd(*dtd_text);
  if (!dtd.ok()) {
    err << dtd.status() << "\n";
    return kError;
  }
  auto queries_text = ReadFile(parsed->positional[1]);
  if (!queries_text.ok()) {
    err << queries_text.status() << "\n";
    return kError;
  }
  std::vector<ConstraintSet> queries;
  for (const std::string& block : SplitQueryBlocks(*queries_text)) {
    auto sigma = ParseConstraints(block);
    if (!sigma.ok()) {
      err << "query " << queries.size() << ": " << sigma.status() << "\n";
      return kError;
    }
    queries.push_back(std::move(*sigma));
  }

  BatchOptions options;
  if (parsed->flags.count("--big-m")) {
    options.check.strategy = SolveStrategy::kBigM;
  }
  auto threads_flag = parsed->flags.find("--threads");
  if (threads_flag != parsed->flags.end()) {
    auto n = ParseIntFlag("--threads", threads_flag->second, 1,
                          "a positive integer");
    if (!n.ok()) {
      err << n.status() << "\n";
      return kError;
    }
    options.num_threads = static_cast<size_t>(*n);
  }
  auto chunk_flag = parsed->flags.find("--chunk");
  if (chunk_flag != parsed->flags.end()) {
    auto n = ParseIntFlag("--chunk", chunk_flag->second, 1,
                          "a positive integer");
    if (!n.ok()) {
      err << n.status() << "\n";
      return kError;
    }
    options.chunk_size = static_cast<size_t>(*n);
  }
  StopPlumbing plumbing;
  Status armed = plumbing.Arm(*parsed);
  if (!armed.ok()) {
    err << armed << "\n";
    return kError;
  }
  options.item_timeout_ms = plumbing.timeout_ms;
  if (plumbing.cancel_after_ms > 0) options.cancel = &plumbing.token;

  auto cache_flag = parsed->flags.find("--artifact-cache");
  std::optional<ArtifactSource> artifact_source;
  StageTally artifact_tally;
  auto compiled = [&]() -> Result<std::shared_ptr<const CompiledDtd>> {
    if (cache_flag == parsed->flags.end()) return CompileDtd(*dtd);
    ArtifactCache cache(ArtifactCache::Options{cache_flag->second, 16});
    XICC_ASSIGN_OR_RETURN(ArtifactCache::Lookup lookup,
                          cache.GetOrCompile(*dtd, &artifact_tally));
    artifact_source = lookup.source;
    return std::move(lookup.compiled);
  }();
  if (!compiled.ok()) {
    err << compiled.status() << "\n";
    return kError;
  }
  BatchDegradedStats degraded;
  BatchRunStats run;
  std::vector<BatchItemResult> results =
      CheckBatch(*compiled, queries, options, &degraded, &run);
  // Charge the pre-batch artifact traffic to the run's stage report, so
  // the stages line sums to the whole command, not just the pool section.
  run.stages.Merge(artifact_tally);

  bool any_error = false;
  bool all_consistent = true;
  ConsistencyStats total;
  for (size_t i = 0; i < results.size(); ++i) {
    const BatchItemResult& item = results[i];
    if (!item.status.ok()) {
      out << "[" << i << "] error: " << item.status.message();
      const StatusCode code = item.status.code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kCancelled ||
          code == StatusCode::kResourceExhausted) {
        // The quarantined item's partial progress, inline: enough to see
        // whether the budget was merely tight or the query truly explodes.
        out << " (partial: " << item.partial.ilp_nodes << " ilp nodes, "
            << item.partial.lp_pivots << " lp pivots, depth "
            << item.partial.search_depth << ")";
      }
      out << "\n";
      any_error = true;
      continue;
    }
    out << "[" << i << "] "
        << ConstraintClassName(item.result.constraint_class) << " via "
        << item.result.method << ": "
        << (item.result.consistent ? "consistent" : "inconsistent");
    if (!item.result.consistent && !item.result.explanation.empty()) {
      out << " (" << item.result.explanation << ")";
    }
    out << "\n";
    all_consistent = all_consistent && item.result.consistent;
    total.sigma_delta_checks += item.result.stats.sigma_delta_checks;
    total.memo_hits += item.result.stats.memo_hits;
    total.memo_misses += item.result.stats.memo_misses;
    total.ilp_nodes += item.result.stats.ilp_nodes;
    total.lp_pivots += item.result.stats.lp_pivots;
    total.warm_starts += item.result.stats.warm_starts;
    total.cold_restarts += item.result.stats.cold_restarts;
    total.num_small_ops += item.result.stats.num_small_ops;
    total.num_big_ops += item.result.stats.num_big_ops;
    total.num_promotions += item.result.stats.num_promotions;
    total.num_demotions += item.result.stats.num_demotions;
    total.lp_kernel.Add(item.result.stats.lp_kernel);
    total.arena_bytes += item.result.stats.arena_bytes;
    total.ilp_wall_ms += item.result.stats.ilp_wall_ms;
  }
  out << "queries:    " << results.size() << "\n";
  if (parsed->flags.count("--stats")) {
    out << "compile:    " << (*compiled)->compile_ms << " ms (once)\n";
    if (artifact_source.has_value()) {
      out << "artifact:   " << ArtifactSourceName(*artifact_source) << " ("
          << cache_flag->second << "), load "
          << artifact_tally.MsFor(Stage::kArtifactLoad) << " ms, store "
          << artifact_tally.MsFor(Stage::kArtifactStore) << " ms\n";
    }
    out << "totals:     " << total.sigma_delta_checks << " sigma-delta, "
        << total.memo_hits << " memo hits, " << total.memo_misses
        << " memo misses, " << total.ilp_nodes << " ilp nodes, "
        << total.lp_pivots << " lp pivots (" << total.warm_starts
        << " warm / " << total.cold_restarts << " cold), ilp "
        << total.ilp_wall_ms << " ms\n";
    out << "arithmetic: " << total.num_small_ops << " small ops, "
        << total.num_big_ops << " big ops, " << total.num_promotions
        << " promotions / " << total.num_demotions << " demotions, arena "
        << total.arena_bytes << " bytes\n";
    PrintLpKernel(total.lp_kernel, out);
    out << "degraded:   " << degraded.quarantined << " quarantined ("
        << degraded.deadline_exceeded << " deadline, " << degraded.cancelled
        << " cancelled, " << degraded.resource_exhausted << " exhausted), "
        << degraded.retries << " retries / " << degraded.retry_rescues
        << " rescued\n";
    out << "schedule:   " << run.workers << " workers (hardware "
        << run.hardware_threads << "), " << run.chunks << " chunks of "
        << run.chunk_size << ", " << run.sessions_created
        << " sessions created / " << run.session_reuses << " reused, memo "
        << run.memo_hits << " hits / " << run.memo_misses << " misses / "
        << run.memo_evictions << " evicted\n";
    out << "stages:    ";
    for (size_t s = 0; s < static_cast<size_t>(Stage::kCount); ++s) {
      const Stage stage = static_cast<Stage>(s);
      out << " " << StageName(stage) << " " << run.stages.MsFor(stage)
          << " ms";
    }
    out << "\n";
  }
  if (any_error) return kError;
  return all_consistent ? kOk : kNegative;
}

int CmdCompile(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  auto parsed = ParseArgs(args, 1,
                          {{"--artifact-cache", true}, {"--out", true}});
  if (!parsed.ok() || parsed->positional.size() != 1) {
    err << (parsed.ok() ? std::string("compile needs <dtd>")
                        : parsed.status().message())
        << "\n";
    return kError;
  }
  auto cache_flag = parsed->flags.find("--artifact-cache");
  auto out_flag = parsed->flags.find("--out");
  if (cache_flag == parsed->flags.end() && out_flag == parsed->flags.end()) {
    err << "compile needs --artifact-cache DIR and/or --out FILE\n";
    return kError;
  }
  auto dtd_text = ReadFile(parsed->positional[0]);
  if (!dtd_text.ok()) {
    err << dtd_text.status() << "\n";
    return kError;
  }
  auto dtd = ParseDtd(*dtd_text);
  if (!dtd.ok()) {
    err << dtd.status() << "\n";
    return kError;
  }

  std::shared_ptr<const CompiledDtd> compiled;
  StageTally tally;
  char key_hex[17];
  std::snprintf(key_hex, sizeof(key_hex), "%016llx",
                static_cast<unsigned long long>(DtdContentHash(*dtd)));
  out << "content:    " << key_hex << " (format v" << kArtifactFormatVersion
      << ")\n";
  if (cache_flag != parsed->flags.end()) {
    ArtifactCache cache(ArtifactCache::Options{cache_flag->second, 1});
    auto lookup = cache.GetOrCompile(*dtd, &tally);
    if (!lookup.ok()) {
      err << lookup.status() << "\n";
      return kError;
    }
    compiled = std::move(lookup->compiled);
    out << "artifact:   " << cache.DiskPathFor(*dtd) << " ("
        << ArtifactSourceName(lookup->source) << ")\n";
    if (cache.stats().store_failures > 0) {
      err << "warning: artifact could not be stored in '"
          << cache_flag->second << "'\n";
    }
  } else {
    auto fresh = CompileDtd(*dtd);
    if (!fresh.ok()) {
      err << fresh.status() << "\n";
      return kError;
    }
    compiled = std::move(*fresh);
  }
  if (out_flag != parsed->flags.end()) {
    StageTimer timer(&tally, Stage::kArtifactStore);
    Status stored = StoreCompiledDtd(*compiled, out_flag->second);
    if (!stored.ok()) {
      err << stored << "\n";
      return kError;
    }
    out << "artifact:   " << out_flag->second << "\n";
  }
  out << "compile:    " << compiled->compile_ms << " ms, load "
      << tally.MsFor(Stage::kArtifactLoad) << " ms, store "
      << tally.MsFor(Stage::kArtifactStore) << " ms\n";
  return kOk;
}

int CmdImplies(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  auto parsed = ParseArgs(args, 1, {{"--counterexample", true}});
  if (!parsed.ok() || parsed->positional.size() != 3) {
    err << (parsed.ok()
                ? std::string("implies needs <dtd> <constraints> <phi>")
                : parsed.status().message())
        << "\n";
    return kError;
  }
  auto spec = LoadSpec(parsed->positional[0], parsed->positional[1]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  auto result = spec->Implies(parsed->positional[2]);
  if (!result.ok()) {
    err << result.status() << "\n";
    return kError;
  }
  out << "method:  " << result->method << "\n";
  out << "implied: " << (result->implied ? "yes" : "no") << "\n";
  if (!result->explanation.empty()) {
    out << "why:     " << result->explanation << "\n";
  }
  auto flag = parsed->flags.find("--counterexample");
  if (flag != parsed->flags.end() && result->counterexample.has_value()) {
    Status written =
        WriteFile(flag->second, SerializeXml(*result->counterexample));
    if (!written.ok()) {
      err << written << "\n";
      return kError;
    }
    out << "counterexample: " << flag->second << "\n";
  }
  return result->implied ? kOk : kNegative;
}

int CmdValidate(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  auto parsed = ParseArgs(args, 1, {{"--stream", false}});
  if (!parsed.ok() || parsed->positional.size() != 3) {
    err << (parsed.ok()
                ? std::string("validate needs <dtd> <constraints> "
                              "<document.xml> [--stream]")
                : parsed.status().message())
        << "\n";
    return kError;
  }
  auto spec = LoadSpec(parsed->positional[0], parsed->positional[1]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  auto text = ReadFile(parsed->positional[2]);
  if (!text.ok()) {
    err << text.status() << "\n";
    return kError;
  }
  if (parsed->flags.count("--stream")) {
    auto summary = ValidateStream(*text, spec->dtd, spec->constraints);
    if (!summary.ok()) {
      err << summary.status() << "\n";
      return kError;
    }
    out << summary->ToString() << "\n";
    out << "(streamed " << summary->elements_seen << " elements)\n";
    return summary->conforms ? kOk : kNegative;
  }
  auto tree = ParseXml(*text);
  if (!tree.ok()) {
    err << tree.status() << "\n";
    return kError;
  }
  auto report = spec->CheckDocument(*tree);
  out << report.details << "\n";
  return report.conforms ? kOk : kNegative;
}

int CmdWitness(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  auto parsed = ParseArgs(args, 1, {{"--min-nodes", true}});
  if (!parsed.ok() || parsed->positional.size() != 2) {
    err << (parsed.ok() ? std::string("witness needs <dtd> <constraints>")
                        : parsed.status().message())
        << "\n";
    return kError;
  }
  auto spec = LoadSpec(parsed->positional[0], parsed->positional[1]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  auto options = OptionsFromFlags(*parsed);
  if (!options.ok()) {
    err << options.status() << "\n";
    return kError;
  }
  auto result = spec->CheckConsistent(*options);
  if (!result.ok()) {
    err << result.status() << "\n";
    return kError;
  }
  if (!result->consistent) {
    err << "inconsistent: " << result->explanation << "\n";
    return kNegative;
  }
  if (!result->witness.has_value()) {
    err << "consistent, but the witness could not be materialized: "
        << result->explanation << "\n";
    return kError;
  }
  out << SerializeXml(*result->witness);
  return kOk;
}

int CmdClassify(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.size() != 3) {
    err << "classify needs <dtd> <constraints>\n";
    return kError;
  }
  auto spec = LoadSpec(args[1], args[2]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  ConstraintClass klass = spec->constraints.Classify();
  out << "class:   " << ConstraintClassName(klass) << "\n";
  out << "primary: "
      << (spec->constraints.SatisfiesPrimaryKeyRestriction() ? "yes" : "no")
      << "\n";
  switch (klass) {
    case ConstraintClass::kEmpty:
    case ConstraintClass::kKeysOnly:
      out << "consistency: decidable in linear time (Theorem 3.5)\n";
      break;
    case ConstraintClass::kUnaryKeyFk:
    case ConstraintClass::kUnaryWithNegKey:
      out << "consistency: NP-complete (Theorem 4.7 / Corollary 4.9)\n";
      break;
    case ConstraintClass::kUnaryWithNegIc:
      out << "consistency: NP-complete (Theorem 5.1)\n";
      break;
    case ConstraintClass::kMultiAttribute:
      out << "consistency: undecidable (Theorem 3.1); dynamic document\n"
             "validation remains available\n";
      break;
  }
  return kOk;
}

int CmdSimplify(const std::vector<std::string>& args, std::ostream& out,
                std::ostream& err) {
  if (args.size() != 2) {
    err << "simplify needs <dtd>\n";
    return kError;
  }
  auto text = ReadFile(args[1]);
  if (!text.ok()) {
    err << text.status() << "\n";
    return kError;
  }
  auto dtd = ParseDtd(*text);
  if (!dtd.ok()) {
    err << dtd.status() << "\n";
    return kError;
  }
  auto simplified = SimplifyDtd(*dtd);
  if (!simplified.ok()) {
    err << simplified.status() << "\n";
    return kError;
  }
  out << simplified->dtd.ToString();
  out << "<!-- synthetic element types: " << simplified->synthetic.size()
      << " -->\n";
  return kOk;
}

int CmdEncode(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  if (args.size() != 3) {
    err << "encode needs <dtd> <constraints>\n";
    return kError;
  }
  auto spec = LoadSpec(args[1], args[2]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  auto enc =
      BuildCardinalityEncoding(spec->dtd, spec->constraints.Normalize());
  if (!enc.ok()) {
    err << enc.status() << "\n";
    return kError;
  }
  out << "# Ψ(D,Σ): " << enc->system.NumVariables() << " variables, "
      << enc->system.NumConstraints() << " rows, "
      << enc->conditionals.size() << " conditionals\n";
  out << enc->system.ToString() << "\n";
  for (const Conditional& cond : enc->conditionals) {
    // Conditionals have single-variable sides in Ψ(D,Σ).
    out << "# conditional: premise>0 -> conclusion>0 over vars";
    for (const auto& [var, coeff] : cond.premise.terms()) {
      out << " " << enc->system.VarName(var);
    }
    out << " ->";
    for (const auto& [var, coeff] : cond.conclusion.terms()) {
      out << " " << enc->system.VarName(var);
    }
    out << "\n";
  }
  return kOk;
}

int CmdClosure(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  auto parsed = ParseArgs(args, 1, {{"--no-inclusions", false}});
  if (!parsed.ok() || parsed->positional.size() != 2) {
    err << (parsed.ok() ? std::string("closure needs <dtd> <constraints>")
                        : parsed.status().message())
        << "\n";
    return kError;
  }
  auto spec = LoadSpec(parsed->positional[0], parsed->positional[1]);
  if (!spec.ok()) {
    err << spec.status() << "\n";
    return kError;
  }
  ClosureOptions options;
  options.include_inclusions = parsed->flags.count("--no-inclusions") == 0;
  auto closure = ComputeUnaryClosure(spec->dtd, spec->constraints, options);
  if (!closure.ok()) {
    err << closure.status() << "\n";
    return kError;
  }
  out << "implied keys (" << closure->implied_keys.size() << "):\n";
  for (const Constraint& c : closure->implied_keys) {
    out << "  " << c.ToString() << "\n";
  }
  out << "implied inclusions (" << closure->implied_inclusions.size()
      << "):\n";
  for (const Constraint& c : closure->implied_inclusions) {
    out << "  " << c.ToString() << "\n";
  }
  auto redundant = FindRedundantConstraints(spec->dtd, spec->constraints);
  if (!redundant.ok()) {
    err << redundant.status() << "\n";
    return kError;
  }
  out << "redundant constraints (" << redundant->size() << "):\n";
  for (const Constraint& c : *redundant) {
    out << "  " << c.ToString() << "\n";
  }
  return kOk;
}

int CmdEquiv(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  if (args.size() != 4) {
    err << "equiv needs <dtd> <constraints1> <constraints2>\n";
    return kError;
  }
  auto spec1 = LoadSpec(args[1], args[2]);
  if (!spec1.ok()) {
    err << spec1.status() << "\n";
    return kError;
  }
  auto sigma2_text = ReadFile(args[3]);
  if (!sigma2_text.ok()) {
    err << sigma2_text.status() << "\n";
    return kError;
  }
  auto sigma2 = ParseConstraints(*sigma2_text);
  if (!sigma2.ok()) {
    err << sigma2.status() << "\n";
    return kError;
  }
  Status against = sigma2->CheckAgainst(spec1->dtd);
  if (!against.ok()) {
    err << against << "\n";
    return kError;
  }
  auto result = CheckEquivalence(spec1->dtd, spec1->constraints, *sigma2);
  if (!result.ok()) {
    err << result.status() << "\n";
    return kError;
  }
  out << "equivalent: " << (result->equivalent ? "yes" : "no") << "\n";
  if (!result->equivalent) {
    out << "separated by: " << result->separating_constraint << "\n";
  }
  return result->equivalent ? kOk : kNegative;
}

int CmdIdrefs(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  if (args.size() != 2) {
    err << "idrefs needs <dtd>\n";
    return kError;
  }
  auto text = ReadFile(args[1]);
  if (!text.ok()) {
    err << text.status() << "\n";
    return kError;
  }
  auto dtd = ParseDtd(*text);
  if (!dtd.ok()) {
    err << dtd.status() << "\n";
    return kError;
  }
  auto translation = DeriveIdConstraints(*dtd);
  if (!translation.ok()) {
    err << translation.status() << "\n";
    return kError;
  }
  out << translation->constraints.ToString() << "\n";
  for (const std::string& note : translation->notes) {
    out << "# note: " << note << "\n";
  }
  return kOk;
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  if (args.empty()) {
    err << kUsage;
    return kError;
  }
  const std::string& command = args[0];
  if (command == "check") return CmdCheck(args, out, err);
  if (command == "batch") return CmdBatch(args, out, err);
  if (command == "compile") return CmdCompile(args, out, err);
  if (command == "implies") return CmdImplies(args, out, err);
  if (command == "validate") return CmdValidate(args, out, err);
  if (command == "witness") return CmdWitness(args, out, err);
  if (command == "classify") return CmdClassify(args, out, err);
  if (command == "simplify") return CmdSimplify(args, out, err);
  if (command == "encode") return CmdEncode(args, out, err);
  if (command == "closure") return CmdClosure(args, out, err);
  if (command == "equiv") return CmdEquiv(args, out, err);
  if (command == "idrefs") return CmdIdrefs(args, out, err);
  if (command == "help" || command == "--help" || command == "-h") {
    out << kUsage;
    return kOk;
  }
  err << "unknown command '" << command << "'\n" << kUsage;
  return kError;
}

}  // namespace tools
}  // namespace xicc
