// The xicc command-line tool; all logic lives in tools/cli.h so the test
// suite can drive it.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return xicc::tools::RunCli(args, std::cout, std::cerr);
}
