// xicc_analyze — the repo's semantic analyzer (see src/analysis/analyze.h).
//
// One pass over <root>/src feeds the migrated lint rules AND the semantic
// engines: lock-order (graph + LOCK_ORDER.md), stop-poll coverage,
// status-drop dataflow, arena-escape, and the include graph. Findings gate
// against a checked-in baseline so adoption is incremental: exit 0 when no
// finding is new vs. the baseline, 1 when new findings exist, 2 on
// usage/I/O errors.

#include <cstring>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "analysis/lint_rules.h"

namespace {

constexpr const char* kUsage = R"(usage: xicc_analyze [options]
  --root DIR        repository root to analyze (default: .); scans DIR/src
  --format FMT      text (default) or json (machine-readable full report)
  --baseline FILE   accepted-findings file (default: DIR/ANALYZE_BASELINE.txt)
  --write-baseline  rewrite the baseline to accept every current finding
  --fix             apply mechanical fixes (pragma-once guards) and rewrite
                    LOCK_ORDER.md from the inferred lock graph
  --list-rules      print every rule (semantic + lint) and exit

Suppress a finding with a trailing comment on (or directly above) the line:
  // xicc-lint: allow(rule-name)
)";

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string baseline_path;
  bool fix = false;
  bool write_baseline = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      format = argv[++i];
    } else if (std::strncmp(argv[i], "--format=", 9) == 0) {
      format = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--write-baseline") == 0) {
      write_baseline = true;
    } else if (std::strcmp(argv[i], "--fix") == 0) {
      fix = true;
    } else if (std::strcmp(argv[i], "--list-rules") == 0) {
      for (const xicc::LintRuleInfo& rule : xicc::AnalyzeRules()) {
        std::cout << rule.name << (rule.fixable ? "  [fixable]" : "")
                  << "\n    " << rule.summary << "\n";
      }
      for (const xicc::LintRuleInfo& rule : xicc::LintRules()) {
        std::cout << rule.name << (rule.fixable ? "  [fixable]" : "")
                  << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      std::cout << kUsage;
      return 0;
    } else {
      std::cerr << "unknown argument '" << argv[i] << "'\n" << kUsage;
      return 2;
    }
  }
  if (format != "text" && format != "json") {
    std::cerr << "unknown --format '" << format << "'\n" << kUsage;
    return 2;
  }
  if (baseline_path.empty()) {
    baseline_path = root + "/ANALYZE_BASELINE.txt";
  }

  xicc::Result<xicc::AnalyzeRunReport> run = xicc::AnalyzeRepo(root, fix);
  if (!run.ok()) {
    std::cerr << "xicc_analyze: " << run.status() << "\n";
    return 2;
  }

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "xicc_analyze: cannot write '" << baseline_path << "'\n";
      return 2;
    }
    out << xicc::RenderBaseline(run->analysis.findings);
    std::cerr << "xicc_analyze: baseline written to " << baseline_path
              << " (" << run->analysis.findings.size() << " findings)\n";
    return 0;
  }

  std::set<std::string> baseline;
  {
    std::ifstream in(baseline_path, std::ios::binary);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      baseline = xicc::ParseBaseline(buffer.str());
    }
  }
  const std::vector<xicc::Finding> fresh =
      xicc::NewFindings(run->analysis.findings, baseline);

  if (format == "json") {
    std::cout << xicc::RenderFindingsJson(run->analysis, baseline);
  } else {
    for (const xicc::Finding& f : fresh) {
      std::cout << f.ToString() << "\n";
    }
  }
  std::cerr << "xicc_analyze: " << run->analysis.files_scanned
            << " files scanned, " << run->analysis.findings.size()
            << " finding" << (run->analysis.findings.size() == 1 ? "" : "s")
            << " (" << fresh.size() << " new vs. baseline)\n";
  return fresh.empty() ? 0 : 1;
}
