#include "xml/parser.h"

#include <optional>
#include <vector>

namespace xicc {

namespace {

/// Builds an XmlTree from the event stream.
class TreeBuilder : public XmlEventHandler {
 public:
  Status StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) override {
    NodeId node;
    if (!tree_.has_value()) {
      tree_.emplace(name);
      node = tree_->root();
    } else {
      node = tree_->AddElement(stack_.back(), name);
    }
    for (const auto& [attr, value] : attrs) {
      tree_->SetAttribute(node, attr, value);
    }
    stack_.push_back(node);
    return Status::Ok();
  }

  Status Text(const std::string& value) override {
    tree_->AddText(stack_.back(), value);
    return Status::Ok();
  }

  Status EndElement(const std::string& name) override {
    (void)name;  // The parser guarantees proper nesting.
    stack_.pop_back();
    return Status::Ok();
  }

  XmlTree TakeTree() { return *std::move(tree_); }

 private:
  std::optional<XmlTree> tree_;
  std::vector<NodeId> stack_;
};

}  // namespace

Result<XmlTree> ParseXml(std::string_view input,
                         const XmlParseOptions& options) {
  TreeBuilder builder;
  XICC_RETURN_IF_ERROR(ParseXmlEvents(input, &builder, options));
  return builder.TakeTree();
}

}  // namespace xicc
