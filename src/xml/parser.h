#pragma once

#include <string_view>

#include "base/status.h"
#include "xml/event_parser.h"
#include "xml/tree.h"

namespace xicc {

/// Parses an XML document into an XmlTree (a handler over ParseXmlEvents).
///
/// Supported: one root element, nested elements, attributes (single- or
/// double-quoted), character data, the five predefined entities, numeric
/// character references (ASCII range), comments, processing instructions,
/// CDATA sections, and a DOCTYPE declaration (skipped, including an internal
/// subset). Errors carry 1-based line:column positions.
Result<XmlTree> ParseXml(std::string_view input,
                         const XmlParseOptions& options = {});

}  // namespace xicc
