#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace xicc {

struct XmlParseOptions {
  /// Drop text nodes that consist only of whitespace (layout text between
  /// elements). The paper's model has no mixed content, so this is on by
  /// default.
  bool skip_whitespace_text = true;
  /// Maximum element nesting depth. The parser recurses per element level,
  /// so this bounds the C++ stack; exceeding it is kInvalidArgument, never
  /// a stack overflow. 0 = the built-in default (256).
  size_t max_depth = 0;
  /// Maximum accepted input size in bytes; larger inputs are rejected with
  /// kInvalidArgument before any parsing. 0 = the built-in default (64 MiB).
  size_t max_input_bytes = 0;
};

/// SAX-style event sink for ParseXmlEvents. Returning a non-OK status from
/// any callback aborts the parse with that status — streaming validators
/// use this to fail fast.
class XmlEventHandler {
 public:
  virtual ~XmlEventHandler() = default;

  /// Start tag, with its (name, value) attributes in document order.
  /// Duplicate attribute names are rejected by the parser before this call.
  virtual Status StartElement(
      const std::string& name,
      const std::vector<std::pair<std::string, std::string>>& attrs) = 0;
  /// Character data (entities expanded, CDATA included).
  virtual Status Text(const std::string& value) = 0;
  /// Matching end tag (also emitted for self-closing elements).
  virtual Status EndElement(const std::string& name) = 0;
};

/// Single-pass XML parse, emitting events instead of building a tree. Same
/// dialect as ParseXml (xml/parser.h documents it); the tree parser is a
/// handler over this function.
Status ParseXmlEvents(std::string_view input, XmlEventHandler* handler,
                      const XmlParseOptions& options = {});

}  // namespace xicc
