#include "xml/event_parser.h"

#include <cstdlib>

#include "base/strings.h"

namespace xicc {

namespace {

constexpr size_t kDefaultMaxDepth = 256;
constexpr size_t kDefaultMaxInputBytes = 64 * 1024 * 1024;

/// Recursive-descent XML parser over a string_view cursor, emitting events.
class EventParser {
 public:
  EventParser(std::string_view input, const XmlParseOptions& options,
              XmlEventHandler* handler)
      : input_(input), options_(options), handler_(handler) {
    if (options_.max_depth == 0) options_.max_depth = kDefaultMaxDepth;
    if (options_.max_input_bytes == 0) {
      options_.max_input_bytes = kDefaultMaxInputBytes;
    }
  }

  Status Parse() {
    if (input_.size() > options_.max_input_bytes) {
      return Status::InvalidArgument(
          "xml input of " + std::to_string(input_.size()) +
          " bytes exceeds the limit of " +
          std::to_string(options_.max_input_bytes));
    }
    SkipProlog();
    if (AtEnd() || Peek() != '<') {
      return Error("expected root element");
    }
    XICC_ASSIGN_OR_RETURN(std::string root_name, ParseOpenTagName());
    XICC_RETURN_IF_ERROR(ParseElementRest(root_name, /*depth=*/1));
    SkipMisc();
    if (!AtEnd()) return Error("content after root element");
    return Status::Ok();
  }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < input_.size() ? input_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  bool Consume(std::string_view token) {
    if (input_.substr(pos_).substr(0, token.size()) != token) return false;
    for (size_t i = 0; i < token.size(); ++i) Advance();
    return true;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError("xml:" + std::to_string(line_) + ":" +
                              std::to_string(column_) + ": " + message);
  }

  void SkipSpace() {
    while (!AtEnd() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                        Peek() == '\r')) {
      Advance();
    }
  }

  /// Skips comments, PIs, DOCTYPE, and whitespace before/after the root.
  void SkipMisc() {
    for (;;) {
      SkipSpace();
      if (Consume("<!--")) {
        while (!AtEnd() && !Consume("-->")) Advance();
      } else if (Consume("<?")) {
        while (!AtEnd() && !Consume("?>")) Advance();
      } else {
        return;
      }
    }
  }

  void SkipProlog() {
    SkipMisc();
    if (Consume("<!DOCTYPE")) {
      // Skip to the matching '>' allowing one level of [...] internal subset.
      int bracket_depth = 0;
      while (!AtEnd()) {
        char c = Peek();
        Advance();
        if (c == '[') ++bracket_depth;
        if (c == ']') --bracket_depth;
        if (c == '>' && bracket_depth <= 0) break;
      }
    }
    SkipMisc();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) return Error("expected a name");
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name.push_back(Peek());
      Advance();
    }
    return name;
  }

  /// Consumes '<name' and returns the name.
  Result<std::string> ParseOpenTagName() {
    if (!Consume("<")) return Error("expected '<'");
    return ParseName();
  }

  Result<std::string> ParseReference() {
    // Leading '&' already consumed.
    if (Consume("amp;")) return std::string("&");
    if (Consume("lt;")) return std::string("<");
    if (Consume("gt;")) return std::string(">");
    if (Consume("quot;")) return std::string("\"");
    if (Consume("apos;")) return std::string("'");
    if (Consume("#")) {
      int base = 10;
      if (Consume("x")) base = 16;
      std::string digits;
      while (!AtEnd() && Peek() != ';') {
        digits.push_back(Peek());
        Advance();
      }
      if (!Consume(";")) return Error("unterminated character reference");
      char* end = nullptr;
      long code = std::strtol(digits.c_str(), &end, base);
      if (end == digits.c_str() || *end != '\0' || code <= 0 || code > 127) {
        return Error("unsupported character reference &#" + digits + ";");
      }
      return std::string(1, static_cast<char>(code));
    }
    return Error("unknown entity reference");
  }

  Result<std::string> ParseAttributeValue() {
    if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
      return Error("expected quoted attribute value");
    }
    char quote = Peek();
    Advance();
    std::string value;
    while (!AtEnd() && Peek() != quote) {
      if (Peek() == '&') {
        Advance();
        XICC_ASSIGN_OR_RETURN(std::string expanded, ParseReference());
        value += expanded;
      } else if (Peek() == '<') {
        return Error("'<' in attribute value");
      } else {
        value.push_back(Peek());
        Advance();
      }
    }
    if (AtEnd()) return Error("unterminated attribute value");
    Advance();  // Closing quote.
    return value;
  }

  /// Parses attributes, then either '/>' or '>' + content + '</name>',
  /// emitting Start/Text/End events along the way. `depth` counts element
  /// nesting (root = 1): each level is one C++ recursion frame, so the
  /// max_depth check here is what turns a pathologically deep document into
  /// kInvalidArgument instead of a stack overflow.
  Status ParseElementRest(const std::string& name, size_t depth) {
    if (depth > options_.max_depth) {
      return Status::InvalidArgument(
          "xml element nesting exceeds the depth limit of " +
          std::to_string(options_.max_depth));
    }
    std::vector<std::pair<std::string, std::string>> attrs;
    for (;;) {
      SkipSpace();
      if (AtEnd()) return Error("unterminated start tag <" + name + ">");
      if (Consume("/>")) {
        XICC_RETURN_IF_ERROR(handler_->StartElement(name, attrs));
        return handler_->EndElement(name);
      }
      if (Consume(">")) break;
      XICC_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipSpace();
      if (!Consume("=")) return Error("expected '=' after attribute name");
      SkipSpace();
      XICC_ASSIGN_OR_RETURN(std::string attr_value, ParseAttributeValue());
      for (const auto& [existing, value] : attrs) {
        if (existing == attr_name) {
          return Error("duplicate attribute '" + attr_name + "'");
        }
      }
      attrs.emplace_back(std::move(attr_name), std::move(attr_value));
    }
    XICC_RETURN_IF_ERROR(handler_->StartElement(name, attrs));
    return ParseContent(name, depth);
  }

  Status ParseContent(const std::string& name, size_t depth) {
    std::string text;
    auto flush_text = [&]() -> Status {
      if (text.empty()) return Status::Ok();
      Status status = Status::Ok();
      if (!options_.skip_whitespace_text || !StripWhitespace(text).empty()) {
        status = handler_->Text(text);
      }
      text.clear();
      return status;
    };
    for (;;) {
      if (AtEnd()) return Error("unterminated element <" + name + ">");
      if (Peek() == '<') {
        if (Consume("<!--")) {
          while (!AtEnd() && !Consume("-->")) Advance();
          continue;
        }
        if (Consume("<![CDATA[")) {
          while (!AtEnd() && !Consume("]]>")) {
            text.push_back(Peek());
            Advance();
          }
          continue;
        }
        if (Consume("<?")) {
          while (!AtEnd() && !Consume("?>")) Advance();
          continue;
        }
        if (PeekAt(1) == '/') {
          XICC_RETURN_IF_ERROR(flush_text());
          Consume("</");
          XICC_ASSIGN_OR_RETURN(std::string close_name, ParseName());
          SkipSpace();
          if (!Consume(">")) return Error("expected '>' in end tag");
          if (close_name != name) {
            return Error("mismatched end tag: expected </" + name +
                         ">, got </" + close_name + ">");
          }
          return handler_->EndElement(name);
        }
        XICC_RETURN_IF_ERROR(flush_text());
        XICC_ASSIGN_OR_RETURN(std::string child_name, ParseOpenTagName());
        XICC_RETURN_IF_ERROR(ParseElementRest(child_name, depth + 1));
      } else if (Peek() == '&') {
        Advance();
        XICC_ASSIGN_OR_RETURN(std::string expanded, ParseReference());
        text += expanded;
      } else {
        text.push_back(Peek());
        Advance();
      }
    }
  }

  std::string_view input_;
  XmlParseOptions options_;
  XmlEventHandler* handler_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Status ParseXmlEvents(std::string_view input, XmlEventHandler* handler,
                      const XmlParseOptions& options) {
  EventParser parser(input, options, handler);
  return parser.Parse();
}

}  // namespace xicc
