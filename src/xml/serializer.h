#pragma once

#include <string>

#include "xml/tree.h"

namespace xicc {

struct XmlSerializeOptions {
  /// Indent nested elements by `indent` spaces per depth level; 0 produces a
  /// single line.
  int indent = 2;
  /// Emit the `<?xml version="1.0"?>` declaration.
  bool declaration = true;
};

/// Renders `tree` as an XML document. Round-trips through ParseXml for trees
/// without mixed content (the paper's model).
std::string SerializeXml(const XmlTree& tree,
                         const XmlSerializeOptions& options = {});

}  // namespace xicc
