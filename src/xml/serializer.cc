#include "xml/serializer.h"

#include "base/strings.h"

namespace xicc {

namespace {

void SerializeNode(const XmlTree& tree, NodeId node, int depth,
                   const XmlSerializeOptions& options, std::string* out) {
  auto newline_indent = [&](int d) {
    if (options.indent <= 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(d) * options.indent, ' ');
  };

  if (tree.kind(node) == NodeKind::kText) {
    out->append(XmlEscape(tree.text(node)));
    return;
  }
  out->push_back('<');
  out->append(tree.label(node));
  for (const auto& [name, value] : tree.attributes(node)) {
    out->push_back(' ');
    out->append(name);
    out->append("=\"");
    out->append(XmlEscape(value));
    out->push_back('"');
  }
  const auto& children = tree.children(node);
  if (children.empty()) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  // Text-only content stays inline; element content gets one child per line.
  bool has_element_child = false;
  for (NodeId child : children) {
    if (tree.kind(child) == NodeKind::kElement) has_element_child = true;
  }
  for (NodeId child : children) {
    if (has_element_child) newline_indent(depth + 1);
    SerializeNode(tree, child, depth + 1, options, out);
  }
  if (has_element_child) newline_indent(depth);
  out->append("</");
  out->append(tree.label(node));
  out->push_back('>');
}

}  // namespace

std::string SerializeXml(const XmlTree& tree,
                         const XmlSerializeOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\"?>";
    if (options.indent > 0) out.push_back('\n');
  }
  SerializeNode(tree, tree.root(), 0, options, &out);
  if (options.indent > 0) out.push_back('\n');
  return out;
}

}  // namespace xicc
