#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "base/status.h"

namespace xicc {

/// Index of a node within an XmlTree's arena.
using NodeId = uint32_t;
inline constexpr NodeId kInvalidNode = UINT32_MAX;

enum class NodeKind : uint8_t {
  kElement,  ///< Element of some type τ ∈ E.
  kText,     ///< Text node (label S in the paper), carries a string value.
};

/// A finite node-labeled ordered tree, the XML document model of
/// Definition 2.2 (V, lab, ele, att, val, root).
///
/// Nodes live in a contiguous arena addressed by NodeId; the root is always
/// node 0. Subelements (`ele`) are ordered child lists; attributes (`att` +
/// `val`) are per-element sorted (name, value) pairs — single-valued, as the
/// paper requires. Text nodes are leaves carrying `val`.
class XmlTree {
 public:
  /// Creates a tree containing only a root element labeled `root_label`.
  explicit XmlTree(std::string root_label);

  XmlTree(const XmlTree&) = default;
  XmlTree& operator=(const XmlTree&) = default;
  XmlTree(XmlTree&&) = default;
  XmlTree& operator=(XmlTree&&) = default;

  NodeId root() const { return 0; }
  /// Total number of nodes (elements + text nodes).
  size_t size() const { return nodes_.size(); }

  /// Appends a new element labeled `label` as the last child of `parent`.
  NodeId AddElement(NodeId parent, std::string label);
  /// Appends a new text node with value `value` as the last child of
  /// `parent`.
  NodeId AddText(NodeId parent, std::string value);
  /// Sets (or overwrites) attribute `name` of element `node`.
  void SetAttribute(NodeId node, std::string name, std::string value);

  NodeKind kind(NodeId node) const { return nodes_[node].kind; }
  bool IsElement(NodeId node) const {
    return nodes_[node].kind == NodeKind::kElement;
  }
  /// Element type τ; only meaningful for elements.
  const std::string& label(NodeId node) const { return nodes_[node].label; }
  /// Text value; only meaningful for text nodes.
  const std::string& text(NodeId node) const { return nodes_[node].value; }
  NodeId parent(NodeId node) const { return nodes_[node].parent; }
  const std::vector<NodeId>& children(NodeId node) const {
    return nodes_[node].children;
  }
  /// Attributes of `node`, sorted by name.
  const std::vector<std::pair<std::string, std::string>>& attributes(
      NodeId node) const {
    return nodes_[node].attributes;
  }

  /// x.l — the value of attribute `name` on `node`, if present.
  std::optional<std::string_view> AttributeValue(NodeId node,
                                                 std::string_view name) const;

  /// ext(τ): all element nodes labeled `label`, in document order.
  std::vector<NodeId> ExtOfType(std::string_view label) const;

  /// ext(τ.l): the *set* of l-attribute values over ext(τ), deduplicated,
  /// in first-occurrence order. Elements missing the attribute contribute
  /// nothing.
  std::vector<std::string> ExtOfAttribute(std::string_view label,
                                          std::string_view attr) const;

  /// The sequence of child element/text labels of `node` — the word that the
  /// content model P(lab(node)) must accept. Text children appear as "S".
  std::vector<std::string> ChildLabelWord(NodeId node) const;

 private:
  struct Node {
    NodeKind kind;
    std::string label;  // Element type for elements; empty for text.
    std::string value;  // Text content for text nodes; empty for elements.
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
    std::vector<std::pair<std::string, std::string>> attributes;
  };

  std::vector<Node> nodes_;
};

}  // namespace xicc
