#include "xml/tree.h"

#include <algorithm>
#include <unordered_set>

namespace xicc {

XmlTree::XmlTree(std::string root_label) {
  Node root;
  root.kind = NodeKind::kElement;
  root.label = std::move(root_label);
  nodes_.push_back(std::move(root));
}

NodeId XmlTree::AddElement(NodeId parent, std::string label) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.kind = NodeKind::kElement;
  node.label = std::move(label);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

NodeId XmlTree::AddText(NodeId parent, std::string value) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node node;
  node.kind = NodeKind::kText;
  node.value = std::move(value);
  node.parent = parent;
  nodes_.push_back(std::move(node));
  nodes_[parent].children.push_back(id);
  return id;
}

void XmlTree::SetAttribute(NodeId node, std::string name, std::string value) {
  auto& attrs = nodes_[node].attributes;
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), name,
      [](const auto& pair, const std::string& key) { return pair.first < key; });
  if (it != attrs.end() && it->first == name) {
    it->second = std::move(value);
  } else {
    attrs.insert(it, {std::move(name), std::move(value)});
  }
}

std::optional<std::string_view> XmlTree::AttributeValue(
    NodeId node, std::string_view name) const {
  const auto& attrs = nodes_[node].attributes;
  auto it = std::lower_bound(
      attrs.begin(), attrs.end(), name,
      [](const auto& pair, std::string_view key) { return pair.first < key; });
  if (it != attrs.end() && it->first == name) return std::string_view(it->second);
  return std::nullopt;
}

std::vector<NodeId> XmlTree::ExtOfType(std::string_view label) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].kind == NodeKind::kElement && nodes_[id].label == label) {
      out.push_back(id);
    }
  }
  return out;
}

std::vector<std::string> XmlTree::ExtOfAttribute(std::string_view label,
                                                 std::string_view attr) const {
  std::vector<std::string> out;
  std::unordered_set<std::string_view> seen;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& node = nodes_[id];
    if (node.kind != NodeKind::kElement || node.label != label) continue;
    if (auto value = AttributeValue(id, attr); value.has_value()) {
      if (seen.insert(*value).second) out.emplace_back(*value);
    }
  }
  return out;
}

std::vector<std::string> XmlTree::ChildLabelWord(NodeId node) const {
  std::vector<std::string> word;
  for (NodeId child : nodes_[node].children) {
    if (nodes_[child].kind == NodeKind::kText) {
      word.emplace_back("S");
    } else {
      word.push_back(nodes_[child].label);
    }
  }
  return word;
}

}  // namespace xicc
