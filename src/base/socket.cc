#include "base/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/deadline.h"
#include "base/faults.h"

namespace xicc {
namespace net {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status MakeNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

}  // namespace

void Fd::Close() {
  if (fd_ < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close; retrying
  // risks closing a recycled descriptor, so close once and move on — the
  // kernel releases the descriptor either way on Linux.
  ::close(fd_);
  fd_ = -1;
}

IoResult ReadSome(const Fd& fd, char* buf, size_t cap) {
  IoResult result;
  if (XICC_FAULT_FIRES(kNetRead)) {
    result.status = IoStatus::kError;
    result.err = ECONNRESET;  // Injected transient: peer reset mid-read.
    return result;
  }
  for (;;) {
    const ssize_t n = ::read(fd.get(), buf, cap);
    if (n > 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (n == 0) {
      result.status = IoStatus::kEof;
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.status = IoStatus::kWouldBlock;
      return result;
    }
    result.status = IoStatus::kError;
    result.err = errno;
    return result;
  }
}

IoResult WriteSome(const Fd& fd, const char* buf, size_t len) {
  IoResult result;
  if (XICC_FAULT_FIRES(kNetWrite)) {
    result.status = IoStatus::kError;
    result.err = EPIPE;  // Injected transient: peer went away mid-write.
    return result;
  }
  for (;;) {
    // MSG_NOSIGNAL: a peer that closed mid-response must yield EPIPE, not a
    // process-wide SIGPIPE.
    const ssize_t n = ::send(fd.get(), buf, len, MSG_NOSIGNAL);
    if (n >= 0) {
      result.bytes = static_cast<size_t>(n);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.status = IoStatus::kWouldBlock;
      return result;
    }
    result.status = IoStatus::kError;
    result.err = errno;
    return result;
  }
}

Result<Fd> TcpListen(uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // reinterpret_cast is the POSIX sockaddr calling convention, not byte
  // decoding.  // xicc-lint: allow(raw-deserialization)
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {  // xicc-lint: allow(raw-deserialization)
    return ErrnoStatus("bind");
  }
  if (::listen(fd.get(), backlog) < 0) return ErrnoStatus("listen");
  XICC_RETURN_IF_ERROR(MakeNonBlocking(fd.get()));
  return fd;
}

Result<uint16_t> LocalPort(const Fd& listener) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  // xicc-lint: allow(raw-deserialization)
  if (::getsockname(listener.get(), reinterpret_cast<sockaddr*>(&addr),
                    &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

IoResult AcceptOne(const Fd& listener, Fd* out) {
  IoResult result;
  for (;;) {
    const int fd =
        ::accept4(listener.get(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      if (XICC_FAULT_FIRES(kNetAccept)) {
        // Injected transient accept failure: the connection is torn down
        // immediately, as if the client aborted during the handshake. The
        // listener stays healthy.
        ::close(fd);
        result.status = IoStatus::kError;
        result.err = ECONNABORTED;
        return result;
      }
      Fd accepted(fd);
      const Status nb = MakeNonBlocking(fd);
      if (!nb.ok()) {
        result.status = IoStatus::kError;
        result.err = errno;
        return result;
      }
      const int one = 1;
      // Best effort; latency tuning, not correctness.
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      *out = std::move(accepted);
      return result;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      result.status = IoStatus::kWouldBlock;
      return result;
    }
    // ECONNABORTED, EMFILE, ENFILE, ...: transient as far as the listener
    // is concerned; report and let the accept loop continue.
    result.status = IoStatus::kError;
    result.err = errno;
    return result;
  }
}

Result<Fd> TcpConnect(uint16_t port, int64_t timeout_ms) {
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return ErrnoStatus("socket");
  XICC_RETURN_IF_ERROR(MakeNonBlocking(fd.get()));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // xicc-lint: allow(raw-deserialization)
  const int rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS && errno != EINTR) {
    return ErrnoStatus("connect");
  }
  if (rc < 0) {
    // Await writability (= connect completion) in bounded slices so a
    // deadline or shutdown can interleave.
    const Deadline deadline = Deadline::After(timeout_ms);
    for (;;) {
      if (deadline.Expired()) {
        return Status::Unavailable("connect timed out");
      }
      std::vector<PollEvent> events;
      std::vector<PollFd> polled = {{fd.get(), false, true}};
      XICC_ASSIGN_OR_RETURN(size_t n,
                            PollFds(polled, deadline.RemainingMs(), &events));
      if (n == 0) continue;
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::Unavailable(std::string("connect: ") +
                                 std::strerror(err));
    }
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<size_t> PollFds(const std::vector<PollFd>& fds, int64_t timeout_ms,
                       std::vector<PollEvent>* out) {
  std::vector<pollfd> raw;
  raw.reserve(fds.size());
  for (const PollFd& w : fds) {
    pollfd p;
    p.fd = w.fd;
    p.events = static_cast<short>((w.want_read ? POLLIN : 0) |
                                  (w.want_write ? POLLOUT : 0));
    p.revents = 0;
    raw.push_back(p);
  }
  // Bounded: the longest any caller can park here is one second; event
  // loops run this inside a while that re-checks their stop conditions.
  int64_t clamped = timeout_ms;
  if (clamped < 0) clamped = 0;
  if (clamped > 1000) clamped = 1000;
  const int rc = ::poll(raw.data(), raw.size(), static_cast<int>(clamped));
  if (rc < 0) {
    if (errno == EINTR) return size_t{0};  // A signal is a wake, not a fault.
    return ErrnoStatus("poll");
  }
  size_t count = 0;
  for (const pollfd& p : raw) {
    if (p.revents == 0) continue;
    PollEvent event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.closed = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    out->push_back(event);
    ++count;
  }
  return count;
}

void HalfCloseWrite(const Fd& fd) {
  if (fd.valid()) ::shutdown(fd.get(), SHUT_WR);
}

Status WriteAll(const Fd& fd, std::string_view data, int64_t deadline_ms) {
  const Deadline deadline = Deadline::After(deadline_ms);
  size_t sent = 0;
  while (sent < data.size()) {
    if (deadline.Expired()) {
      return Status::Unavailable(
          "write stalled: peer not draining its socket");
    }
    const IoResult io = WriteSome(fd, data.data() + sent, data.size() - sent);
    switch (io.status) {
      case IoStatus::kOk:
        sent += io.bytes;
        break;
      case IoStatus::kWouldBlock: {
        std::vector<PollEvent> events;
        std::vector<PollFd> polled = {{fd.get(), false, true}};
        XICC_ASSIGN_OR_RETURN(
            size_t n, PollFds(polled, deadline.RemainingMs(), &events));
        // n == 0: timeout slice or EINTR — loop re-checks the deadline.
        if (n > 0 && events[0].closed) {
          return Status::Unavailable("peer closed while writing");
        }
        break;
      }
      case IoStatus::kEof:
      case IoStatus::kError:
        return Status::Unavailable(std::string("write failed: ") +
                                   std::strerror(io.err));
    }
  }
  return Status::Ok();
}

Result<WakePipe> WakePipe::Create() {
  int fds[2];
  if (::pipe2(fds, O_NONBLOCK | O_CLOEXEC) < 0) return ErrnoStatus("pipe2");
  WakePipe pipe;
  pipe.read_ = Fd(fds[0]);
  pipe.write_ = Fd(fds[1]);
  return pipe;
}

void WakePipe::Wake() const {
  // Async-signal-safe: one non-blocking write; EAGAIN means a wake is
  // already pending, which is exactly as good.
  const char byte = 'w';
  const ssize_t rc = ::write(write_.get(), &byte, 1);
  (void)rc;  // xicc-lint: allow(void-discard)
}

void WakePipe::Drain() const {
  char buf[64];
  for (;;) {
    const ssize_t n = ::read(read_.get(), buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;
    }
  }
}

}  // namespace net
}  // namespace xicc
