#include "base/deadline.h"

namespace xicc {

bool SleepFor(int64_t ms, const CancelToken* cancel) {
  if (cancel != nullptr && cancel->Cancelled()) return true;
  const Deadline until = Deadline::After(ms);
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  for (;;) {
    const int64_t left = until.RemainingMs();
    if (left == 0) return cancel != nullptr && cancel->Cancelled();
    // Short bounded waits so a cancel is observed within one slice even
    // without a wake callback; nobody notifies this private CondVar.
    const int64_t slice = left < 10 ? left : 10;
    const bool notified = cv.WaitFor(&mu, slice);
    (void)notified;  // xicc-lint: allow(void-discard)
    if (cancel != nullptr && cancel->Cancelled()) return true;
  }
}

CancelTimer::CancelTimer(CancelToken* token, int64_t delay_ms) {
  thread_ = std::thread([this, token, delay_ms] {
    const Deadline until = Deadline::After(delay_ms);
    bool fire = false;
    {
      MutexLock lock(&mu_);
      while (!disarmed_) {
        const int64_t left = until.RemainingMs();
        if (left == 0) break;
        const bool notified = cv_.WaitFor(&mu_, left);
        (void)notified;  // xicc-lint: allow(void-discard)
      }
      fire = !disarmed_;
    }
    // Cancel outside mu_: wake callbacks take their own locks and must not
    // nest inside the timer's.
    if (fire) token->Cancel();
  });
}

CancelTimer::~CancelTimer() {
  {
    MutexLock lock(&mu_);
    disarmed_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
}

}  // namespace xicc
