#pragma once

// XICC_FAULTS: deterministic fault injection for robustness testing.
//
// Configure with -DXICC_FAULTS=ON and drive with the XICC_FAULTS=<seed>
// environment variable (or programmatically via faults::SetConfig in
// tests). Probe points sit on the paths a production deployment fears:
//
//   kNumPromote   forces the two-tier Num off its small fast path, so every
//                 op takes the promote/demote BigInt route (value-preserving
//                 by construction — the slow path recomputes exactly).
//   kArenaAlloc   forces the per-thread arena onto its chunk-growth path,
//                 simulating allocation pressure / fragmentation.
//   kSimplexPivot fires inside the simplex pivot loops: optionally cancels
//                 a registered CancelToken at the Nth pivot (exercising the
//                 real cancellation plumbing end to end, workers' wakeups
//                 included) and/or sleeps to simulate a slow pivot.
//   kBnbNode      same, at branch-and-bound node granularity.
//
// Seed-driven sites (kNumPromote, kArenaAlloc) fire periodically with a
// period derived from the seed, so ctest stays green under any seed — the
// faults stress representation paths, never verdicts. The disruptive sites
// (injected cancel, slow pivot) fire only when explicitly configured, via
// SetConfig or the XICC_FAULT_CANCEL_AT_PIVOT / XICC_FAULT_CANCEL_AT_NODE /
// XICC_FAULT_SLOW_PIVOT_EVERY / XICC_FAULT_SLOW_PIVOT_MS variables.
//
// In a normal build every probe compiles to the constant `false` — zero
// cost, no atomics, no branches survive optimization.

#include <cstdint>

#if defined(XICC_FAULTS) && XICC_FAULTS
#define XICC_FAULTS_ENABLED 1
#else
#define XICC_FAULTS_ENABLED 0
#endif

namespace xicc {

class CancelToken;

namespace faults {

enum class Site : int {
  kNumPromote = 0,
  kArenaAlloc = 1,
  kSimplexPivot = 2,
  kBnbNode = 3,
};
inline constexpr int kSiteCount = 4;

#if XICC_FAULTS_ENABLED

struct FaultConfig {
  /// Drives the value-preserving sites; 0 disables them.
  uint64_t seed = 0;
  /// Cancel the registered token at the Nth kSimplexPivot probe (0: never).
  uint64_t cancel_at_pivot = 0;
  /// Cancel the registered token at the Nth kBnbNode probe (0: never).
  uint64_t cancel_at_node = 0;
  /// Sleep at every Nth kSimplexPivot probe (0: never)…
  uint64_t slow_pivot_every = 0;
  /// …for this long.
  int64_t slow_pivot_ms = 1;
};

/// Replaces the active configuration (first use otherwise reads the
/// environment) and zeroes the probe counters.
void SetConfig(const FaultConfig& config);
FaultConfig GetConfig();

/// Per-site probe hit counts since the last SetConfig/ResetCounters.
void ResetCounters();
uint64_t Hits(Site site);

/// Counts the probe and returns true when the site's value-preserving fault
/// fires; disruptive side effects (cancel, sleep) happen inside.
bool Probe(Site site);

/// The token the injected-cancel faults fire on; nullptr unregisters. The
/// token must stay alive until unregistered.
void RegisterCancelTarget(CancelToken* token);

#endif  // XICC_FAULTS_ENABLED

}  // namespace faults
}  // namespace xicc

#if XICC_FAULTS_ENABLED
#define XICC_FAULT_FIRES(site) \
  (::xicc::faults::Probe(::xicc::faults::Site::site))
#else
#define XICC_FAULT_FIRES(site) false
#endif

/// Statement form for pure probe points (counting / side effects only).
#define XICC_FAULT_PROBE(site)      \
  do {                              \
    if (XICC_FAULT_FIRES(site)) {   \
    }                               \
  } while (0)
