#pragma once

// XICC_FAULTS: deterministic fault injection for robustness testing.
//
// Configure with -DXICC_FAULTS=ON and drive with the XICC_FAULTS=<seed>
// environment variable (or programmatically via faults::SetConfig in
// tests). Probe points sit on the paths a production deployment fears:
//
//   kNumPromote   forces the two-tier Num off its small fast path, so every
//                 op takes the promote/demote BigInt route (value-preserving
//                 by construction — the slow path recomputes exactly).
//   kArenaAlloc   forces the per-thread arena onto its chunk-growth path,
//                 simulating allocation pressure / fragmentation.
//   kSimplexPivot fires inside the simplex pivot loops: optionally cancels
//                 a registered CancelToken at the Nth pivot (exercising the
//                 real cancellation plumbing end to end, workers' wakeups
//                 included) and/or sleeps to simulate a slow pivot.
//   kBnbNode      same, at branch-and-bound node granularity.
//
// Seed-driven sites (kNumPromote, kArenaAlloc) fire periodically with a
// period derived from the seed, so ctest stays green under any seed — the
// faults stress representation paths, never verdicts. The disruptive sites
// (injected cancel, slow pivot) fire only when explicitly configured, via
// SetConfig or the XICC_FAULT_CANCEL_AT_PIVOT / XICC_FAULT_CANCEL_AT_NODE /
// XICC_FAULT_SLOW_PIVOT_EVERY / XICC_FAULT_SLOW_PIVOT_MS variables.
//
// In a normal build every probe compiles to the constant `false` — zero
// cost, no atomics, no branches survive optimization.

#include <cstdint>

#if defined(XICC_FAULTS) && XICC_FAULTS
#define XICC_FAULTS_ENABLED 1
#else
#define XICC_FAULTS_ENABLED 0
#endif

namespace xicc {

class CancelToken;

namespace faults {

enum class Site : int {
  kNumPromote = 0,
  kArenaAlloc = 1,
  kSimplexPivot = 2,
  kBnbNode = 3,
  /// Network-facing probes on the xiccd daemon's I/O paths. Firing one
  /// injects a TRANSIENT failure the server must absorb into a structured
  /// error or a clean connection teardown — never a hang, a leak, or UB.
  /// They fire only when net_fault_every is configured (SetConfig or
  /// XICC_FAULT_NET_EVERY), so the rest of the suite is unaffected by a
  /// bare XICC_FAULTS seed; the chaos soak derives its period from the
  /// seed itself.
  kNetAccept = 4,
  kNetRead = 5,
  kNetWrite = 6,
  kFrameDecode = 7,
  /// Forces WriteFileAtomic onto its failure path (simulated ENOSPC): the
  /// temp file must be cleaned up and a kUnavailable status returned.
  /// Fires only when file_write_error_every is configured.
  kFileWrite = 8,
};
inline constexpr int kSiteCount = 9;

#if XICC_FAULTS_ENABLED

struct FaultConfig {
  /// Drives the value-preserving sites; 0 disables them.
  uint64_t seed = 0;
  /// Cancel the registered token at the Nth kSimplexPivot probe (0: never).
  uint64_t cancel_at_pivot = 0;
  /// Cancel the registered token at the Nth kBnbNode probe (0: never).
  uint64_t cancel_at_node = 0;
  /// Sleep at every Nth kSimplexPivot probe (0: never)…
  uint64_t slow_pivot_every = 0;
  /// …for this long.
  int64_t slow_pivot_ms = 1;
  /// Fire each net site (kNetAccept/kNetRead/kNetWrite/kFrameDecode) at a
  /// site-dependent period derived from this value (0: never). Also
  /// settable via XICC_FAULT_NET_EVERY.
  uint64_t net_fault_every = 0;
  /// Fire kFileWrite every Nth probe (0: never). Also settable via
  /// XICC_FAULT_FILE_WRITE_EVERY.
  uint64_t file_write_error_every = 0;
};

/// Replaces the active configuration (first use otherwise reads the
/// environment) and zeroes the probe counters.
void SetConfig(const FaultConfig& config);
FaultConfig GetConfig();

/// Per-site probe hit counts since the last SetConfig/ResetCounters.
void ResetCounters();
uint64_t Hits(Site site);

/// Counts the probe and returns true when the site's value-preserving fault
/// fires; disruptive side effects (cancel, sleep) happen inside.
bool Probe(Site site);

/// The token the injected-cancel faults fire on; nullptr unregisters. The
/// token must stay alive until unregistered.
void RegisterCancelTarget(CancelToken* token);

#endif  // XICC_FAULTS_ENABLED

}  // namespace faults
}  // namespace xicc

#if XICC_FAULTS_ENABLED
#define XICC_FAULT_FIRES(site) \
  (::xicc::faults::Probe(::xicc::faults::Site::site))
#else
#define XICC_FAULT_FIRES(site) false
#endif

/// Statement form for pure probe points (counting / side effects only).
#define XICC_FAULT_PROBE(site)      \
  do {                              \
    if (XICC_FAULT_FIRES(site)) {   \
    }                               \
  } while (0)
