#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"

namespace xicc {

/// Arbitrary-precision signed integer.
///
/// The ILP substrate needs exact arithmetic: Papadimitriou's bound on minimal
/// solutions of `Ax >= b` is `n * (m*a)^(2m+1)` (J.ACM 28(4), 1981), which
/// overflows any fixed-width type for systems of realistic size, and the
/// rational simplex must not round. Magnitude is stored little-endian in
/// 64-bit limbs; zero is canonically represented by an empty limb vector and
/// a non-negative sign.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;
  BigInt(int64_t v);  // NOLINT(google-explicit-constructor): numeric literal
                      // interop is intended, mirroring standard int widening.

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromString(const std::string& s);

  /// Returns base^exp. `base` may be negative; exp is a machine integer
  /// because every use in the library has a small exponent (2m+1).
  static BigInt Pow(const BigInt& base, uint64_t exp);

  /// Greatest common divisor of |a| and |b|; Gcd(0,0) == 0.
  static BigInt Gcd(BigInt a, BigInt b);

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  /// -1, 0, or +1.
  int sign() const { return is_zero() ? 0 : (negative_ ? -1 : 1); }

  /// Number of significant bits in the magnitude (0 for zero).
  size_t BitLength() const;

  /// True if the value fits in int64_t; `FitsInt64` guards `ToInt64`.
  bool FitsInt64() const;
  /// Value as int64_t; must only be called when FitsInt64().
  int64_t ToInt64() const;

  std::string ToString() const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero,
  /// remainder has the dividend's sign). Divisor must be nonzero.
  BigInt& operator/=(const BigInt& rhs);
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt lhs, const BigInt& rhs) { return lhs += rhs; }
  friend BigInt operator-(BigInt lhs, const BigInt& rhs) { return lhs -= rhs; }
  friend BigInt operator*(BigInt lhs, const BigInt& rhs) { return lhs *= rhs; }
  friend BigInt operator/(BigInt lhs, const BigInt& rhs) { return lhs /= rhs; }
  friend BigInt operator%(BigInt lhs, const BigInt& rhs) { return lhs %= rhs; }

  /// Computes quotient and remainder in one pass (truncated division).
  static void DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                     BigInt* rem);

  /// Three-way comparison: negative/zero/positive as lhs <=> rhs.
  static int Compare(const BigInt& lhs, const BigInt& rhs);

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const BigInt& a, const BigInt& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const BigInt& a, const BigInt& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const BigInt& a, const BigInt& b) {
    return Compare(a, b) >= 0;
  }

 private:
  /// Magnitude comparison ignoring signs.
  static int CompareMagnitude(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b);
  static std::vector<uint64_t> AddMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  /// Requires |a| >= |b|.
  static std::vector<uint64_t> SubMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MulMagnitude(const std::vector<uint64_t>& a,
                                            const std::vector<uint64_t>& b);
  /// Knuth Algorithm D on 64-bit limbs.
  static void DivModMagnitude(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b,
                              std::vector<uint64_t>* quot,
                              std::vector<uint64_t>* rem);
  void Trim();

  bool negative_ = false;
  std::vector<uint64_t> limbs_;
};

inline std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToString();
}

}  // namespace xicc
