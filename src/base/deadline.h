#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "base/status.h"
#include "base/thread_annotations.h"

namespace xicc {

/// A steady-clock wall deadline. Value type, cheap to copy; the default is
/// infinite (never expires), so plumbing a Deadline through an options
/// struct costs nothing for callers that never set one.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (clamped to now for negative `ms`).
  static Deadline After(int64_t ms) {
    Deadline d;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms < 0 ? 0 : ms);
    return d;
  }

  bool IsInfinite() const { return at_ == Clock::time_point::max(); }

  bool Expired() const { return !IsInfinite() && Clock::now() >= at_; }

  /// Milliseconds until expiry, clamped at 0; INT64_MAX when infinite.
  int64_t RemainingMs() const {
    if (IsInfinite()) return INT64_MAX;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return left.count() < 0 ? 0 : left.count();
  }

 private:
  Clock::time_point at_;
};

/// A sticky cooperative cancel flag, shared by reference between the caller
/// that may cancel and the workers that poll it. Cancel() additionally runs
/// registered wake callbacks so that blocked threads (parked worksteal
/// workers, cancellable sleeps) observe the flag promptly instead of at
/// their next natural wakeup — this is the other half of the worksteal
/// generation-counter protocol's lost-wakeup guard.
///
/// Callback registration is const: observers (a pool, a sleep) register
/// through the same `const CancelToken*` they poll, and registration does
/// not change the cancellation state. Callbacks run under the token's
/// internal mutex, so RemoveWakeCallback doubles as a barrier: once it
/// returns, the callback is not running and will never run again. Callbacks
/// must therefore not call back into the token and must not block.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Sets the flag (idempotent) and invokes every registered wake callback.
  void Cancel() XICC_EXCLUDES(mu_) {
    cancelled_.store(true, std::memory_order_release);
    MutexLock lock(&mu_);
    for (const auto& [id, fn] : callbacks_) fn();
  }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Registers a wake callback; returns its id for RemoveWakeCallback. If
  /// the token is already cancelled the callback fires once immediately.
  uint64_t AddWakeCallback(std::function<void()> fn) const XICC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const uint64_t id = next_id_++;
    callbacks_.emplace_back(id, std::move(fn));
    if (Cancelled()) callbacks_.back().second();
    return id;
  }

  /// Unregisters; on return the callback is guaranteed not to be running.
  void RemoveWakeCallback(uint64_t id) const XICC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    for (size_t i = 0; i < callbacks_.size(); ++i) {
      if (callbacks_[i].first == id) {
        callbacks_.erase(callbacks_.begin() + static_cast<ptrdiff_t>(i));
        return;
      }
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Registration is observer bookkeeping, not cancellation state, so it is
  /// allowed through a const token (mutable + const methods above).
  mutable Mutex mu_;
  mutable uint64_t next_id_ XICC_GUARDED_BY(mu_) = 1;
  mutable std::vector<std::pair<uint64_t, std::function<void()>>> callbacks_
      XICC_GUARDED_BY(mu_);
};

/// The stop condition threaded from the entry points (CLI, CheckBatch,
/// SpecSession) down through consistency → conditional solver → worksteal
/// workers → SolveIlp → the simplex pivot loops. Checked at bounded cost:
/// hot loops poll every few dozen iterations, node/round loops every
/// iteration. Default-constructed it never stops anything.
struct StopSignal {
  Deadline deadline;
  const CancelToken* cancel = nullptr;

  /// True when there is anything to poll at all — lets hot loops skip the
  /// clock read entirely on the common unarmed path.
  bool Armed() const { return cancel != nullptr || !deadline.IsInfinite(); }

  bool ShouldStop() const {
    if (cancel != nullptr && cancel->Cancelled()) return true;
    return deadline.Expired();
  }

  /// The status a stopped computation must propagate. Cancellation wins
  /// over expiry (an explicit cancel is the stronger, caller-driven fact);
  /// if neither condition holds (a stale stop observed after the caller
  /// reset the token) the result still must not be a verdict, so it is
  /// reported as cancelled.
  Status ToStatus() const {
    if (cancel != nullptr && cancel->Cancelled()) {
      return Status::Cancelled("the check was cancelled");
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("the check ran past its deadline");
    }
    return Status::Cancelled("the check was stopped");
  }
};

/// Cancellable bounded sleep: returns early (true) when `cancel` fires,
/// false after the full duration. The only sanctioned sleep outside
/// base/worksteal.h — it polls in short bounded waits on an annotated
/// CondVar, so it can never park a thread past a cancellation.
bool SleepFor(int64_t ms, const CancelToken* cancel = nullptr);

/// Fires `token->Cancel()` once `delay_ms` elapses, from a private thread;
/// destroying the timer first disarms it. Backs the CLI's --cancel-after
/// flag and the cancellation tests.
class CancelTimer {
 public:
  CancelTimer(CancelToken* token, int64_t delay_ms);
  ~CancelTimer();

  CancelTimer(const CancelTimer&) = delete;
  CancelTimer& operator=(const CancelTimer&) = delete;

 private:
  Mutex mu_;  // xicc-analyze: lock-leaf
  CondVar cv_;
  bool disarmed_ XICC_GUARDED_BY(mu_) = false;
  std::thread thread_;
};

}  // namespace xicc
