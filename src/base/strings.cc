#include "base/strings.h"

namespace xicc {

namespace {
bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsSpace(s[b])) ++b;
  while (e > b && IsSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool IsNameStartChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || (c >= '0' && c <= '9') || c == '-' || c == '.';
}

bool IsValidName(std::string_view s) {
  if (s.empty() || !IsNameStartChar(s[0])) return false;
  for (char c : s.substr(1)) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

std::string XmlEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace xicc
