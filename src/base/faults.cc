#include "base/faults.h"

#if XICC_FAULTS_ENABLED

#include <atomic>
#include <cstdlib>

#include "base/deadline.h"

namespace xicc {
namespace faults {

namespace {

/// splitmix64 — a fixed, seed-stable mixer so a given XICC_FAULTS seed
/// always produces the same firing pattern on every platform.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t EnvU64(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return 0;
  return std::strtoull(value, nullptr, 10);
}

struct State {
  std::atomic<uint64_t> hits[kSiteCount];
  /// Firing period per site; 0 = the site's value fault never fires.
  std::atomic<uint64_t> period[kSiteCount];
  std::atomic<uint64_t> seed{0};
  std::atomic<uint64_t> cancel_at_pivot{0};
  std::atomic<uint64_t> cancel_at_node{0};
  std::atomic<uint64_t> slow_pivot_every{0};
  std::atomic<int64_t> slow_pivot_ms{1};
  std::atomic<uint64_t> net_fault_every{0};
  std::atomic<uint64_t> file_write_error_every{0};
  std::atomic<CancelToken*> cancel_target{nullptr};

  State() {
    FaultConfig config;
    config.seed = EnvU64("XICC_FAULTS");
    config.cancel_at_pivot = EnvU64("XICC_FAULT_CANCEL_AT_PIVOT");
    config.cancel_at_node = EnvU64("XICC_FAULT_CANCEL_AT_NODE");
    config.slow_pivot_every = EnvU64("XICC_FAULT_SLOW_PIVOT_EVERY");
    const uint64_t ms = EnvU64("XICC_FAULT_SLOW_PIVOT_MS");
    if (ms != 0) config.slow_pivot_ms = static_cast<int64_t>(ms);
    config.net_fault_every = EnvU64("XICC_FAULT_NET_EVERY");
    config.file_write_error_every = EnvU64("XICC_FAULT_FILE_WRITE_EVERY");
    Install(config);
  }

  void Install(const FaultConfig& config) {
    seed.store(config.seed, std::memory_order_relaxed);
    cancel_at_pivot.store(config.cancel_at_pivot, std::memory_order_relaxed);
    cancel_at_node.store(config.cancel_at_node, std::memory_order_relaxed);
    slow_pivot_every.store(config.slow_pivot_every,
                           std::memory_order_relaxed);
    slow_pivot_ms.store(config.slow_pivot_ms, std::memory_order_relaxed);
    net_fault_every.store(config.net_fault_every, std::memory_order_relaxed);
    file_write_error_every.store(config.file_write_error_every,
                                 std::memory_order_relaxed);
    for (int s = 0; s < kSiteCount; ++s) {
      hits[s].store(0, std::memory_order_relaxed);
      const bool value_site = s == static_cast<int>(Site::kNumPromote) ||
                              s == static_cast<int>(Site::kArenaAlloc);
      const bool net_site = s >= static_cast<int>(Site::kNetAccept) &&
                            s <= static_cast<int>(Site::kFrameDecode);
      uint64_t p = 0;
      if (value_site && config.seed != 0) {
        p = 2 + Mix(config.seed ^ (static_cast<uint64_t>(s) *
                                   0xd1342543de82ef95ull)) %
                    127;
      } else if (net_site && config.net_fault_every != 0) {
        // Stagger the four net sites so one configured period does not fire
        // every probe class in lockstep; the offset keeps each site's
        // effective period within [every, every + 16].
        p = config.net_fault_every +
            Mix(config.net_fault_every ^
                (static_cast<uint64_t>(s) * 0x9e3779b97f4a7c15ull)) %
                17;
      } else if (s == static_cast<int>(Site::kFileWrite)) {
        p = config.file_write_error_every;
      }
      period[s].store(p, std::memory_order_relaxed);
    }
  }
};

State& S() {
  static State state;
  return state;
}

}  // namespace

void SetConfig(const FaultConfig& config) { S().Install(config); }

FaultConfig GetConfig() {
  State& s = S();
  FaultConfig config;
  config.seed = s.seed.load(std::memory_order_relaxed);
  config.cancel_at_pivot = s.cancel_at_pivot.load(std::memory_order_relaxed);
  config.cancel_at_node = s.cancel_at_node.load(std::memory_order_relaxed);
  config.slow_pivot_every =
      s.slow_pivot_every.load(std::memory_order_relaxed);
  config.slow_pivot_ms = s.slow_pivot_ms.load(std::memory_order_relaxed);
  config.net_fault_every = s.net_fault_every.load(std::memory_order_relaxed);
  config.file_write_error_every =
      s.file_write_error_every.load(std::memory_order_relaxed);
  return config;
}

void ResetCounters() {
  for (int s = 0; s < kSiteCount; ++s) {
    S().hits[s].store(0, std::memory_order_relaxed);
  }
}

uint64_t Hits(Site site) {
  return S().hits[static_cast<int>(site)].load(std::memory_order_relaxed);
}

void RegisterCancelTarget(CancelToken* token) {
  S().cancel_target.store(token, std::memory_order_release);
}

bool Probe(Site site) {
  State& s = S();
  const uint64_t count =
      1 + s.hits[static_cast<int>(site)].fetch_add(
              1, std::memory_order_relaxed);
  switch (site) {
    case Site::kNumPromote:
    case Site::kArenaAlloc:
    case Site::kNetAccept:
    case Site::kNetRead:
    case Site::kNetWrite:
    case Site::kFrameDecode:
    case Site::kFileWrite: {
      const uint64_t p =
          s.period[static_cast<int>(site)].load(std::memory_order_relaxed);
      return p != 0 && count % p == 0;
    }
    case Site::kSimplexPivot: {
      const uint64_t at = s.cancel_at_pivot.load(std::memory_order_relaxed);
      if (at != 0 && count == at) {
        CancelToken* target =
            s.cancel_target.load(std::memory_order_acquire);
        if (target != nullptr) target->Cancel();
      }
      const uint64_t every =
          s.slow_pivot_every.load(std::memory_order_relaxed);
      if (every != 0 && count % every == 0) {
        const bool cancelled = SleepFor(
            s.slow_pivot_ms.load(std::memory_order_relaxed), nullptr);
        (void)cancelled;  // xicc-lint: allow(void-discard)
      }
      return false;
    }
    case Site::kBnbNode: {
      const uint64_t at = s.cancel_at_node.load(std::memory_order_relaxed);
      if (at != 0 && count == at) {
        CancelToken* target =
            s.cancel_target.load(std::memory_order_acquire);
        if (target != nullptr) target->Cancel();
      }
      return false;
    }
  }
  return false;
}

}  // namespace faults
}  // namespace xicc

#endif  // XICC_FAULTS_ENABLED
