#pragma once

// Debug invariant hooks for the XICC_AUDIT build mode.
//
// The auditors themselves (AuditTableau, AuditTrail, AuditCompiledDtd) are
// ordinary always-compiled functions returning a list of violations, so
// tests can exercise them in any build. These macros are the wiring that
// runs them at solver checkpoints: in a -DXICC_AUDIT=ON build a failing
// check prints every violation and aborts; in a normal build the hooks
// compile to nothing (the audit expression is NOT evaluated), keeping the
// hot paths at zero cost.

#include <cstdio>
#include <cstdlib>

namespace xicc::internal {

/// Prints `violations` (any iterable of strings) under a header and aborts.
template <typename Violations>
[[noreturn]] inline void AuditFailure(const char* file, int line,
                                      const char* expr,
                                      const Violations& violations) {
  std::fprintf(stderr, "%s:%d: XICC_DCHECK_AUDIT(%s) failed:\n", file, line,
               expr);
  for (const auto& v : violations) {
    std::fprintf(stderr, "  invariant violated: %s\n", v.c_str());
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace xicc::internal

#if defined(XICC_AUDIT) && XICC_AUDIT

/// Plain invariant check, active only in audit builds.
#define XICC_DCHECK(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "%s:%d: XICC_DCHECK(%s) failed\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::fflush(stderr);                                                 \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

/// Runs an auditor returning a std::vector<std::string> of violations and
/// aborts (printing all of them) if any were found.
#define XICC_DCHECK_AUDIT(audit_expr)                                      \
  do {                                                                     \
    const auto _xicc_audit_violations = (audit_expr);                      \
    if (!_xicc_audit_violations.empty()) {                                 \
      ::xicc::internal::AuditFailure(__FILE__, __LINE__, #audit_expr,      \
                                     _xicc_audit_violations);              \
    }                                                                      \
  } while (0)

#define XICC_AUDIT_ENABLED 1

#else

#define XICC_DCHECK(cond) \
  do {                    \
  } while (0)
#define XICC_DCHECK_AUDIT(audit_expr) \
  do {                                \
  } while (0)
#define XICC_AUDIT_ENABLED 0

#endif  // XICC_AUDIT
