#pragma once

// Versioned, endian-stable, integrity-checked binary serialization.
//
// This is the ONE place in the tree where bytes are reinterpreted as
// structured data (xicc_lint's raw-deserialization rule enforces that: no
// memcpy-into-struct or reinterpret_cast decoding anywhere else). Everything
// above — the CompiledDtd artifact format, the on-disk cache — is built from
// the bounds-checked primitives here, so a truncated, bit-flipped, or
// hostile input can produce only Status::InvalidArgument, never undefined
// behaviour.
//
// Container layout (all scalars little-endian, written byte-wise):
//
//   [ header: magic(8) endian(4) version(4) section_count(4) reserved(4)
//             content_key(8) total_size(8) digest(8) ]            48 bytes
//   [ section table: tag(4) reserved(4) offset(8) size(8) digest(8) ] * n
//   [ payload: sections, each starting 8-aligned ]
//
// The header digest is FNV-1a 64 over the header bytes before the digest
// field plus the whole section table; each section's digest covers its
// payload bytes including the trailing alignment padding, so every byte of
// the container is covered by exactly one checksum. Validation order on
// open — size, magic, endianness, format version, header digest, table
// geometry, section digests — guarantees the caller-visible error names the
// outermost mismatch (e.g. a foreign-endian header is reported as such, not
// as a checksum failure).
//
// Flat sections: arrays of trivially-copyable fixed-width records are
// written at 8-byte alignment and read back as typed pointers into the
// underlying buffer (Cursor::FlatArray). Over a MappedFile this is the
// zero-copy mmap load path: repeat loads do no parsing and no allocation
// for the flat data beyond pointer fix-ups.

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace xicc::serde {

/// FNV-1a 64-bit over a byte range; `seed` chains multi-range digests.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
uint64_t Fnv1a64(const void* data, size_t size,
                 uint64_t seed = kFnvOffsetBasis);
inline uint64_t Fnv1a64(std::string_view bytes,
                        uint64_t seed = kFnvOffsetBasis) {
  return Fnv1a64(bytes.data(), bytes.size(), seed);
}

/// Section payload checksum: eight interleaved FNV-1a word lanes (one
/// multiply per 8 bytes per lane, lanes independent so the multiplies
/// pipeline), folded with byte-wise FNV-1a over the lane states and the
/// sub-block tail. ~10× the throughput of byte-wise Fnv1a64 on the
/// multi-megabyte payloads mmap warm starts verify on every load; the
/// header and section table, being tiny, keep the reference byte-wise
/// digest. Not FNV-1a-compatible — a distinct domain by construction.
uint64_t SectionDigest(const void* data, size_t size);
inline uint64_t SectionDigest(std::string_view bytes) {
  return SectionDigest(bytes.data(), bytes.size());
}

/// The endianness sentinel stored in every container header. Serialized
/// byte-wise as little-endian, so the on-disk bytes are {04 03 02 01}; a
/// container produced by a hypothetical native-order writer on a big-endian
/// host would read back as 0x04030201 and is rejected as foreign.
inline constexpr uint32_t kEndianSentinel = 0x01020304u;
inline constexpr uint32_t kForeignEndianSentinel = 0x04030201u;

inline constexpr size_t kHeaderSize = 48;
inline constexpr size_t kSectionEntrySize = 32;
inline constexpr size_t kMagicSize = 8;

/// Builds a container: scalar encoders plus section framing. Sections may
/// not nest; every write must happen inside a BeginSection/EndSection pair.
/// Usage:
///
///   Writer w("XICCART\0", kVersion, content_key);
///   w.BeginSection(kTagDtd);
///   w.U32(...); w.Str(...);
///   w.EndSection();
///   std::string bytes = std::move(w).Finish();
class Writer {
 public:
  /// `magic` must point at kMagicSize bytes identifying the format.
  Writer(const char* magic, uint32_t version, uint64_t content_key);

  void BeginSection(uint32_t tag);
  void EndSection();

  void U8(uint8_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }
  void Bool(bool v) { U8(v ? 1 : 0); }
  /// u32 length prefix + raw bytes.
  void Str(std::string_view s);
  void RawBytes(std::string_view bytes);
  /// Pads with zero bytes to the next 8-byte boundary.
  void AlignTo8();

  /// Writes `count` records of trivially-copyable fixed-width type T at
  /// 8-byte alignment, so Cursor::FlatArray<T> can return a direct pointer.
  /// Record layout is the host's — valid only on little-endian hosts, which
  /// the constructor enforces (big-endian hosts would need per-field
  /// encoders; no supported target is big-endian).
  template <typename T>
  void FlatArray(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T> && alignof(T) <= 8,
                  "flat records must be trivially copyable, align <= 8");
    AlignTo8();
    U64(count);
    RawBytes(std::string_view(reinterpret_cast<const char*>(data),
                              count * sizeof(T)));
  }

  /// Assembles header + section table + payload. The Writer is consumed.
  std::string Finish() &&;

 private:
  struct Section {
    uint32_t tag;
    uint64_t offset;       // Relative to payload start until Finish().
    uint64_t size;         // Logical size, excluding alignment padding.
    uint64_t padded_size;  // Digest coverage: size rounded up to 8.
    uint64_t digest;
  };

  char magic_[kMagicSize];
  uint32_t version_;
  uint64_t content_key_;
  std::string payload_;
  std::vector<Section> sections_;
  bool in_section_ = false;
  uint64_t section_start_ = 0;
};

/// Sticky-error decode cursor over one section's bytes. Reads past the end
/// (or any other malformation) latch an InvalidArgument status and return
/// zero values / empty strings / null pointers from then on, so a decode
/// sequence can run straight-line and check status() once at the end —
/// corrupt input degrades to harmless defaults, never out-of-bounds reads.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes, std::string_view what = "section")
      : bytes_(bytes), what_(what) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int32_t I32() { return static_cast<int32_t>(U32()); }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() { return std::bit_cast<double>(U64()); }
  bool Bool() { return U8() != 0; }
  std::string Str();
  std::string_view RawBytes(size_t size);
  void AlignTo8();

  /// Typed view into the buffer written by Writer::FlatArray<T>. Returns
  /// the record pointer (valid for the buffer's lifetime — zero-copy over a
  /// MappedFile) and stores the count; nullptr with count 0 on any error,
  /// including a record-count mismatch against `expected_count` when that
  /// is non-negative. The pointer is guaranteed 8-aligned.
  template <typename T>
  const T* FlatArray(size_t* count, int64_t expected_count = -1) {
    static_assert(std::is_trivially_copyable_v<T> && alignof(T) <= 8,
                  "flat records must be trivially copyable, align <= 8");
    *count = 0;
    AlignTo8();
    const uint64_t n = U64();
    if (!status_.ok()) return nullptr;
    if (expected_count >= 0 && n != static_cast<uint64_t>(expected_count)) {
      Fail("flat array count mismatch");
      return nullptr;
    }
    if (n > bytes_.size() / sizeof(T) ||
        bytes_.size() - pos_ < n * sizeof(T)) {
      Fail("flat array overruns section");
      return nullptr;
    }
    const char* p = bytes_.data() + pos_;
    if (reinterpret_cast<uintptr_t>(p) % alignof(T) != 0) {
      Fail("flat array misaligned");
      return nullptr;
    }
    pos_ += n * sizeof(T);
    *count = static_cast<size_t>(n);
    // The audited byte-to-record reinterpretation this header exists for:
    // T is trivially copyable, the bytes came from Writer::FlatArray on a
    // same-endianness host, and alignment was just verified.
    return reinterpret_cast<const T*>(p);
  }

  bool AtEnd() const { return status_.ok() && pos_ == bytes_.size(); }
  const Status& status() const { return status_; }
  /// OK only if no read failed and the section was fully consumed.
  Status Finish() const;

 private:
  void Fail(const char* reason);

  std::string_view bytes_;
  std::string_view what_;
  size_t pos_ = 0;
  Status status_;
};

/// Validated read access to a container produced by Writer. Open() performs
/// the full validation pass (header, version, endianness, digests); after
/// it succeeds, Section() hands out Cursors over the (already
/// checksum-verified) section payloads. The Reader only references the
/// caller's buffer — keep it alive.
class Reader {
 public:
  static Result<Reader> Open(std::string_view bytes, const char* magic,
                             uint32_t expected_version);

  uint64_t content_key() const { return content_key_; }
  bool HasSection(uint32_t tag) const;
  /// Cursor over the named section. Duplicate tags are rejected at Open().
  Result<Cursor> Section(uint32_t tag, std::string_view what) const;

 private:
  Reader() = default;

  struct SectionEntry {
    uint32_t tag;
    uint64_t offset;
    uint64_t size;
  };

  std::string_view bytes_;
  uint64_t content_key_ = 0;
  std::vector<SectionEntry> sections_;
};

/// Read-only memory mapping of a whole file; the zero-copy substrate for
/// warm artifact loads. Falls back with a Status (never crashes) if the
/// file cannot be opened or mapped. Movable, not copyable; unmaps on
/// destruction.
class MappedFile {
 public:
  static Result<MappedFile> Map(const std::string& path);

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::string_view view() const {
    return std::string_view(static_cast<const char*>(data_), size_);
  }

 private:
  MappedFile() = default;

  void* data_ = nullptr;
  size_t size_ = 0;
};

/// Reads a whole file into a string (the non-mmap load path).
Result<std::string> ReadFileToString(const std::string& path);

/// Durably replaces `path` with `bytes`: writes a sibling temp file, then
/// renames over the target, so concurrent readers see either the old or the
/// new artifact, never a torn one. Every failure (unwritable dir, short
/// write / ENOSPC, failed rename) removes the temp file before returning —
/// the cache dir never accumulates orphaned `*.tmp` files — and reports
/// kUnavailable: the condition is environmental and retryable, and callers
/// (the artifact cache) degrade to serving from memory.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

}  // namespace xicc::serde
