#include "base/num.h"

namespace xicc {

namespace {

/// A canonical Rational fits the small tier when both words fit int64 and
/// the numerator avoids the excluded INT64_MIN (den is positive, so only
/// the numerator can hit it).
bool FitsSmall(const Rational& r, int64_t* n, int64_t* d) {
  if (!r.num().FitsInt64() || !r.den().FitsInt64()) return false;
  const int64_t rn = r.num().ToInt64();
  if (rn == INT64_MIN) return false;
  *n = rn;
  *d = r.den().ToInt64();
  return true;
}

}  // namespace

Num::Num(BigInt v) {
  if (v.FitsInt64() && v.ToInt64() != INT64_MIN) {
    n_ = v.ToInt64();
    d_ = 1;
  } else {
    InitBig(Rational(std::move(v)));
  }
}

Num::Num(BigInt num, BigInt den) {
  Rational r(std::move(num), std::move(den));
  int64_t n, d;
  if (FitsSmall(r, &n, &d)) {
    n_ = n;
    d_ = d;
  } else {
    InitBig(std::move(r));
  }
}

Num::Num(const Rational& r) {
  int64_t n, d;
  if (FitsSmall(r, &n, &d)) {
    n_ = n;
    d_ = d;
  } else {
    InitBig(r);
  }
}

void Num::SetFromRational(Rational r, bool inputs_small) {
  NumCounters& counters = ThisThreadNumCounters();
  if (!is_small()) delete big_;
  int64_t n, d;
  if (FitsSmall(r, &n, &d)) {
    n_ = n;
    d_ = d;
    if (!inputs_small) ++counters.demotions;
  } else {
    InitBig(std::move(r));
    if (inputs_small) ++counters.promotions;
  }
}

void Num::AddSlow(const Num& rhs) {
  ++ThisThreadNumCounters().big_ops;
  const bool inputs_small = is_small() && rhs.is_small();
  SetFromRational(ToRational() + rhs.ToRational(), inputs_small);
}

void Num::SubSlow(const Num& rhs) {
  ++ThisThreadNumCounters().big_ops;
  const bool inputs_small = is_small() && rhs.is_small();
  SetFromRational(ToRational() - rhs.ToRational(), inputs_small);
}

void Num::MulSlow(const Num& rhs) {
  ++ThisThreadNumCounters().big_ops;
  const bool inputs_small = is_small() && rhs.is_small();
  SetFromRational(ToRational() * rhs.ToRational(), inputs_small);
}

void Num::DivSlow(const Num& rhs) {
  ++ThisThreadNumCounters().big_ops;
  const bool inputs_small = is_small() && rhs.is_small();
  SetFromRational(ToRational() / rhs.ToRational(), inputs_small);
}

int Num::CompareSlow(const Num& lhs, const Num& rhs) {
  return Rational::Compare(lhs.ToRational(), rhs.ToRational());
}

Num Num::Floor() const {
  if (is_small()) {
    int64_t q = n_ / d_;
    if (n_ % d_ != 0 && n_ < 0) --q;  // |q| shrank, so no overflow.
    return Num(q, 1, RawTag());
  }
  return Num(big_->Floor());
}

Num Num::Ceil() const {
  if (is_small()) {
    int64_t q = n_ / d_;
    if (n_ % d_ != 0 && n_ > 0) ++q;
    return Num(q, 1, RawTag());
  }
  return Num(big_->Ceil());
}

std::string Num::ToString() const {
  if (!is_small()) return big_->ToString();
  std::string out = std::to_string(n_);
  if (d_ != 1) out += "/" + std::to_string(d_);
  return out;
}

bool Num::RepOk() const {
  if (is_small()) {
    if (d_ <= 0 || n_ == INT64_MIN) return false;
    if (n_ == 0) return d_ == 1;
    return internal::Gcd64(internal::Mag64(n_),
                           static_cast<uint64_t>(d_)) == 1;
  }
  // Big tier: Rational keeps itself canonical; the rep bug to catch is a
  // value that should have been demoted.
  int64_t n, d;
  return !FitsSmall(*big_, &n, &d);
}

}  // namespace xicc
