#include "base/bigint.h"

#include <algorithm>
#include <cassert>

namespace xicc {

using uint128 = unsigned __int128;

BigInt::BigInt(int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Negate via uint64 to avoid overflow on INT64_MIN.
  uint64_t mag =
      negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  limbs_.push_back(mag);
}

void BigInt::Trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

Result<BigInt> BigInt::FromString(const std::string& s) {
  size_t i = 0;
  bool neg = false;
  if (i < s.size() && (s[i] == '-' || s[i] == '+')) {
    neg = s[i] == '-';
    ++i;
  }
  if (i >= s.size()) {
    return Status::ParseError("empty integer literal: '" + s + "'");
  }
  BigInt out;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') {
      return Status::ParseError("bad digit in integer literal: '" + s + "'");
    }
    out *= BigInt(10);
    out += BigInt(s[i] - '0');
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

BigInt BigInt::Pow(const BigInt& base, uint64_t exp) {
  BigInt result(1);
  BigInt b = base;
  while (exp > 0) {
    if (exp & 1) result *= b;
    exp >>= 1;
    if (exp > 0) b *= b;
  }
  return result;
}

BigInt BigInt::Gcd(BigInt a, BigInt b) {
  a = a.Abs();
  b = b.Abs();
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint64_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 64;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::FitsInt64() const {
  if (limbs_.size() > 1) return false;
  if (limbs_.empty()) return true;
  uint64_t mag = limbs_[0];
  if (negative_) return mag <= (uint64_t{1} << 63);
  return mag < (uint64_t{1} << 63);
}

int64_t BigInt::ToInt64() const {
  assert(FitsInt64());
  if (limbs_.empty()) return 0;
  uint64_t mag = limbs_[0];
  if (negative_) return static_cast<int64_t>(~mag + 1);
  return static_cast<int64_t>(mag);
}

std::string BigInt::ToString() const {
  if (is_zero()) return "0";
  // Repeatedly divide the magnitude by 10^19 (largest power of 10 in uint64)
  // and format 19 digits per chunk.
  constexpr uint64_t kChunkBase = 10000000000000000000ULL;  // 10^19
  constexpr int kChunkDigits = 19;
  std::vector<uint64_t> mag = limbs_;
  std::string digits;  // Little-endian decimal digits.
  while (!mag.empty()) {
    uint128 rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint128 cur = (rem << 64) | mag[i];
      mag[i] = static_cast<uint64_t>(cur / kChunkBase);
      rem = cur % kChunkBase;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    uint64_t chunk = static_cast<uint64_t>(rem);
    for (int d = 0; d < kChunkDigits; ++d) {
      digits.push_back(static_cast<char>('0' + chunk % 10));
      chunk /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  std::string out;
  if (negative_) out.push_back('-');
  out.append(digits.rbegin(), digits.rend());
  return out;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

int BigInt::CompareMagnitude(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint64_t> BigInt::AddMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  const std::vector<uint64_t>& lo = a.size() >= b.size() ? b : a;
  const std::vector<uint64_t>& hi = a.size() >= b.size() ? a : b;
  std::vector<uint64_t> out;
  out.reserve(hi.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < hi.size(); ++i) {
    uint128 sum = static_cast<uint128>(hi[i]) + carry;
    if (i < lo.size()) sum += lo[i];
    out.push_back(static_cast<uint64_t>(sum));
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry != 0) out.push_back(carry);
  return out;
}

std::vector<uint64_t> BigInt::SubMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  assert(CompareMagnitude(a, b) >= 0);
  std::vector<uint64_t> out;
  out.reserve(a.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    uint64_t ai = a[i];
    uint64_t res = ai - bi - borrow;
    // Borrow occurred iff the true difference was negative.
    borrow = (ai < bi || (ai == bi && borrow)) ? 1 : 0;
    out.push_back(res);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<uint64_t> BigInt::MulMagnitude(const std::vector<uint64_t>& a,
                                           const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint128 cur = static_cast<uint128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

namespace {

// Shifts magnitude left by `bits` (< 64).
std::vector<uint64_t> ShiftLeft(const std::vector<uint64_t>& a, unsigned bits) {
  if (bits == 0 || a.empty()) return a;
  std::vector<uint64_t> out(a.size() + 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] |= a[i] << bits;
    out[i + 1] = a[i] >> (64 - bits);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

// Shifts magnitude right by `bits` (< 64).
std::vector<uint64_t> ShiftRight(const std::vector<uint64_t>& a,
                                 unsigned bits) {
  if (bits == 0 || a.empty()) return a;
  std::vector<uint64_t> out(a.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] >> bits;
    if (i + 1 < a.size()) out[i] |= a[i + 1] << (64 - bits);
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

}  // namespace

void BigInt::DivModMagnitude(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b,
                             std::vector<uint64_t>* quot,
                             std::vector<uint64_t>* rem) {
  assert(!b.empty() && "division by zero");
  quot->clear();
  rem->clear();
  if (CompareMagnitude(a, b) < 0) {
    *rem = a;
    return;
  }
  if (b.size() == 1) {
    // Single-limb fast path.
    uint64_t d = b[0];
    quot->assign(a.size(), 0);
    uint128 r = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint128 cur = (r << 64) | a[i];
      (*quot)[i] = static_cast<uint64_t>(cur / d);
      r = cur % d;
    }
    while (!quot->empty() && quot->back() == 0) quot->pop_back();
    if (r != 0) rem->push_back(static_cast<uint64_t>(r));
    return;
  }

  // Knuth TAOCP vol.2 Algorithm D. Normalize so the divisor's top limb has
  // its high bit set; this keeps the quotient-digit estimate within 2.
  unsigned shift = 0;
  uint64_t top = b.back();
  while ((top & (uint64_t{1} << 63)) == 0) {
    top <<= 1;
    ++shift;
  }
  std::vector<uint64_t> u = ShiftLeft(a, shift);
  std::vector<uint64_t> v = ShiftLeft(b, shift);
  const size_t n = v.size();
  const size_t m = u.size() - n;
  u.resize(u.size() + 1, 0);  // Extra high limb for the algorithm.
  quot->assign(m + 1, 0);

  const uint64_t v1 = v[n - 1];
  const uint64_t v2 = v[n - 2];
  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v1, then refine.
    uint128 num = (static_cast<uint128>(u[j + n]) << 64) | u[j + n - 1];
    uint128 q_hat = num / v1;
    uint128 r_hat = num % v1;
    while (q_hat >> 64 != 0 ||
           q_hat * v2 > ((r_hat << 64) | u[j + n - 2])) {
      --q_hat;
      r_hat += v1;
      if (r_hat >> 64 != 0) break;
    }
    // Multiply-subtract q_hat * v from u[j .. j+n].
    uint128 borrow = 0;
    uint128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint128 p = q_hat * v[i] + carry;
      carry = p >> 64;
      uint64_t sub = static_cast<uint64_t>(p);
      uint128 diff = static_cast<uint128>(u[i + j]) - sub - borrow;
      u[i + j] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) != 0 ? 1 : 0;
    }
    uint128 diff = static_cast<uint128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<uint64_t>(diff);
    bool negative = (diff >> 64) != 0;
    if (negative) {
      // Estimate was one too large; add back.
      --q_hat;
      uint128 carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        uint128 sum = static_cast<uint128>(u[i + j]) + v[i] + carry2;
        u[i + j] = static_cast<uint64_t>(sum);
        carry2 = sum >> 64;
      }
      u[j + n] += static_cast<uint64_t>(carry2);
    }
    (*quot)[j] = static_cast<uint64_t>(q_hat);
  }
  while (!quot->empty() && quot->back() == 0) quot->pop_back();
  u.resize(n);
  while (!u.empty() && u.back() == 0) u.pop_back();
  *rem = ShiftRight(u, shift);
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    limbs_ = AddMagnitude(limbs_, rhs.limbs_);
  } else if (CompareMagnitude(limbs_, rhs.limbs_) >= 0) {
    limbs_ = SubMagnitude(limbs_, rhs.limbs_);
  } else {
    limbs_ = SubMagnitude(rhs.limbs_, limbs_);
    negative_ = rhs.negative_;
  }
  Trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += -rhs; }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = MulMagnitude(limbs_, rhs.limbs_);
  Trim();
  return *this;
}

void BigInt::DivMod(const BigInt& num, const BigInt& den, BigInt* quot,
                    BigInt* rem) {
  BigInt q, r;
  DivModMagnitude(num.limbs_, den.limbs_, &q.limbs_, &r.limbs_);
  q.negative_ = num.negative_ != den.negative_;
  r.negative_ = num.negative_;
  q.Trim();
  r.Trim();
  *quot = std::move(q);
  *rem = std::move(r);
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  BigInt q, r;
  DivMod(*this, rhs, &q, &r);
  *this = std::move(q);
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  BigInt q, r;
  DivMod(*this, rhs, &q, &r);
  *this = std::move(r);
  return *this;
}

int BigInt::Compare(const BigInt& lhs, const BigInt& rhs) {
  if (lhs.negative_ != rhs.negative_) return lhs.negative_ ? -1 : 1;
  int mag = CompareMagnitude(lhs.limbs_, rhs.limbs_);
  return lhs.negative_ ? -mag : mag;
}

}  // namespace xicc
