#include "base/rational.h"

#include <cassert>

namespace xicc {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  assert(!den_.is_zero() && "rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ /= g;
    den_ /= g;
  }
}

BigInt Rational::Floor() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  // Truncated quotient rounds toward zero; adjust for negative values with a
  // nonzero remainder.
  if (r.is_negative()) q -= BigInt(1);
  return q;
}

BigInt Rational::Ceil() const {
  BigInt q, r;
  BigInt::DivMod(num_, den_, &q, &r);
  if (!r.is_zero() && !r.is_negative()) q += BigInt(1);
  return q;
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational& Rational::operator+=(const Rational& rhs) {
  // Integer fast path: the simplex tableaus are integer-dominated, and
  // skipping the cross-multiplication + gcd there is a large win.
  if (is_integer() && rhs.is_integer()) {
    num_ += rhs.num_;
    return *this;
  }
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  if (is_integer() && rhs.is_integer()) {
    num_ -= rhs.num_;
    return *this;
  }
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  if (is_integer() && rhs.is_integer()) {
    num_ *= rhs.num_;
    return *this;
  }
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  Normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  assert(!rhs.is_zero() && "division by zero rational");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  Normalize();
  return *this;
}

int Rational::Compare(const Rational& lhs, const Rational& rhs) {
  // Denominators are positive, so cross-multiplication preserves order.
  return BigInt::Compare(lhs.num_ * rhs.den_, rhs.num_ * lhs.den_);
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

}  // namespace xicc
