#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "base/deadline.h"
#include "base/thread_annotations.h"

namespace xicc {

/// The machine's hardware thread count (1 if the runtime cannot tell).
/// Callers size CPU-bound pools with this instead of touching <thread>
/// directly, keeping raw concurrency primitives confined to src/base/.
inline size_t HardwareConcurrency() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

/// A small work-stealing thread pool for coarse-grained search tasks (the
/// parallel top of the conditional case-split tree, batch query stripes).
///
/// Each worker owns a deque shard: it pops its own work from the front
/// (LIFO-ish locality for DFS prefixes) and, when empty, steals from the
/// back of a sibling's shard. Tasks are distributed round-robin at
/// submission. Shards are individually locked and cache-line padded
/// (alignas(64)), so two workers touching adjacent deque tops never
/// false-share a line and never contend on one global lock — under the
/// sharded scheme the only shared write traffic on the task fast path is
/// the `pending_` counter.
///
/// Sleep/wake runs on a separate `sleep_mu_` with a generation counter
/// (`signals_`): Submit bumps the generation under the sleep lock after
/// publishing the task, and a worker that found every shard empty re-checks
/// the generation under the same lock before blocking — a submission that
/// raced the worker's empty scan is therefore never lost, the worker just
/// rescans.
///
/// Locking discipline (machine-checked by -DXICC_THREAD_SAFETY=ON): each
/// shard's queue is guarded by that shard's mutex; `signals_` by
/// `sleep_mu_`; `pending_` / `stopping_` are atomics. Tasks run with no
/// lock held. The destructor drains every queued task before joining
/// (workers only exit on `stopping_` when nothing is pending anywhere).
///
/// Cancellation: constructed with a CancelToken the pool becomes
/// abandonable — once the token fires, queued-but-unstarted tasks are
/// drained WITHOUT running (in-flight tasks finish; they are expected to
/// poll the same token), later Submits are dropped on arrival, and workers
/// exit once nothing is pending. Cancel() wakes parked workers through a
/// registered wake callback that bumps the same `signals_` generation a
/// Submit would — the callback is what closes the lost-wakeup window where
/// a worker checks the cancel flag, finds it clear, and then parks on the
/// old generation. The token must outlive the pool.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(size_t num_threads,
                            const CancelToken* cancel = nullptr)
      : num_shards_(num_threads == 0 ? 1 : num_threads),
        shards_(new Shard[num_shards_]),
        cancel_(cancel) {
    alive_.store(num_shards_, std::memory_order_release);
    workers_.reserve(num_shards_);
    for (size_t i = 0; i < num_shards_; ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
    if (cancel_ != nullptr) {
      // Mirrors Submit's wake protocol: generation bump under the sleep
      // lock, then broadcast. A worker that raced the flag check either
      // sees the new generation before parking or is woken by the notify.
      cancel_callback_id_ = cancel_->AddWakeCallback([this] {
        {
          MutexLock lock(&sleep_mu_);
          ++signals_;
        }
        wake_.NotifyAll();
        drained_.NotifyAll();
      });
    }
  }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  ~WorkStealingPool() {
    // Unregister first: RemoveWakeCallback is a barrier, so after it
    // returns no callback can touch this pool's members again.
    if (cancel_ != nullptr) cancel_->RemoveWakeCallback(cancel_callback_id_);
    stopping_.store(true, std::memory_order_release);
    {
      MutexLock lock(&sleep_mu_);
      ++signals_;
    }
    wake_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Workers that have not yet exited. Only a cancelled (or stopping) pool
  /// lets workers exit; the cancellation regression tests poll this to
  /// prove Cancel() actually wakes parked workers.
  size_t WorkersAlive() const {
    return alive_.load(std::memory_order_acquire);
  }

  bool Cancelled() const {
    return cancel_ != nullptr && cancel_->Cancelled();
  }

  /// Enqueues a task. Safe from any thread, including pool workers. On a
  /// cancelled pool the task is dropped on arrival (never counted, never
  /// run) — the pool is draining, not accepting.
  void Submit(std::function<void()> task) XICC_EXCLUDES(sleep_mu_) {
    if (Cancelled()) return;
    // pending_ rises before the task is findable: a worker that takes and
    // finishes it can only ever decrement a counter that already includes
    // it, so Wait never observes a transient zero.
    pending_.fetch_add(1, std::memory_order_acq_rel);
    const size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % num_shards_;
    {
      MutexLock lock(&shards_[shard].mu);
      shards_[shard].queue.push_back(std::move(task));
    }
    {
      MutexLock lock(&sleep_mu_);
      ++signals_;
    }
    wake_.NotifyOne();
  }

  /// Blocks until every submitted task has finished running — or, on a
  /// cancelled pool, until the drain is over (every worker exited). The
  /// second arm covers the race where a Submit slipped past the cancel
  /// check after the last worker left: the orphaned task is never run and
  /// must not wedge the waiter.
  void Wait() XICC_EXCLUDES(sleep_mu_) {
    MutexLock lock(&sleep_mu_);
    while (pending_.load(std::memory_order_acquire) != 0) {
      if (Cancelled() && alive_.load(std::memory_order_acquire) == 0) break;
      drained_.Wait(&sleep_mu_);
    }
  }

 private:
  /// One worker's deque plus its lock, padded to a cache line so adjacent
  /// shards' hot tops never false-share.
  struct alignas(64) Shard {
    Mutex mu;  // xicc-analyze: lock-leaf
    std::deque<std::function<void()>> queue XICC_GUARDED_BY(mu);
  };

  /// Pops the worker's own front task or steals a sibling's back task;
  /// returns an empty function when no task is findable anywhere. Takes each
  /// shard lock individually — an empty scan is a point-in-time answer,
  /// which is why the caller re-checks `signals_` before sleeping.
  std::function<void()> TryTake(size_t self) {
    {
      MutexLock lock(&shards_[self].mu);
      if (!shards_[self].queue.empty()) {
        std::function<void()> task = std::move(shards_[self].queue.front());
        shards_[self].queue.pop_front();
        return task;
      }
    }
    for (size_t k = 1; k < num_shards_; ++k) {
      Shard& victim = shards_[(self + k) % num_shards_];
      MutexLock lock(&victim.mu);
      if (!victim.queue.empty()) {
        std::function<void()> task = std::move(victim.queue.back());
        victim.queue.pop_back();
        return task;
      }
    }
    return {};
  }

  void WorkerLoop(size_t self) XICC_EXCLUDES(sleep_mu_) {
    uint64_t seen = 0;
    for (;;) {
      std::function<void()> task = TryTake(self);
      if (task) {
        // A cancelled pool drains without running: the drop still counts
        // against pending_ so Wait()ers see the queue empty out.
        if (!Cancelled()) task();
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last task out: wake Wait()ers, and wake siblings so a stopping
          // pool with in-flight-submitted work re-evaluates its exit
          // condition.
          MutexLock lock(&sleep_mu_);
          ++signals_;
          drained_.NotifyAll();
          wake_.NotifyAll();
        }
        continue;
      }
      MutexLock lock(&sleep_mu_);
      if (signals_ != seen) {
        // A submission (or stop) landed after our empty scan; rescan before
        // daring to sleep — this is the lost-wakeup guard.
        seen = signals_;
        continue;
      }
      if ((stopping_.load(std::memory_order_acquire) || Cancelled()) &&
          pending_.load(std::memory_order_acquire) == 0) {
        // Exiting under sleep_mu_: decrement-then-broadcast so a Wait()er
        // blocked on a cancelled pool re-evaluates its drain predicate.
        alive_.fetch_sub(1, std::memory_order_acq_rel);
        drained_.NotifyAll();
        return;
      }
      wake_.Wait(&sleep_mu_);
      seen = signals_;
    }
  }

  const size_t num_shards_;
  /// Heap array (not vector) because Shard is neither movable nor copyable.
  std::unique_ptr<Shard[]> shards_;
  /// Written only by the constructor and joined by the destructor, both of
  /// which run strictly before/after any worker — no guard needed.
  std::vector<std::thread> workers_;

  std::atomic<size_t> next_shard_{0};
  std::atomic<size_t> pending_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> alive_{0};

  /// Optional abandon switch (see class comment); outlives the pool.
  const CancelToken* cancel_ = nullptr;
  uint64_t cancel_callback_id_ = 0;

  /// Taken inside CancelToken::Cancel()'s callback sweep, which runs under
  /// the token's own lock — so the token's lock always comes first.
  // xicc-analyze: acquired-after(CancelToken::mu_)
  Mutex sleep_mu_;
  CondVar wake_;
  CondVar drained_;
  /// Wake generation: bumped under sleep_mu_ by every Submit, drain, and
  /// stop, so a worker can tell "nothing changed since my empty scan" from
  /// "a task appeared while I was between the scan and the lock".
  uint64_t signals_ XICC_GUARDED_BY(sleep_mu_) = 0;
};

}  // namespace xicc
