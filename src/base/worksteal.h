#ifndef XICC_BASE_WORKSTEAL_H_
#define XICC_BASE_WORKSTEAL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace xicc {

/// A small work-stealing thread pool for coarse-grained search tasks (the
/// parallel top of the conditional case-split tree).
///
/// Each worker owns a deque: it pops its own work from the front (LIFO-ish
/// locality for DFS prefixes) and, when empty, steals from the back of a
/// sibling's deque. Tasks are distributed round-robin at submission. The
/// task count here is tiny (≤ 2^levels), so one lock guards the deques —
/// the stealing discipline is about load balance, not lock-free throughput:
/// a worker stuck in a deep subtree keeps its siblings busy with the tasks
/// it never got to.
class WorkStealingPool {
 public:
  explicit WorkStealingPool(size_t num_threads)
      : queues_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(queues_.size());
    for (size_t i = 0; i < queues_.size(); ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  ~WorkStealingPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Enqueues a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      queues_[next_queue_++ % queues_.size()].push_back(std::move(task));
      ++pending_;
    }
    wake_.notify_one();
  }

  /// Blocks until every submitted task has finished running.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    drained_.wait(lock, [this] { return pending_ == 0; });
  }

 private:
  void WorkerLoop(size_t self) {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      std::function<void()> task;
      if (!queues_[self].empty()) {
        task = std::move(queues_[self].front());
        queues_[self].pop_front();
      } else {
        for (size_t k = 1; k < queues_.size() && !task; ++k) {
          std::deque<std::function<void()>>& victim =
              queues_[(self + k) % queues_.size()];
          if (!victim.empty()) {
            task = std::move(victim.back());
            victim.pop_back();
          }
        }
      }
      if (task) {
        lock.unlock();
        task();
        lock.lock();
        if (--pending_ == 0) drained_.notify_all();
        continue;
      }
      if (stopping_) return;
      wake_.wait(lock);
    }
  }

  std::mutex mu_;
  std::condition_variable wake_;
  std::condition_variable drained_;
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  size_t next_queue_ = 0;
  size_t pending_ = 0;
  bool stopping_ = false;
};

}  // namespace xicc

#endif  // XICC_BASE_WORKSTEAL_H_
