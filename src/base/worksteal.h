#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "base/thread_annotations.h"

namespace xicc {

/// A small work-stealing thread pool for coarse-grained search tasks (the
/// parallel top of the conditional case-split tree).
///
/// Each worker owns a deque: it pops its own work from the front (LIFO-ish
/// locality for DFS prefixes) and, when empty, steals from the back of a
/// sibling's deque. Tasks are distributed round-robin at submission. The
/// task count here is tiny (≤ 2^levels), so one lock guards the deques —
/// the stealing discipline is about load balance, not lock-free throughput:
/// a worker stuck in a deep subtree keeps its siblings busy with the tasks
/// it never got to.
///
/// Locking discipline (machine-checked by -DXICC_THREAD_SAFETY=ON): every
/// queue/counter field is guarded by `mu_`; tasks run with `mu_` released;
/// the destructor drains every queued task before joining (workers only
/// exit on `stopping_` when no task is findable anywhere).
class WorkStealingPool {
 public:
  explicit WorkStealingPool(size_t num_threads)
      : queues_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(queues_.size());
    for (size_t i = 0; i < queues_.size(); ++i) {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    }
  }

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  ~WorkStealingPool() {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    wake_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Enqueues a task. Safe from any thread, including pool workers.
  void Submit(std::function<void()> task) XICC_EXCLUDES(mu_) {
    {
      MutexLock lock(&mu_);
      queues_[next_queue_++ % queues_.size()].push_back(std::move(task));
      ++pending_;
    }
    wake_.NotifyOne();
  }

  /// Blocks until every submitted task has finished running.
  void Wait() XICC_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (pending_ != 0) drained_.Wait(&mu_);
  }

 private:
  /// Pops the worker's own front task or steals a sibling's back task;
  /// returns an empty function when no task is findable anywhere.
  std::function<void()> TakeTask(size_t self) XICC_REQUIRES(mu_) {
    std::function<void()> task;
    if (!queues_[self].empty()) {
      task = std::move(queues_[self].front());
      queues_[self].pop_front();
      return task;
    }
    for (size_t k = 1; k < queues_.size(); ++k) {
      std::deque<std::function<void()>>& victim =
          queues_[(self + k) % queues_.size()];
      if (!victim.empty()) {
        task = std::move(victim.back());
        victim.pop_back();
        return task;
      }
    }
    return task;
  }

  void WorkerLoop(size_t self) XICC_EXCLUDES(mu_) {
    mu_.Lock();
    for (;;) {
      std::function<void()> task = TakeTask(self);
      if (task) {
        mu_.Unlock();
        task();
        mu_.Lock();
        if (--pending_ == 0) drained_.NotifyAll();
        continue;
      }
      if (stopping_) break;
      wake_.Wait(&mu_);
    }
    mu_.Unlock();
  }

  Mutex mu_;
  CondVar wake_;
  CondVar drained_;
  std::vector<std::deque<std::function<void()>>> queues_ XICC_GUARDED_BY(mu_);
  /// Written only by the constructor and joined by the destructor, both of
  /// which run strictly before/after any worker — no guard needed.
  std::vector<std::thread> workers_;
  size_t next_queue_ XICC_GUARDED_BY(mu_) = 0;
  size_t pending_ XICC_GUARDED_BY(mu_) = 0;
  bool stopping_ XICC_GUARDED_BY(mu_) = false;
};

}  // namespace xicc
