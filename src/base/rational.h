#pragma once

#include <ostream>
#include <string>
#include <utility>

#include "base/bigint.h"

namespace xicc {

/// Exact rational number over BigInt, always kept in canonical form:
/// denominator positive, gcd(|num|, den) == 1, zero is 0/1.
///
/// The simplex solver pivots on Rationals so LP relaxations are solved
/// without rounding; branch & bound then needs only floor/ceil.
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}
  /// `den` must be nonzero.
  Rational(BigInt num, BigInt den);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int sign() const { return num_.sign(); }

  /// Largest integer <= this.
  BigInt Floor() const;
  /// Smallest integer >= this.
  BigInt Ceil() const;

  Rational operator-() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  /// rhs must be nonzero.
  Rational& operator/=(const Rational& rhs);

  friend Rational operator+(Rational lhs, const Rational& rhs) {
    return lhs += rhs;
  }
  friend Rational operator-(Rational lhs, const Rational& rhs) {
    return lhs -= rhs;
  }
  friend Rational operator*(Rational lhs, const Rational& rhs) {
    return lhs *= rhs;
  }
  friend Rational operator/(Rational lhs, const Rational& rhs) {
    return lhs /= rhs;
  }

  static int Compare(const Rational& lhs, const Rational& rhs);

  friend bool operator==(const Rational& a, const Rational& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Rational& a, const Rational& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Rational& a, const Rational& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Rational& a, const Rational& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Rational& a, const Rational& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Rational& a, const Rational& b) {
    return Compare(a, b) >= 0;
  }

  /// "7" for integers, "7/3" otherwise.
  std::string ToString() const;

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;
};

inline std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.ToString();
}

}  // namespace xicc
