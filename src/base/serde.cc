#include "base/serde.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <utility>

#include "base/debug.h"
#include "base/faults.h"

namespace xicc::serde {

// Flat sections store host-layout records; the format is defined as
// little-endian. Every supported target (x86-64, aarch64) is LE — a
// big-endian port would add per-field record encoders here.
static_assert(std::endian::native == std::endian::little,
              "base/serde flat sections require a little-endian host");

uint64_t Fnv1a64(const void* data, size_t size, uint64_t seed) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

uint64_t SectionDigest(const void* data, size_t size) {
  constexpr uint64_t kPrime = 1099511628211ULL;
  const auto* p = static_cast<const unsigned char*>(data);
  // Lane seeds differ so a 64-byte block of zeros in a different lane
  // rotation cannot alias; each lane is plain word-granular FNV-1a. Eight
  // lanes keep the multiply ports saturated despite the 5-cycle latency of
  // each lane's dependency chain.
  uint64_t lane[8];
  for (int k = 0; k < 8; ++k) lane[k] = kFnvOffsetBasis + k;
  size_t i = 0;
  for (; i + 64 <= size; i += 64) {
    uint64_t w[8];
    std::memcpy(w, p + i, 64);
    for (int k = 0; k < 8; ++k) {
      lane[k] ^= w[k];
      lane[k] *= kPrime;
    }
  }
  uint64_t h = Fnv1a64(lane, sizeof(lane));
  // Tail (< 64 bytes) plus the total size, so payloads differing only in
  // trailing zeros cannot collide.
  h = Fnv1a64(p + i, size - i, h);
  const uint64_t total = size;
  return Fnv1a64(&total, sizeof(total), h);
}

namespace {

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffULL));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t DecodeU32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

uint64_t DecodeU64(const char* p) {
  return static_cast<uint64_t>(DecodeU32(p)) |
         (static_cast<uint64_t>(DecodeU32(p + 4)) << 32);
}

uint64_t Align8(uint64_t n) { return (n + 7) & ~uint64_t{7}; }

}  // namespace

// ---------------------------------------------------------------------------
// Writer

Writer::Writer(const char* magic, uint32_t version, uint64_t content_key)
    : version_(version), content_key_(content_key) {
  std::memcpy(magic_, magic, kMagicSize);
}

void Writer::BeginSection(uint32_t tag) {
  XICC_DCHECK(!in_section_);
  // Sections start 8-aligned so flat arrays inside them can rely on the
  // payload base alignment (header + table are multiples of 8).
  while (payload_.size() % 8 != 0) payload_.push_back('\0');
  in_section_ = true;
  section_start_ = payload_.size();
  sections_.push_back(Section{tag, section_start_, 0, 0, 0});
}

void Writer::EndSection() {
  XICC_DCHECK(in_section_);
  in_section_ = false;
  Section& sec = sections_.back();
  sec.size = payload_.size() - section_start_;
  // Digest coverage includes the trailing alignment padding, so every
  // payload byte of the finished container is protected by some checksum.
  while (payload_.size() % 8 != 0) payload_.push_back('\0');
  sec.padded_size = payload_.size() - section_start_;
  sec.digest =
      SectionDigest(payload_.data() + section_start_, sec.padded_size);
}

void Writer::U8(uint8_t v) {
  XICC_DCHECK(in_section_);
  payload_.push_back(static_cast<char>(v));
}

void Writer::U32(uint32_t v) {
  XICC_DCHECK(in_section_);
  AppendU32(&payload_, v);
}

void Writer::U64(uint64_t v) {
  XICC_DCHECK(in_section_);
  AppendU64(&payload_, v);
}

void Writer::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  RawBytes(s);
}

void Writer::RawBytes(std::string_view bytes) {
  XICC_DCHECK(in_section_);
  payload_.append(bytes.data(), bytes.size());
}

void Writer::AlignTo8() {
  XICC_DCHECK(in_section_);
  while ((payload_.size() - section_start_) % 8 != 0) payload_.push_back('\0');
}

std::string Writer::Finish() && {
  XICC_DCHECK(!in_section_);
  const uint64_t table_size = sections_.size() * kSectionEntrySize;
  const uint64_t payload_base = kHeaderSize + table_size;
  const uint64_t total_size = payload_base + Align8(payload_.size());

  std::string out;
  out.reserve(total_size);
  out.append(magic_, kMagicSize);
  AppendU32(&out, kEndianSentinel);
  AppendU32(&out, version_);
  AppendU32(&out, static_cast<uint32_t>(sections_.size()));
  AppendU32(&out, 0);  // reserved
  AppendU64(&out, content_key_);
  AppendU64(&out, total_size);
  // Digest placeholder; filled below once the table is appended.
  const size_t digest_pos = out.size();
  AppendU64(&out, 0);

  for (const Section& sec : sections_) {
    AppendU32(&out, sec.tag);
    AppendU32(&out, 0);  // reserved
    AppendU64(&out, payload_base + sec.offset);
    AppendU64(&out, sec.size);
    AppendU64(&out, sec.digest);
  }

  // Header digest covers the header bytes before the digest field plus the
  // whole section table.
  uint64_t digest = Fnv1a64(out.data(), digest_pos);
  digest = Fnv1a64(out.data() + kHeaderSize, table_size, digest);
  char encoded[8];
  std::string tmp;
  tmp.reserve(8);
  AppendU64(&tmp, digest);
  std::memcpy(encoded, tmp.data(), 8);
  out.replace(digest_pos, 8, encoded, 8);

  out.append(payload_);
  out.resize(total_size, '\0');
  return out;
}

// ---------------------------------------------------------------------------
// Cursor

void Cursor::Fail(const char* reason) {
  if (!status_.ok()) return;
  status_ = Status::InvalidArgument(std::string(what_) + ": " + reason +
                                    " at offset " + std::to_string(pos_));
}

uint8_t Cursor::U8() {
  if (!status_.ok()) return 0;
  if (bytes_.size() - pos_ < 1) {
    Fail("truncated u8");
    return 0;
  }
  return static_cast<uint8_t>(bytes_[pos_++]);
}

uint32_t Cursor::U32() {
  if (!status_.ok()) return 0;
  if (bytes_.size() - pos_ < 4) {
    Fail("truncated u32");
    return 0;
  }
  const uint32_t v = DecodeU32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t Cursor::U64() {
  if (!status_.ok()) return 0;
  if (bytes_.size() - pos_ < 8) {
    Fail("truncated u64");
    return 0;
  }
  const uint64_t v = DecodeU64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

std::string Cursor::Str() {
  const uint32_t size = U32();
  return std::string(RawBytes(size));
}

std::string_view Cursor::RawBytes(size_t size) {
  if (!status_.ok()) return {};
  if (bytes_.size() - pos_ < size) {
    Fail("truncated byte range");
    return {};
  }
  const std::string_view v = bytes_.substr(pos_, size);
  pos_ += size;
  return v;
}

void Cursor::AlignTo8() {
  if (!status_.ok()) return;
  while (pos_ % 8 != 0) {
    if (pos_ >= bytes_.size()) {
      Fail("truncated alignment padding");
      return;
    }
    ++pos_;
  }
}

Status Cursor::Finish() const {
  if (!status_.ok()) return status_;
  // Trailing bytes beyond the last read must be alignment zeros only; a
  // decoder that leaves real data unconsumed has a format mismatch.
  for (size_t i = pos_; i < bytes_.size(); ++i) {
    if (bytes_[i] != '\0') {
      return Status::InvalidArgument(std::string(what_) +
                                     ": trailing bytes after decode");
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Reader

Result<Reader> Reader::Open(std::string_view bytes, const char* magic,
                            uint32_t expected_version) {
  if (bytes.size() < kHeaderSize) {
    return Status::InvalidArgument("artifact truncated: " +
                                   std::to_string(bytes.size()) +
                                   " bytes, header needs " +
                                   std::to_string(kHeaderSize));
  }
  if (std::memcmp(bytes.data(), magic, kMagicSize) != 0) {
    return Status::InvalidArgument("artifact magic mismatch");
  }
  const uint32_t endian = DecodeU32(bytes.data() + 8);
  if (endian == kForeignEndianSentinel) {
    return Status::InvalidArgument(
        "artifact written on a foreign-endian host");
  }
  if (endian != kEndianSentinel) {
    return Status::InvalidArgument("artifact endianness sentinel corrupt");
  }
  const uint32_t version = DecodeU32(bytes.data() + 12);
  if (version != expected_version) {
    return Status::InvalidArgument(
        "artifact format version mismatch: file v" + std::to_string(version) +
        ", reader expects v" + std::to_string(expected_version));
  }
  const uint32_t section_count = DecodeU32(bytes.data() + 16);
  const uint64_t content_key = DecodeU64(bytes.data() + 24);
  const uint64_t total_size = DecodeU64(bytes.data() + 32);
  const uint64_t stored_digest = DecodeU64(bytes.data() + 40);
  if (total_size != bytes.size()) {
    return Status::InvalidArgument(
        "artifact size mismatch: header says " + std::to_string(total_size) +
        ", buffer has " + std::to_string(bytes.size()));
  }
  const uint64_t table_size =
      static_cast<uint64_t>(section_count) * kSectionEntrySize;
  if (table_size > bytes.size() - kHeaderSize) {
    return Status::InvalidArgument("artifact section table overruns buffer");
  }
  uint64_t digest = Fnv1a64(bytes.data(), 40);
  digest = Fnv1a64(bytes.data() + kHeaderSize, table_size, digest);
  if (digest != stored_digest) {
    return Status::InvalidArgument("artifact header checksum mismatch");
  }

  Reader reader;
  reader.bytes_ = bytes;
  reader.content_key_ = content_key;
  reader.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const char* entry = bytes.data() + kHeaderSize + i * kSectionEntrySize;
    const uint32_t tag = DecodeU32(entry);
    const uint64_t offset = DecodeU64(entry + 8);
    const uint64_t size = DecodeU64(entry + 16);
    const uint64_t sec_digest = DecodeU64(entry + 24);
    const uint64_t padded = Align8(size);
    if (offset % 8 != 0 || offset > bytes.size() ||
        padded > bytes.size() - offset) {
      return Status::InvalidArgument("artifact section " + std::to_string(i) +
                                     " overruns buffer");
    }
    for (const SectionEntry& prev : reader.sections_) {
      if (prev.tag == tag) {
        return Status::InvalidArgument("artifact has duplicate section tag " +
                                       std::to_string(tag));
      }
    }
    if (SectionDigest(bytes.data() + offset, padded) != sec_digest) {
      return Status::InvalidArgument("artifact section " + std::to_string(i) +
                                     " checksum mismatch");
    }
    reader.sections_.push_back(SectionEntry{tag, offset, size});
  }
  return reader;
}

bool Reader::HasSection(uint32_t tag) const {
  for (const SectionEntry& sec : sections_) {
    if (sec.tag == tag) return true;
  }
  return false;
}

Result<Cursor> Reader::Section(uint32_t tag, std::string_view what) const {
  for (const SectionEntry& sec : sections_) {
    if (sec.tag == tag) {
      return Cursor(bytes_.substr(sec.offset, sec.size), what);
    }
  }
  return Status::InvalidArgument("artifact is missing section tag " +
                                 std::to_string(tag));
}

// ---------------------------------------------------------------------------
// Files

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

Result<MappedFile> MappedFile::Map(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    const Status err = Status::InvalidArgument("cannot stat " + path + ": " +
                                               std::strerror(errno));
    ::close(fd);
    return err;
  }
  MappedFile mapped;
  mapped.size_ = static_cast<size_t>(st.st_size);
  if (mapped.size_ > 0) {
    // MAP_POPULATE prefaults the whole file in one syscall — the checksum
    // pass touches every page anyway, and batched fault-in is much cheaper
    // than ~size/4096 on-demand minor faults on the load path.
    void* data = ::mmap(nullptr, mapped.size_, PROT_READ,
                        MAP_PRIVATE | MAP_POPULATE, fd, 0);
    if (data == MAP_FAILED) {
      data = ::mmap(nullptr, mapped.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    }
    if (data == MAP_FAILED) {
      const Status err = Status::InvalidArgument(
          "cannot mmap " + path + ": " + std::strerror(errno));
      ::close(fd);
      return err;
    }
    mapped.data_ = data;
  }
  ::close(fd);
  return mapped;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* fh = std::fopen(path.c_str(), "rb");
  if (fh == nullptr) {
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), fh)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(fh) != 0;
  std::fclose(fh);
  if (failed) {
    return Status::InvalidArgument("error reading " + path);
  }
  return out;
}

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::FILE* fh = std::fopen(tmp.c_str(), "wb");
  if (fh == nullptr) {
    // No temp file exists yet, so there is nothing to clean up. Unavailable,
    // not InvalidArgument: an unwritable cache dir is an environmental
    // condition the caller may retry or degrade around, not a bad input.
    return Status::Unavailable("cannot create " + tmp + ": " +
                               std::strerror(errno));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), fh);
  if (XICC_FAULT_FIRES(kFileWrite)) written = 0;  // Simulated ENOSPC.
  const bool flushed = std::fflush(fh) == 0;
  // fclose can surface the buffered write's real error (ENOSPC, EIO) after
  // fwrite/fflush reported success; treating it as advisory would leave a
  // truncated temp file to be renamed over a good artifact.
  const bool closed = std::fclose(fh) == 0;
  if (written != bytes.size() || !flushed || !closed) {
    const Status err =
        Status::Unavailable("short write to " + tmp + ": " +
                            std::strerror(errno != 0 ? errno : ENOSPC));
    std::remove(tmp.c_str());
    return err;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status err = Status::Unavailable(
        "cannot rename " + tmp + " -> " + path + ": " + std::strerror(errno));
    std::remove(tmp.c_str());
    return err;
  }
  return Status::Ok();
}

}  // namespace xicc::serde
