#pragma once

// Lightweight per-stage wall-clock attribution for the batch pipeline.
//
// The batch scaling bench showed flat speedup curves with every layer of
// parallel machinery (worksteal pool, sharded memo, per-thread arenas) in
// place — and no way to tell WHERE the serialized time was going. This is
// the instrument that makes batch time attributable: a fixed taxonomy of
// pipeline stages (session setup, memo key rendering, memo lookup/store
// lock time, solve, witness) and a tally that any session or worker can
// accumulate into with two steady_clock reads per stage.
//
// Timing only, never verdicts: nothing here may influence a consistency
// answer. Tallies are single-owner (one per session / per worker) and
// merged after the parallel section — no locks, no atomics, no sharing on
// the hot path.

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace xicc {

/// The stages of answering one batch query, in pipeline order. Every
/// millisecond of a batch run should be attributable to one of these (plus
/// the solver's own ilp_wall_ms, which kSolve contains).
enum class Stage : size_t {
  /// Constructing a worker SpecSession: copying the skeleton LinearSystem
  /// and the factorized tableau out of the shared CompiledDtd. This is the
  /// per-stripe setup cost that chunked scheduling exists to amortize.
  kSessionSetup = 0,
  /// Rendering + sorting the canonical Σ memo key (CPU, no locks).
  kMemoKey,
  /// SharedSigmaMemo::Lookup — includes shard lock wait + hold, so memo
  /// read contention shows up here and nowhere else.
  kMemoLookup,
  /// SharedSigmaMemo::Store — shard lock wait + hold on the insert path.
  kMemoStore,
  /// The dispatch + solve of a non-memoized query (CheckUncached): grammar
  /// facts, Σ-delta trail solve or fresh fallback, witness build + verify.
  kSolve,
  /// Writing the finished result into the batch's result slot.
  kResultWrite,
  /// Loading a CompiledDtd artifact (header validation, section decode,
  /// mmap fix-ups, digest recompute) instead of compiling from scratch.
  kArtifactLoad,
  /// Serializing + persisting a freshly compiled CompiledDtd to the
  /// artifact cache (encode, checksum, atomic file write).
  kArtifactStore,
  kCount
};

/// Human-readable stage name ("session_setup", "memo_lookup", ...) for
/// stats lines and bench JSON field names.
const char* StageName(Stage stage);

/// Per-owner accumulator: milliseconds and entry counts per stage. Plain
/// data, merged single-threadedly after a parallel section.
struct StageTally {
  double ms[static_cast<size_t>(Stage::kCount)] = {};
  uint64_t count[static_cast<size_t>(Stage::kCount)] = {};

  void Add(Stage stage, double elapsed_ms) {
    ms[static_cast<size_t>(stage)] += elapsed_ms;
    count[static_cast<size_t>(stage)] += 1;
  }
  void Merge(const StageTally& other) {
    for (size_t i = 0; i < static_cast<size_t>(Stage::kCount); ++i) {
      ms[i] += other.ms[i];
      count[i] += other.count[i];
    }
  }
  double MsFor(Stage stage) const { return ms[static_cast<size_t>(stage)]; }
  uint64_t CountFor(Stage stage) const {
    return count[static_cast<size_t>(stage)];
  }
};

/// RAII stage measurement: adds the scope's wall time to `tally` (and,
/// when `out_ms` is non-null, also accumulates into `*out_ms` — the hook
/// that fills per-query ConsistencyStats fields without a second clock
/// read). A null tally makes the timer a no-op so callers can keep one
/// code path whether attribution is wanted or not.
class StageTimer {
 public:
  StageTimer(StageTally* tally, Stage stage, double* out_ms = nullptr)
      : tally_(tally), out_ms_(out_ms), stage_(stage) {
    if (tally_ != nullptr || out_ms_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~StageTimer() {
    if (tally_ == nullptr && out_ms_ == nullptr) return;
    const double elapsed =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start_)
            .count();
    if (tally_ != nullptr) tally_->Add(stage_, elapsed);
    if (out_ms_ != nullptr) *out_ms_ += elapsed;
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  StageTally* tally_;
  double* out_ms_;
  Stage stage_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace xicc
