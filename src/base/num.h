#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>

#include "base/bigint.h"
#include "base/debug.h"
#include "base/faults.h"
#include "base/rational.h"

namespace xicc {

/// Per-thread tallies of the two-tier exact arithmetic (see Num below).
/// `promotions` counts small→big transitions forced by 64-bit overflow;
/// `demotions` counts big results that fit back into the small word pair.
/// The ratio promotions/small_ops is the promotion rate reported by the
/// benches — near zero on the paper's cardinality encodings, whose
/// coefficients are unit-scale until Gomory denominators pile up.
struct NumCounters {
  uint64_t small_ops = 0;
  uint64_t big_ops = 0;
  uint64_t promotions = 0;
  uint64_t demotions = 0;
};

inline thread_local NumCounters g_num_counters;
inline NumCounters& ThisThreadNumCounters() { return g_num_counters; }

namespace internal {

/// The machine word of Num's small tier. Exported so structure-of-arrays
/// fast lanes (the sparse simplex kernel keeps per-row numerator/denominator
/// word arrays) can name the coefficient word without spelling a raw integer
/// type — all arithmetic on Words MUST go through the overflow-checked
/// SmallAdd/SmallMul primitives below, never bare operators.
using Word = int64_t;

/// |v| as an unsigned word; well-defined for INT64_MIN too.
inline uint64_t Mag64(int64_t v) {
  return v < 0 ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
}

inline uint64_t Gcd64(uint64_t a, uint64_t b) {
  while (b != 0) {
    uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// a/b + c/d over canonical small words (b, d > 0). Returns false when any
/// intermediate or the canonical result leaves the small domain; *on/*od are
/// then unspecified. Uses Knuth's reduced-gcd scheme so the only reduction
/// needed is against g = gcd(b, d).
inline bool SmallAdd(int64_t a, int64_t b, int64_t c, int64_t d, int64_t* on,
                     int64_t* od) {
  const int64_t g = static_cast<int64_t>(
      Gcd64(static_cast<uint64_t>(b), static_cast<uint64_t>(d)));
  const int64_t b1 = b / g;
  const int64_t d1 = d / g;
  int64_t t1, t2, t;
  if (__builtin_mul_overflow(a, d1, &t1)) return false;
  if (__builtin_mul_overflow(c, b1, &t2)) return false;
  if (__builtin_add_overflow(t1, t2, &t)) return false;
  if (t == 0) {
    *on = 0;
    *od = 1;
    return true;
  }
  const int64_t g2 = static_cast<int64_t>(
      Gcd64(Mag64(t), static_cast<uint64_t>(g)));
  const int64_t tn = t / g2;
  if (tn == INT64_MIN) return false;
  int64_t den;
  if (__builtin_mul_overflow(b1, d / g2, &den)) return false;
  *on = tn;
  *od = den;
  return true;
}

/// (a/b) · (c/d) over canonical small words; cross-reduction keeps the
/// result canonical without a final gcd.
inline bool SmallMul(int64_t a, int64_t b, int64_t c, int64_t d, int64_t* on,
                     int64_t* od) {
  if (a == 0 || c == 0) {
    *on = 0;
    *od = 1;
    return true;
  }
  const int64_t g1 =
      static_cast<int64_t>(Gcd64(Mag64(a), static_cast<uint64_t>(d)));
  const int64_t g2 =
      static_cast<int64_t>(Gcd64(Mag64(c), static_cast<uint64_t>(b)));
  const int64_t a1 = a / g1;
  const int64_t c1 = c / g2;
  const int64_t b1 = b / g2;
  const int64_t d1 = d / g1;
  int64_t n, den;
  if (__builtin_mul_overflow(a1, c1, &n)) return false;
  if (n == INT64_MIN) return false;
  if (__builtin_mul_overflow(b1, d1, &den)) return false;
  *on = n;
  *od = den;
  return true;
}

}  // namespace internal

// Per-operation verification for XICC_AUDIT builds: every Num operation is
// recomputed in pure BigInt-backed Rational arithmetic and compared. This is
// the audit strategy for the small tier — the overflow intrinsics guard the
// representation, the recomputation guards the mathematics.
#if XICC_AUDIT_ENABLED
#define XICC_NUM_AUDIT_PREP(expr) const ::xicc::Rational xicc_num_expect_ = (expr)
#define XICC_NUM_AUDIT_CHECK() \
  XICC_DCHECK(::xicc::Rational::Compare(ToRational(), xicc_num_expect_) == 0)
#else
#define XICC_NUM_AUDIT_PREP(expr) \
  do {                            \
  } while (0)
#define XICC_NUM_AUDIT_CHECK() \
  do {                         \
  } while (0)
#endif

/// Two-tier exact rational: the workhorse number type of the ILP substrate.
///
/// Small tier (`d_ > 0`): the value is n_/d_ packed in two native words,
/// canonical — gcd(|n_|, d_) == 1, zero is 0/1, and n_ ≠ INT64_MIN (so
/// negation and |·| never overflow). All arithmetic runs through
/// __builtin_*_overflow intrinsics and touches no allocator.
///
/// Big tier (`d_ == 0`): a heap Rational (BigInt-backed). Any small
/// operation whose intermediate or result leaves the 64-bit domain promotes
/// losslessly; big results that fit two words demote back. Promotion and
/// demotion are invisible to callers — Num has one value semantics, the
/// tiers are a representation detail audited in XICC_AUDIT builds by
/// recomputing every operation in pure Rational arithmetic.
///
/// The exactness invariant of the paper's NP encodings (Thm 4.7) lives
/// here: no operation rounds, both tiers are always in canonical form.
class Num {
 public:
  Num() : n_(0), d_(1) {}
  Num(int64_t v) {  // NOLINT(google-explicit-constructor): numeric interop.
    if (v == INT64_MIN) {
      InitBig(Rational(BigInt(v)));
    } else {
      n_ = v;
      d_ = 1;
    }
  }
  Num(int v) : Num(static_cast<int64_t>(v)) {}  // NOLINT
  Num(BigInt v);                                // NOLINT: see LinearExpr.
  /// `den` must be nonzero; the value is reduced to canonical form.
  Num(BigInt num, BigInt den);
  explicit Num(const Rational& r);

  Num(const Num& o) : d_(o.d_) {
    if (o.is_small()) {
      n_ = o.n_;
    } else {
      big_ = new Rational(*o.big_);
    }
  }
  Num(Num&& o) noexcept : d_(o.d_) {
    if (o.is_small()) {
      n_ = o.n_;
    } else {
      big_ = o.big_;
      o.n_ = 0;
      o.d_ = 1;
    }
  }
  Num& operator=(const Num& o) {
    if (this == &o) return *this;
    if (!is_small()) delete big_;
    d_ = o.d_;
    if (o.is_small()) {
      n_ = o.n_;
    } else {
      big_ = new Rational(*o.big_);
    }
    return *this;
  }
  Num& operator=(Num&& o) noexcept {
    if (this == &o) return *this;
    if (!is_small()) delete big_;
    d_ = o.d_;
    if (o.is_small()) {
      n_ = o.n_;
    } else {
      big_ = o.big_;
      o.n_ = 0;
      o.d_ = 1;
    }
    return *this;
  }
  ~Num() {
    if (!is_small()) delete big_;
  }

  /// True when the value lives in the packed small tier.
  bool is_small() const { return d_ != 0; }

  bool is_zero() const { return is_small() ? n_ == 0 : big_->is_zero(); }
  bool is_integer() const {
    return is_small() ? d_ == 1 : big_->is_integer();
  }
  int sign() const {
    if (is_small()) return (n_ > 0) - (n_ < 0);
    return big_->sign();
  }

  /// Numerator / denominator of the canonical form, by value (the small
  /// tier has no BigInt to reference).
  BigInt num() const {
    return is_small() ? BigInt(n_) : big_->num();
  }
  BigInt den() const {
    return is_small() ? BigInt(d_) : big_->den();
  }

  Rational ToRational() const {
    if (is_small()) return Rational(BigInt(n_), BigInt(d_));
    return *big_;
  }

  /// Largest integer ≤ this / smallest integer ≥ this, as a Num.
  Num Floor() const;
  Num Ceil() const;

  Num operator-() const {
    if (is_small()) return Num(-n_, d_, RawTag());
    Num out;
    out.InitBig(-*big_);
    return out;
  }

  Num& operator+=(const Num& rhs) {
    XICC_NUM_AUDIT_PREP(ToRational() + rhs.ToRational());
    // The fault probe (fault builds only) forces the slow promote/demote
    // route: the slow path recomputes the exact value, so injected
    // "overflow" stresses the representation without touching verdicts.
    if (is_small() && rhs.is_small() && !XICC_FAULT_FIRES(kNumPromote)) {
      int64_t n, d;
      if (internal::SmallAdd(n_, d_, rhs.n_, rhs.d_, &n, &d)) {
        n_ = n;
        d_ = d;
        ++ThisThreadNumCounters().small_ops;
        XICC_NUM_AUDIT_CHECK();
        return *this;
      }
    }
    AddSlow(rhs);
    XICC_NUM_AUDIT_CHECK();
    return *this;
  }

  Num& operator-=(const Num& rhs) {
    XICC_NUM_AUDIT_PREP(ToRational() - rhs.ToRational());
    if (is_small() && rhs.is_small() && !XICC_FAULT_FIRES(kNumPromote)) {
      // rhs.n_ ≠ INT64_MIN by the small-tier invariant, so −rhs is safe.
      int64_t n, d;
      if (internal::SmallAdd(n_, d_, -rhs.n_, rhs.d_, &n, &d)) {
        n_ = n;
        d_ = d;
        ++ThisThreadNumCounters().small_ops;
        XICC_NUM_AUDIT_CHECK();
        return *this;
      }
    }
    SubSlow(rhs);
    XICC_NUM_AUDIT_CHECK();
    return *this;
  }

  Num& operator*=(const Num& rhs) {
    XICC_NUM_AUDIT_PREP(ToRational() * rhs.ToRational());
    if (is_small() && rhs.is_small() && !XICC_FAULT_FIRES(kNumPromote)) {
      int64_t n, d;
      if (internal::SmallMul(n_, d_, rhs.n_, rhs.d_, &n, &d)) {
        n_ = n;
        d_ = d;
        ++ThisThreadNumCounters().small_ops;
        XICC_NUM_AUDIT_CHECK();
        return *this;
      }
    }
    MulSlow(rhs);
    XICC_NUM_AUDIT_CHECK();
    return *this;
  }

  /// rhs must be nonzero.
  Num& operator/=(const Num& rhs) {
    XICC_NUM_AUDIT_PREP(ToRational() / rhs.ToRational());
    if (is_small() && rhs.is_small() && !XICC_FAULT_FIRES(kNumPromote)) {
      // Reciprocal of c/d is d/c with the sign moved to the numerator;
      // d > 0 ≤ INT64_MAX so −d never overflows, c ≠ INT64_MIN likewise.
      const int64_t rn = rhs.n_ < 0 ? -rhs.d_ : rhs.d_;
      const int64_t rd = rhs.n_ < 0 ? -rhs.n_ : rhs.n_;
      int64_t n, d;
      if (internal::SmallMul(n_, d_, rn, rd, &n, &d)) {
        n_ = n;
        d_ = d;
        ++ThisThreadNumCounters().small_ops;
        XICC_NUM_AUDIT_CHECK();
        return *this;
      }
    }
    DivSlow(rhs);
    XICC_NUM_AUDIT_CHECK();
    return *this;
  }

  friend Num operator+(Num lhs, const Num& rhs) { return lhs += rhs; }
  friend Num operator-(Num lhs, const Num& rhs) { return lhs -= rhs; }
  friend Num operator*(Num lhs, const Num& rhs) { return lhs *= rhs; }
  friend Num operator/(Num lhs, const Num& rhs) { return lhs /= rhs; }

  /// Three-way comparison; exact in all tier combinations (the small-small
  /// cross product fits __int128, never the 64-bit words).
  static int Compare(const Num& lhs, const Num& rhs) {
    if (lhs.is_small() && rhs.is_small()) {
      const __int128 l = static_cast<__int128>(lhs.n_) * rhs.d_;
      const __int128 r = static_cast<__int128>(rhs.n_) * lhs.d_;
      return (l > r) - (l < r);
    }
    return CompareSlow(lhs, rhs);
  }

  friend bool operator==(const Num& a, const Num& b) {
    return Compare(a, b) == 0;
  }
  friend bool operator!=(const Num& a, const Num& b) {
    return Compare(a, b) != 0;
  }
  friend bool operator<(const Num& a, const Num& b) {
    return Compare(a, b) < 0;
  }
  friend bool operator<=(const Num& a, const Num& b) {
    return Compare(a, b) <= 0;
  }
  friend bool operator>(const Num& a, const Num& b) {
    return Compare(a, b) > 0;
  }
  friend bool operator>=(const Num& a, const Num& b) {
    return Compare(a, b) >= 0;
  }

  /// "7" for integers, "7/3" otherwise — same grammar as Rational.
  std::string ToString() const;

  /// Serialization access (core/artifact): when small, stores the canonical
  /// (numerator, denominator) words and returns true; big-tier values
  /// return false and serialize via ToString.
  bool SmallWords(int64_t* n, int64_t* d) const {
    if (!is_small()) return false;
    *n = n_;
    *d = d_;
    return true;
  }

  /// Trusted deserialization entry (core/artifact): (n, d) must be the
  /// canonical small-tier words previously produced by SmallWords — d > 0,
  /// gcd(|n|, d) == 1, n != INT64_MIN. The caller validates the cheap word
  /// invariants before calling (artifact checksums make a violation
  /// unreachable from disk corruption); full canonicality is re-audited in
  /// XICC_AUDIT builds only, keeping warm loads free of gcd work.
  static Num FromCanonicalWords(int64_t n, int64_t d) {
    Num out(n, d, RawTag());
    XICC_DCHECK(out.RepOk());
    return out;
  }

  /// Representation invariant, for the XICC_AUDIT tableau auditor: the
  /// small tier is canonical and excludes INT64_MIN; the big tier holds
  /// only values that genuinely need it (a demotable big is a rep bug).
  bool RepOk() const;

 private:
  struct RawTag {};
  /// Trusted small constructor: (n, d) already canonical.
  Num(int64_t n, int64_t d, RawTag) : n_(n), d_(d) {}

  void InitBig(Rational r) { big_ = new Rational(std::move(r)); d_ = 0; }

  /// Stores `r`, choosing the tier; counts the promotion/demotion edge
  /// relative to `inputs_small`.
  void SetFromRational(Rational r, bool inputs_small);

  void AddSlow(const Num& rhs);
  void SubSlow(const Num& rhs);
  void MulSlow(const Num& rhs);
  void DivSlow(const Num& rhs);
  static int CompareSlow(const Num& lhs, const Num& rhs);

  union {
    int64_t n_;      ///< Small tier: numerator.
    Rational* big_;  ///< Big tier: owned heap value.
  };
  int64_t d_;  ///< Small tier: denominator > 0. Big tier: 0.
};

inline std::ostream& operator<<(std::ostream& os, const Num& v) {
  return os << v.ToString();
}

}  // namespace xicc
