#pragma once

// Clang Thread Safety Analysis attributes plus the annotated lock
// primitives the rest of the library must use (xicc_lint's raw-concurrency
// rule forbids naked std::mutex / std::thread outside src/base/).
//
// The macros expand to Clang's capability attributes when the compiler
// understands them and to nothing otherwise, so GCC builds are unaffected.
// Configure with -DXICC_THREAD_SAFETY=ON under clang to turn every
// annotation violation into a hard error (-Werror=thread-safety-analysis);
// that build proves the locking discipline of the parallel case-split
// search, CheckBatch, and the work-stealing pool at compile time.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define XICC_TSA_HAS_ATTRIBUTE_(x) __has_attribute(x)
#else
#define XICC_TSA_HAS_ATTRIBUTE_(x) 0
#endif

#if XICC_TSA_HAS_ATTRIBUTE_(capability)
#define XICC_TSA_ATTRIBUTE_(x) __attribute__((x))
#else
#define XICC_TSA_ATTRIBUTE_(x)
#endif

/// Marks a type as a capability (a lock). Argument: capability kind string.
#define XICC_CAPABILITY(x) XICC_TSA_ATTRIBUTE_(capability(x))

/// Marks an RAII type that acquires in its constructor and releases in its
/// destructor.
#define XICC_SCOPED_CAPABILITY XICC_TSA_ATTRIBUTE_(scoped_lockable)

/// Declares that a field may only be accessed while holding `x`.
#define XICC_GUARDED_BY(x) XICC_TSA_ATTRIBUTE_(guarded_by(x))

/// Declares that the pointee of a pointer field is guarded by `x`.
#define XICC_PT_GUARDED_BY(x) XICC_TSA_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define XICC_REQUIRES(...) \
  XICC_TSA_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function acquires / releases the listed capabilities.
#define XICC_ACQUIRE(...) \
  XICC_TSA_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define XICC_RELEASE(...) \
  XICC_TSA_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define XICC_TRY_ACQUIRE(result, ...) \
  XICC_TSA_ATTRIBUTE_(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called while holding the listed capabilities
/// (deadlock prevention for self-locking entry points).
#define XICC_EXCLUDES(...) XICC_TSA_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Lock-ordering anchors on a Mutex member: this lock is only ever acquired
/// AFTER (resp. BEFORE) the listed locks. Clang enforces the order for
/// same-class members; xicc_analyze's lock-order engine reads the same
/// annotations (plus `// xicc-analyze: acquired-after(Class::member)`
/// comments for cross-class edges Clang cannot express) and folds them into
/// the global acquisition graph behind LOCK_ORDER.md.
#define XICC_ACQUIRED_AFTER(...) \
  XICC_TSA_ATTRIBUTE_(acquired_after(__VA_ARGS__))
#define XICC_ACQUIRED_BEFORE(...) \
  XICC_TSA_ATTRIBUTE_(acquired_before(__VA_ARGS__))

/// Returns a reference to the named capability (for accessors).
#define XICC_RETURN_CAPABILITY(x) XICC_TSA_ATTRIBUTE_(lock_returned(x))

/// Escape hatch; every use needs an xicc-lint allow() comment explaining why
/// the analysis cannot see the discipline.
#define XICC_NO_THREAD_SAFETY_ANALYSIS \
  XICC_TSA_ATTRIBUTE_(no_thread_safety_analysis)

namespace xicc {

/// A std::mutex annotated as a Clang capability. The lowercase
/// lock()/unlock() aliases keep the type BasicLockable so it composes with
/// std::condition_variable_any (see CondVar below).
class XICC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() XICC_ACQUIRE() { mu_.lock(); }
  void Unlock() XICC_RELEASE() { mu_.unlock(); }
  bool TryLock() XICC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  void lock() XICC_ACQUIRE() { mu_.lock(); }
  void unlock() XICC_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for a Mutex, visible to the analysis as a scoped capability.
class XICC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) XICC_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() XICC_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with xicc::Mutex. Wait atomically releases and
/// reacquires, so to the analysis the caller simply holds `mu` throughout.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) XICC_REQUIRES(mu) { cv_.wait(*mu); }

  /// Bounded wait: returns false when `timeout_ms` elapsed without a
  /// notification, true on (possibly spurious) wakeup. This is the primitive
  /// every cancellable sleep in the library is built on — xicc_lint's
  /// raw-blocking rule bans unbounded waits and raw sleeps elsewhere.
  bool WaitFor(Mutex* mu, int64_t timeout_ms) XICC_REQUIRES(mu) {
    return cv_.wait_for(*mu, std::chrono::milliseconds(timeout_ms)) ==
           std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace xicc
