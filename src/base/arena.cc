#include "base/arena.h"

namespace xicc {

Arena& ThisThreadArena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace xicc
