#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/faults.h"

namespace xicc {

/// Chunked bump allocator for solver scratch.
///
/// Not thread-safe by design: each worksteal worker gets its own arena via
/// ThisThreadArena(), so the simplex hot loop never touches the global
/// allocator or another worker's cache lines. Deallocation is wholesale —
/// ArenaScope records the bump position and rewinds it on exit; individual
/// frees are no-ops. Scopes must nest LIFO, and no arena-backed container
/// may grow or be read across a rewind of its enclosing scope.
class Arena {
 public:
  static constexpr size_t kDefaultChunkBytes = size_t{1} << 16;

  explicit Arena(size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes) {}
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump position, cheap to copy. Ordering follows allocation order.
  struct Mark {
    size_t chunk = 0;
    size_t offset = 0;
  };

  /// `align` must be a power of two no larger than alignof(max_align_t)
  /// (chunks come from new char[], which guarantees exactly that much).
  void* Allocate(size_t bytes, size_t align) {
    if (XICC_FAULT_FIRES(kArenaAlloc) && mark_.chunk < chunks_.size()) {
      // Injected allocation pressure: abandon the current tail and force
      // the chunk-advance/growth path below, as a fragmented or failing
      // upstream allocator would.
      ++mark_.chunk;
      mark_.offset = 0;
    }
    for (;;) {
      if (mark_.chunk < chunks_.size()) {
        Chunk& chunk = chunks_[mark_.chunk];
        const size_t aligned = (mark_.offset + (align - 1)) & ~(align - 1);
        if (aligned + bytes <= chunk.size && aligned + bytes >= aligned) {
          mark_.offset = aligned + bytes;
          total_allocated_ += bytes;
          return chunk.data.get() + aligned;
        }
        // Tail too small; the next chunk (fresh or rewound-over) takes it.
        ++mark_.chunk;
        mark_.offset = 0;
        continue;
      }
      const size_t size = bytes + align > chunk_bytes_ ? bytes + align
                                                       : chunk_bytes_;
      chunks_.push_back(Chunk{std::make_unique<char[]>(size), size});
    }
  }

  Mark Position() const { return mark_; }

  /// Returns the bump position to `mark`; everything allocated after it is
  /// dead. Chunks are retained for reuse — an arena's footprint is the high
  ///-water mark of any scope that ran on it.
  void Rewind(Mark mark) { mark_ = mark; }

  /// Cumulative bytes handed out over the arena's lifetime (monotone; a
  /// rewind does not subtract). Callers diff this around a solve to report
  /// arena traffic in the stats.
  uint64_t total_allocated() const { return total_allocated_; }

  /// Bytes currently held in chunks (the footprint, not the traffic).
  size_t footprint() const {
    size_t total = 0;
    for (const Chunk& chunk : chunks_) total += chunk.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<char[]> data;
    size_t size;
  };

  std::vector<Chunk> chunks_;
  Mark mark_;
  size_t chunk_bytes_;
  uint64_t total_allocated_ = 0;
};

/// The calling thread's arena. Worksteal workers, the main thread, and any
/// caller of the ILP substrate each see a private instance.
Arena& ThisThreadArena();

/// RAII bump-position scope: everything allocated from `arena` while the
/// scope is alive is reclaimed when it closes. Scopes nest LIFO.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : arena_(arena), mark_(arena.Position()) {}
  ~ArenaScope() { arena_.Rewind(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// std::allocator-compatible handle so standard containers can live in an
/// arena. deallocate is a no-op: storage dies with the enclosing ArenaScope.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept : arena_(&ThisThreadArena()) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept  // NOLINT
      : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) noexcept {}

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ != b.arena_;
  }

 private:
  template <typename U>
  friend class ArenaAllocator;

  Arena* arena_;
};

template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace xicc
