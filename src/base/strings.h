#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace xicc {

/// Returns `s` with ASCII whitespace removed from both ends.
std::string_view StripWhitespace(std::string_view s);

/// Splits on `sep`; empty pieces are kept. Split("a,,b", ',') -> {a, "", b}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True iff `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True iff `c` may start an XML name (letter, '_' or ':').
bool IsNameStartChar(char c);
/// True iff `c` may continue an XML name (name start, digit, '-', '.').
bool IsNameChar(char c);
/// True iff `s` is a nonempty XML name.
bool IsValidName(std::string_view s);

/// Escapes &, <, >, ", ' for embedding in XML text or attribute values.
std::string XmlEscape(std::string_view s);

}  // namespace xicc
