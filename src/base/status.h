#pragma once

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace xicc {

/// Error categories used across the library. Library code never throws;
/// fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  /// Malformed input to a parser (XML, DTD, or constraint syntax).
  kParseError,
  /// Structurally invalid argument (e.g., a constraint referring to an
  /// attribute not defined for its element type).
  kInvalidArgument,
  /// The requested analysis has no algorithm for this constraint class
  /// (multi-attribute keys + foreign keys; Theorem 3.1 / Corollary 3.4).
  kUndecidableClass,
  /// A resource limit (node budget, solver iterations) was exhausted before
  /// the analysis finished.
  kResourceExhausted,
  /// A wall-clock deadline expired before the analysis finished. Like
  /// kResourceExhausted this is NOT a verdict: a timed-out check never says
  /// consistent or inconsistent, it reports partial progress and stops.
  kDeadlineExceeded,
  /// The caller (or a fault probe) cooperatively cancelled the analysis.
  kCancelled,
  /// The service (or a resource it depends on) is temporarily unable to
  /// take the work — overload shed, drain in progress, or a transient I/O
  /// failure such as a disk-full artifact store. Retryable after a backoff;
  /// the daemon attaches retry_after_ms to responses carrying this code.
  kUnavailable,
  /// Internal invariant violation; indicates a bug in the library.
  kInternal,
};

/// Returns a stable lower-case name, e.g. "parse-error".
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case.
///
/// [[nodiscard]]: silently dropping a Status is how an inconsistent verdict
/// escapes unnoticed; every call site must consume it (xicc_lint's
/// void-discard rule keeps `(void)` muting out too).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status UndecidableClass(std::string msg) {
    return Status(StatusCode::kUndecidableClass, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering: "ok" or "<code-name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result is a programming error (asserts in debug builds).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define XICC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::xicc::Status _xicc_st = (expr);         \
    if (!_xicc_st.ok()) return _xicc_st;      \
  } while (0)

/// Evaluates a Result<T> expression; on error propagates the Status, on
/// success assigns the value to `lhs` (which must be a declaration or
/// assignable lvalue).
#define XICC_ASSIGN_OR_RETURN(lhs, expr)               \
  XICC_ASSIGN_OR_RETURN_IMPL_(                         \
      XICC_STATUS_CONCAT_(_xicc_res, __LINE__), lhs, expr)
#define XICC_STATUS_CONCAT_INNER_(a, b) a##b
#define XICC_STATUS_CONCAT_(a, b) XICC_STATUS_CONCAT_INNER_(a, b)
#define XICC_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

}  // namespace xicc
