#include "base/stage_timer.h"

namespace xicc {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kSessionSetup:
      return "session_setup";
    case Stage::kMemoKey:
      return "memo_key";
    case Stage::kMemoLookup:
      return "memo_lookup";
    case Stage::kMemoStore:
      return "memo_store";
    case Stage::kSolve:
      return "solve";
    case Stage::kResultWrite:
      return "result_write";
    case Stage::kArtifactLoad:
      return "artifact_load";
    case Stage::kArtifactStore:
      return "artifact_store";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

}  // namespace xicc
