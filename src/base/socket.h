#pragma once

// The sanctioned raw-syscall boundary for networking.
//
// Everything the daemon layer (src/net) does to a file descriptor goes
// through the wrappers here; xicc_lint's raw-syscall extension of the
// raw-blocking rule bans ::socket/::accept/::recv/::poll and friends
// everywhere else, the same way raw sleeps are quarantined to
// base/deadline.h. The wrappers encode the three invariants the robustness
// layer depends on:
//
//   1. EINTR is never surfaced: interrupted calls are retried (reads,
//      writes, accepts) or reported as zero events (poll), so signal
//      delivery — SIGTERM starting a drain — cannot masquerade as an I/O
//      error.
//   2. EAGAIN/EWOULDBLOCK is a first-class result (IoStatus::kWouldBlock),
//      never an error: every descriptor handed out is non-blocking, and
//      the callers' event loops are built on short bounded polls.
//   3. Every wait is bounded: PollFds clamps its timeout, so no thread can
//      park past a shutdown request (the same property base/deadline.h's
//      SleepFor gives non-I/O waits).
//
// The XICC_FAULTS net probes (kNetAccept/kNetRead/kNetWrite) live inside
// AcceptOne/ReadSome/WriteSome, so every injected transient failure travels
// the exact code path a real ECONNRESET would.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "base/status.h"

namespace xicc {
namespace net {

/// Move-only RAII owner of a file descriptor; closes on destruction
/// (EINTR-tolerant). A default-constructed Fd is empty (get() == -1).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Closes now (idempotent).
  void Close();

 private:
  int fd_ = -1;
};

/// Outcome class of one non-blocking I/O attempt.
enum class IoStatus {
  kOk,          ///< Progress was made (`bytes` of it).
  kWouldBlock,  ///< Nothing available right now; poll and retry.
  kEof,         ///< Orderly peer shutdown (reads only).
  kError,       ///< Connection-fatal error (`err` holds errno).
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  size_t bytes = 0;
  int err = 0;
};

/// Reads up to `cap` bytes. EINTR retried; EAGAIN → kWouldBlock; 0 → kEof.
IoResult ReadSome(const Fd& fd, char* buf, size_t cap);

/// Writes up to `len` bytes (short writes are normal — `bytes` says how
/// far). EINTR retried; EAGAIN → kWouldBlock.
IoResult WriteSome(const Fd& fd, const char* buf, size_t len);

/// Creates a non-blocking loopback listener (SO_REUSEADDR). `port` 0 picks
/// an ephemeral port — read it back with LocalPort.
Result<Fd> TcpListen(uint16_t port, int backlog);

/// The port a listener is bound to.
Result<uint16_t> LocalPort(const Fd& listener);

/// Accepts one pending connection into `*out` (non-blocking). kWouldBlock
/// means the accept queue is drained; kError is transient (ECONNABORTED and
/// kin) — the listener itself stays healthy and the caller simply moves on.
IoResult AcceptOne(const Fd& listener, Fd* out);

/// Connects to 127.0.0.1:`port` within `timeout_ms`. The returned socket is
/// non-blocking.
Result<Fd> TcpConnect(uint16_t port, int64_t timeout_ms);

struct PollFd {
  int fd = -1;
  bool want_read = false;
  bool want_write = false;
};

struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool writable = false;
  /// Hangup or error condition: the owner should tear the connection down.
  bool closed = false;
};

/// Bounded ::poll over `fds` — waits at most `timeout_ms` (clamped to
/// [0, 1000] so no caller can park unwakeably past a shutdown; event loops
/// re-poll). EINTR yields zero events, never an error. Events are appended
/// to `*out`.
Result<size_t> PollFds(const std::vector<PollFd>& fds, int64_t timeout_ms,
                       std::vector<PollEvent>* out);

/// Half-closes the write side (shutdown(SHUT_WR)): the peer sees EOF after
/// draining what was already sent, while this side can still read. The
/// "client gave up mid-conversation" shape fault tests inject.
void HalfCloseWrite(const Fd& fd);

/// Writes all of `data` with short-write handling, polling for writability
/// between attempts, until `deadline_ms` elapses (kUnavailable on expiry —
/// a stuck peer must not wedge the writer).
Status WriteAll(const Fd& fd, std::string_view data, int64_t deadline_ms);

/// Self-pipe wake channel: Wake() is async-signal-safe (one non-blocking
/// write(2)), so a SIGTERM handler can nudge a poll loop that includes
/// read_fd() in its set. Spurious wakes are fine; Drain() swallows the
/// pending bytes.
class WakePipe {
 public:
  static Result<WakePipe> Create();

  WakePipe() = default;
  WakePipe(WakePipe&&) noexcept = default;
  WakePipe& operator=(WakePipe&&) noexcept = default;

  /// Async-signal-safe; coalesces (the pipe never fills — it is drained on
  /// every loop pass, and a full pipe just means a wake is already pending).
  void Wake() const;
  void Drain() const;
  int read_fd() const { return read_.get(); }

 private:
  Fd read_;
  Fd write_;
};

/// Owns one long-lived service thread (the daemon's I/O loop). With
/// base/worksteal.h this is the only sanctioned std::thread owner; the
/// raw-concurrency lint rule keeps thread spawning out of src/net. Joins on
/// destruction — the body must exit when its owner's stop flag is raised.
class ServiceThread {
 public:
  explicit ServiceThread(std::function<void()> body)
      : thread_(std::move(body)) {}
  ~ServiceThread() { Join(); }

  ServiceThread(const ServiceThread&) = delete;
  ServiceThread& operator=(const ServiceThread&) = delete;

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

}  // namespace net
}  // namespace xicc
