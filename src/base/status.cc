#include "base/status.h"

namespace xicc {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kParseError:
      return "parse-error";
    case StatusCode::kInvalidArgument:
      return "invalid-argument";
    case StatusCode::kUndecidableClass:
      return "undecidable-class";
    case StatusCode::kResourceExhausted:
      return "resource-exhausted";
    case StatusCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kInternal:
      return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace xicc
