#ifndef XICC_ILP_SIMPLEX_H_
#define XICC_ILP_SIMPLEX_H_

#include <vector>

#include "base/rational.h"
#include "ilp/linear_system.h"

namespace xicc {

/// A column of the simplex tableau, as seen by cut generation: the original
/// (structural) variables come first, then one slack per inequality.
/// Artificial columns are internal and never escape the solver.
struct LpColumnInfo {
  enum class Kind { kStructural, kSlack };
  Kind kind;
  /// kStructural: the VarId. kSlack: the constraint index it belongs to.
  int index;
};

/// The final basis rows, for Gomory cut derivation. Row i reads
///   x_{basis[i]} = rhs[i] - Σ_j coeffs[i][j]·x_j   (j over all columns),
/// where basic columns carry coefficient 0 except their own unit entry.
struct LpTableau {
  std::vector<LpColumnInfo> columns;
  /// basis[i] indexes into `columns`; -1 marks a (degenerate, zero-valued)
  /// artificial still in the basis — rows like that are unusable for cuts.
  std::vector<int> basis;
  std::vector<std::vector<Rational>> rows;  ///< Per row, per column.
  std::vector<Rational> rhs;
};

/// Outcome of an LP-relaxation feasibility check.
struct LpResult {
  bool feasible = false;
  /// Values for the system's original variables when feasible.
  std::vector<Rational> values;
  /// Pivot count, for the solver statistics.
  size_t pivots = 0;
};

/// Decides feasibility of the LP relaxation of `system` (variables rational,
/// ≥ 0) and returns a vertex solution.
///
/// Implementation: phase-1 simplex on exact rationals with Bland's rule.
/// Constraints become equalities via slack/surplus columns; where a slack
/// can seed the basis directly (≤ rows with nonnegative rhs) no artificial
/// is created. Feasible iff the artificial mass minimizes to 0.
///
/// When `tableau` is non-null and the LP is feasible, the final basis rows
/// are exported for Gomory cut generation.
LpResult SolveLpFeasibility(const LinearSystem& system,
                            LpTableau* tableau = nullptr);

}  // namespace xicc

#endif  // XICC_ILP_SIMPLEX_H_
