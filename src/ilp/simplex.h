#pragma once

#include <vector>

#include "base/deadline.h"
#include "base/num.h"
#include "ilp/linear_system.h"

namespace xicc {

/// A column of the simplex tableau, as seen by cut generation and the warm
/// re-solver: the original (structural) variables come first, then one slack
/// per inequality. Artificial columns are internal and never escape the
/// solver.
struct LpColumnInfo {
  enum class Kind { kStructural, kSlack };
  Kind kind;
  /// kStructural: the VarId. kSlack: the constraint index it belongs to.
  int index;
  /// kSlack only — how the slack substitutes back into structural terms:
  ///  -1:  s = rhs − expr  (≤-style slack)
  ///  +1:  s = expr − rhs  (≥-style surplus)
  /// An appended equality row is split into a ≤ and a ≥ half by the warm
  /// re-solver, so the constraint's RelOp alone no longer determines the
  /// sign; cut derivation must consult this field.
  int sub_sign = 0;
};

/// The final basis rows, for Gomory cut derivation and warm re-solving.
/// Row i reads
///   x_{basis[i]} = rhs[i] - Σ_j coeffs[i][j]·x_j   (j over all columns),
/// where basic columns carry coefficient 0 except their own unit entry.
struct LpTableau {
  std::vector<LpColumnInfo> columns;
  /// basis[i] indexes into `columns`; -1 marks a (degenerate, zero-valued)
  /// artificial still in the basis — rows like that are unusable for cuts
  /// and poison warm re-solves (the artificial column is not exported).
  std::vector<int> basis;
  std::vector<std::vector<Num>> rows;  ///< Per row, per column.
  std::vector<Num> rhs;
  /// How many rows of the originating LinearSystem this tableau covers.
  /// A warm re-solve treats system rows past this index as appended.
  size_t num_constraints = 0;
};

/// Outcome of an LP-relaxation feasibility check.
struct LpResult {
  bool feasible = false;
  /// True when the solve was stopped by its StopSignal (deadline expiry or
  /// cancellation) before reaching a verdict. `feasible` is then
  /// meaningless and MUST NOT be read as "infeasible".
  bool aborted = false;
  /// Values for the system's original variables when feasible.
  std::vector<Num> values;
  /// Pivot count, for the solver statistics.
  size_t pivots = 0;

  // ---- Sparse-kernel instrumentation (see DESIGN.md §12). ----
  /// Pivots priced by each rule. Warm (dual) re-solves are always Bland, so
  /// there dantzig_pivots stays 0; pivots == dantzig_pivots + bland_pivots
  /// (drive-out pivots of degenerate artificials count as Bland — they use
  /// the same smallest-index selection).
  size_t dantzig_pivots = 0;
  size_t bland_pivots = 0;
  /// How many times a degeneracy streak forced the Dantzig→Bland fallback.
  size_t bland_fallbacks = 0;
  /// Cells that went zero→nonzero under pivot elimination — the sparsity
  /// the kernel loses as the solve progresses.
  size_t fill_in = 0;
  /// Nonzero / total coefficient cells of the initial tableau (constraint
  /// rows, rhs excluded): nnz_cells / total_cells is the density the
  /// benches report.
  size_t nnz_cells = 0;
  size_t total_cells = 0;
  /// Structure-of-arrays int64 fast lane: rows still on packed words at the
  /// end of the solve, and rows that overflowed into the exact Num lane.
  size_t fast_rows = 0;
  size_t fast_row_promotions = 0;
  /// True when LpPricingConfig::pivot_cap stopped the solve (test harness
  /// only; `aborted` is set too, so no verdict was reached).
  bool pivot_cap_hit = false;
};

/// The sparse-kernel counters of LpResult in aggregable form, for solves
/// that sum many LP calls (branch-and-bound, case-split, sessions).
struct LpKernelStats {
  size_t dantzig_pivots = 0;
  size_t bland_pivots = 0;
  size_t bland_fallbacks = 0;
  size_t fill_in = 0;
  size_t nnz_cells = 0;
  size_t total_cells = 0;
  size_t fast_rows = 0;
  size_t fast_row_promotions = 0;

  void Add(const LpResult& lp) {
    dantzig_pivots += lp.dantzig_pivots;
    bland_pivots += lp.bland_pivots;
    bland_fallbacks += lp.bland_fallbacks;
    fill_in += lp.fill_in;
    nnz_cells += lp.nnz_cells;
    total_cells += lp.total_cells;
    fast_rows += lp.fast_rows;
    fast_row_promotions += lp.fast_row_promotions;
  }
  void Add(const LpKernelStats& other) {
    dantzig_pivots += other.dantzig_pivots;
    bland_pivots += other.bland_pivots;
    bland_fallbacks += other.bland_fallbacks;
    fill_in += other.fill_in;
    nnz_cells += other.nnz_cells;
    total_cells += other.total_cells;
    fast_rows += other.fast_rows;
    fast_row_promotions += other.fast_row_promotions;
  }
};

/// Tuning knobs of the cold solve's entering-variable pricing. Thread-local
/// (ScopedLpPricingConfig below) so tests can pin a rule without threading a
/// parameter through every caller; production code never touches it.
struct LpPricingConfig {
  /// Dantzig pricing (most negative reduced cost) with the degeneracy
  /// fallback below; false = pure Bland from the first pivot.
  bool dantzig = true;
  /// Consecutive degenerate pivots tolerated before falling back to Bland's
  /// rule (which cannot cycle). 0 disables the fallback — tests use that to
  /// demonstrate that pure Dantzig cycles on the regression fixture.
  size_t degenerate_streak_limit = 16;
  /// Hard pivot cap for tests hunting cycles; 0 = uncapped. Tripping it
  /// returns with `aborted` and `pivot_cap_hit` set.
  size_t pivot_cap = 0;
};

LpPricingConfig GetLpPricingConfig();
void SetLpPricingConfig(const LpPricingConfig& config);

/// RAII override of this thread's pricing config, for tests.
class ScopedLpPricingConfig {
 public:
  explicit ScopedLpPricingConfig(const LpPricingConfig& config)
      : saved_(GetLpPricingConfig()) {
    SetLpPricingConfig(config);
  }
  ~ScopedLpPricingConfig() { SetLpPricingConfig(saved_); }
  ScopedLpPricingConfig(const ScopedLpPricingConfig&) = delete;
  ScopedLpPricingConfig& operator=(const ScopedLpPricingConfig&) = delete;

 private:
  LpPricingConfig saved_;
};

/// Decides feasibility of the LP relaxation of `system` (variables rational,
/// ≥ 0) and returns a vertex solution.
///
/// Implementation: phase-1 simplex on exact rationals with Bland's rule.
/// Constraints become equalities via slack/surplus columns; where a slack
/// can seed the basis directly (≤ rows with nonnegative rhs) no artificial
/// is created. Feasible iff the artificial mass minimizes to 0.
///
/// When `tableau` is non-null and the LP is feasible, the final basis rows
/// are exported for Gomory cut generation and warm re-solving.
///
/// `stop` (optional) is polled every 64 pivots; an armed signal that fires
/// returns with `aborted` set and no verdict.
LpResult SolveLpFeasibility(const LinearSystem& system,
                            LpTableau* tableau = nullptr,
                            const StopSignal* stop = nullptr);

/// The pre-sparse reference solver: dense row-major tableau, always-Bland
/// pricing, all-Num arithmetic — byte-for-byte the algorithm the sparse
/// kernel replaced. Kept as the differential-fuzz oracle and the dense
/// baseline the benches time the sparse kernel against; production callers
/// use SolveLpFeasibility.
LpResult SolveLpFeasibilityDenseBland(const LinearSystem& system,
                                      LpTableau* tableau = nullptr,
                                      const StopSignal* stop = nullptr);

/// Why a warm re-solve could not be served from the given basis.
enum class WarmStatus {
  kOk,
  /// The parent basis cannot seed a re-solve: a degenerate artificial was
  /// still basic, or the system gained variables since the parent solve.
  kUnusableBasis,
  /// The anti-cycling backstop tripped; `lp.pivots` still reports the work
  /// spent so callers can account for it before falling back cold.
  kPivotLimit,
  /// The StopSignal fired mid-pivot (deadline or cancel). No verdict; the
  /// caller must NOT fall back to a cold solve — the point of stopping is
  /// to stop. In-place variant: the tableau is mid-pivot, as for
  /// kPivotLimit.
  kAborted,
};

struct WarmResult {
  WarmStatus status = WarmStatus::kUnusableBasis;
  /// Valid only when status == kOk; `lp.pivots` is filled in all cases.
  LpResult lp;
};

/// Dual-simplex warm re-solve — the incremental entry point of the ILP
/// substrate.
///
/// Precondition: `tableau` is the final exported tableau of a *feasible*
/// solve (cold or warm) of the first `tableau->num_constraints` rows of
/// `system`, and every row appended since only references variables that
/// already existed at that solve. Each appended inequality becomes one new
/// slack-basic row; an appended equality is split into its ≤ and ≥ halves.
/// New rows are priced out against the parent basis and primal feasibility
/// is restored by dual simplex with Bland's rule (leaving row = infeasible
/// row with the smallest basic column, entering = smallest negative column),
/// pivoting from the parent's dual-feasible basis instead of re-running
/// phase-1 from scratch.
///
/// On kOk, `tableau` is updated in place to cover all of `system` (and is
/// only meaningful when `lp.feasible`); an infeasible verdict out of the
/// dual loop is exact — the certificate row has nonnegative coefficients and
/// a negative rhs over nonnegative variables. On kUnusableBasis/kPivotLimit
/// the caller must fall back to SolveLpFeasibility; verdicts are identical
/// either way, warm start only changes who does the pivoting.
WarmResult ReSolveLpFeasibilityDual(const LinearSystem& system,
                                    LpTableau* tableau,
                                    const StopSignal* stop = nullptr);

/// Same decision and the same basis mathematics as ReSolveLpFeasibilityDual,
/// but pivots directly inside `tableau` instead of on a private dense copy
/// that is folded back afterwards — the copy burst is the dominant cost of
/// a re-solve whose appended
/// rows need only a handful of pivots, which is exactly the Σ-delta session
/// profile. The price is the failure contract: on kUnusableBasis the tableau
/// is untouched, but on kPivotLimit — and on an exact kOk infeasible
/// verdict — `*tableau` is left mid-pivot and MUST be discarded or rebuilt
/// by a cold solve. Callers that keep their basis across failed re-solves
/// (e.g. the presolve forced-row extension) stay on the copying variant.
WarmResult ReSolveLpFeasibilityDualInPlace(const LinearSystem& system,
                                           LpTableau* tableau,
                                           const StopSignal* stop = nullptr);

}  // namespace xicc
