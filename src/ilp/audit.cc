#include "ilp/audit.h"

#include <string>
#include <vector>

#include "base/bigint.h"
#include "base/num.h"

namespace xicc {

namespace {

std::string RowCol(size_t row, size_t col) {
  return "row " + std::to_string(row) + ", column " + std::to_string(col);
}

/// Canonical-form check for one exact cell: positive denominator, fully
/// reduced, and a well-formed two-tier representation (RepOk catches a
/// big-tier value that should have demoted — a leak of BigInt arithmetic
/// into cells the small tier can serve). A cell that fails this was
/// produced by arithmetic outside Num's normalizing operations — the
/// exactness invariant the NP-upper-bound encodings depend on.
void CheckCell(const Num& value, const std::string& where,
               std::vector<std::string>* out) {
  if (!value.RepOk()) {
    out->push_back("ill-formed two-tier representation at " + where);
    return;
  }
  if (value.den().sign() <= 0) {
    out->push_back("non-positive denominator at " + where);
    return;
  }
  if (!(BigInt::Gcd(value.num(), value.den()) == BigInt(1))) {
    out->push_back("unreduced rational at " + where);
  }
}

}  // namespace

std::vector<std::string> AuditTrail(const LinearSystem& system) {
  return AuditTrail(system.checkpoints(), system.NumVariables(),
                    system.NumConstraints());
}

std::vector<std::string> AuditTrail(
    const std::vector<LinearSystem::Checkpoint>& trail, size_t num_variables,
    size_t num_constraints) {
  std::vector<std::string> out;
  size_t prev_vars = 0;
  size_t prev_rows = 0;
  for (size_t i = 0; i < trail.size(); ++i) {
    const LinearSystem::Checkpoint& cp = trail[i];
    if (cp.num_variables < prev_vars || cp.num_constraints < prev_rows) {
      out.push_back("checkpoint " + std::to_string(i) +
                    " is not monotone: (" + std::to_string(cp.num_variables) +
                    " vars, " + std::to_string(cp.num_constraints) +
                    " rows) below its predecessor (" +
                    std::to_string(prev_vars) + " vars, " +
                    std::to_string(prev_rows) + " rows)");
    }
    if (cp.num_variables > num_variables ||
        cp.num_constraints > num_constraints) {
      out.push_back("checkpoint " + std::to_string(i) + " records (" +
                    std::to_string(cp.num_variables) + " vars, " +
                    std::to_string(cp.num_constraints) +
                    " rows) beyond the live system (" +
                    std::to_string(num_variables) + " vars, " +
                    std::to_string(num_constraints) + " rows)");
    }
    prev_vars = cp.num_variables;
    prev_rows = cp.num_constraints;
  }
  return out;
}

std::vector<std::string> AuditTableau(const LinearSystem& system,
                                      const LpTableau& tableau) {
  std::vector<std::string> out;
  const size_t m = tableau.rows.size();
  const size_t cols = tableau.columns.size();

  if (tableau.num_constraints > system.NumConstraints()) {
    out.push_back("tableau covers " +
                  std::to_string(tableau.num_constraints) +
                  " system rows but the system has only " +
                  std::to_string(system.NumConstraints()));
  }
  if (tableau.basis.size() != m || tableau.rhs.size() != m) {
    out.push_back("shape mismatch: " + std::to_string(m) + " rows vs " +
                  std::to_string(tableau.basis.size()) + " basis entries / " +
                  std::to_string(tableau.rhs.size()) + " rhs entries");
    return out;  // Nothing below indexes safely.
  }

  for (size_t j = 0; j < cols; ++j) {
    const LpColumnInfo& column = tableau.columns[j];
    if (column.kind == LpColumnInfo::Kind::kStructural) {
      if (column.index < 0 ||
          static_cast<size_t>(column.index) >= system.NumVariables()) {
        out.push_back("structural column " + std::to_string(j) +
                      " names unknown variable " +
                      std::to_string(column.index));
      }
    } else {
      if (column.index < 0 ||
          static_cast<size_t>(column.index) >= tableau.num_constraints) {
        out.push_back("slack column " + std::to_string(j) +
                      " names row " + std::to_string(column.index) +
                      " outside the covered prefix");
      }
      if (column.sub_sign != -1 && column.sub_sign != 1) {
        out.push_back("slack column " + std::to_string(j) +
                      " has substitution sign " +
                      std::to_string(column.sub_sign) + " (want ±1)");
      }
    }
  }

  std::vector<int> basic_in(cols, -1);
  for (size_t i = 0; i < m; ++i) {
    if (tableau.rows[i].size() != cols) {
      out.push_back("row " + std::to_string(i) + " has " +
                    std::to_string(tableau.rows[i].size()) +
                    " cells for " + std::to_string(cols) + " columns");
      return out;
    }
    const int b = tableau.basis[i];
    if (b >= static_cast<int>(cols)) {
      out.push_back("basis entry " + std::to_string(i) +
                    " names column " + std::to_string(b) + " of " +
                    std::to_string(cols));
      continue;
    }
    if (b < 0) {
      // A degenerate artificial still basic: the row must be at value 0.
      if (!tableau.rhs[i].is_zero()) {
        out.push_back("artificial-basic row " + std::to_string(i) +
                      " has nonzero rhs (must be degenerate)");
      }
      continue;
    }
    if (basic_in[b] >= 0) {
      out.push_back("column " + std::to_string(b) + " is basic in rows " +
                    std::to_string(basic_in[b]) + " and " +
                    std::to_string(i));
      continue;
    }
    basic_in[b] = static_cast<int>(i);
  }

  // Unit-column property: a basic column carries 1 in its own row and 0
  // everywhere else — the algebraic core of "x_B = rhs − Σ nonbasic terms".
  const Num one(1);
  for (size_t j = 0; j < cols; ++j) {
    if (basic_in[j] < 0) continue;
    for (size_t i = 0; i < m; ++i) {
      const Num& cell = tableau.rows[i][j];
      if (i == static_cast<size_t>(basic_in[j])) {
        if (!(cell == one)) {
          out.push_back("basic column " + std::to_string(j) +
                        " is not unit in its own row " + std::to_string(i));
        }
      } else if (!cell.is_zero()) {
        out.push_back("basic column " + std::to_string(j) +
                      " has a nonzero entry outside its row, at " +
                      RowCol(i, j));
      }
    }
  }

  for (size_t i = 0; i < m; ++i) {
    if (tableau.rhs[i].sign() < 0) {
      out.push_back("negative rhs in row " + std::to_string(i) +
                    " (an infeasible re-solve leaked into a kept tableau)");
    }
    CheckCell(tableau.rhs[i], "rhs of row " + std::to_string(i), &out);
    for (size_t j = 0; j < cols; ++j) {
      CheckCell(tableau.rows[i][j], RowCol(i, j), &out);
    }
  }
  return out;
}

std::vector<std::string> AuditFastLaneOp(char op, internal::Word a,
                                         internal::Word b, internal::Word c,
                                         internal::Word d, internal::Word rn,
                                         internal::Word rd) {
  std::vector<std::string> out;
  const std::string what = std::string("fast-lane ") + op + " of " +
                           std::to_string(a) + "/" + std::to_string(b) +
                           " and " + std::to_string(c) + "/" +
                           std::to_string(d) + " -> " + std::to_string(rn) +
                           "/" + std::to_string(rd);
  if (rd <= 0) {
    out.push_back("non-positive denominator in " + what);
    return out;
  }
  if (rn == INT64_MIN) {
    out.push_back("INT64_MIN numerator (non-canonical small word) in " + what);
    return out;
  }
  const bool reduced =
      rn == 0 ? rd == 1
              : internal::Gcd64(internal::Mag64(rn),
                                static_cast<uint64_t>(rd)) == 1;
  if (!reduced) out.push_back("unreduced fast-lane words in " + what);
  const Rational lhs{BigInt(a), BigInt(b)};
  const Rational rhs{BigInt(c), BigInt(d)};
  const Rational expect = op == '*' ? lhs * rhs : lhs + rhs;
  if (!(expect == Rational(BigInt(rn), BigInt(rd)))) {
    out.push_back("Rational recomputation disagrees with " + what);
  }
  return out;
}

std::vector<std::string> AuditRowSupport(const std::vector<Num>& cells,
                                         size_t width,
                                         const std::vector<int>& support,
                                         size_t row) {
  std::vector<std::string> out;
  std::vector<bool> listed(width, false);
  int prev = -1;
  for (int j : support) {
    if (j <= prev) {
      out.push_back("support of row " + std::to_string(row) +
                    " is not strictly increasing at column " +
                    std::to_string(j));
    }
    prev = j;
    if (j < 0 || static_cast<size_t>(j) >= width) {
      out.push_back("support of row " + std::to_string(row) +
                    " names column " + std::to_string(j) + " outside width " +
                    std::to_string(width));
      continue;
    }
    listed[static_cast<size_t>(j)] = true;
    if (cells[static_cast<size_t>(j)].is_zero()) {
      out.push_back("zero cell listed in support at " + RowCol(row, j));
    }
  }
  for (size_t j = 0; j < width; ++j) {
    if (!listed[j] && !cells[j].is_zero()) {
      out.push_back("nonzero cell missing from support at " +
                    RowCol(row, j));
    }
  }
  return out;
}

}  // namespace xicc
