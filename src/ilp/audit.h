#pragma once

#include <string>
#include <vector>

#include "ilp/linear_system.h"
#include "ilp/simplex.h"

namespace xicc {

/// Invariant auditors for the exact-ILP substrate. Each returns a list of
/// human-readable violations — empty means every invariant holds — so tests
/// can exercise them in any build; the XICC_AUDIT build wires them into
/// solver checkpoints via XICC_DCHECK_AUDIT (base/debug.h), where any
/// violation aborts with the full list.

/// Trail discipline of a LinearSystem: checkpoints are monotone
/// nondecreasing in both sizes (rows and variables are append-only) and
/// never exceed the live system — the precondition every PopCheckpoint,
/// warm re-solve prefix, and TrailScope relies on.
std::vector<std::string> AuditTrail(const LinearSystem& system);

/// The same check over raw trail data. LinearSystem's own API cannot build
/// a bad trail (that is the invariant); this overload lets tests and
/// external checkpointing code audit a candidate trail directly.
std::vector<std::string> AuditTrail(
    const std::vector<LinearSystem::Checkpoint>& trail, size_t num_variables,
    size_t num_constraints);

/// Consistency of a retained warm-start basis against the system it seeds:
///  - the tableau covers a row prefix of `system` and no unknown variables;
///  - column metadata is well formed (structural ids in range, slack rows in
///    range with a ±1 substitution sign);
///  - the basis is a valid simplex basis (each basic column is a unit
///    column; no column basic in two rows; artificial-basic rows are
///    degenerate);
///  - the export is primal feasible (rhs ≥ 0 — infeasible re-solves must
///    never fold back into a kept tableau);
///  - every cell is an exact Num in canonical form (positive denominator,
///    reduced, and with a well-formed two-tier representation — a big-tier
///    value that fits the small words is a demotion bug) — the invariant
///    that catches any floating-point or un-normalized arithmetic leaking
///    into a pivot.
std::vector<std::string> AuditTableau(const LinearSystem& system,
                                      const LpTableau& tableau);

/// Fast-lane recomputation — the XICC_NUM_AUDIT twin for the sparse kernel's
/// structure-of-arrays small-word lane: redo a/b ∘ c/d (`op` is '*' or '+')
/// in pure BigInt-backed Rational arithmetic and check that the fast-lane
/// result rn/rd matches it exactly and is in canonical small-tier form
/// (positive denominator, reduced, numerator != INT64_MIN). The overflow
/// intrinsics guard the representation; this guards the mathematics.
std::vector<std::string> AuditFastLaneOp(char op, internal::Word a,
                                         internal::Word b, internal::Word c,
                                         internal::Word d, internal::Word rn,
                                         internal::Word rd);

/// Support-list invariant of one sparse kernel row: `support` holds strictly
/// increasing column indices naming exactly the nonzero cells of
/// `cells[0..width)` (the rhs cell sits past `width` and is tracked outside
/// the supports).
std::vector<std::string> AuditRowSupport(const std::vector<Num>& cells,
                                         size_t width,
                                         const std::vector<int>& support,
                                         size_t row);

}  // namespace xicc
