#pragma once

#include <vector>

#include "base/bigint.h"
#include "base/deadline.h"
#include "base/status.h"
#include "ilp/linear_system.h"
#include "ilp/simplex.h"

namespace xicc {

struct LpTableau;
struct IlpSolution;

struct IlpOptions {
  /// Hard cap on branch & bound nodes; exceeding it yields
  /// kResourceExhausted. 0 means unlimited.
  size_t max_nodes = 200000;
  /// Gomory fractional-cut rounds attempted per node before branching.
  /// Cuts settle parity-style integer infeasibilities (e.g. 2x = 2y + 1)
  /// that pure branching would chase toward the variable bound.
  size_t max_cut_rounds = 20;
  /// Clamp every variable by the Papadimitriou minimal-solution bound before
  /// searching, which makes the search space finite — but only when the
  /// bound fits in `max_bound_bits` (the bound is n·(m·a)^(2m+1); carrying
  /// wide constants through every simplex pivot dwarfs the search itself,
  /// so the default keeps the box at machine-word scale). Without the box,
  /// Gomory cuts settle the common divergent cases and max_nodes is the
  /// honest termination backstop.
  bool apply_papadimitriou_bound = true;
  size_t max_bound_bits = 64;
  /// Serve child-node and cut-round LP solves by dual-simplex re-solve from
  /// the parent's final basis instead of a fresh phase-1 (the cold primal
  /// path remains the fallback whenever a warm basis is unusable, so
  /// verdicts are identical either way). Off is kept for the ablation bench.
  bool warm_start = true;
  /// Worker threads for the conditional case-split fan-out (see
  /// SolveWithConditionals): 1 keeps everything sequential and the statistics
  /// deterministic; >1 explores the top of the split tree in parallel with
  /// an unchanged verdict. Plain SolveIlp is always single-threaded.
  size_t num_threads = 1;
  /// Caller-owned scratch tableau the ROOT branch-and-bound node copies the
  /// warm hint into (instead of a fresh stack-local). Re-passing the same
  /// scratch across many SolveIlp calls lets the copy reuse every limb
  /// vector's capacity — the per-solve allocation burst of duplicating a
  /// dense exact-rational tableau disappears after the first call. Must
  /// outlive the solve, must not alias `warm_hint`, and must never be shared
  /// across concurrent solves.
  LpTableau* root_scratch = nullptr;
  /// Cooperative stop: a deadline and/or cancel token polled at bounded
  /// cost — once per branch-and-bound node, once per Gomory cut round, and
  /// every 64 pivots inside the LP substrate. When it fires the solve
  /// returns kDeadlineExceeded / kCancelled, never a verdict: a stopped
  /// check is not "infeasible".
  StopSignal stop;
  /// When non-null and the solve ends without a verdict (the stop signal
  /// fired or the node budget tripped), receives the statistics accumulated
  /// so far — nodes explored, pivots, deepest node reached — with
  /// `feasible` false.
  IlpSolution* partial = nullptr;
};

struct IlpSolution {
  bool feasible = false;
  /// Integer values per variable when feasible.
  std::vector<BigInt> values;
  /// Statistics.
  size_t nodes_explored = 0;
  size_t lp_pivots = 0;
  size_t cuts_added = 0;
  /// Deepest branch-and-bound node reached (root = 0) — the best-so-far
  /// depth reported with partial statistics when a solve is stopped.
  size_t max_depth = 0;
  /// LP solves served incrementally from a parent basis (dual simplex).
  size_t warm_starts = 0;
  /// LP solves that ran the cold phase-1 path (root nodes, disabled warm
  /// start, or warm-basis fallbacks).
  size_t cold_restarts = 0;
  /// Sparse LP kernel (DESIGN.md §12), summed over every LP solve of this
  /// ILP solve: pivots priced by each rule, Dantzig→Bland degeneracy
  /// fallbacks, fill-in, tableau density, and the int64 fast lane's
  /// row/promotion tallies.
  LpKernelStats lp_kernel;
  /// Two-tier exact arithmetic (base/num.h), this solve's share: operations
  /// served by the packed small tier vs the BigInt tier, and the transitions
  /// between them. promotions/small_ops is the promotion rate the benches
  /// report.
  uint64_t num_small_ops = 0;
  uint64_t num_big_ops = 0;
  uint64_t num_promotions = 0;
  uint64_t num_demotions = 0;
  /// Bytes of per-thread arena scratch consumed by this solve (cumulative
  /// traffic, not footprint — see Arena::total_allocated).
  uint64_t arena_bytes = 0;
  /// Wall-clock time spent inside the solve.
  double wall_ms = 0.0;  // xicc-lint: allow(exact-arithmetic)
};

/// The Papadimitriou bound (J.ACM 28(4), 1981), as used in Theorem 4.1 and
/// Lemma 5.3: if a system of `m` inequalities over `n` nonnegative integer
/// variables with magnitudes ≤ `a` has a solution, it has one with every
/// component ≤ n·(m·a)^(2m+1).
BigInt PapadimitriouBound(size_t num_constraints, size_t num_variables,
                          const BigInt& max_abs_value);

/// Decides whether `system` has a solution over nonnegative integers and
/// produces one if so.
///
/// Algorithm: cut-and-branch on the exact-rational LP relaxation. The DFS
/// runs on ONE system via the trail (PushCheckpoint/PopCheckpoint), and each
/// non-root node re-solves warm: the parent's final basis plus the one
/// appended row (branch bound or Gomory cut) goes through dual simplex
/// instead of a fresh phase-1 (cold fallback when the warm basis is
/// unusable). An infeasible relaxation prunes, an integral vertex finishes;
/// otherwise up to max_cut_rounds Gomory fractional cuts are derived from
/// the final tableau — cuts stay pushed for the subtree and are undone on
/// exit — and if the vertex stays fractional the first fractional variable
/// x = v branches into x ≤ ⌊v⌋ and x ≥ ⌈v⌉ (DFS, floor side first —
/// cardinality systems tend to have small solutions).
/// `warm_hint`, when given, must be the final tableau of a feasible LP solve
/// of a row-prefix of `system` (e.g. the case-split DFS's pruning solve of
/// the very system it hands to the leaf); the root node then warm starts
/// from it instead of running phase-1 cold. A stale or foreign hint is
/// rejected by the re-solver's usability checks and only costs the fallback.
Result<IlpSolution> SolveIlp(const LinearSystem& system,
                             const IlpOptions& options = {},
                             const LpTableau* warm_hint = nullptr);

}  // namespace xicc
