#ifndef XICC_ILP_SOLVER_H_
#define XICC_ILP_SOLVER_H_

#include <vector>

#include "base/bigint.h"
#include "base/status.h"
#include "ilp/linear_system.h"

namespace xicc {

struct IlpOptions {
  /// Hard cap on branch & bound nodes; exceeding it yields
  /// kResourceExhausted. 0 means unlimited.
  size_t max_nodes = 200000;
  /// Gomory fractional-cut rounds attempted per node before branching.
  /// Cuts settle parity-style integer infeasibilities (e.g. 2x = 2y + 1)
  /// that pure branching would chase toward the variable bound.
  size_t max_cut_rounds = 20;
  /// Clamp every variable by the Papadimitriou minimal-solution bound before
  /// searching, which makes the search space finite — but only when the
  /// bound fits in `max_bound_bits` (the bound is n·(m·a)^(2m+1); carrying
  /// wide constants through every simplex pivot dwarfs the search itself,
  /// so the default keeps the box at machine-word scale). Without the box,
  /// Gomory cuts settle the common divergent cases and max_nodes is the
  /// honest termination backstop.
  bool apply_papadimitriou_bound = true;
  size_t max_bound_bits = 64;
};

struct IlpSolution {
  bool feasible = false;
  /// Integer values per variable when feasible.
  std::vector<BigInt> values;
  /// Statistics.
  size_t nodes_explored = 0;
  size_t lp_pivots = 0;
  size_t cuts_added = 0;
};

/// The Papadimitriou bound (J.ACM 28(4), 1981), as used in Theorem 4.1 and
/// Lemma 5.3: if a system of `m` inequalities over `n` nonnegative integer
/// variables with magnitudes ≤ `a` has a solution, it has one with every
/// component ≤ n·(m·a)^(2m+1).
BigInt PapadimitriouBound(size_t num_constraints, size_t num_variables,
                          const BigInt& max_abs_value);

/// Decides whether `system` has a solution over nonnegative integers and
/// produces one if so.
///
/// Algorithm: cut-and-branch on the exact-rational LP relaxation. Each node
/// solves phase-1 simplex; an infeasible relaxation prunes, an integral
/// vertex finishes; otherwise up to max_cut_rounds Gomory fractional cuts
/// are derived from the final tableau, and if the vertex stays fractional
/// the first fractional variable x = v branches into x ≤ ⌊v⌋ and x ≥ ⌈v⌉
/// (DFS, floor side first — cardinality systems tend to have small
/// solutions).
Result<IlpSolution> SolveIlp(const LinearSystem& system,
                             const IlpOptions& options = {});

}  // namespace xicc

#endif  // XICC_ILP_SOLVER_H_
