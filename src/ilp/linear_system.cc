#include "ilp/linear_system.h"

#include "base/strings.h"

namespace xicc {

LinearExpr& LinearExpr::Add(VarId var, Num coeff) {
  if (coeff.is_zero()) return *this;
  auto it = terms_.find(var);
  if (it == terms_.end()) {
    terms_.emplace(var, std::move(coeff));
  } else {
    it->second += coeff;
    if (it->second.is_zero()) terms_.erase(it);
  }
  return *this;
}

LinearExpr& LinearExpr::AddConstant(const Num& value) {
  constant_ += value;
  return *this;
}

VarId LinearSystem::AddVariable(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<VarId>(names_.size()) - 1;
}

void LinearSystem::AddConstraint(const LinearExpr& expr, RelOp op, Num rhs) {
  LinearConstraint c;
  c.coeffs.reserve(expr.terms().size());
  for (const auto& [var, coeff] : expr.terms()) {
    c.coeffs.emplace_back(var, coeff);  // std::map iterates VarId-sorted.
  }
  c.op = op;
  c.rhs = std::move(rhs);
  c.rhs -= expr.constant();
  constraints_.push_back(std::move(c));
}

void LinearSystem::AddEq(const LinearExpr& lhs, const LinearExpr& rhs) {
  LinearExpr diff;
  for (const auto& [var, coeff] : lhs.terms()) diff.Add(var, coeff);
  for (const auto& [var, coeff] : rhs.terms()) diff.Add(var, -coeff);
  AddConstraint(diff, RelOp::kEq, rhs.constant() - lhs.constant());
}

void LinearSystem::AddLe(const LinearExpr& lhs, const LinearExpr& rhs) {
  LinearExpr diff;
  for (const auto& [var, coeff] : lhs.terms()) diff.Add(var, coeff);
  for (const auto& [var, coeff] : rhs.terms()) diff.Add(var, -coeff);
  AddConstraint(diff, RelOp::kLe, rhs.constant() - lhs.constant());
}

void LinearSystem::PushCheckpoint() {
  trail_.push_back({names_.size(), constraints_.size()});
}

void LinearSystem::PopCheckpoint() {
  const Checkpoint& mark = trail_.back();
  names_.resize(mark.num_variables);
  constraints_.resize(mark.num_constraints);
  trail_.pop_back();
}

BigInt LinearSystem::MaxAbsValue() const {
  BigInt max(1);
  for (const LinearConstraint& c : constraints_) {
    for (const auto& [var, coeff] : c.coeffs) {
      BigInt abs = coeff.num().Abs();
      if (abs > max) max = abs;
    }
    BigInt abs = c.rhs.num().Abs();
    if (abs > max) max = abs;
  }
  return max;
}

size_t LinearSystem::NumNonzeros() const {
  size_t nnz = 0;
  for (const LinearConstraint& c : constraints_) nnz += c.coeffs.size();
  return nnz;
}

std::string LinearSystem::ToString() const {
  std::vector<std::string> lines;
  lines.reserve(constraints_.size());
  for (const LinearConstraint& c : constraints_) {
    std::string line;
    bool first = true;
    for (const auto& [var, coeff] : c.coeffs) {
      if (!first) line += " + ";
      first = false;
      if (coeff != Num(1)) line += coeff.ToString() + "*";
      line += names_[var];
    }
    if (first) line += "0";
    switch (c.op) {
      case RelOp::kLe:
        line += " <= ";
        break;
      case RelOp::kGe:
        line += " >= ";
        break;
      case RelOp::kEq:
        line += " == ";
        break;
    }
    line += c.rhs.ToString();
    lines.push_back(std::move(line));
  }
  return Join(lines, "\n");
}

}  // namespace xicc
