#include "ilp/solver.h"

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "base/arena.h"
#include "base/debug.h"
#include "base/faults.h"
#include "ilp/audit.h"
#include "ilp/simplex.h"

namespace xicc {

BigInt PapadimitriouBound(size_t num_constraints, size_t num_variables,
                          const BigInt& max_abs_value) {
  if (num_constraints == 0 || num_variables == 0) return BigInt(1);
  BigInt ma = BigInt(static_cast<int64_t>(num_constraints)) * max_abs_value;
  return BigInt(static_cast<int64_t>(num_variables)) *
         BigInt::Pow(ma, 2 * static_cast<uint64_t>(num_constraints) + 1);
}

namespace {

/// Fractional part f(x) = x - ⌊x⌋ ∈ [0, 1).
Num Frac(const Num& value) {
  return value - value.Floor();
}

/// Derives a Gomory fractional cut from a basis row with fractional rhs.
///
/// For a row  x_B + Σ_j ā_j·x_j = b̄  over integer variables (structural and
/// slack; nonbasic artificials are identically zero and ignored), every
/// integer-feasible point satisfies  Σ_j f(ā_j)·x_j ≥ f(b̄). Slack variables
/// are then substituted out via their column's sub_sign
/// (s = ±(rhs_k − expr_k)) and denominators cleared, yielding a pure
/// structural-variable row to append. A cut with empty support and positive
/// rhs certifies integer infeasibility — the caller appends it and the next
/// LP round reports infeasible.
std::optional<LinearConstraint> DeriveGomoryCut(const LinearSystem& system,
                                                const LpTableau& tableau) {
  // Pick the usable fractional row whose rhs fraction is closest to 1/2
  // (strongest cut).
  int best_row = -1;
  Num best_score;
  const Num half(BigInt(1), BigInt(2));
  for (size_t i = 0; i < tableau.rhs.size(); ++i) {
    if (tableau.basis[i] < 0) continue;  // Artificial still basic.
    Num f = Frac(tableau.rhs[i]);
    if (f.is_zero()) continue;
    Num score = f <= half ? f : Num(1) - f;
    if (best_row < 0 || score > best_score) {
      best_row = static_cast<int>(i);
      best_score = score;
    }
  }
  if (best_row < 0) return std::nullopt;

  const std::vector<Num>& row = tableau.rows[best_row];
  Num rhs = Frac(tableau.rhs[best_row]);
  // Accumulate structural coefficients; slack columns substitute to
  // structural terms plus a constant folded into the rhs.
  std::map<VarId, Num> coeffs;
  for (size_t j = 0; j < row.size(); ++j) {
    Num f = Frac(row[j]);
    if (f.is_zero()) continue;
    const LpColumnInfo& column = tableau.columns[j];
    if (column.kind == LpColumnInfo::Kind::kStructural) {
      coeffs[column.index] += f;
      continue;
    }
    // Slack of constraint k: sub_sign −1 has s = rhs_k − expr_k, +1 has
    // s = expr_k − rhs_k (the op no longer decides — appended equalities
    // are split into both halves by the warm re-solver).
    const LinearConstraint& c = system.constraints()[column.index];
    int sign = column.sub_sign;
    for (const auto& [var, coeff] : c.coeffs) {
      Num term = f * coeff;
      coeffs[var] += sign < 0 ? -term : term;
    }
    // f·s contributes f·(∓rhs_k) as a constant on the left; move it right.
    Num constant = f * c.rhs;
    rhs += sign < 0 ? -constant : constant;
  }

  // Clear denominators: multiply by the LCM.
  BigInt lcm(1);
  auto fold = [&lcm](const Num& value) {
    BigInt den = value.den();
    BigInt g = BigInt::Gcd(lcm, den);
    lcm = lcm / g * den;
  };
  for (const auto& [var, value] : coeffs) fold(value);
  fold(rhs);

  LinearConstraint cut;
  cut.op = RelOp::kGe;
  const Num scale{BigInt(lcm)};
  cut.coeffs.reserve(coeffs.size());
  for (const auto& [var, value] : coeffs) {
    Num scaled = value * scale;
    // std::map iteration keeps the flat row VarId-sorted, as AddRaw requires.
    if (!scaled.is_zero()) cut.coeffs.emplace_back(var, scaled.num());
  }
  cut.rhs = Num((rhs * scale).num());
  return cut;
}

/// Depth-first cut-and-branch over ONE trail-managed system: branch bounds
/// and node-local Gomory cuts are pushed/popped on `work_` (O(1) amortized
/// per node instead of an O(rows) copy), and every non-root LP solve warm
/// starts from the parent node's final basis via dual simplex.
class BranchAndBound {
 public:
  BranchAndBound(const LinearSystem& system, const IlpOptions& options,
                 const LpTableau* warm_hint)
      : work_(system), options_(options), hint_(warm_hint) {
    // Point at the member copy, not the caller's struct: options_ outlives
    // every poll, and an unarmed signal stays entirely off the hot path.
    if (options_.stop.Armed()) stop_ = &options_.stop;
  }

  Result<IlpSolution> Run() {
    const auto start = std::chrono::steady_clock::now();
    // Snapshot the calling thread's two-tier arithmetic and arena counters;
    // the deltas at exit are this solve's own traffic. Nested solvers (the
    // case-split search, the connectivity cut loop) take their snapshots at
    // their own boundaries, so nobody double-counts.
    const NumCounters counters_before = ThisThreadNumCounters();
    const uint64_t arena_before = ThisThreadArena().total_allocated();
    if (options_.apply_papadimitriou_bound) {
      // Upper-bound every variable by the minimal-solution bound, making
      // the search space finite — but only when the bound is cheap to carry
      // (see IlpOptions::max_bound_bits).
      size_t m = work_.NumConstraints();
      size_t n = work_.NumVariables();
      BigInt a = work_.MaxAbsValue();
      size_t estimated_bits =
          (2 * m + 1) * (64 - __builtin_clzll(m | 1) + a.BitLength()) + 8;
      if (m > 0 && estimated_bits <= options_.max_bound_bits) {
        BigInt bound = PapadimitriouBound(m, n, a);
        for (VarId v = 0; v < static_cast<VarId>(n); ++v) {
          work_.AddConstraint(LinearExpr::Var(v), RelOp::kLe, bound);
        }
      }
    }
    bool found = Explore(/*parent=*/hint_, /*depth=*/0);
    solution_.feasible = found;
    const NumCounters& counters_after = ThisThreadNumCounters();
    solution_.num_small_ops = counters_after.small_ops - counters_before.small_ops;
    solution_.num_big_ops = counters_after.big_ops - counters_before.big_ops;
    solution_.num_promotions =
        counters_after.promotions - counters_before.promotions;
    solution_.num_demotions =
        counters_after.demotions - counters_before.demotions;
    solution_.arena_bytes =
        ThisThreadArena().total_allocated() - arena_before;
    solution_.wall_ms =
        std::chrono::duration<double, std::milli>(  // xicc-lint: allow(exact-arithmetic)
            std::chrono::steady_clock::now() - start)
            .count();
    // No-verdict exits still hand the work done back through `partial` —
    // a stopped check reports how far it got, never what it concluded.
    if (!found && stopped_) {
      if (options_.partial != nullptr) *options_.partial = solution_;
      return stop_ != nullptr ? stop_->ToStatus()
                              : Status::Cancelled("ILP search was stopped");
    }
    if (!found && budget_hit_) {
      if (options_.partial != nullptr) *options_.partial = solution_;
      return Status::ResourceExhausted(
          "ILP search exceeded " + std::to_string(options_.max_nodes) +
          " branch-and-bound nodes");
    }
    return std::move(solution_);
  }

 private:
  /// RAII handle on a tableau from the node free list; the destructor
  /// returns it (with all its vector capacity) for the next node to reuse.
  class PooledTableau {
   public:
    explicit PooledTableau(BranchAndBound* owner) : owner_(owner) {
      if (owner_->tableau_pool_.empty()) {
        tab_ = std::make_unique<LpTableau>();
      } else {
        tab_ = std::move(owner_->tableau_pool_.back());
        owner_->tableau_pool_.pop_back();
      }
    }
    ~PooledTableau() {
      owner_->tableau_pool_.push_back(std::move(tab_));
    }
    PooledTableau(const PooledTableau&) = delete;
    PooledTableau& operator=(const PooledTableau&) = delete;
    LpTableau* get() { return tab_.get(); }

   private:
    BranchAndBound* owner_;
    std::unique_ptr<LpTableau> tab_;
  };

  /// Folds one LP solve's kernel counters into the running solution stats.
  void TallyLpCounters(const LpResult& lp) {
    solution_.lp_pivots += lp.pivots;
    solution_.lp_kernel.Add(lp);
  }

  /// One LP solve of the current work_ state into `tab`. When `try_warm`,
  /// `tab` must hold a feasible ancestor basis of a row-prefix of work_ —
  /// the appended rows go through the dual-simplex re-solve; any warm
  /// failure falls back to the cold primal path (identical verdicts).
  LpResult SolveNodeLp(LpTableau* tab, bool try_warm) {
    if (try_warm && options_.warm_start) {
      // In-place re-solve: `tab` is this node's private (or scratch) copy,
      // and every failure path below overwrites it with a cold solve.
      WarmResult warm = ReSolveLpFeasibilityDualInPlace(work_, tab, stop_);
      TallyLpCounters(warm.lp);
      if (warm.status == WarmStatus::kAborted) {
        // The stop fired mid-pivot. No cold fallback — the point of
        // stopping is to stop, not to finish the node another way.
        stopped_ = true;
        LpResult aborted;
        aborted.aborted = true;
        return aborted;
      }
      if (warm.status == WarmStatus::kOk) {
        ++solution_.warm_starts;
        // The folded-back warm tableau must satisfy the same invariants as
        // a cold export — this is where a broken dual pivot would surface.
        if (warm.lp.feasible) {
          XICC_DCHECK_AUDIT(AuditTableau(work_, *tab));
        }
        return std::move(warm.lp);
      }
    }
    ++solution_.cold_restarts;
    LpResult lp = SolveLpFeasibility(work_, tab, stop_);
    TallyLpCounters(lp);
    if (lp.aborted) {
      stopped_ = true;
      return lp;
    }
    if (lp.feasible && tab != nullptr) {
      XICC_DCHECK_AUDIT(AuditTableau(work_, *tab));
    }
    return lp;
  }

  /// Returns true when an integer solution was found (stored in solution_).
  /// `parent` is the parent node's final tableau (null at the root); work_
  /// already contains this node's branch row.
  bool Explore(const LpTableau* parent, size_t depth) {
    // Fault site: under XICC_FAULTS a configured probe cancels the
    // registered token right here, exercising the very poll below.
    XICC_FAULT_PROBE(kBnbNode);
    if (stopped_ || (stop_ != nullptr && stop_->ShouldStop())) {
      stopped_ = true;
      return false;
    }
    if (options_.max_nodes != 0 &&
        solution_.nodes_explored >= options_.max_nodes) {
      budget_hit_ = true;
      return false;
    }
    ++solution_.nodes_explored;
    if (depth > solution_.max_depth) solution_.max_depth = depth;
    XICC_DCHECK_AUDIT(AuditTrail(work_));

    // Gomory cuts derived here stay pushed for the whole subtree (they are
    // valid under the current branches) and are undone when the node exits.
    work_.PushCheckpoint();
    bool found = ExploreWithCuts(parent, depth);
    work_.PopCheckpoint();
    return found;
  }

  bool ExploreWithCuts(const LpTableau* parent, size_t depth) {
    // Node tableaus come from a free list: releasing back to it keeps the
    // row vectors' capacities, so the per-node `*tab = *parent` copy settles
    // into zero allocator traffic once the tree depth has been visited once.
    // (LpTableau itself must stay heap-vector-backed — parents are shared
    // down the DFS and outlive any one node's arena scope.)
    PooledTableau local(this);
    LpTableau* tab = local.get();
    bool try_warm = parent != nullptr;
    if (try_warm) {
      // The sibling still needs `parent`, so every node works on a copy. The
      // root may copy into the caller's scratch tableau instead of a pooled
      // one — re-passing the same scratch across solves keeps its capacity
      // warm from call to call, not just node to node.
      if (parent == hint_ && options_.root_scratch != nullptr) {
        tab = options_.root_scratch;
      }
      *tab = *parent;
    }
    LpResult lp = SolveNodeLp(tab, try_warm);

    // Cut loop: solve, finish/prune, else strengthen with a Gomory cut and
    // warm re-solve from this node's own basis (one appended row).
    VarId fractional = -1;
    for (size_t round = 0; round <= options_.max_cut_rounds; ++round) {
      if (!lp.feasible) return false;

      fractional = -1;
      for (size_t i = 0; i < lp.values.size(); ++i) {
        if (!lp.values[i].is_integer()) {
          fractional = static_cast<VarId>(i);
          break;
        }
      }
      if (fractional < 0) {
        solution_.values.clear();
        solution_.values.reserve(lp.values.size());
        for (const Num& v : lp.values) {
          solution_.values.push_back(v.num());
        }
        return true;
      }
      if (round == options_.max_cut_rounds) break;
      // Cut rounds can chain many LP solves at one node; poll between them
      // so a node stuck strengthening cuts still honors the deadline.
      if (stopped_ || (stop_ != nullptr && stop_->ShouldStop())) {
        stopped_ = true;
        return false;
      }
      std::optional<LinearConstraint> cut = DeriveGomoryCut(work_, *tab);
      if (!cut.has_value()) break;
      work_.AddRaw(std::move(*cut));
      ++solution_.cuts_added;
      lp = SolveNodeLp(tab, /*try_warm=*/true);
    }

    const Num value = lp.values[fractional];
    work_.PushCheckpoint();
    work_.AddConstraint(LinearExpr::Var(fractional), RelOp::kLe,
                        value.Floor());
    bool found = Explore(tab, depth + 1);
    work_.PopCheckpoint();
    if (found) return true;
    work_.PushCheckpoint();
    work_.AddConstraint(LinearExpr::Var(fractional), RelOp::kGe,
                        value.Ceil());
    found = Explore(tab, depth + 1);
    work_.PopCheckpoint();
    return found;
  }

  LinearSystem work_;
  IlpOptions options_;
  const LpTableau* hint_;
  /// Non-null iff options_.stop is armed; points into options_.
  const StopSignal* stop_ = nullptr;
  IlpSolution solution_;
  std::vector<std::unique_ptr<LpTableau>> tableau_pool_;
  bool budget_hit_ = false;
  /// The stop signal fired (observed at a node, a cut round, or inside a
  /// pivot loop). Distinct from budget_hit_: a budget trip is a resource
  /// verdict, a stop is the caller changing its mind.
  bool stopped_ = false;
};

}  // namespace

Result<IlpSolution> SolveIlp(const LinearSystem& system,
                             const IlpOptions& options,
                             const LpTableau* warm_hint) {
  BranchAndBound solver(system, options, warm_hint);
  return solver.Run();
}

}  // namespace xicc
